"""Tests for data assets and the transformation predicates (fast paths)."""

import pytest

from repro.errors import ProtocolError, UnsatisfiedConstraintError
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder
from repro.primitives.encoding import bytes_to_elements
from repro.primitives.mimc import mimc_decrypt_ctr
from repro.primitives.commitment import open_commitment
from repro.storage import ContentStore
from repro.core.tokens import DataAsset
from repro.core.transformations import Aggregation, Duplication, Partition, Processing


class TestDataAsset:
    def test_create_encrypts_and_commits(self):
        asset = DataAsset.create([1, 2, 3], key=7, nonce=11)
        assert asset.ciphertext.blocks != (1, 2, 3)
        assert mimc_decrypt_ctr(7, asset.ciphertext) == [1, 2, 3]
        assert open_commitment(asset.plaintext, asset.data_commitment, asset.data_blinder)
        assert open_commitment(asset.key, asset.key_commitment, asset.key_blinder)

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            DataAsset.create([])

    def test_from_bytes(self):
        asset = DataAsset.from_bytes(b"hello zkdet", key=3, nonce=4)
        decrypted = mimc_decrypt_ctr(3, asset.ciphertext)
        assert decrypted == bytes_to_elements(b"hello zkdet")

    def test_publish_and_public_view(self):
        store = ContentStore()
        asset = DataAsset.create([5, 6], key=1, nonce=2)
        uri = asset.publish(store, owner="alice")
        assert store.get(uri) == asset.serialized_ciphertext()
        view = asset.public_view()
        assert view.uri == uri
        assert view.num_entries == 2
        assert view.data_commitment == asset.data_commitment.value
        # The public view carries no plaintext or key material.
        assert not hasattr(view, "plaintext")
        assert not hasattr(view, "key")

    def test_size_bytes(self):
        assert DataAsset.create([0] * 10, key=1, nonce=1).size_bytes == 310


def check_transformation_circuit(transformation, sources, expect_ok=True):
    """Build just the f-relation circuit and check satisfaction."""
    derived = transformation.apply(sources)
    builder = CircuitBuilder()
    src_wires = [[builder.var(v) for v in s] for s in sources]
    dst_wires = [[builder.var(v) for v in d] for d in derived]
    transformation.constrain(builder, src_wires, dst_wires)
    builder.compile()
    return derived


class TestDuplication:
    def test_apply_and_circuit(self):
        derived = check_transformation_circuit(Duplication(), [[1, 2, 3]])
        assert derived == [[1, 2, 3]]

    def test_output_sizes(self):
        assert Duplication().output_sizes([4]) == [4]
        with pytest.raises(ProtocolError):
            Duplication().output_sizes([4, 5])

    def test_circuit_rejects_mutation(self):
        builder = CircuitBuilder()
        src = [builder.var(v) for v in (1, 2)]
        dst = [builder.var(v) for v in (1, 99)]
        Duplication().constrain(builder, [src], [dst])
        with pytest.raises(UnsatisfiedConstraintError):
            builder.compile()

    def test_circuit_rejects_size_mismatch(self):
        builder = CircuitBuilder()
        with pytest.raises(ProtocolError):
            Duplication().constrain(builder, [[builder.var(1)]], [[builder.var(1), builder.var(2)]])


class TestAggregation:
    def test_apply_preserves_order(self):
        derived = check_transformation_circuit(Aggregation(), [[1, 2], [3], [4, 5]])
        assert derived == [[1, 2, 3, 4, 5]]

    def test_output_sizes(self):
        assert Aggregation().output_sizes([2, 3]) == [5]
        with pytest.raises(ProtocolError):
            Aggregation().output_sizes([2])

    def test_circuit_rejects_wrong_concat(self):
        builder = CircuitBuilder()
        srcs = [[builder.var(1), builder.var(2)], [builder.var(3)]]
        dst = [builder.var(v) for v in (1, 3, 2)]  # reordered
        Aggregation().constrain(builder, srcs, [dst])
        with pytest.raises(UnsatisfiedConstraintError):
            builder.compile()


class TestPartition:
    def test_apply_is_exhaustive_and_disjoint(self):
        part = Partition(sizes=(2, 1, 2))
        derived = check_transformation_circuit(part, [[1, 2, 3, 4, 5]])
        assert derived == [[1, 2], [3], [4, 5]]
        flat = [v for d in derived for v in d]
        assert flat == [1, 2, 3, 4, 5]  # exhaustive, mutually exclusive

    def test_invalid_shapes(self):
        with pytest.raises(ProtocolError):
            Partition(sizes=(3,))
        with pytest.raises(ProtocolError):
            Partition(sizes=(0, 2))
        with pytest.raises(ProtocolError):
            Partition(sizes=(2, 2)).output_sizes([5])
        with pytest.raises(ProtocolError):
            Partition(sizes=(2, 2)).apply([[1, 2, 3]])

    def test_shape_key_includes_sizes(self):
        assert Partition(sizes=(1, 2)).shape_key([3]) != Partition(sizes=(2, 1)).shape_key([3])


class TestProcessing:
    def test_custom_predicate(self):
        double = Processing(
            apply_fn=lambda srcs: [[(2 * v) % R for v in srcs[0]]],
            constrain_fn=lambda b, s, d: [
                b.assert_equal(b.scale(x, 2), y) for x, y in zip(s[0], d[0])
            ],
            out_sizes_fn=lambda sizes: [sizes[0]],
            tag="double",
        )
        derived = check_transformation_circuit(double, [[3, 4]])
        assert derived == [[6, 8]]
        assert "double" in double.shape_key([2])

    def test_requires_all_functions(self):
        with pytest.raises(ProtocolError):
            Processing(apply_fn=lambda s: s)
