"""Unit and property tests for the BN254 scalar field."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.field import Fr, MODULUS, batch_inverse, inv, root_of_unity
from repro.field import fr

elements = st.integers(min_value=0, max_value=MODULUS - 1)


def test_modulus_is_prime_ish():
    # Fermat tests with several bases; MODULUS is the standard BN254 r.
    for base in (2, 3, 5, 7, 11, 13):
        assert pow(base, MODULUS - 1, MODULUS) == 1


def test_fr_basic_arithmetic():
    a, b = Fr(3), Fr(5)
    assert a + b == Fr(8)
    assert a - b == Fr(MODULUS - 2)
    assert a * b == Fr(15)
    assert b / a * a == b
    assert -a == Fr(MODULUS - 3)
    assert a**3 == Fr(27)
    assert int(Fr(MODULUS + 4)) == 4


def test_fr_mixes_with_ints():
    a = Fr(10)
    assert a + 1 == Fr(11)
    assert 1 + a == Fr(11)
    assert 2 * a == Fr(20)
    assert a - 12 == Fr(MODULUS - 2)
    assert 12 - a == Fr(2)
    assert 20 / a == Fr(2)


def test_fr_is_immutable_and_hashable():
    a = Fr(7)
    with pytest.raises(AttributeError):
        a.value = 8
    assert len({Fr(1), Fr(1), Fr(2)}) == 2


def test_fr_bytes_roundtrip():
    a = Fr.random()
    assert Fr.from_bytes(a.to_bytes()) == a
    with pytest.raises(FieldError):
        Fr.from_bytes(b"\x00" * 31)


def test_inverse_of_zero_raises():
    with pytest.raises(FieldError):
        inv(0)
    with pytest.raises(FieldError):
        Fr(0).inverse()
    with pytest.raises(FieldError):
        batch_inverse([1, 0, 2])


@given(elements)
def test_inverse_property(a):
    if a == 0:
        return
    assert a * inv(a) % MODULUS == 1


@given(st.lists(st.integers(min_value=1, max_value=MODULUS - 1), max_size=20))
def test_batch_inverse_matches_single(values):
    assert batch_inverse(values) == [inv(v) for v in values]


@given(elements, elements, elements)
@settings(max_examples=50)
def test_field_axioms(a, b, c):
    fa, fb, fc = Fr(a), Fr(b), Fr(c)
    assert fa + fb == fb + fa
    assert fa * fb == fb * fa
    assert (fa + fb) + fc == fa + (fb + fc)
    assert fa * (fb + fc) == fa * fb + fa * fc


@pytest.mark.parametrize("log", [0, 1, 2, 5, 10, 20, 28])
def test_roots_of_unity(log):
    n = 1 << log
    w = root_of_unity(n)
    assert pow(w, n, MODULUS) == 1
    if n > 1:
        assert pow(w, n // 2, MODULUS) != 1


def test_root_of_unity_rejects_bad_orders():
    with pytest.raises(FieldError):
        root_of_unity(3)
    with pytest.raises(FieldError):
        root_of_unity(1 << 29)
    with pytest.raises(FieldError):
        root_of_unity(0)


class TestRandomScalar:
    """The sanctioned entropy source: secrets-backed, optional F_r^*."""

    def test_default_range(self):
        for _ in range(32):
            assert 0 <= fr.random_scalar() < MODULUS

    def test_rand_fr_is_an_alias(self):
        assert 0 <= fr.rand_fr() < MODULUS

    def test_default_permits_zero(self, monkeypatch):
        monkeypatch.setattr(fr.secrets, "randbelow", lambda n: 0)
        assert fr.random_scalar() == 0

    def test_nonzero_rejects_zero_draws(self, monkeypatch):
        draws = iter([0, 0, 42])
        monkeypatch.setattr(fr.secrets, "randbelow", lambda n: next(draws))
        assert fr.random_scalar(nonzero=True) == 42

    def test_nonzero_accepts_first_nonzero_draw(self, monkeypatch):
        calls = []

        def fake_randbelow(n):
            calls.append(n)
            return 7

        monkeypatch.setattr(fr.secrets, "randbelow", fake_randbelow)
        assert fr.random_scalar(nonzero=True) == 7
        assert calls == [MODULUS]

    def test_uses_the_os_csprng(self):
        # The module must draw from secrets (OS CSPRNG), never random.
        import inspect

        source = inspect.getsource(fr.random_scalar)
        assert "secrets.randbelow" in source
