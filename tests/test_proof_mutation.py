"""Proof-mutation fuzzing: every field of a valid proof is load-bearing.

Knowledge soundness is not directly testable, but a cheap and strong
corollary is: take an honestly generated proof and flip any single
component — any of the 9 G1 commitments or 6 scalar evaluations of a
Plonk proof, any of the (A, B, C) elements of a Groth16 proof, or any
public input — and the verifier must reject.  A mutation that survives
verification would mean that component never entered the pairing checks,
i.e. a forgery degree of freedom.

Mutations stay inside the valid encoding space (points remain on-curve,
scalars remain reduced) so every rejection is semantic, not a parsing
artifact; a verifier that raises on a mutant instead of returning False
is also accepted.
"""

import random

import pytest

from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.errors import ReproError
from repro.field.fr import MODULUS as R
from repro.groth16 import Groth16Proof, groth16_prove, groth16_setup, groth16_verify
from repro.kzg import SRS
from repro.plonk import CircuitBuilder, prove, setup, verify
from repro.plonk.proof import _POINT_FIELDS, _SCALAR_FIELDS
from repro.r1cs import R1CSBuilder

pytestmark = pytest.mark.slow


def _rejects(checker):
    """A mutant is rejected if the verifier says False *or* raises."""
    try:
        return not checker()
    except ReproError:
        return True


# ---------------------------------------------------------------------------
# Plonk
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def plonk_case():
    builder = CircuitBuilder()
    x = builder.public_input(9)
    y = builder.public_input(12)
    w = builder.var(3)
    builder.assert_equal(builder.mul(w, w), x)
    builder.assert_equal(builder.add(w, x), y)
    layout, assignment = builder.compile()
    srs = SRS.generate(64, tau=987654321)
    pk, vk = setup(srs, layout)
    proof = prove(pk, assignment)
    publics = assignment.public_inputs
    assert verify(vk, publics, proof)  # sanity: the unmutated proof passes
    return vk, publics, proof


class TestPlonkProofMutation:
    @pytest.mark.parametrize("field", _POINT_FIELDS)
    def test_nudged_commitment_rejected(self, plonk_case, field):
        vk, publics, proof = plonk_case
        mutant = proof.replace(**{field: getattr(proof, field) + G1.generator()})
        assert _rejects(lambda: verify(vk, publics, mutant)), field

    @pytest.mark.parametrize("field", _POINT_FIELDS)
    def test_replaced_commitment_rejected(self, plonk_case, field):
        vk, publics, proof = plonk_case
        mutant = proof.replace(**{field: G1.generator() * 7})
        assert _rejects(lambda: verify(vk, publics, mutant)), field

    @pytest.mark.parametrize("field", _SCALAR_FIELDS)
    def test_incremented_scalar_rejected(self, plonk_case, field):
        vk, publics, proof = plonk_case
        mutant = proof.replace(**{field: (getattr(proof, field) + 1) % R})
        assert _rejects(lambda: verify(vk, publics, mutant)), field

    @pytest.mark.parametrize("field", _SCALAR_FIELDS)
    def test_randomized_scalar_rejected(self, plonk_case, field, chaos_seed):
        vk, publics, proof = plonk_case
        rng = random.Random("%d:%s" % (chaos_seed, field))
        original = getattr(proof, field)
        value = original
        while value == original:
            value = rng.randrange(R)
        mutant = proof.replace(**{field: value})
        assert _rejects(lambda: verify(vk, publics, mutant)), field

    def test_each_public_input_is_binding(self, plonk_case):
        vk, publics, proof = plonk_case
        for i in range(len(publics)):
            mutated = list(publics)
            mutated[i] = (mutated[i] + 1) % R
            assert _rejects(lambda: verify(vk, mutated, proof)), "public[%d]" % i

    def test_swapped_commitments_rejected(self, plonk_case):
        """Two valid points in each other's slots still fail: the checks
        bind each commitment to its role, not just to the curve."""
        vk, publics, proof = plonk_case
        mutant = proof.replace(c_a=proof.c_b, c_b=proof.c_a)
        assert _rejects(lambda: verify(vk, publics, mutant))


# ---------------------------------------------------------------------------
# Groth16
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def groth16_case():
    b = R1CSBuilder()
    x = b.public_input(35)
    y = b.public_input(105)
    w = b.var(3)
    w2 = b.mul(w, w)
    w3 = b.mul(w2, w)
    t = b.linear_combination([(1, w3), (1, w)], 5)
    b.assert_equal(t, x)
    b.assert_equal(b.mul(w, x), y)
    system, witness = b.compile()
    pk, vk = groth16_setup(system)
    proof = groth16_prove(pk, witness)
    publics = witness.public_inputs
    assert groth16_verify(vk, publics, proof)
    return vk, publics, proof


class TestGroth16ProofMutation:
    def test_mutated_a_rejected(self, groth16_case):
        vk, publics, proof = groth16_case
        mutant = Groth16Proof(a=proof.a + G1.generator(), b=proof.b, c=proof.c)
        assert _rejects(lambda: groth16_verify(vk, publics, mutant))

    def test_mutated_b_rejected(self, groth16_case):
        vk, publics, proof = groth16_case
        mutant = Groth16Proof(a=proof.a, b=proof.b + G2.generator(), c=proof.c)
        assert _rejects(lambda: groth16_verify(vk, publics, mutant))

    def test_mutated_c_rejected(self, groth16_case):
        vk, publics, proof = groth16_case
        mutant = Groth16Proof(a=proof.a, b=proof.b, c=proof.c + G1.generator())
        assert _rejects(lambda: groth16_verify(vk, publics, mutant))

    def test_replaced_elements_rejected(self, groth16_case, chaos_seed):
        vk, publics, proof = groth16_case
        rng = random.Random(chaos_seed)
        s = rng.randrange(2, R)
        mutants = [
            Groth16Proof(a=G1.generator() * s, b=proof.b, c=proof.c),
            Groth16Proof(a=proof.a, b=G2.generator() * s, c=proof.c),
            Groth16Proof(a=proof.a, b=proof.b, c=G1.generator() * s),
        ]
        for i, mutant in enumerate(mutants):
            assert _rejects(lambda: groth16_verify(vk, publics, mutant)), i

    def test_each_public_input_is_binding(self, groth16_case):
        vk, publics, proof = groth16_case
        for i in range(len(publics)):
            mutated = list(publics)
            mutated[i] = (mutated[i] + 1) % R
            assert _rejects(lambda: groth16_verify(vk, mutated, proof)), "public[%d]" % i
