"""Tests for R1CS, the QAP reduction, and Groth16 (the ZKCP baseline)."""

import pytest

from repro.errors import CircuitError, UnsatisfiedConstraintError
from repro.curve.g1 import G1
from repro.groth16 import (
    QAP,
    Groth16Proof,
    groth16_prove,
    groth16_setup,
    groth16_verify,
    verification_group_operations,
)
from repro.r1cs import R1CSBuilder


def _cube_circuit(x_value, y_value, w_value):
    """Statement: I know w with w^3 + w + 5 == x and w * x == y."""
    b = R1CSBuilder()
    x = b.public_input(x_value)
    y = b.public_input(y_value)
    w = b.var(w_value)
    w2 = b.mul(w, w)
    w3 = b.mul(w2, w)
    t = b.linear_combination([(1, w3), (1, w)], 5)
    b.assert_equal(t, x)
    prod = b.mul(w, x)
    b.assert_equal(prod, y)
    return b.compile()


class TestR1CS:
    def test_builder_and_check(self):
        system, witness = _cube_circuit(35, 105, 3)
        assert witness.public_inputs == [35, 105]
        assert system.num_public == 2
        system.check(witness)

    def test_check_rejects_bad_witness(self):
        system, witness = _cube_circuit(35, 105, 3)
        witness.values[3] = 4
        with pytest.raises(UnsatisfiedConstraintError):
            system.check(witness)

    def test_check_rejects_bad_shape(self):
        system, witness = _cube_circuit(35, 105, 3)
        witness.values.append(0)
        with pytest.raises(CircuitError):
            system.check(witness)
        witness.values = [0] * system.num_variables
        with pytest.raises(CircuitError):
            system.check(witness)

    def test_public_after_private_rejected(self):
        b = R1CSBuilder()
        b.var(1)
        with pytest.raises(CircuitError):
            b.public_input(2)

    def test_helpers(self):
        b = R1CSBuilder()
        x, y = b.var(6), b.var(7)
        assert b.value(b.mul(x, y)) == 42
        assert b.value(b.add(x, y)) == 13
        assert b.value(b.linear_combination([(2, x), (-1, y)], 3)) == 8
        b.assert_constant(x, 6)
        system, witness = b.compile()
        system.check(witness)


class TestQAP:
    def test_from_r1cs_shapes(self):
        system, witness = _cube_circuit(35, 105, 3)
        qap = QAP.from_r1cs(system)
        assert qap.m >= system.num_constraints
        assert qap.m & (qap.m - 1) == 0
        assert qap.num_variables == system.num_variables

    def test_evaluations_match_dense_interpolation(self):
        system, witness = _cube_circuit(35, 105, 3)
        qap = QAP.from_r1cs(system)
        tau = 987654321
        u_at, v_at, w_at = qap.evaluations_at(tau)
        # Cross-check one variable against dense Lagrange interpolation.
        from repro.field.ntt import Domain
        from repro.field import poly as poly_mod

        domain = Domain.get(qap.m)
        var = 3
        col = [0] * qap.m
        for i, (a, _b, _c) in enumerate(system.constraints):
            col[i] = a.get(var, 0)
        dense = domain.ifft(col)
        assert poly_mod.evaluate(dense, tau) == u_at[var]

    def test_quotient_exists_for_valid_witness(self):
        system, witness = _cube_circuit(35, 105, 3)
        qap = QAP.from_r1cs(system)
        h = qap.quotient(witness.values)
        assert len(h) <= qap.m - 1

    def test_quotient_fails_for_invalid_witness(self):
        system, witness = _cube_circuit(35, 105, 3)
        qap = QAP.from_r1cs(system)
        bad = list(witness.values)
        bad[3] = 12345
        with pytest.raises(CircuitError):
            qap.quotient(bad)

    def test_empty_system_rejected(self):
        b = R1CSBuilder()
        b.var(1)
        system, _ = b.compile()
        with pytest.raises(CircuitError):
            QAP.from_r1cs(system)


@pytest.mark.slow
class TestGroth16:
    def test_completeness(self):
        system, witness = _cube_circuit(35, 105, 3)
        pk, vk = groth16_setup(system)
        proof = groth16_prove(pk, witness)
        assert groth16_verify(vk, [35, 105], proof)

    def test_wrong_public_inputs_rejected(self):
        system, witness = _cube_circuit(35, 105, 3)
        pk, vk = groth16_setup(system)
        proof = groth16_prove(pk, witness)
        assert not groth16_verify(vk, [35, 106], proof)
        assert not groth16_verify(vk, [35], proof)

    def test_tampered_proof_rejected(self):
        system, witness = _cube_circuit(35, 105, 3)
        pk, vk = groth16_setup(system)
        proof = groth16_prove(pk, witness)
        bad = Groth16Proof(proof.a + G1.generator(), proof.b, proof.c)
        assert not groth16_verify(vk, [35, 105], bad)
        bad2 = Groth16Proof(proof.a, proof.b, proof.c + G1.generator())
        assert not groth16_verify(vk, [35, 105], bad2)

    def test_proofs_are_randomised_but_both_verify(self):
        system, witness = _cube_circuit(35, 105, 3)
        pk, vk = groth16_setup(system)
        p1 = groth16_prove(pk, witness)
        p2 = groth16_prove(pk, witness)
        assert p1.a != p2.a  # fresh r, s
        assert groth16_verify(vk, [35, 105], p1)
        assert groth16_verify(vk, [35, 105], p2)

    def test_proof_size_constant(self):
        system, witness = _cube_circuit(35, 105, 3)
        pk, _ = groth16_setup(system)
        assert groth16_prove(pk, witness).size_bytes == 256

    def test_op_counts_grow_with_public_inputs(self):
        ops_small = verification_group_operations(2)
        ops_big = verification_group_operations(100)
        assert ops_small["pairings"] == ops_big["pairings"] == 3
        assert ops_big["g1_scalar_mults"] > ops_small["g1_scalar_mults"]
