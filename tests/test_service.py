"""Tests for the marketplace service plane.

Fast, unmarked tests cover the queue's admission/fairness semantics and
the chain-side batch entry points (batched verification, batched
settlement, poisoned-member isolation).  The node-pipeline tests drive
real exchanges end to end through the asyncio node with seller-attached
pi_k bundles (proofs are produced once per module — the node's job here
is serving, not proving).  The ``chaos``-marked class replays the
pipeline under the seeded ``exchange`` fault profile and asserts the
safety envelope: every request terminates in exactly one state, no key
material without payment, and no stranded escrow after aborts.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core.exchange import Seller
from repro.core.tokens import DataAsset
from repro.errors import QueueFullError, ServiceError, SessionError
from repro.faults import FaultPlan
from repro.field.fr import MODULUS as R
from repro.primitives.hashing import field_hash
from repro.service import (
    ExchangeRequest,
    FairQueue,
    MarketplaceNode,
    NegotiationBundle,
    NodeConfig,
)

PRICE = 5000
FUNDS = 10**9


# ---------------------------------------------------------------------------
# FairQueue: admission control and round-robin fairness
# ---------------------------------------------------------------------------


class TestFairQueue:
    def test_global_bound_rejects(self):
        q = FairQueue(maxsize=2)
        q.put_nowait("a", 1)
        q.put_nowait("b", 2)
        with pytest.raises(QueueFullError):
            q.put_nowait("c", 3)
        assert q.qsize() == 2

    def test_per_tenant_budget_rejects(self):
        q = FairQueue(maxsize=10, per_tenant=2)
        q.put_nowait("a", 1)
        q.put_nowait("a", 2)
        with pytest.raises(QueueFullError):
            q.put_nowait("a", 3)
        # Other tenants are unaffected by tenant a's exhausted budget.
        q.put_nowait("b", 4)
        assert q.qsize() == 3

    def test_round_robin_interleaves_tenants(self):
        q = FairQueue(maxsize=16)
        for i in range(4):
            q.put_nowait("big", "big-%d" % i)
        for i in range(2):
            q.put_nowait("small", "small-%d" % i)

        async def drain():
            return [await q.get() for _ in range(q.qsize())]

        order = asyncio.run(drain())
        tenants = [tenant for tenant, _ in order]
        # The small tenant is served in the first interleavings rather
        # than waiting behind the big tenant's whole backlog.
        assert tenants == ["big", "small", "big", "small", "big", "big"]
        items = [item for tenant, item in order if tenant == "big"]
        assert items == ["big-%d" % i for i in range(4)]  # FIFO per tenant

    @given(
        backlogs=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]),
            st.integers(min_value=1, max_value=24),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_robin_never_lags_fair_share(self, backlogs):
        """After any prefix of k dequeues, a tenant with enough backlog
        has been served at least ``floor(k / tenants)`` times — round
        robin never lets anyone lag the fair share by more than one
        cycle of the ring, no matter the arrival pattern."""
        queue = FairQueue(maxsize=1024)
        for tenant in sorted(backlogs):
            for i in range(backlogs[tenant]):
                queue.put_nowait(tenant, (tenant, i))
        total = sum(backlogs.values())
        tenants = len(backlogs)

        async def drain():
            served = {t: 0 for t in backlogs}
            last_index = {t: -1 for t in backlogs}
            for k in range(1, total + 1):
                tenant, (t2, index) = await queue.get()
                assert tenant == t2
                assert index == last_index[tenant] + 1  # FIFO within a tenant
                last_index[tenant] = index
                served[tenant] += 1
                # Ring cycles only get shorter as tenants drain, so k
                # serves always complete >= k // tenants full cycles,
                # and every cycle serves each still-backlogged tenant.
                fair = k // tenants
                for t in backlogs:
                    assert served[t] >= min(backlogs[t], fair), (
                        "tenant %s lagged fair share after %d serves: %r" % (t, k, served)
                    )
            return served

        assert asyncio.run(drain()) == backlogs

    def test_get_waits_for_put(self):
        q = FairQueue(maxsize=4)

        async def scenario():
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            q.put_nowait("t", "x")
            assert await asyncio.wait_for(getter, timeout=1) == ("t", "x")

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Shared fixtures: one asset, a few seller-proven pi_k bundles
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pik_bundles(snark_ctx):
    """An asset plus three seller-precomputed negotiation bundles."""
    asset = DataAsset.create([42, 84], key=909, nonce=7)
    asset.uri = "service-test://asset"
    seller = Seller(snark_ctx, asset, "offchain-prover")
    bundles = []
    for salt in (11, 22, 33):
        k_v = 10_000 + salt
        h_v = field_hash(k_v)
        k_c, pi_k = seller.key_negotiation_message(k_v, h_v)
        bundles.append(NegotiationBundle(k_v, h_v, k_c, pi_k.to_bytes()))
    return asset, bundles


def _node(snark_ctx, **overrides):
    defaults = dict(
        verify_phase1="skip",
        batch_size=4,
        batch_delay=0.01,
        concurrency=2,
        queue_depth=64,
        per_tenant_depth=None,
    )
    defaults.update(overrides)
    return MarketplaceNode(snark_ctx, NodeConfig(**defaults))


def _requests(session, bundles, count, price=PRICE, tenants=4, **kw):
    return [
        ExchangeRequest(
            session.session_id,
            tenant="tenant-%d" % (i % tenants),
            price=price,
            bundle=bundles[i % len(bundles)],
            **kw,
        )
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Chain-side batch entry points
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestBatchSettlementContracts:
    def _locked(self, snark_ctx, asset, bundles, n):
        """A node plus n locked exchanges (one per bundle, cycling)."""
        node = _node(snark_ctx)
        session = node.open_session(asset, tenant="seller")
        buyer = node.register_account(funded=FUNDS)
        locked = []
        for i in range(n):
            bundle = bundles[i % len(bundles)]
            receipt = node.chain.transact(
                buyer,
                node.arbiter,
                "lock_payment",
                session.seller.address,
                asset.key_commitment.value,
                bundle.verification_hash,
                value=PRICE,
            )
            assert receipt.status
            locked.append((receipt.return_value, bundle))
        return node, session, buyer, locked

    def test_batch_settles_all_valid_members(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles
        node, session, buyer, locked = self._locked(snark_ctx, asset, bundles, 3)
        before = node.chain.balance_of(session.seller.address)
        entries = tuple(
            (eid, b.masked_key, b.proof_bytes) for eid, b in locked
        )
        receipt = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", entries
        )
        assert receipt.status
        assert receipt.return_value == tuple(eid for eid, _ in locked)
        assert node.chain.balance_of(session.seller.address) == before + 3 * PRICE
        for eid, b in locked:
            assert node.chain.call_view(node.arbiter, "masked_key", eid) == b.masked_key

    def test_poisoned_member_does_not_poison_batchmates(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles
        node, session, buyer, locked = self._locked(snark_ctx, asset, bundles, 3)
        before_seller = node.chain.balance_of(session.seller.address)
        before_buyer = node.chain.balance_of(buyer)
        (e0, b0), (e1, b1), (e2, b2) = locked
        entries = (
            (e0, b0.masked_key, b0.proof_bytes),
            # Well-formed proof, wrong public input: fails the fold and
            # the per-proof fallback, but must not drag e0/e2 down.
            (e1, (b1.masked_key + 1) % R, b1.proof_bytes),
            (e2, b2.masked_key, b2.proof_bytes),
        )
        receipt = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", entries
        )
        assert receipt.status
        assert receipt.return_value == (e0, e2)
        assert node.chain.balance_of(session.seller.address) == before_seller + 2 * PRICE
        # The poisoned member's exchange stays open: escrow intact and
        # refundable by its buyer, not stranded.
        assert node.chain.call_view(node.arbiter, "exchange_info", e1) is not None
        refund = node.chain.transact(buyer, node.arbiter, "refund", e1)
        assert refund.status
        assert node.chain.balance_of(buyer) == before_buyer + PRICE

    def test_malformed_proof_reported_false_without_revert(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles
        node, session, buyer, locked = self._locked(snark_ctx, asset, bundles, 2)
        (e0, b0), (e1, _) = locked
        entries = (
            (e0, b0.masked_key, b0.proof_bytes),
            (e1, 123, b"not a proof"),
        )
        receipt = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", entries
        )
        assert receipt.status
        assert receipt.return_value == (e0,)

    def test_duplicate_and_stale_entries_skipped(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles
        node, session, buyer, locked = self._locked(snark_ctx, asset, bundles, 1)
        eid, b = locked[0]
        before = node.chain.balance_of(session.seller.address)
        entry = (eid, b.masked_key, b.proof_bytes)
        receipt = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", (entry, entry)
        )
        assert receipt.status
        assert receipt.return_value == (eid,)  # settled exactly once
        assert node.chain.balance_of(session.seller.address) == before + PRICE
        # Re-submitting after settlement is a no-op, not a revert.
        receipt = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", (entry,)
        )
        assert receipt.status
        assert receipt.return_value == ()

    def test_batch_gas_amortises_the_pairing(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles
        node, session, buyer, locked = self._locked(snark_ctx, asset, bundles, 3)
        single = node.chain.transact(
            session.seller.address,
            node.arbiter,
            "submit_key",
            locked[0][0],
            locked[0][1].masked_key,
            locked[0][1].proof_bytes,
        )
        assert single.status
        rest = tuple((eid, b.masked_key, b.proof_bytes) for eid, b in locked[1:])
        batched = node.chain.transact(
            node.operator, node.arbiter, "submit_key_batch", rest
        )
        assert batched.status and len(batched.return_value) == 2
        assert batched.gas_used // len(rest) < single.gas_used


# ---------------------------------------------------------------------------
# Node pipeline
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestNodePipeline:
    def test_end_to_end_with_bundles(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles

        async def scenario():
            node = _node(snark_ctx)
            session = node.open_session(asset, tenant="seller")
            seller_before = node.chain.balance_of(session.seller.address)
            await node.start()
            try:
                outcomes = await node.serve(_requests(session, bundles, 6))
            finally:
                await node.stop()
            assert all(o.success for o in outcomes)
            assert all(o.plaintext == asset.plaintext for o in outcomes)
            assert {o.exchange_id for o in outcomes} == set(
                o.exchange_id for o in outcomes
            )  # distinct ids
            assert (
                node.chain.balance_of(session.seller.address)
                == seller_before + 6 * PRICE
            )
            # Settlement really was batched: fewer flushes than members.
            assert node.batcher.batches_flushed < 6

        asyncio.run(scenario())

    def test_queue_full_requests_shed_at_the_door(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles

        async def scenario():
            node = _node(snark_ctx, queue_depth=2, concurrency=1)
            session = node.open_session(asset, tenant="seller")
            await node.start()
            try:
                # serve() admits synchronously without yielding to the
                # loop, so exactly queue_depth requests are accepted.
                outcomes = await node.serve(_requests(session, bundles, 5))
            finally:
                await node.stop()
            rejected = [o for o in outcomes if "admission rejected" in o.reason]
            succeeded = [o for o in outcomes if o.success]
            assert len(rejected) == 3
            assert len(succeeded) == 2
            assert all(o.gas_used == 0 for o in rejected)

        asyncio.run(scenario())

    def test_per_tenant_budget_protects_other_tenants(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles

        async def scenario():
            node = _node(snark_ctx, per_tenant_depth=1, concurrency=1)
            session = node.open_session(asset, tenant="seller")
            await node.start()
            try:
                flood = _requests(session, bundles, 3, tenants=1)
                other = _requests(session, bundles, 1, tenants=1)
                for request in other:
                    request.tenant = "polite-tenant"
                outcomes = await node.serve(flood + other)
            finally:
                await node.stop()
            # The flooding tenant loses its overflow; the polite tenant
            # is untouched by the flood.
            assert sum("admission rejected" in o.reason for o in outcomes[:3]) == 2
            assert outcomes[3].success

        asyncio.run(scenario())

    def test_slow_buyer_times_out_without_escrow(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles

        async def scenario():
            node = _node(snark_ctx, request_timeout=0.05)
            session = node.open_session(asset, tenant="seller")
            buyer = node.register_account(funded=FUNDS)
            seller_before = node.chain.balance_of(session.seller.address)
            await node.start()
            try:
                slow = ExchangeRequest(
                    session.session_id,
                    tenant="slow",
                    price=PRICE,
                    bundle=bundles[0],
                    buyer_address=buyer,
                    buyer_delay=0.5,
                )
                fast = _requests(session, bundles, 2)
                outcomes = await node.serve([slow] + fast)
            finally:
                await node.stop()
            assert not outcomes[0].success
            assert "timed out" in outcomes[0].reason
            assert outcomes[0].exchange_id is None  # expired before any lock
            assert node.chain.balance_of(buyer) == FUNDS  # nothing escrowed
            assert all(o.success for o in outcomes[1:])  # node kept serving
            assert (
                node.chain.balance_of(session.seller.address)
                == seller_before + 2 * PRICE
            )

        asyncio.run(scenario())

    def test_unknown_session_rejected(self, snark_ctx, pik_bundles):
        asset, bundles = pik_bundles

        async def scenario():
            node = _node(snark_ctx)
            await node.start()
            try:
                with pytest.raises(SessionError):
                    node.submit(ExchangeRequest(999, tenant="t", price=PRICE))
            finally:
                await node.stop()

        asyncio.run(scenario())

    def test_submit_requires_running_node(self, snark_ctx, pik_bundles):
        asset, _ = pik_bundles

        async def scenario():
            node = _node(snark_ctx)
            session = node.open_session(asset)
            with pytest.raises(ServiceError):
                node.submit(ExchangeRequest(session.session_id, tenant="t", price=1))

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Chaos: the pipeline under the seeded `exchange` fault profile
# ---------------------------------------------------------------------------


@pytest.mark.chaos
@pytest.mark.slow
class TestServiceChaos:
    @pytest.mark.parametrize("offset", (0, 1, 2))
    def test_no_stranded_escrow_under_exchange_profile(
        self, snark_ctx, pik_bundles, chaos_seed, offset
    ):
        asset, bundles = pik_bundles

        async def scenario():
            # concurrency=1 keeps the fault-site visit order sequential.
            node = _node(snark_ctx, concurrency=1, batch_size=3)
            session = node.open_session(asset, tenant="seller")
            seller_addr = session.seller.address
            seller_before = node.chain.balance_of(seller_addr)
            buyers = [node.register_account(funded=FUNDS) for _ in range(9)]
            requests = [
                ExchangeRequest(
                    session.session_id,
                    tenant="tenant-%d" % (i % 3),
                    price=PRICE,
                    bundle=bundles[i % len(bundles)],
                    buyer_address=buyers[i],
                )
                for i in range(9)
            ]
            await node.start()
            try:
                with faults.use_plan(
                    FaultPlan.profile("exchange", seed=chaos_seed + offset)
                ):
                    outcomes = await node.serve(requests)
            finally:
                await node.stop()
            return node, seller_addr, seller_before, buyers, outcomes

        node, seller_addr, seller_before, buyers, outcomes = asyncio.run(scenario())

        successes = 0
        for i, outcome in enumerate(outcomes):
            # Exactly one terminal state per request.
            assert not (outcome.success and outcome.aborted)
            if outcome.success:
                successes += 1
                # Buyer paid exactly the price; key material delivered.
                assert node.chain.balance_of(buyers[i]) == FUNDS - PRICE
                masked = node.chain.call_view(
                    node.arbiter, "masked_key", outcome.exchange_id
                )
                assert masked is not None and masked != asset.key
            else:
                # Safe failure: the buyer lost nothing — any lock that
                # happened was refunded before the outcome was reported.
                assert node.chain.balance_of(buyers[i]) == FUNDS
                if outcome.exchange_id is not None:
                    assert (
                        node.chain.call_view(
                            node.arbiter, "masked_key", outcome.exchange_id
                        )
                        is None
                    )
        # Seller is paid once per delivered key, nothing more.
        assert node.chain.balance_of(seller_addr) == seller_before + successes * PRICE
        # No stranded escrow anywhere: every lock was settled or refunded.
        open_escrows = [
            e
            for e in node.chain.query_events("PaymentLocked")
            if node.chain.call_view(
                node.arbiter, "exchange_info", e.get("exchange_id")
            )
            is not None
        ]
        assert open_escrows == []
