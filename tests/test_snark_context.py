"""Tests for the shared SNARK context and on-chain verifier contract."""

import pytest

from repro.chain import Blockchain
from repro.contracts import PlonkVerifierContract
from repro.errors import SRSError
from repro.core.snark import SnarkContext
from repro.plonk import CircuitBuilder, prove


def _toy_layout(value=3):
    builder = CircuitBuilder()
    x = builder.public_input(value * value)
    w = builder.var(value)
    builder.assert_equal(builder.mul(w, w), x)
    return builder.compile()


class TestSnarkContext:
    def test_keys_are_cached_per_layout(self):
        ctx = SnarkContext.with_fresh_srs(32, tau=777)
        layout, _ = _toy_layout()
        k1 = ctx.keys_for(layout)
        k2 = ctx.keys_for(layout)
        assert k1 is k2
        assert ctx.cached_circuits == 1
        # A different witness, same structure: still one cache entry.
        layout2, _ = _toy_layout(value=5)
        ctx.keys_for(layout2)
        assert ctx.cached_circuits == 1

    def test_oversized_circuit_rejected_with_guidance(self):
        ctx = SnarkContext.with_fresh_srs(16, tau=777)
        builder = CircuitBuilder()
        x = builder.var(1)
        for _ in range(40):
            x = builder.mul(x, x)
        layout, _ = builder.compile()
        with pytest.raises(SRSError, match="larger ceremony"):
            ctx.keys_for(layout)


@pytest.mark.slow
class TestVerifierContract:
    def test_on_chain_verification(self, snark_ctx):
        layout, assignment = _toy_layout()
        keys = snark_ctx.keys_for(layout)
        proof = prove(keys.pk, assignment)

        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        contract = PlonkVerifierContract(keys.vk)
        deploy = chain.deploy(contract, operator)
        assert deploy.gas_used > 1_000_000  # hardcoded vk + pairing lib

        receipt = chain.transact(
            operator, contract, "verify", tuple(assignment.public_inputs), proof.to_bytes()
        )
        assert receipt.status and receipt.return_value is True
        # Verification gas is dominated by the pairing precompile.
        assert receipt.gas_used > 113_000

        bad = chain.transact(operator, contract, "verify", (12345,), proof.to_bytes())
        assert bad.status and bad.return_value is False

        revert = chain.transact(
            operator, contract, "require_valid", (12345,), proof.to_bytes()
        )
        assert not revert.status

        malformed = chain.transact(operator, contract, "verify", (), b"junk")
        assert not malformed.status

        # Free off-chain verification via the view ("unlimited free
        # verifications", Section VI-C2).
        assert chain.call_view(
            contract, "verify_view", tuple(assignment.public_inputs), proof.to_bytes()
        )
        assert chain.call_view(contract, "circuit_size") == keys.vk.n
