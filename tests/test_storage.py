"""Tests for the content-addressed store and the DHT simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.errors import StorageError
from repro.faults import FaultPlan, FaultRule
from repro.storage import ContentStore, DHTNetwork


class TestContentStore:
    def test_put_get_roundtrip(self):
        store = ContentStore()
        uri = store.put(b"hello world")
        assert store.get(uri) == b"hello world"
        assert store.has(uri)

    def test_uri_is_content_commitment(self):
        store = ContentStore()
        assert store.put(b"a") != store.put(b"b")
        assert store.put(b"a") == store.put(b"a")  # dedup by content

    def test_missing_content(self):
        store = ContentStore()
        with pytest.raises(StorageError):
            store.get("deadbeef")
        with pytest.raises(StorageError):
            store.put("not bytes")  # type: ignore[arg-type]

    def test_tampering_detected(self):
        store = ContentStore()
        uri = store.put(b"original")
        store.tamper(uri, b"malicious")
        with pytest.raises(StorageError):
            store.get(uri)
        with pytest.raises(StorageError):
            store.tamper("missing", b"x")

    def test_unpin_semantics(self):
        store = ContentStore()
        uri = store.put(b"shared", owner="alice")
        store.put(b"shared", owner="bob")
        store.unpin(uri, "alice")
        assert store.has(uri)  # bob still pins
        store.unpin(uri, "bob")
        assert not store.has(uri)
        with pytest.raises(StorageError):
            store.unpin(uri, "carol")


class TestDHT:
    def test_put_get_with_replication(self):
        net = DHTNetwork(["n%d" % i for i in range(8)], replication=3)
        uri = net.put(b"payload")
        assert net.get(uri) == b"payload"
        assert net.replica_count(uri) == 3

    def test_lookup_hops_bounded(self):
        net = DHTNetwork(["n%d" % i for i in range(16)], replication=4)
        uri = net.put(b"data")
        _, hops = net.get_with_hops(uri)
        assert 1 <= hops <= 16

    def test_content_survives_node_departure(self):
        net = DHTNetwork(["n%d" % i for i in range(6)], replication=3)
        uri = net.put(b"durable")
        # Remove every original replica holder one at a time.
        holders = [n.name for n in net.nodes.values() if uri in n.blobs]
        for name in holders[:2]:
            net.leave(name)
            assert net.get(uri) == b"durable"
            assert net.replica_count(uri) == 3  # re-replicated

    def test_join_rebalances(self):
        net = DHTNetwork(["a", "b", "c"], replication=2)
        uri = net.put(b"x")
        net.join("d")
        assert net.get(uri) == b"x"
        assert net.replica_count(uri) == 2

    def test_invalid_topologies(self):
        with pytest.raises(StorageError):
            DHTNetwork([])
        with pytest.raises(StorageError):
            DHTNetwork(["a"], replication=0)
        net = DHTNetwork(["a"])
        with pytest.raises(StorageError):
            net.leave("a")
        with pytest.raises(StorageError):
            net.leave("ghost")
        with pytest.raises(StorageError):
            net.join("a")

    def test_missing_content_raises(self):
        net = DHTNetwork(["a", "b"])
        with pytest.raises(StorageError):
            net.get("0" * 64)


class TestDHTChurn:
    """Incremental join/leave against the :meth:`repair` top-k oracle."""

    @given(
        churn=st.lists(st.integers(0, 9), min_size=1, max_size=24),
        blobs=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_faultless_incremental_churn_matches_repair_oracle(self, churn, blobs):
        """After any faultless churn sequence, the incremental placement
        is *exactly* the top-k placement — repair finds nothing to do —
        and every blob keeps its full replica count throughout."""
        net = DHTNetwork(["n%d" % i for i in range(6)], replication=3)
        uris = [net.put(b"blob-%d" % i) for i in range(blobs)]
        joined = 0
        for step, choice in enumerate(churn):
            names = sorted(net.nodes)
            if choice % 2 == 0 or len(names) <= net.replication:
                joined += 1
                net.join("j%d" % joined)
            else:
                net.leave(names[choice % len(names)])
            for uri in uris:
                assert net.replica_count(uri) == 3, "step %d" % step
        assert net.repair() == (0, 0)
        for uri in uris:
            assert net.get(uri) == b"blob-%d" % uris.index(uri)

    def test_repair_heals_replicas_lost_to_faults(self):
        net = DHTNetwork(["n%d" % i for i in range(8)], replication=3)
        uris = [net.put(b"v%d" % i) for i in range(10)]
        # Churn under a fault plan that loses every migration write: each
        # leave sheds one replica of everything the departing node held.
        lossy = FaultPlan(seed=5, rules=(FaultRule("dht.node.put", "loss", faults.PPM),))
        with faults.use_plan(lossy):
            victims = [n.name for n in net.nodes.values() if uris[0] in n.blobs]
            net.leave(victims[0])
        assert net.replica_count(uris[0]) == 2  # under-replicated
        added, removed = net.repair()
        assert added >= 1 and removed == 0
        for uri in uris:
            assert net.replica_count(uri) == 3
        assert net.repair() == (0, 0)  # idempotent once converged

    def test_catalog_preserves_content_identity(self):
        net = DHTNetwork(["a", "b", "c", "d"], replication=2)
        uri = net.put(b"payload")
        net.put(b"payload")  # idempotent: same uri, same placement
        assert net.replica_count(uri) == 2
        assert net.repair() == (0, 0)
