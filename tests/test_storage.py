"""Tests for the content-addressed store and the DHT simulation."""

import pytest

from repro.errors import StorageError
from repro.storage import ContentStore, DHTNetwork


class TestContentStore:
    def test_put_get_roundtrip(self):
        store = ContentStore()
        uri = store.put(b"hello world")
        assert store.get(uri) == b"hello world"
        assert store.has(uri)

    def test_uri_is_content_commitment(self):
        store = ContentStore()
        assert store.put(b"a") != store.put(b"b")
        assert store.put(b"a") == store.put(b"a")  # dedup by content

    def test_missing_content(self):
        store = ContentStore()
        with pytest.raises(StorageError):
            store.get("deadbeef")
        with pytest.raises(StorageError):
            store.put("not bytes")  # type: ignore[arg-type]

    def test_tampering_detected(self):
        store = ContentStore()
        uri = store.put(b"original")
        store.tamper(uri, b"malicious")
        with pytest.raises(StorageError):
            store.get(uri)
        with pytest.raises(StorageError):
            store.tamper("missing", b"x")

    def test_unpin_semantics(self):
        store = ContentStore()
        uri = store.put(b"shared", owner="alice")
        store.put(b"shared", owner="bob")
        store.unpin(uri, "alice")
        assert store.has(uri)  # bob still pins
        store.unpin(uri, "bob")
        assert not store.has(uri)
        with pytest.raises(StorageError):
            store.unpin(uri, "carol")


class TestDHT:
    def test_put_get_with_replication(self):
        net = DHTNetwork(["n%d" % i for i in range(8)], replication=3)
        uri = net.put(b"payload")
        assert net.get(uri) == b"payload"
        assert net.replica_count(uri) == 3

    def test_lookup_hops_bounded(self):
        net = DHTNetwork(["n%d" % i for i in range(16)], replication=4)
        uri = net.put(b"data")
        _, hops = net.get_with_hops(uri)
        assert 1 <= hops <= 16

    def test_content_survives_node_departure(self):
        net = DHTNetwork(["n%d" % i for i in range(6)], replication=3)
        uri = net.put(b"durable")
        # Remove every original replica holder one at a time.
        holders = [n.name for n in net.nodes.values() if uri in n.blobs]
        for name in holders[:2]:
            net.leave(name)
            assert net.get(uri) == b"durable"
            assert net.replica_count(uri) == 3  # re-replicated

    def test_join_rebalances(self):
        net = DHTNetwork(["a", "b", "c"], replication=2)
        uri = net.put(b"x")
        net.join("d")
        assert net.get(uri) == b"x"
        assert net.replica_count(uri) == 2

    def test_invalid_topologies(self):
        with pytest.raises(StorageError):
            DHTNetwork([])
        with pytest.raises(StorageError):
            DHTNetwork(["a"], replication=0)
        net = DHTNetwork(["a"])
        with pytest.raises(StorageError):
            net.leave("a")
        with pytest.raises(StorageError):
            net.leave("ghost")
        with pytest.raises(StorageError):
            net.join("a")

    def test_missing_content_raises(self):
        net = DHTNetwork(["a", "b"])
        with pytest.raises(StorageError):
            net.get("0" * 64)
