"""Tests for the blockchain substrate: gas metering, atomicity, blocks,
the fee-ordered mempool, and parallel block lanes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Blockchain, Contract, Mempool, external, view
from repro.chain.blockchain import encode_calldata
from repro.chain.gas import DEFAULT_SCHEDULE
from repro.errors import ChainError, ContractError, MempoolFullError


class Counter(Contract):
    """Minimal test contract."""

    @external
    def increment(self, by: int = 1) -> int:
        value = (self._sload("count") or 0) + by
        self._sstore("count", value)
        self.emit("Incremented", value=value)
        return value

    @external
    def fail_after_write(self) -> None:
        self._sstore("count", 999)
        self.require(False, "always reverts")

    @external
    def pay_out(self, to: str, amount: int) -> None:
        self.transfer_out(to, amount)

    @view
    def count(self) -> int:
        return self._storage.get("count") or 0


@pytest.fixture
def chain():
    return Blockchain()


@pytest.fixture
def deployed(chain):
    deployer = chain.create_account(funded=10**18)
    contract = Counter()
    chain.deploy(contract, deployer)
    return chain, deployer, contract


class TestAccounts:
    def test_create_and_fund(self, chain):
        a = chain.create_account(funded=100)
        assert chain.balance_of(a) == 100
        chain.faucet(a, 50)
        assert chain.balance_of(a) == 150
        assert chain.balance_of("0xnobody") == 0


class TestDeployment:
    def test_deploy_charges_code_deposit(self, deployed):
        chain, _, contract = deployed
        receipt = chain.receipts[0]
        expected = DEFAULT_SCHEDULE.deployment_cost(Counter().code_size())
        assert receipt.gas_used == expected
        assert receipt.gas_used > 50000
        assert contract.address in chain.contracts

    def test_transact_on_undeployed_contract(self, chain):
        sender = chain.create_account()
        with pytest.raises(ChainError):
            chain.transact(sender, Counter(), "increment")


class TestTransactions:
    def test_basic_call_and_event(self, deployed):
        chain, sender, contract = deployed
        receipt = chain.transact(sender, contract, "increment", 5)
        assert receipt.status
        assert receipt.return_value == 5
        assert chain.call_view(contract, "count") == 5
        events = chain.query_events("Incremented", address=contract, value=5)
        assert len(events) == 1 and events[0].get("value") == 5

    def test_query_events_filters(self, deployed):
        chain, sender, contract = deployed
        for amount in (1, 2, 3):
            chain.transact(sender, contract, "increment", amount)
        # The counter accumulates, so the emitted values are 1, 3, 6.
        assert len(chain.query_events("Incremented")) == 3
        # Exact field match and predicate compose with AND semantics.
        assert [e.get("value") for e in chain.query_events("Incremented", value=3)] == [3]
        big = chain.query_events("Incremented", where=lambda e: e.get("value") > 1)
        assert [e.get("value") for e in big] == [3, 6]
        assert chain.query_events("Incremented", address="0x" + "0" * 40) == []
        assert chain.query_events("NoSuchEvent") == []
        # The one-filter form stays equivalent to the legacy events() API.
        assert chain.query_events("Incremented") == chain.events("Incremented")

    def test_query_events_index_matches_linear_oracle(self, deployed):
        chain, sender, contract = deployed
        # A second deployed contract so address narrowing has real work.
        other = Counter()
        chain.deploy(other, sender)
        for target, amount in ((contract, 1), (other, 2), (contract, 3), (other, 4)):
            chain.transact(sender, target, "increment", amount)
        queries = [
            {},
            {"name": "Incremented"},
            {"name": "NoSuchEvent"},
            {"address": contract},
            {"address": other.address},
            {"name": "Incremented", "address": contract},
            {"name": "Incremented", "value": 4},
            {"name": "Incremented", "where": lambda e: e.get("value") > 2},
            {"address": other, "where": lambda e: e.get("value") % 2 == 0},
            {"address": "0x" + "0" * 40},
        ]
        for kwargs in queries:
            assert chain.query_events(**kwargs) == chain.query_events_linear(**kwargs), kwargs

    def test_gas_components(self, deployed):
        chain, sender, contract = deployed
        receipt = chain.transact(sender, contract, "increment", 5)
        # tx base + calldata + cold sload + sstore set + log
        assert receipt.gas_used > 21000 + 2100 + 20000
        # Second call rewrites a nonzero slot: cheaper.
        receipt2 = chain.transact(sender, contract, "increment", 5)
        assert receipt2.gas_used < receipt.gas_used

    def test_revert_restores_state_atomically(self, deployed):
        chain, sender, contract = deployed
        chain.transact(sender, contract, "increment", 7)
        receipt = chain.transact(sender, contract, "fail_after_write")
        assert not receipt.status
        assert "always reverts" in receipt.error
        assert chain.call_view(contract, "count") == 7
        assert receipt.events == []

    def test_out_of_gas_reverts(self, deployed):
        chain, sender, contract = deployed
        receipt = chain.transact(sender, contract, "increment", 1, gas_limit=21001)
        assert not receipt.status
        assert chain.call_view(contract, "count") == 0

    def test_value_transfer_and_payout(self, deployed):
        chain, sender, contract = deployed
        recipient = chain.create_account()
        chain.transact(sender, contract, "increment", value=500)
        assert chain.balance_of(contract.address) == 500
        chain.transact(sender, contract, "pay_out", recipient, 300)
        assert chain.balance_of(recipient) == 300
        assert chain.balance_of(contract.address) == 200

    def test_value_reverts_with_tx(self, deployed):
        chain, sender, contract = deployed
        before = chain.balance_of(sender)
        receipt = chain.transact(sender, contract, "fail_after_write", value=100)
        assert not receipt.status
        assert chain.balance_of(sender) == before

    def test_view_is_free_and_guarded(self, deployed):
        chain, _, contract = deployed
        before = len(chain.receipts)
        assert chain.call_view(contract, "count") == 0
        assert len(chain.receipts) == before
        with pytest.raises(ChainError):
            chain.call_view(contract, "increment")

    def test_external_requires_transaction(self, deployed):
        _, _, contract = deployed
        with pytest.raises(ContractError):
            contract.increment(1)

    def test_unknown_method_rejected(self, deployed):
        chain, sender, contract = deployed
        with pytest.raises(ChainError):
            chain.transact(sender, contract, "count")  # view, not external
        with pytest.raises(ChainError):
            chain.transact(sender, contract, "missing")


class TestBlocks:
    def test_seal_and_verify(self, deployed):
        chain, sender, contract = deployed
        chain.transact(sender, contract, "increment")
        block = chain.seal_block()
        assert block.number == 1
        assert chain.verify_chain()
        receipt = chain.receipts[-1]
        assert receipt.block_number == 1

    def test_tampering_detected(self, deployed):
        chain, sender, contract = deployed
        chain.transact(sender, contract, "increment")
        chain.seal_block()
        chain.transact(sender, contract, "increment")
        chain.seal_block()
        from repro.chain.blockchain import Block

        chain.blocks[1] = Block(1, "f" * 64, chain.blocks[1].tx_hashes)
        assert not chain.verify_chain()


class TestMempool:
    def test_fee_order_fifo_among_ties(self, deployed):
        chain, sender, contract = deployed
        chain.submit(sender, contract, "increment", 1, fee=5)
        chain.submit(sender, contract, "increment", 2, fee=9)
        chain.submit(sender, contract, "increment", 3, fee=5)
        order = [tx.args[0] for tx in (chain.mempool.pop(), chain.mempool.pop(), chain.mempool.pop())]
        assert order == [2, 1, 3]  # highest fee first, then admission order

    def test_capacity_evicts_cheapest_latest(self, deployed):
        chain, sender, contract = deployed
        pool = chain.mempool
        pool.capacity = 3
        for i, offered in enumerate((4, 2, 7)):
            chain.submit(sender, contract, "increment", i, fee=offered)
        # Below/at the floor: rejected, nothing evicted.
        with pytest.raises(MempoolFullError):
            chain.submit(sender, contract, "increment", 99, fee=2)
        assert pool.rejected == 1 and len(pool) == 3
        # Beats the floor: the cheapest resident (fee 2) is evicted.
        chain.submit(sender, contract, "increment", 3, fee=3)
        assert pool.evicted == 1
        assert [tx.args[0] for tx in pool.drain_order()] == [2, 0, 3]
        assert [tx.args[0] for tx in pool.drain_evicted()] == [1]

    def test_eviction_tie_breaks_against_latest_arrival(self):
        pool = Mempool(capacity=2)
        first = pool.add("0xa", object(), "m", fee=1)
        second = pool.add("0xb", object(), "m", fee=1)
        pool.add("0xc", object(), "m", fee=2)
        evicted = pool.drain_evicted()
        assert evicted == [second] and pool.fee_floor() == 1
        assert first.seq in [tx.seq for tx in pool.drain_order()]

    def test_undeployed_contract_rejected_at_submit(self, chain):
        sender = chain.create_account()
        with pytest.raises(ChainError):
            chain.submit(sender, Counter(), "increment")

    def test_mine_round_executes_and_seals(self, deployed):
        chain, sender, contract = deployed
        for i in range(5):
            chain.submit(sender, contract, "increment", 1, fee=i)
        round_ = chain.mine_round(max_txs_per_lane=3)
        assert len(round_.executed) == 3 and len(chain.mempool) == 2
        assert chain.call_view(contract, "count") == 3
        assert len(round_.blocks) == 1 and round_.blocks[0].number == 1
        # Held-back transactions keep their priority for the next round.
        round2 = chain.mine_round(max_txs_per_lane=3)
        assert len(round2.executed) == 2 and not chain.mempool
        assert chain.verify_chain()


class TestLanes:
    def test_lanes_shard_sealing_but_share_state(self):
        chain = Blockchain(lanes=4)
        contract = Counter()
        deployer = chain.create_account(funded=10**9)
        chain.deploy(contract, deployer)
        senders = [chain.create_account(funded=10**9) for _ in range(8)]
        assert {chain.lane_of(s) for s in senders} > {0}  # really sharded
        for sender in senders:
            chain.transact(sender, contract, "increment", 1)
        blocks = chain.seal_round()
        assert sorted({b.lane for b in blocks}) == sorted({chain.lane_of(s) for s in senders} | {chain.lane_of(deployer)})
        assert chain.call_view(contract, "count") == 8  # one world state
        assert chain.verify_chain()
        for receipt in chain.receipts:
            assert receipt.lane == chain.lane_of(receipt.sender)
            assert receipt.block_number is not None

    def test_single_lane_matches_seed_semantics(self, deployed):
        chain, sender, contract = deployed
        assert chain.lanes == 1 and chain.lane_of(sender) == 0
        chain.transact(sender, contract, "increment")
        block = chain.seal_block()
        assert block.lane == 0 and block.number == 1

    def test_per_lane_tampering_detected(self):
        chain = Blockchain(lanes=2)
        contract = Counter()
        deployer = chain.create_account(funded=10**9)
        chain.deploy(contract, deployer)
        chain.transact(deployer, contract, "increment")
        chain.seal_round()
        from repro.chain.blockchain import Block

        victim = next(i for i, b in enumerate(chain.blocks) if b.number == 1)
        bad = chain.blocks[victim]
        chain.blocks[victim] = Block(1, "f" * 64, bad.tx_hashes, bad.lane)
        assert not chain.verify_chain()

    def test_total_balance_tracks_funding(self):
        chain = Blockchain(lanes=3)
        for amount in (5, 10, 20):
            chain.create_account(funded=amount)
        assert chain.total_balance() == 35

    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 7), st.integers(1, 6), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        lanes=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_event_index_matches_linear_oracle_across_lanes(self, plan, lanes):
        """The O(1) EventIndex must agree with the receipt-scan oracle on
        event streams produced by multi-lane, mempool-reordered mining:
        fees shuffle execution order, lanes shuffle sealing order, and
        the two query paths must still agree on every filter."""
        chain = Blockchain(lanes=lanes, mempool_capacity=64)
        contract, other = Counter(), Counter()
        deployer = chain.create_account(funded=10**9)
        chain.deploy(contract, deployer)
        chain.deploy(other, deployer)
        senders = [chain.create_account(funded=10**9) for _ in range(8)]
        for sender_index, offered_fee, use_other in plan:
            target = other if use_other else contract
            chain.submit(senders[sender_index], target, "increment", 1, fee=offered_fee)
            if len(chain.mempool) >= 6:
                chain.mine_round(max_txs_per_lane=2)
        while chain.mempool:
            chain.mine_round(max_txs_per_lane=2)
        queries = [
            {},
            {"name": "Incremented"},
            {"name": "NoSuchEvent"},
            {"address": contract},
            {"address": other},
            {"name": "Incremented", "address": other},
            {"name": "Incremented", "value": 2},
            {"name": "Incremented", "where": lambda e: e.get("value") % 2 == 1},
        ]
        for kwargs in queries:
            assert chain.query_events(**kwargs) == chain.query_events_linear(**kwargs), kwargs
        assert chain.verify_chain()


class TestCalldata:
    def test_encoding_is_deterministic_and_type_aware(self):
        a = encode_calldata("m", (1, "abc", b"\x01", (1, 2), None, True))
        b = encode_calldata("m", (1, "abc", b"\x01", (1, 2), None, True))
        assert a == b
        assert encode_calldata("m", (1,)) != encode_calldata("m", (2,))
        with pytest.raises(ChainError):
            encode_calldata("m", (object(),))

    def test_calldata_cost(self):
        assert DEFAULT_SCHEDULE.calldata_cost(b"\x00\x01") == 4 + 16
