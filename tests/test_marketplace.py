"""Full-system integration test: the ZKDET marketplace end to end.

One comprehensive scenario (marked slow — it generates ~6 real Plonk
proofs): publish -> transform -> sell -> trace, plus failure paths.
"""

import pytest

from repro.errors import ProtocolError
from repro.core.marketplace import ZKDETMarketplace
from repro.core.transformations import Duplication

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def market(snark_ctx):
    return ZKDETMarketplace(snark_ctx)


@pytest.fixture(scope="module")
def alice(market):
    return market.register_participant()


@pytest.fixture(scope="module")
def bob(market):
    return market.register_participant()


@pytest.fixture(scope="module")
def published(market, alice):
    return market.publish_dataset(alice, [1001, 1002])


class TestLifecycle:
    def test_publish_binds_data_to_token(self, market, alice, published):
        assert published.token_id >= 1
        assert market.chain.call_view(market.token, "owner_of", published.token_id) == alice
        uri = market.chain.call_view(market.token, "token_uri", published.token_id)
        assert uri == published.asset.uri
        # The stored blob is the ciphertext, and its URI verifies.
        assert market.fetch_ciphertext(published.token_id) == published.asset.serialized_ciphertext()
        # On-chain commitment matches the asset's.
        assert (
            market.chain.call_view(market.token, "commitment_of", published.token_id)
            == published.asset.data_commitment.value
        )

    def test_duplicate_records_lineage(self, market, alice, published):
        derived, pi_t = market.transform(alice, [published], Duplication())
        assert len(derived) == 1
        replica = derived[0]
        assert replica.asset.plaintext == published.asset.plaintext
        assert replica.asset.key != published.asset.key
        prev = market.chain.call_view(market.token, "prev_ids", replica.token_id)
        assert prev == (published.token_id,)
        graph = market.provenance()
        assert published.token_id in graph.ancestors(replica.token_id)

    def test_sell_transfers_token_and_key_stays_private(
        self, market, alice, bob, published
    ):
        buyer_balance = market.chain.balance_of(bob)
        result = market.sell(alice, published, bob, price=7000)
        assert result.success, result.reason
        assert result.plaintext == [1001, 1002]
        assert market.chain.call_view(market.token, "owner_of", published.token_id) == bob
        assert market.chain.balance_of(bob) < buyer_balance
        # No transaction or storage slot ever held the raw key.
        masked = market.chain.call_view(market.arbiter, "masked_key", result.exchange_id)
        assert masked != published.asset.key

    def test_provenance_after_lifecycle(self, market):
        graph = market.provenance()
        assert graph.is_acyclic()
        assert graph.num_tokens >= 2


class TestFailurePaths:
    def test_transform_requires_sources(self, market, alice):
        with pytest.raises(ProtocolError):
            market.transform(alice, [], Duplication())

    def test_cannot_transform_unowned_token(self, market, alice, bob, published):
        # `published` now belongs to bob (sold above); alice's duplicate
        # must revert on chain.
        with pytest.raises(ProtocolError):
            market.transform(alice, [published], Duplication())

    def test_fetch_unknown_token(self, market):
        with pytest.raises(ProtocolError):
            market.fetch_ciphertext(424242)
