"""Seeded FS-001 violation: back-to-back challenges with no absorb between."""

from repro.plonk.transcript import Transcript


def derive_challenges(commitment: bytes, opening: bytes) -> tuple[int, int]:
    transcript = Transcript(b"fixture")
    transcript.append_bytes(b"commitment", commitment)
    first = transcript.challenge(b"first")
    second = transcript.challenge(b"second")
    transcript.append_bytes(b"opening", opening)
    final = transcript.challenge(b"final")
    return first, second + final
