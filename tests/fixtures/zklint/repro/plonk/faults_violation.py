"""Seeded DET-001 violation: the fault injector imported on the prover path.

A fault plan consulted during proof generation would make the proof
depend on the injection schedule — the fault plane is measurement-layer
machinery and must stay outside the deterministic scope.
"""

from repro import faults


def prove_with_injected_faults(site: str) -> None:
    faults.check(site)
