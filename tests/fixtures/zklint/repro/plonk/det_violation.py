"""Seeded DET-001 violation: entropy from :mod:`random` on the prover path."""

import random


def sample_blinder() -> int:
    return random.randrange(1 << 16)
