"""Seeded FLD-001 violation: arithmetic against an inline literal modulus."""

_R_BITS = 254


def reduce_scalar(value: int) -> int:
    if value.bit_length() <= _R_BITS:
        return value
    return (
        value
        % 21888242871839275222246405745257275088548364400416034343698204186575808495617
    )
