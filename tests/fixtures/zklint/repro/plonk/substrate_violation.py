"""Seeded ENG-001 violation: protocol code importing the packed data plane.

The contiguous scalar representation (cell layout, shared-memory
segments) is engine-internal; a prover module unpacking cells itself
pins the layout across layers and bypasses the ownership rules.
"""

from repro.field.frvec import ScalarVector  # noqa: F401  (seeded violation)
from repro.backend import shm  # noqa: F401  (seeded violation)


def leak_packed_cells(values):
    vec = ScalarVector.from_list(values)
    return shm.pack_points([]) + bytes(vec.data)
