"""Seeded SEC-001 violation: witness material interpolated into an exception."""


def check_witness(witness: int, expected: int) -> None:
    if witness != expected:
        raise ValueError(f"witness mismatch: got {witness}, wanted {expected}")
