"""Seeded ENG-001 violation: a protocol module reaching kernel internals."""

from repro.curve.msm import msm_jacobian


def commit_unrouted(points: list[tuple], scalars: list[int]) -> tuple:
    return msm_jacobian(points, scalars)
