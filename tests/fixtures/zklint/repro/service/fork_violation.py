"""Seeded FORK-001 violation: a thread started before the pool forks."""

import multiprocessing
import threading


class WarmPool:
    def __init__(self, workers: int) -> None:
        self._heartbeat = threading.Thread(target=lambda: None, daemon=True)
        self._heartbeat.start()
        # Fork children inherit the heartbeat thread's locks mid-flight.
        self._pool = multiprocessing.get_context("fork").Pool(workers)
