"""Seeded ASYNC-001 violation: a blocking sleep inside a coroutine."""

import time


class Node:
    async def settle(self, delay: float) -> None:
        # Blocks the whole event loop; every other session stalls.
        time.sleep(delay)
