"""Seeded ASYNC-002 violation: awaiting while holding a sync lock."""

import asyncio
import threading


class Batcher:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    async def flush(self) -> None:
        with self._lock:
            # Suspends while the thread lock is held: any other thread
            # (or loop callback) touching the lock deadlocks the loop.
            await asyncio.sleep(0)
