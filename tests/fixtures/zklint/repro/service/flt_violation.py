"""Seeded FLT-002 violation: a naked fault-site call on a driver path."""


class Settler:
    def __init__(self, chain: object, arbiter: object, operator: str) -> None:
        self.chain = chain
        self.arbiter = arbiter
        self.operator = operator

    def settle(self, exchange_id: int, k_c: int, proof: bytes) -> object:
        # chain.transact is a registered fault site: unwrapped, a
        # mid-exchange failure here strands the buyer's escrow.
        return self.chain.transact(
            self.arbiter, "submit_key", self.operator, exchange_id, k_c, proof
        )
