"""Seeded ENG-001 violation: a kernel wrapper that counts but never times."""

from repro import telemetry as _tel


class HalfAccountedEngine:
    def ntt(self, coeffs: list[int], n: int) -> list[int]:
        # Counter present, but no telemetry.kernel_timer: the duration
        # half of the count-and-time contract is missing.
        _tel.counter("engine.ntt.calls", kind="fft").inc()
        return list(coeffs)
