"""Seeded RES-001 violation: a segment acquired with no release path."""

from repro.backend import shm as _shm


def scratch_sum(payload: bytes) -> int:
    seg = _shm.create_segment(len(payload))
    seg.buf[: len(payload)] = payload
    # No try/finally and no release: any exception above — or the normal
    # return below — strands the kernel-backed segment until reboot.
    return sum(seg.buf)
