"""The compute-backend layer: engine selection, caches, and equivalence.

The contract under test is the one the protocol layers rely on:

- backend selection (env var, registry, programmatic override) is explicit
  and fails loudly on unknown names;
- ``ParallelEngine`` is bit-identical to ``SerialEngine`` on every kernel
  (NTT batches, G1/G2 MSM, batched inversion, KZG commitments) and on a
  full Plonk proof;
- kernel edge cases: ``batch_inverse`` error contracts, ``root_of_unity``
  bounds, MSM length mismatches, fixed-base multiples of the generators.

The parallel engine under test forces the pool paths with thresholds of 1
so the multiprocessing code runs even for tiny inputs (the container may
have a single CPU; ``workers=2`` still exercises chunking and reassembly).
"""

import random

import pytest

from repro.errors import BackendError, CurveError, FieldError
from repro.backend import (
    ParallelEngine,
    SerialEngine,
    engine_from_env,
    get_engine,
    set_engine,
    use_engine,
)
from repro.curve.fq import fq2_batch_inverse, fq_batch_inverse
from repro.curve.g1 import G1, jac_mul, jac_to_affine
from repro.curve.g2 import G2
from repro.curve.msm import msm_g1, msm_g2
from repro.field.fr import MODULUS as R, batch_inverse, inv, root_of_unity
from repro.field.ntt import COSET_SHIFT, Domain
from repro.kzg.commit import commit
from repro.kzg.srs import SRS


@pytest.fixture(scope="module")
def parallel_engine():
    """A ParallelEngine with every pool threshold forced to 1."""
    engine = ParallelEngine(
        workers=2,
        min_msm_points=1,
        min_ntt_jobs=1,
        min_ntt_size=1,
        min_inverse_size=1,
    )
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def small_srs():
    return SRS.generate(300, tau=0xFEED)


class TestSelection:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        engine = engine_from_env()
        assert isinstance(engine, SerialEngine)
        assert engine.name == "serial"

    def test_env_selects_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        engine = engine_from_env()
        assert isinstance(engine, ParallelEngine)
        engine.close()

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  Serial ")
        assert isinstance(engine_from_env(), SerialEngine)

    def test_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(BackendError):
            engine_from_env()

    def test_get_engine_is_singleton(self):
        previous = set_engine(None)  # reset the process-wide default
        try:
            assert get_engine() is get_engine()
        finally:
            set_engine(previous)

    def test_set_engine_returns_previous(self):
        mine = SerialEngine()
        previous = set_engine(mine)
        try:
            assert get_engine() is mine
        finally:
            set_engine(previous)

    def test_use_engine_restores(self):
        outer = get_engine()
        mine = SerialEngine()
        with use_engine(mine):
            assert get_engine() is mine
        assert get_engine() is outer

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        engine = ParallelEngine()
        assert engine.workers == 3
        engine.close()


class TestEngineEquivalence:
    """ParallelEngine must be bit-identical to SerialEngine."""

    def test_ntt_batch(self, parallel_engine):
        rng = random.Random(1)
        serial = SerialEngine()
        jobs = []
        for n in (4, 16, 64, 256):
            jobs.append(("fft", n, [rng.randrange(R) for _ in range(n)], 0))
            jobs.append(("ifft", n, [rng.randrange(R) for _ in range(n)], 0))
            jobs.append(
                ("coset_fft", n, [rng.randrange(R) for _ in range(n)], COSET_SHIFT)
            )
            jobs.append(
                ("coset_ifft", n, [rng.randrange(R) for _ in range(n)], COSET_SHIFT)
            )
        assert parallel_engine.ntt_batch(jobs) == serial.ntt_batch(jobs)

    def test_msm_g1_matches_serial_and_naive(self, parallel_engine):
        rng = random.Random(2)
        serial = SerialEngine()
        for n in (1, 2, 5, 37, 200):
            points = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
            scalars = [
                rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)
            ]
            expected = G1.identity()
            for p, s in zip(points, scalars):
                expected = expected + p * s
            got_serial = serial.msm_g1(points, scalars)
            got_parallel = parallel_engine.msm_g1(points, scalars)
            assert got_serial == expected
            assert got_parallel == expected
            assert got_parallel.to_bytes() == got_serial.to_bytes()

    def test_msm_g2_matches_serial_and_naive(self, parallel_engine):
        rng = random.Random(3)
        serial = SerialEngine()
        for n in (1, 3, 11):
            points = [G2.generator() * rng.randrange(1, R) for _ in range(n)]
            scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
            expected = G2.identity()
            for p, s in zip(points, scalars):
                expected = expected + p * s
            assert serial.msm_g2(points, scalars) == expected
            assert parallel_engine.msm_g2(points, scalars) == expected

    def test_batch_inverse(self, parallel_engine):
        rng = random.Random(4)
        values = [rng.randrange(1, R) for _ in range(513)]
        serial = SerialEngine().batch_inverse(values)
        parallel = parallel_engine.batch_inverse(values)
        assert serial == parallel
        for v, v_inv in zip(values, serial):
            assert v * v_inv % R == 1

    def test_commitments(self, parallel_engine, small_srs):
        rng = random.Random(5)
        serial = SerialEngine()
        coeffs = [rng.randrange(R) for _ in range(200)]
        c_serial = commit(small_srs, coeffs, engine=serial)
        c_parallel = commit(small_srs, coeffs, engine=parallel_engine)
        assert c_serial == c_parallel
        assert c_serial.to_bytes() == c_parallel.to_bytes()

    def test_plonk_proof_bit_identical(self, parallel_engine, small_srs):
        from repro.plonk.circuit import CircuitBuilder
        from repro.plonk.keys import setup
        from repro.plonk.prover import prove
        from repro.plonk.verifier import verify

        builder = CircuitBuilder()
        a = builder.public_input(25)
        w = builder.var(5)
        builder.assert_equal(builder.mul(w, w), a)
        layout, assignment = builder.compile()

        serial = SerialEngine()
        pk_s, vk_s = setup(small_srs, layout, engine=serial)
        pk_p, vk_p = setup(small_srs, layout, engine=parallel_engine)
        assert vk_s.digest() == vk_p.digest()

        # blinding=False makes the prover deterministic, so the proofs of
        # the two engines must agree byte for byte.
        proof_s = prove(pk_s, assignment, blinding=False, engine=serial)
        proof_p = prove(pk_p, assignment, blinding=False, engine=parallel_engine)
        assert proof_s == proof_p
        assert verify(vk_s, assignment.public_inputs, proof_p, engine=serial)

    def test_fixed_base_mul(self, parallel_engine):
        rng = random.Random(6)
        serial = SerialEngine()
        g1, g2 = G1.generator(), G2.generator()
        for k in (0, 1, 2, R - 1, R, rng.randrange(R)):
            assert serial.fixed_base_mul(g1, k) == g1 * k
            assert parallel_engine.fixed_base_mul(g1, k) == g1 * k
            assert serial.fixed_base_mul(g2, k) == g2 * k


class TestEngineCaches:
    def test_coset_eval_cache_hits(self, small_srs):
        engine = SerialEngine()
        owner = object()
        coeffs = [3, 1, 4, 1]
        first = engine.coset_ntt_cached(owner, "q", coeffs, 8)
        second = engine.coset_ntt_cached(owner, "q", coeffs, 8)
        assert first is second  # cache hit returns the same list
        other = engine.coset_ntt_cached(object(), "q", coeffs, 8)
        assert other is not first and other == first

    def test_srs_jacobian_cached_per_srs(self, small_srs):
        engine = SerialEngine()
        first = engine.srs_g1_jacobian(small_srs)
        assert engine.srs_g1_jacobian(small_srs) is first
        assert len(first) == len(small_srs.g1_powers)
        assert jac_to_affine(first[0]) == (small_srs.g1_powers[0].x, small_srs.g1_powers[0].y)


class TestKernelEdgeCases:
    def test_batch_inverse_empty(self, parallel_engine):
        assert batch_inverse([]) == []
        assert SerialEngine().batch_inverse([]) == []
        assert parallel_engine.batch_inverse([]) == []

    def test_batch_inverse_zero_raises_with_index(self, parallel_engine):
        values = [5, 7, 0, 11]
        with pytest.raises(FieldError, match="index 2"):
            batch_inverse(values)
        with pytest.raises(FieldError, match="index 2"):
            SerialEngine().batch_inverse(values)
        # The parallel engine must report the *global* index even when the
        # zero lands in a later chunk.
        with pytest.raises(FieldError, match="index 2"):
            parallel_engine.batch_inverse(values)
        tail_zero = [3] * 100 + [0]
        with pytest.raises(FieldError, match="index 100"):
            parallel_engine.batch_inverse(tail_zero)

    def test_fq_batch_inverse_edge_cases(self):
        assert fq_batch_inverse([]) == []
        with pytest.raises(FieldError, match="index 1"):
            fq_batch_inverse([3, 0])
        with pytest.raises(FieldError, match="index 0"):
            fq2_batch_inverse([(0, 0), (1, 2)])

    def test_root_of_unity_bounds(self):
        with pytest.raises(FieldError):
            root_of_unity(0)
        with pytest.raises(FieldError):
            root_of_unity(3)  # not a power of two
        with pytest.raises(FieldError):
            root_of_unity(-8)
        with pytest.raises(FieldError):
            root_of_unity(2**29)  # exceeds the 2-adicity of r - 1
        for order in (1, 2, 8, 2**28):
            w = root_of_unity(order)
            assert pow(w, order, R) == 1
            if order > 1:
                assert pow(w, order // 2, R) != 1

    def test_msm_length_mismatch(self):
        g = G1.generator()
        with pytest.raises(CurveError):
            msm_g1([g, g], [1])
        with pytest.raises(CurveError):
            msm_g2([G2.generator()], [1, 2])

    def test_msm_degenerate_inputs(self):
        g = G1.generator()
        assert msm_g1([], []) == G1.identity()
        assert msm_g1([g, -g], [4, 4]) == G1.identity()
        assert msm_g1([g, G1.identity()], [3, 9]) == g * 3
        # scalars outside [0, r) reduce canonically
        assert msm_g1([g], [R + 2]) == g * 2
        # many copies of one point pile into a single bucket (exercises the
        # batch-affine reduction's doubling branch)
        assert msm_g1([g] * 33, [5] * 33) == g * 165

    def test_msm_jacobian_infinity_result(self):
        p = jac_mul((1, 2, 1), 12345)
        aff = jac_to_affine(p)
        from repro.curve.fq import Q
        neg = (aff[0], Q - aff[1], 1)
        from repro.curve.msm import msm_jacobian
        out = msm_jacobian([p, neg], [9, 9])
        assert out[2] == 0

    def test_domain_elements_cached_and_consistent(self):
        d = Domain.get(8)
        first = d.elements
        assert d.elements is first
        assert first[0] == 1
        assert len(first) == 8
        acc = 1
        for i, e in enumerate(first):
            assert e == acc
            acc = acc * d.omega % R


class TestParallelThresholds:
    def test_below_threshold_stays_serial(self):
        """Small inputs must not pay pool overhead (and still be correct)."""
        engine = ParallelEngine(workers=2)  # default thresholds
        try:
            g = G1.generator()
            assert engine.msm_g1([g, g], [2, 3]) == g * 5
            assert engine.batch_inverse([4]) == [inv(4)]
            jobs = [("fft", 4, [1, 2, 3, 4], 0)]
            assert engine.ntt_batch(jobs) == SerialEngine().ntt_batch(jobs)
        finally:
            engine.close()

    def test_close_is_idempotent(self):
        engine = ParallelEngine(workers=2, min_msm_points=1)
        g = G1.generator()
        engine.msm_g1([g] * 4, [1, 2, 3, 4])  # spin the pool up
        engine.close()
        engine.close()

    def test_repr_names_backend(self, parallel_engine):
        assert "parallel" in repr(parallel_engine)
        assert "serial" in repr(SerialEngine())
