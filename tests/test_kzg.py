"""Tests for the powers-of-tau SRS, ceremony, and KZG commitments."""

import pytest

from repro.curve import G1
from repro.errors import SRSError
from repro.field.fr import MODULUS as R
from repro.kzg import SRS, Ceremony, commit, open_at, verify_opening


@pytest.fixture(scope="module")
def srs():
    return SRS.generate(16, tau=123456789)


class TestSRS:
    def test_generate_shape(self, srs):
        assert srs.max_degree == 16
        assert len(srs.g1_powers) == 17
        assert srs.g1_powers[0] == G1.generator()

    def test_powers_are_consistent(self, srs):
        tau = 123456789
        assert srs.g1_powers[3] == G1.generator() * pow(tau, 3, R)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SRSError):
            SRS.generate(0)
        with pytest.raises(SRSError):
            SRS.generate(4, tau=0)

    def test_truncate(self, srs):
        small = srs.truncate(4)
        assert small.max_degree == 4
        assert small.g1_powers == srs.g1_powers[:5]
        with pytest.raises(SRSError):
            srs.truncate(100)

    @pytest.mark.slow
    def test_well_formedness_pairing_check(self, srs):
        assert srs.is_well_formed(check_powers=2)
        bad = SRS((G1.generator(), G1.generator() * 5, G1.generator() * 7), srs.g2, srs.g2_tau)
        assert not bad.is_well_formed(check_powers=2)


@pytest.mark.slow
class TestCeremony:
    def test_multi_party_ceremony(self):
        ceremony = Ceremony.bootstrap(4)
        ceremony.contribute(rho=111)
        ceremony.contribute(rho=222)
        assert len(ceremony.transcript) == 2
        assert ceremony.verify_transcript()
        # Final tau is the product of contributions.
        assert ceremony.srs.g1_powers[1] == G1.generator() * (111 * 222)

    def test_tampered_transcript_rejected(self):
        ceremony = Ceremony.bootstrap(4)
        ceremony.contribute(rho=111)
        forged = ceremony.transcript[0].__class__(
            rho_g1=G1.generator() * 999,
            rho_g2=ceremony.transcript[0].rho_g2,
            after_tau_g1=ceremony.transcript[0].after_tau_g1,
        )
        ceremony.transcript[0] = forged
        assert not ceremony.verify_transcript()

    def test_swapped_srs_rejected(self):
        ceremony = Ceremony.bootstrap(4)
        ceremony.contribute(rho=111)
        ceremony.srs = SRS.generate(4, tau=777)
        assert not ceremony.verify_transcript()


class TestKZG:
    def test_commit_rejects_oversized(self, srs):
        with pytest.raises(SRSError):
            commit(srs, [1] * 20)

    def test_commit_is_homomorphic(self, srs):
        p = [1, 2, 3]
        q = [5, 0, 7, 9]
        cp, cq = commit(srs, p), commit(srs, q)
        from repro.field import poly

        assert commit(srs, poly.add(p, q)) == cp + cq

    @pytest.mark.slow
    def test_open_and_verify(self, srs):
        coeffs = [3, 1, 4, 1, 5, 9, 2, 6]
        c = commit(srs, coeffs)
        value, proof = open_at(srs, coeffs, 42)
        assert verify_opening(srs, c, 42, value, proof)

    @pytest.mark.slow
    def test_verify_rejects_wrong_value(self, srs):
        coeffs = [3, 1, 4, 1, 5]
        c = commit(srs, coeffs)
        value, proof = open_at(srs, coeffs, 7)
        assert not verify_opening(srs, c, 7, value + 1, proof)
        assert not verify_opening(srs, c, 8, value, proof)
        assert not verify_opening(srs, c + G1.generator(), 7, value, proof)
