"""System-level suite for the population-scale load simulator.

Tier-1 runs the small, fast configurations: every traffic mix completes
cleanly, replays are bit-identical from (seed, mix, profile), faults are
absorbed without conservation drift, and the invariant checker actually
fires when the ledger is tampered with (a checker that cannot fail is
not a check).  The ``soak`` marker gates the 10^4-user configuration CI
runs out-of-band; ``-m soak`` selects it and the ``soak_params`` fixture
steers (seed, mix, profile) through the environment so a red run prints
a one-command replay line.
"""

import pytest

from repro.loadsim import (
    MIXES,
    LoadSimulator,
    SimConfig,
    TrafficMix,
    run_sim,
    sim_draw,
    skewed_draw,
)

#: Small-but-real: enough operations that every op kind, the mempool
#: backpressure path, churn, and multi-lane sealing all actually fire.
_SMOKE = dict(users=200, ops=400, lanes=2, dht_nodes=8, churn_every=100, ops_per_round=48)


class TestTrafficMix:
    def test_presets_are_normalised_and_named(self):
        for name, mix in MIXES.items():
            assert mix.name == name
            assert mix.mint + mix.trade + mix.audit > 0
        assert TrafficMix.parse("trade_heavy") is MIXES["trade_heavy"]

    def test_custom_spec_round_trips(self):
        mix = TrafficMix.parse("mint=5,trade=0,audit=1")
        assert (mix.mint, mix.trade, mix.audit) == (5, 0, 1)
        assert TrafficMix.parse(mix.spec()).spec() == mix.spec()

    def test_bad_specs_rejected(self):
        for bad in ("nope", "mint=0,trade=0,audit=0", "mint=0,trade=5,audit=0", "mint=x"):
            with pytest.raises(Exception):
                TrafficMix.parse(bad)

    def test_draw_op_is_seed_deterministic_and_mix_faithful(self):
        mix = MIXES["mint_heavy"]
        ops = [mix.draw_op(99, i) for i in range(3000)]
        assert ops == [mix.draw_op(99, i) for i in range(3000)]
        counts = {kind: ops.count(kind) for kind in ("mint", "trade", "audit")}
        # 6:3:1 weights — generous tolerance, zero flake (fixed seed).
        assert counts["mint"] > counts["trade"] > counts["audit"] > 0

    def test_draws_are_integer_and_bounded(self):
        for i in range(200):
            value = sim_draw(7, "t", i, 10)
            assert isinstance(value, int) and 0 <= value < 10
            skew = skewed_draw(7, "s", i, 1000)
            assert isinstance(skew, int) and 0 <= skew < 1000


class TestSimulation:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_every_mix_completes_cleanly(self, mix):
        report = run_sim(mix=mix, **_SMOKE)
        assert report.violations == []
        assert report.mined > 0 and report.blocks > 0
        assert report.digest and len(report.digest) == 64
        if MIXES[mix].audit:
            assert report.audits > 0

    def test_replay_is_bit_identical(self):
        first = run_sim(seed=31337, **_SMOKE)
        second = run_sim(seed=31337, **_SMOKE)
        assert first.digest == second.digest
        assert first.mined == second.mined
        assert first.trades_completed == second.trades_completed
        # A different seed must actually steer the run somewhere else.
        assert run_sim(seed=31338, **_SMOKE).digest != first.digest

    def test_faults_absorbed_without_conservation_drift(self):
        report = run_sim(fault_profile="soak", seed=4242, **_SMOKE)
        assert report.violations == []
        assert report.faults_injected > 0
        # The fault plane must not invent or destroy funds.
        assert report.dropped + report.reverted >= 0
        # Replays under faults are deterministic too.
        again = run_sim(fault_profile="soak", seed=4242, **_SMOKE)
        assert again.digest == report.digest

    def test_lane_count_changes_sealing_not_semantics(self):
        narrow = run_sim(seed=777, **{**_SMOKE, "lanes": 1})
        wide = run_sim(seed=777, **{**_SMOKE, "lanes": 4})
        assert narrow.violations == [] and wide.violations == []
        # Same op stream and mining cadence; more lanes seal more blocks.
        assert narrow.rounds == wide.rounds
        assert wide.blocks > narrow.blocks

    def test_report_artifact_schema(self):
        report = run_sim(users=50, ops=60, lanes=2, dht_nodes=6, churn_every=0)
        payload = report.to_dict()
        assert payload["schema"] == "repro.loadsim.report/1"
        for column in ("tx_per_sec", "audit_p50_us", "audit_p99_us", "digest",
                       "fault_profile", "fault_seed", "violations"):
            assert column in payload
        assert payload["violations"] == []

    def test_mempool_backpressure_sheds_or_defers_not_corrupts(self):
        report = run_sim(seed=11, mempool_capacity=24, ops_per_round=200,
                         **{k: v for k, v in _SMOKE.items() if k != "ops_per_round"})
        assert report.violations == []
        # A 24-slot pool under 200-op bursts must exercise eviction.
        assert report.mempool_evicted + report.mempool_rejected + report.shed > 0


class TestInvariantChecker:
    """The checker must catch real corruption, not just bless clean runs."""

    def _finished_sim(self):
        sim = LoadSimulator(SimConfig(users=60, ops=80, lanes=2, dht_nodes=6,
                                      churn_every=0, ops_per_round=32))
        report = sim.run()
        assert report.violations == []
        return sim

    def test_detects_minted_funds(self):
        sim = self._finished_sim()
        victim = sim.population.account(0)
        sim.chain._balances[victim] += 12345  # counterfeit money
        sim.checker.check_round()
        assert any("conservation" in v for v in sim.checker.violations)

    def test_detects_destroyed_funds(self):
        sim = self._finished_sim()
        victim = sim.population.account(0)
        sim.chain._balances[victim] -= 1
        sim.checker.check_round()
        assert sim.checker.violations

    def test_detects_stolen_token(self):
        sim = self._finished_sim()
        if not sim._tokens:
            pytest.skip("run minted no tokens")
        token_id = sorted(sim._tokens)[0]
        thief = sim.population.account(1)
        sim.token._storage[("owner", token_id)] = thief
        sim.checker.check_final()
        assert any("owner" in v for v in sim.checker.violations)


@pytest.mark.soak
class TestSoak:
    """The 10^4-user acceptance configuration (CI's soak job).

    Deselected from tier-1 by addopts; run with ``-m soak``.  The
    environment steers the (seed, mix, profile) triple via the
    ``soak_params`` fixture, and a failure prints the replay command.
    """

    def test_population_scale_soak(self, soak_params):
        report = run_sim(
            users=10_000,
            ops=4_000,
            mix=soak_params["mix"],
            seed=soak_params["seed"],
            fault_profile=soak_params["profile"],
            lanes=4,
        )
        assert report.violations == [], report.violations[:10]
        assert report.mined > 1_000
        assert report.trades_completed > 0
        assert report.audit_p99_us >= report.audit_p50_us > 0

    def test_soak_replay_digest_stable(self, soak_params):
        small = dict(users=10_000, ops=1_000, mix=soak_params["mix"],
                     seed=soak_params["seed"], fault_profile=soak_params["profile"],
                     lanes=4)
        assert run_sim(**small).digest == run_sim(**small).digest
