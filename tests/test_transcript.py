"""Runtime tests for the Fiat-Shamir transcript.

The static rule FS-001 checks the absorb/squeeze *schedule*; these tests
check the *values*: domain tags, labels, absorbed data and absorption
order must all change the derived challenges, and the verifier's replay
must reproduce the prover's challenge sequence bit for bit.
"""

import pytest

from repro.field.fr import MODULUS as R
from repro.kzg import SRS
from repro.plonk import CircuitBuilder, prove, setup, verify
from repro.plonk.transcript import Transcript


def _challenge_after(domain_tag, events, label=b"chal"):
    t = Transcript(domain_tag)
    for event_label, data in events:
        t.append_bytes(event_label, data)
    return t.challenge(label)


class TestChallengeSeparation:
    def test_challenges_are_field_elements(self):
        value = _challenge_after(b"tag", [(b"m", b"data")])
        assert 0 <= value < R

    def test_domain_tag_separates(self):
        events = [(b"m", b"data")]
        assert _challenge_after(b"plonk", events) != _challenge_after(b"kzg", events)

    def test_challenge_label_separates(self):
        t1 = Transcript(b"tag")
        t2 = Transcript(b"tag")
        t1.append_bytes(b"m", b"data")
        t2.append_bytes(b"m", b"data")
        assert t1.challenge(b"beta") != t2.challenge(b"gamma")

    def test_absorb_label_separates(self):
        assert _challenge_after(b"tag", [(b"a", b"data")]) != _challenge_after(
            b"tag", [(b"b", b"data")]
        )

    def test_absorbed_value_separates(self):
        assert _challenge_after(b"tag", [(b"m", b"x")]) != _challenge_after(
            b"tag", [(b"m", b"y")]
        )

    def test_absorb_order_separates(self):
        forward = [(b"m1", b"first"), (b"m2", b"second")]
        swapped = [(b"m2", b"second"), (b"m1", b"first")]
        assert _challenge_after(b"tag", forward) != _challenge_after(b"tag", swapped)

    def test_label_data_split_is_unambiguous(self):
        # The length-prefixed label means (label, data) pairs that
        # concatenate identically still hash differently.
        assert _challenge_after(b"tag", [(b"ab", b"c")]) != _challenge_after(
            b"tag", [(b"a", b"bc")]
        )

    def test_consecutive_challenges_differ_and_fold_state(self):
        t = Transcript(b"tag")
        t.append_bytes(b"m", b"data")
        first = t.challenge(b"x")
        second = t.challenge(b"x")
        # Same label, but the first squeeze folded back into the state.
        assert first != second

    def test_scalar_and_point_absorption(self):
        from repro.curve.g1 import G1

        t1 = Transcript(b"tag")
        t2 = Transcript(b"tag")
        t1.append_scalar(b"s", 5)
        t2.append_scalar(b"s", 6)
        assert t1.challenge(b"c") != t2.challenge(b"c")
        t3 = Transcript(b"tag")
        t4 = Transcript(b"tag")
        t3.append_point(b"p", G1.generator())
        t4.append_point(b"p", G1.generator() * 2)
        assert t3.challenge(b"c") != t4.challenge(b"c")

    def test_deterministic_replay(self):
        seq1 = []
        seq2 = []
        for out in (seq1, seq2):
            t = Transcript(b"tag")
            t.append_scalar(b"m", 123)
            out.append(t.challenge(b"a"))
            t.append_scalar(b"n", 456)
            out.append(t.challenge(b"b"))
        assert seq1 == seq2


class TestProverVerifierReplay:
    @pytest.fixture(scope="class")
    def srs(self):
        return SRS.generate(64, tau=987654321)

    def _circuit(self):
        builder = CircuitBuilder()
        x = builder.public_input(9)
        w = builder.var(3)
        builder.assert_equal(builder.mul(w, w), x)
        return builder.compile()

    def test_verifier_reproduces_prover_challenges_bitwise(self, srs, monkeypatch):
        records = []
        original = Transcript.challenge

        def recording(self, label):
            value = original(self, label)
            records.append((label, value))
            return value

        monkeypatch.setattr(Transcript, "challenge", recording)

        layout, assignment = self._circuit()
        pk, vk = setup(srs, layout)
        records.clear()
        proof = prove(pk, assignment)
        prover_sequence = list(records)
        records.clear()
        assert verify(vk, [9], proof)
        verifier_sequence = list(records)

        labels = [label for label, _ in prover_sequence]
        assert labels == [b"beta", b"gamma", b"alpha", b"zeta", b"v", b"u"]
        assert verifier_sequence == prover_sequence

    def test_tampered_proof_diverges_challenges(self, srs, monkeypatch):
        records = []
        original = Transcript.challenge

        def recording(self, label):
            value = original(self, label)
            records.append((label, value))
            return value

        monkeypatch.setattr(Transcript, "challenge", recording)

        layout, assignment = self._circuit()
        pk, vk = setup(srs, layout)
        records.clear()
        proof = prove(pk, assignment)
        prover_sequence = list(records)
        records.clear()
        import dataclasses

        tampered = dataclasses.replace(proof, c_a=proof.c_a * 2)
        assert not verify(vk, [9], tampered)
        # The verifier re-derives beta from the tampered commitment, so
        # the challenge stream diverges immediately.
        assert records and records[0] != prover_sequence[0]
