"""Tests for provenance tracing over the prevIds DAG (chain-only, fast)."""

import pytest

from repro.chain import Blockchain
from repro.contracts import DataTokenContract
from repro.errors import ProtocolError
from repro.core.provenance import ProvenanceGraph


@pytest.fixture
def lineage():
    """Build the Figure-2-style DAG:

        t1 --+                      +--> t5 (partition)
             +--> t3 (aggregation) -+
        t2 --+                      +--> t6 (partition)
        t3 ------> t4 (duplication)
        (t4, ) --> t7 (processing)
    """
    chain = Blockchain()
    alice = chain.create_account(funded=10**9)
    token = DataTokenContract()
    chain.deploy(token, alice)
    t1 = chain.transact(alice, token, "mint", "u1", 11).return_value
    t2 = chain.transact(alice, token, "mint", "u2", 22).return_value
    t3 = chain.transact(alice, token, "aggregate", (t1, t2), "u3", 33, "p3").return_value
    t4 = chain.transact(alice, token, "duplicate", t3, "u4", 44, "p4").return_value
    t5, t6 = chain.transact(
        alice, token, "partition", t3, (("u5", 55), ("u6", 66)), "p5"
    ).return_value
    t7 = chain.transact(alice, token, "process", (t4,), "u7", 77, "p7").return_value
    graph = ProvenanceGraph.from_token_contract(chain, token)
    return graph, (t1, t2, t3, t4, t5, t6, t7)


class TestProvenanceGraph:
    def test_graph_shape(self, lineage):
        graph, ids = lineage
        assert graph.num_tokens == 7
        assert graph.is_acyclic()

    def test_ancestors_and_descendants(self, lineage):
        graph, (t1, t2, t3, t4, t5, t6, t7) = lineage
        assert graph.ancestors(t7) == {t1, t2, t3, t4}
        assert graph.ancestors(t5) == {t1, t2, t3}
        assert graph.descendants(t1) == {t3, t4, t5, t6, t7}
        assert graph.ancestors(t1) == set()

    def test_sources_trace_to_roots(self, lineage):
        graph, (t1, t2, t3, t4, t5, t6, t7) = lineage
        assert graph.sources_of(t7) == {t1, t2}
        assert graph.sources_of(t1) == {t1}

    def test_lineage_paths(self, lineage):
        graph, (t1, _t2, t3, t4, _t5, _t6, t7) = lineage
        paths = graph.lineage_paths(t1, t7)
        assert paths == [[t1, t3, t4, t7]]
        assert graph.lineage_paths(t7, t1) == []

    def test_transformation_history_is_topological(self, lineage):
        graph, (t1, t2, t3, t4, _t5, _t6, t7) = lineage
        history = graph.transformation_history(t7)
        order = [t for t, _ in history]
        assert order.index(t1) < order.index(t3) < order.index(t4) < order.index(t7)
        kinds = dict(history)
        assert kinds[t3] == "aggregation"
        assert kinds[t4] == "duplication"
        assert kinds[t7] == "processing"

    def test_commitment_chain(self, lineage):
        graph, (t1, _t2, t3, t4, _t5, _t6, t7) = lineage
        chain = graph.commitment_chain(t1, t7)
        assert chain == [11, 33, 44, 77]
        with pytest.raises(ProtocolError):
            graph.commitment_chain(t7, t1)

    def test_unknown_token_raises(self, lineage):
        graph, _ = lineage
        with pytest.raises(ProtocolError):
            graph.ancestors(999)

    def test_node_attributes(self, lineage):
        graph, (t1, *_rest) = lineage
        g = graph.to_networkx()
        assert g.nodes[t1]["kind"] == "source"
        assert g.nodes[t1]["uri"] == "u1"
        assert g.nodes[t1]["burned"] is False
