"""Shared fixtures.

The SNARK context (SRS + circuit-key cache) is expensive to build, so one
session-scoped instance is shared by every protocol-level test; circuit
keys accumulate in its cache across tests, exactly as a deployed system
would reuse them.

Seeded-randomness plumbing for the chaos and differential suites: the
``chaos_seed`` fixture reads ``REPRO_CHAOS_SEED`` (defaulting to a fixed
constant so plain ``pytest`` runs are reproducible), and any test that
used it and failed gets a replay line appended to its report so the
exact run can be reproduced from the terminal output alone.
"""

import json
import os

import pytest

from repro.core.snark import SnarkContext

#: Supports circuits up to n = 16384 (plus blinding margin) — the
#: logistic-regression convergence predicate is the largest test circuit.
_SRS_DEGREE = 16400

#: Default seed for chaos/differential runs when REPRO_CHAOS_SEED is unset.
_DEFAULT_CHAOS_SEED = 20220707  # ICDCS 2022


@pytest.fixture(scope="session")
def snark_ctx():
    return SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xC0FFEE)


@pytest.fixture
def chaos_seed(request):
    """The session's randomness seed for chaos and differential tests.

    Override with ``REPRO_CHAOS_SEED=<int>``; CI's chaos job sets a
    run-derived value and echoes it so any red run can be replayed.
    """
    raw = os.environ.get("REPRO_CHAOS_SEED", "")
    seed = int(raw) if raw.strip() else _DEFAULT_CHAOS_SEED
    request.node._repro_chaos_seed = seed
    return seed


@pytest.fixture
def soak_params(request):
    """The (seed, mix, fault profile) triple for a soak simulation.

    Reads ``REPRO_SOAK_SEED`` / ``REPRO_SOAK_MIX`` / ``REPRO_FAULTS``
    (profile part; defaults to ``all``), so the CI soak job steers the
    run through the environment.  A failing soak test gets the triple —
    as a ready-to-paste ``python -m repro.loadsim`` command — appended
    to its report for one-command replay.
    """
    raw_seed = os.environ.get("REPRO_SOAK_SEED", "")
    seed = int(raw_seed, 0) if raw_seed.strip() else _DEFAULT_CHAOS_SEED
    mix = os.environ.get("REPRO_SOAK_MIX", "").strip() or "mixed"
    raw_faults = os.environ.get("REPRO_FAULTS", "").strip()
    profile = (raw_faults.partition(":")[0] or "all") if raw_faults else "all"
    params = {"seed": seed, "mix": mix, "profile": profile}
    request.node._repro_soak_params = params
    return params


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_repro_chaos_seed", None)
    if seed is not None and report.when == "call" and report.failed:
        report.sections.append(
            (
                "chaos replay",
                "REPRO_CHAOS_SEED=%d reproduces this failure (same node id)" % seed,
            )
        )
    soak = getattr(item, "_repro_soak_params", None)
    if soak is not None and report.when == "call" and report.failed:
        report.sections.append(
            (
                "soak replay",
                "failing triple: seed=%d mix=%s profile=%s\n"
                "PYTHONPATH=src python -m repro.loadsim --seed %d --mix '%s' "
                "--faults %s:%d"
                % (soak["seed"], soak["mix"], soak["profile"],
                   soak["seed"], soak["mix"], soak["profile"], soak["seed"]),
            )
        )


def pytest_sessionfinish(session, exitstatus):
    """Optionally dump the telemetry metrics registry for CI artifacts."""
    out = os.environ.get("REPRO_CHAOS_TELEMETRY_OUT")
    if not out:
        return
    from repro import telemetry

    if not telemetry.metrics_enabled():
        return
    parent = os.path.dirname(out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(telemetry.snapshot(), fh, indent=2, sort_keys=True, default=str)
