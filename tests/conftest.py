"""Shared fixtures.

The SNARK context (SRS + circuit-key cache) is expensive to build, so one
session-scoped instance is shared by every protocol-level test; circuit
keys accumulate in its cache across tests, exactly as a deployed system
would reuse them.
"""

import pytest

from repro.core.snark import SnarkContext

#: Supports circuits up to n = 16384 (plus blinding margin) — the
#: logistic-regression convergence predicate is the largest test circuit.
_SRS_DEGREE = 16400


@pytest.fixture(scope="session")
def snark_ctx():
    return SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xC0FFEE)
