"""Integration tests for the ZKDET protocols (real proofs, marked slow).

These exercise Theorems 5.1 and 5.2 end to end: transformation integrity,
exchange fairness for both parties, and — the headline property — that the
key-secure protocol never puts the decryption key on chain, while ZKCP
demonstrably does.
"""

import pytest

from repro.chain import Blockchain
from repro.contracts import KeySecureArbiterContract, PlonkVerifierContract, ZKCPArbiterContract
from repro.errors import ProtocolError
from repro.field.fr import MODULUS as R
from repro.core.exchange import Buyer, KeySecureExchange, Seller, key_negotiation_keys
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import (
    EncryptionProof,
    prove_encryption,
    prove_transformation,
    verify_encryption,
    verify_proof_chain,
    verify_transformation,
)
from repro.core.transformations import Duplication
from repro.core.zkcp import ZKCPExchange

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def asset():
    a = DataAsset.create([101, 202], key=31337, nonce=777)
    return a


@pytest.fixture(scope="module")
def pi_e(snark_ctx, asset):
    return prove_encryption(snark_ctx, asset)


class TestTransformationProtocol:
    def test_pi_e_verifies(self, snark_ctx, asset, pi_e):
        assert verify_encryption(snark_ctx, asset.public_view(), pi_e)

    def test_pi_e_bound_to_statement(self, snark_ctx, asset, pi_e):
        other = DataAsset.create([101, 202], key=999, nonce=777)
        other.uri = "other"
        # Same plaintext, different key: the proof must not transfer.
        assert not verify_encryption(snark_ctx, other.public_view(), pi_e)
        # Tampered commitment in the claimed statement.
        forged = EncryptionProof(
            proof=pi_e.proof,
            ciphertext_blocks=pi_e.ciphertext_blocks,
            nonce=pi_e.nonce,
            data_commitment=(pi_e.data_commitment + 1) % R,
            key_commitment=pi_e.key_commitment,
        )
        view = asset.public_view()
        assert not verify_encryption(snark_ctx, view, forged)

    def test_pi_t_duplication_roundtrip(self, snark_ctx, asset):
        derived, pi_t = prove_transformation(snark_ctx, [asset], Duplication())
        assert len(derived) == 1
        assert derived[0].plaintext == asset.plaintext
        assert derived[0].key != asset.key  # fresh key for the replica
        assert verify_transformation(snark_ctx, Duplication(), pi_t)

    def test_pi_t_rejects_forged_commitments(self, snark_ctx, asset):
        derived, pi_t = prove_transformation(snark_ctx, [asset], Duplication())
        forged = pi_t.__class__(
            proof=pi_t.proof,
            transformation_name=pi_t.transformation_name,
            source_sizes=pi_t.source_sizes,
            derived_sizes=pi_t.derived_sizes,
            source_commitments=pi_t.source_commitments,
            derived_commitments=((pi_t.derived_commitments[0] + 1) % R,),
        )
        assert not verify_transformation(snark_ctx, Duplication(), forged)
        wrong_name = pi_t.__class__(
            proof=pi_t.proof,
            transformation_name="aggregation",
            source_sizes=pi_t.source_sizes,
            derived_sizes=pi_t.derived_sizes,
            source_commitments=pi_t.source_commitments,
            derived_commitments=pi_t.derived_commitments,
        )
        assert not verify_transformation(snark_ctx, Duplication(), wrong_name)

    def test_proof_chain(self, snark_ctx, asset):
        """Figure 3: chained pi_t from the source to a grandchild."""
        mid, pi_t1 = prove_transformation(snark_ctx, [asset], Duplication())
        final, pi_t2 = prove_transformation(snark_ctx, mid, Duplication())
        chain = [(Duplication(), pi_t1), (Duplication(), pi_t2)]
        assert verify_proof_chain(
            snark_ctx, chain, asset.data_commitment.value,
            final[0].data_commitment.value,
        )
        # Broken linkage: wrong root or wrong tail.
        assert not verify_proof_chain(
            snark_ctx, chain, (asset.data_commitment.value + 1) % R,
            final[0].data_commitment.value,
        )
        assert not verify_proof_chain(
            snark_ctx, chain, asset.data_commitment.value, 12345
        )
        # Empty chain degenerates to commitment equality.
        assert verify_proof_chain(snark_ctx, [], 5, 5)
        assert not verify_proof_chain(snark_ctx, [], 5, 6)


class TestKeySecureExchange:
    @pytest.fixture()
    def market(self, snark_ctx):
        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
        chain.deploy(verifier, operator)
        arbiter = KeySecureArbiterContract(verifier)
        chain.deploy(arbiter, operator)
        seller_addr = chain.create_account(funded=10**9)
        buyer_addr = chain.create_account(funded=10**9)
        return chain, arbiter, seller_addr, buyer_addr

    @pytest.fixture()
    def sale_asset(self):
        a = DataAsset.create([42, 84], key=555, nonce=666)
        return a

    def test_honest_exchange(self, snark_ctx, market, sale_asset):
        chain, arbiter, seller_addr, buyer_addr = market
        store_uri = "fake-uri"
        sale_asset.uri = store_uri
        seller = Seller(snark_ctx, sale_asset, seller_addr)
        buyer = Buyer(snark_ctx, sale_asset.public_view(), buyer_addr)
        protocol = KeySecureExchange(snark_ctx, chain, arbiter)
        seller_before = chain.balance_of(seller_addr)

        result = protocol.run(seller, buyer, price=5000)
        assert result.success, result.reason
        assert result.plaintext == [42, 84]
        assert chain.balance_of(seller_addr) == seller_before + 5000
        # THE key property: the chain never saw k, only k_c = k + k_v.
        masked = chain.call_view(arbiter, "masked_key", result.exchange_id)
        assert masked is not None
        assert masked != sale_asset.key
        assert (masked - buyer.k_v) % R == sale_asset.key  # only the buyer can unmask

    def test_malicious_seller_cannot_collect(self, snark_ctx, market, sale_asset):
        """Buyer fairness: wrong k_c fails on-chain verification; the
        buyer's funds come back."""
        chain, arbiter, seller_addr, buyer_addr = market
        sale_asset.uri = "u"
        seller = Seller(snark_ctx, sale_asset, seller_addr)
        buyer = Buyer(snark_ctx, sale_asset.public_view(), buyer_addr)
        protocol = KeySecureExchange(snark_ctx, chain, arbiter)
        seller_before = chain.balance_of(seller_addr)
        buyer_before = chain.balance_of(buyer_addr)
        result = protocol.run(seller, buyer, price=5000, tamper_k_c=True)
        assert not result.success
        assert "pi_k rejected" in result.reason
        assert chain.balance_of(seller_addr) == seller_before
        assert chain.balance_of(buyer_addr) == buyer_before

    def test_malicious_buyer_aborts_cleanly(self, snark_ctx, market, sale_asset):
        """Seller fairness: a buyer lying about k_v makes the seller abort
        before any key material is produced; funds are refunded."""
        chain, arbiter, seller_addr, buyer_addr = market
        sale_asset.uri = "u"
        seller = Seller(snark_ctx, sale_asset, seller_addr)
        buyer = Buyer(snark_ctx, sale_asset.public_view(), buyer_addr)
        protocol = KeySecureExchange(snark_ctx, chain, arbiter)
        buyer_before = chain.balance_of(buyer_addr)
        result = protocol.run(seller, buyer, price=5000, tamper_k_v=True)
        assert not result.success
        assert "aborting" in result.reason
        assert chain.balance_of(buyer_addr) == buyer_before

    def test_seller_requires_published_asset(self, snark_ctx, market):
        _chain, _arbiter, seller_addr, _ = market
        unpublished = DataAsset.create([1], key=2, nonce=3)
        with pytest.raises(ProtocolError):
            Seller(snark_ctx, unpublished, seller_addr)


class TestZKCPBaseline:
    @pytest.fixture()
    def market(self):
        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        arbiter = ZKCPArbiterContract()
        chain.deploy(arbiter, operator)
        seller = chain.create_account(funded=10**9)
        buyer = chain.create_account(funded=10**9)
        return chain, arbiter, seller, buyer

    def test_zkcp_works_but_leaks_key(self, market):
        chain, arbiter, seller, buyer = market
        asset = DataAsset.create([7, 8], key=4242, nonce=1)
        protocol = ZKCPExchange(chain, arbiter)
        result = protocol.run(seller, buyer, asset, price=3000)
        assert result.success
        assert result.plaintext == [7, 8]
        # The vulnerability ZKDET fixes: the key is public chain data.
        assert result.leaked_key == asset.key

    def test_zkcp_wrong_key_rejected(self, market):
        chain, arbiter, seller, buyer = market
        asset = DataAsset.create([7, 8], key=4242, nonce=1)
        protocol = ZKCPExchange(chain, arbiter)
        buyer_before = chain.balance_of(buyer)
        result = protocol.run(seller, buyer, asset, price=3000, tamper_key=True)
        assert not result.success
        assert chain.balance_of(buyer) == buyer_before  # refunded
