"""End-to-end tests for the Plonk proving system.

Covers Definition 2.5 (completeness), the rejection surface that knowledge
soundness implies for concrete attacks (Definition 2.6), and the succinct
proof shape the paper reports (9 G1 + 6 field elements).
"""

import pytest

from repro.errors import (
    CircuitError,
    ProofError,
    SerializationError,
    SRSError,
    UnsatisfiedConstraintError,
)
from repro.curve.g1 import G1
from repro.field.fr import MODULUS as R
from repro.kzg import SRS
from repro.plonk import CircuitBuilder, Proof, prove, setup, verify


@pytest.fixture(scope="module")
def srs():
    return SRS.generate(64, tau=987654321)


def _square_circuit(x_value, y_value, w_value=3):
    """Public x, y; private w with w^2 = x and w + x = y (toy relation)."""
    builder = CircuitBuilder()
    x = builder.public_input(x_value)
    y = builder.public_input(y_value)
    w = builder.var(w_value)
    w2 = builder.mul(w, w)
    builder.assert_equal(w2, x)
    s = builder.add(w, x)
    builder.assert_equal(s, y)
    return builder.compile()


class TestCircuitBuilder:
    def test_compile_pads_to_power_of_two(self):
        layout, assignment = _square_circuit(9, 12)
        assert layout.n & (layout.n - 1) == 0
        assert layout.ell == 2
        assert assignment.public_inputs == [9, 12]

    def test_layout_check_catches_bad_witness(self):
        layout, assignment = _square_circuit(9, 12)
        assignment.c[layout.ell] = 999
        with pytest.raises(UnsatisfiedConstraintError):
            layout.check(assignment)

    def test_builder_operations_compute_values(self):
        b = CircuitBuilder()
        x = b.var(6)
        y = b.var(7)
        assert b.value(b.mul(x, y)) == 42
        assert b.value(b.add(x, y)) == 13
        assert b.value(b.sub(x, y)) == R - 1
        assert b.value(b.scale(x, 10)) == 60
        assert b.value(b.add_const(x, 4)) == 10
        assert b.value(b.mul_add(x, y, x)) == 48
        assert b.value(b.mul_add_const(x, y, 8)) == 50
        assert b.value(b.linear_combination([(2, x), (3, y), (5, x)], 1)) == 64
        assert b.value(b.linear_combination([(2, x)], 4)) == 16
        assert b.value(b.linear_combination([], 9)) == 9
        b.assert_bool(b.var(1))
        b.assert_not_zero(x)
        b.assert_mul(x, y, b.var(42))
        b.assert_zero(b.var(0))
        layout, assignment = b.compile()
        layout.check(assignment)

    def test_constants_are_deduplicated(self):
        b = CircuitBuilder()
        c1 = b.constant(5)
        c2 = b.constant(5)
        assert c1 == c2

    def test_gate_after_compile_fails(self):
        b = CircuitBuilder()
        b.var(1)
        b.compile()
        with pytest.raises(CircuitError):
            b.gate(ql=1)

    def test_identical_circuits_share_layout(self):
        layout1, _ = _square_circuit(9, 12)
        layout2, _ = _square_circuit(16, 20, w_value=4)
        assert layout1.digest() == layout2.digest()

    def test_sigma_is_permutation(self):
        layout, _ = _square_circuit(9, 12)
        assert sorted(layout.sigma) == list(range(3 * layout.n))


@pytest.mark.slow
class TestPlonkEndToEnd:
    def test_completeness(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        proof = prove(pk, assignment)
        assert verify(vk, [9, 12], proof)

    def test_same_vk_different_witness(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        # Different public inputs (and witness) under the SAME keys.
        builder = CircuitBuilder()
        x = builder.public_input(25)
        y = builder.public_input(30)
        w = builder.var(5)
        builder.assert_equal(builder.mul(w, w), x)
        builder.assert_equal(builder.add(w, x), y)
        layout2, assignment2 = builder.compile()
        assert layout2.digest() == layout.digest()
        proof = prove(pk, assignment2)
        assert verify(vk, [25, 30], proof)
        assert not verify(vk, [9, 12], proof)

    def test_wrong_public_inputs_rejected(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        proof = prove(pk, assignment)
        assert not verify(vk, [9, 13], proof)
        assert not verify(vk, [9], proof)

    def test_tampered_proof_rejected(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        proof = prove(pk, assignment)
        bad_point = proof.c_a + G1.generator()
        assert not verify(vk, [9, 12], proof.replace(c_a=bad_point))
        assert not verify(vk, [9, 12], proof.replace(a_bar=(proof.a_bar + 1) % R))
        assert not verify(vk, [9, 12], proof.replace(z_omega_bar=0))
        assert not verify(vk, [9, 12], proof.replace(w_zeta=G1.generator()))

    def test_unsatisfied_witness_cannot_be_proved(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, _vk = setup(srs, layout)
        assignment.a[layout.ell] = 4  # break the witness
        with pytest.raises((UnsatisfiedConstraintError, ProofError)):
            prove(pk, assignment)

    def test_proof_shape_matches_paper(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        proof = prove(pk, assignment)
        assert proof.num_g1_elements == 9
        assert proof.num_field_elements == 6
        data = proof.to_bytes()
        assert len(data) == proof.size_bytes == 9 * 64 + 6 * 32
        restored = Proof.from_bytes(data)
        assert verify(vk, [9, 12], restored)

    def test_proof_deserialisation_rejects_garbage(self):
        with pytest.raises(SerializationError):
            Proof.from_bytes(b"\x00" * 10)
        good = b"\x00" * (9 * 64) + (R).to_bytes(32, "little") + b"\x00" * (5 * 32)
        with pytest.raises(SerializationError):
            Proof.from_bytes(good)

    def test_proofs_are_randomised(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        p1 = prove(pk, assignment)
        p2 = prove(pk, assignment)
        assert p1.to_bytes() != p2.to_bytes()  # zero-knowledge blinding
        assert verify(vk, [9, 12], p1) and verify(vk, [9, 12], p2)

    def test_deterministic_mode(self, srs):
        layout, assignment = _square_circuit(9, 12)
        pk, vk = setup(srs, layout)
        p1 = prove(pk, assignment, blinding=False)
        p2 = prove(pk, assignment, blinding=False)
        assert p1.to_bytes() == p2.to_bytes()
        assert verify(vk, [9, 12], p1)

    def test_setup_rejects_small_srs(self):
        layout, _ = _square_circuit(9, 12)
        small = SRS.generate(4, tau=5)
        with pytest.raises(SRSError):
            setup(small, layout)

    def test_no_public_inputs(self, srs):
        builder = CircuitBuilder()
        w = builder.var(6)
        builder.assert_constant(builder.mul(w, w), 36)
        layout, assignment = builder.compile()
        pk, vk = setup(srs, layout)
        proof = prove(pk, assignment)
        assert verify(vk, [], proof)
