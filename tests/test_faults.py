"""The fault-injection plane and the chaos suite.

Fast, unmarked tests cover the plane itself: seeded draws, plan parsing,
typed injection at every site family, retry/backoff arithmetic, and the
chain/storage instrumentation semantics (a dropped transaction leaves no
trace; a reverted one leaves a failed receipt).

The ``chaos``-marked classes then run the three exchange protocols end to
end under seeded :class:`~repro.faults.FaultPlan` profiles and assert the
safety envelope from the paper's fairness theorems survives an unreliable
substrate:

* every run terminates in exactly one of {completed, aborted-and-safe};
* no key material reaches the chain unless the seller is paid;
* an aborted buyer gets every escrowed coin back;
* the same seed replays bit-identically (same fault log, same receipt
  sequence, same final balances).
"""

import pytest

from repro import faults, telemetry
from repro.chain import Blockchain
from repro.contracts import (
    KeySecureArbiterContract,
    PlonkVerifierContract,
    ZKCPArbiterContract,
)
from repro.contracts.fairswap import FairSwapContract
from repro.core.exchange import Buyer, KeySecureExchange, Seller, key_negotiation_keys
from repro.core.fairswap import FairSwapExchange, FairSwapListing
from repro.core.tokens import DataAsset
from repro.core.zkcp import ZKCPExchange
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    EventDelayError,
    MessageLossError,
    MessageStallError,
    RetryExhaustedError,
    StorageError,
    StorageCorruptionError,
    StorageTimeoutError,
    StorageUnavailableError,
    TransientError,
    TxDroppedError,
    TxRevertedError,
)
from repro.faults import (
    PPM,
    PROFILES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    draw,
)
from repro.field.fr import MODULUS as R
from repro.storage import ContentStore
from repro.storage.dht import DHTNetwork


def _always(site, kind, **kw):
    return FaultRule(site=site, kind=kind, probability_ppm=PPM, **kw)


def _plan(*rules, seed=1):
    return FaultPlan(seed=seed, rules=tuple(rules), name="test")


# ---------------------------------------------------------------------------
# The deterministic draw
# ---------------------------------------------------------------------------


class TestDraw:
    def test_range_and_stability(self):
        values = [draw(7, 0, i, "storage.get") for i in range(200)]
        assert all(0 <= v < PPM for v in values)
        assert values == [draw(7, 0, i, "storage.get") for i in range(200)]

    def test_streams_are_independent(self):
        by_seed = [draw(s, 0, 0, "chain.transact") for s in range(50)]
        by_rule = [draw(0, r, 0, "chain.transact") for r in range(50)]
        by_site = [draw(0, 0, 0, "site-%d" % i) for i in range(50)]
        assert len(set(by_seed)) > 40
        assert len(set(by_rule)) > 40
        assert len(set(by_site)) > 40


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ReproError):
            FaultRule(site="x", kind="explode", probability_ppm=1)
        with pytest.raises(ReproError):
            FaultRule(site="x", kind="loss", probability_ppm=PPM + 1)
        with pytest.raises(ReproError):
            FaultRule(site="x", kind="loss", probability_ppm=-1)
        with pytest.raises(ReproError):
            FaultRule(site="x", kind="delay", probability_ppm=1, delay_us=-5)

    def test_rule_glob_matching(self):
        rule = _always("exchange.msg.*", "loss")
        assert rule.matches("exchange.msg.key")
        assert rule.matches("exchange.msg.validation")
        assert not rule.matches("chain.transact")

    def test_profiles_exist_and_parse(self):
        for name in PROFILES:
            plan = FaultPlan.profile(name, seed=3)
            assert plan.seed == 3
            for rule in plan.rules:
                assert rule.kind in faults.KINDS

    def test_from_env_specs(self):
        assert FaultPlan.from_env("42").seed == 42
        plan = FaultPlan.from_env("storage:7")
        assert plan.seed == 7
        assert plan.rules == FaultPlan.profile("storage", seed=7).rules
        with pytest.raises(ReproError):
            FaultPlan.from_env("nosuchprofile:1")
        with pytest.raises(ReproError):
            FaultPlan.from_env("storage:notanint")

    def test_with_seed(self):
        plan = FaultPlan.profile("chain", seed=1)
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.rules == plan.rules


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------


class TestInjector:
    def test_loss_error_family_per_site(self):
        cases = [
            ("storage.get", StorageUnavailableError),
            ("dht.node.get", StorageUnavailableError),
            ("chain.transact", TxDroppedError),
            ("exchange.msg.key", MessageLossError),
        ]
        for site, exc_type in cases:
            injector = FaultInjector(_plan(_always(site, "loss")))
            with pytest.raises(exc_type):
                injector.check(site)
            assert isinstance(injector.log[-1].site, str)

    def test_stall_error_family_per_site(self):
        cases = [
            ("storage.get", StorageTimeoutError),
            ("chain.events", EventDelayError),
            ("exchange.msg.key", MessageStallError),
        ]
        for site, exc_type in cases:
            injector = FaultInjector(
                _plan(_always(site, "stall", delay_us=10_000))
            )
            with pytest.raises(exc_type):
                injector.check(site)
            assert injector.clock.now_us == 10_000

    def test_all_injected_errors_are_transient(self):
        for kind in ("loss", "drop", "revert", "stall"):
            injector = FaultInjector(
                _plan(_always("chain.transact", kind, delay_us=1))
            )
            with pytest.raises(TransientError):
                injector.check("chain.transact")

    def test_delay_advances_clock_without_raising(self):
        injector = FaultInjector(_plan(_always("chain.transact", "delay", delay_us=250)))
        injector.check("chain.transact")
        injector.check("chain.transact")
        assert injector.clock.now_us == 500
        assert [f.kind for f in injector.log] == ["delay", "delay"]

    def test_max_faults_budget(self):
        injector = FaultInjector(
            _plan(_always("chain.transact", "drop", max_faults=2))
        )
        for _ in range(2):
            with pytest.raises(TxDroppedError):
                injector.check("chain.transact")
        injector.check("chain.transact")  # budget spent: passes
        assert injector.injected == 2

    def test_corrupt_flips_first_byte_deterministically(self):
        injector = FaultInjector(_plan(_always("storage.get.data", "corrupt")))
        out = injector.filter_bytes("storage.get.data", b"hello")
        assert out != b"hello"
        assert out[0] == b"hello"[0] ^ 0xFF
        assert out[1:] == b"ello"
        assert injector.log[-1].kind == "corrupt"

    def test_unavailable_is_boolean_and_counted(self):
        injector = FaultInjector(_plan(_always("dht.node.get", "loss")))
        assert injector.unavailable("dht.node.get") is True
        assert injector.injected == 1
        assert injector.unavailable("dht.get") is False

    def test_same_seed_same_log(self):
        plan = FaultPlan.profile("chain", seed=77)
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for _ in range(40):
                try:
                    injector.check("chain.transact")
                except TransientError:
                    pass
            logs.append(injector.log)
        assert logs[0] == logs[1]

    def test_consultations_counted(self):
        injector = FaultInjector(_plan(FaultRule("chain.*", "drop", 0)))
        for _ in range(5):
            injector.check("chain.transact")
        assert injector.consultations == 5
        assert injector.injected == 0


class TestModuleHelpers:
    def test_disabled_helpers_are_noops(self):
        assert faults.active() is None or True  # other tests may leave state
        with faults.use_plan(None):
            assert not faults.enabled()
            faults.check("chain.transact")
            assert faults.unavailable("dht.node.get") is False
            assert faults.filter_bytes("storage.get.data", b"x") == b"x"
            assert faults.clock() is None

    def test_use_plan_restores_previous(self):
        outer = FaultPlan.profile("off", seed=1)
        with faults.use_plan(outer):
            before = faults.active()
            with faults.use_plan(FaultPlan.profile("chain", seed=2)) as inner:
                assert faults.active() is inner
            assert faults.active() is before

    def test_configure_from_env(self):
        with faults.use_plan(None):
            faults.configure_from_env({"REPRO_FAULTS": "exchange:11"})
            try:
                assert faults.enabled()
                assert faults.active().plan.seed == 11
            finally:
                faults.set_plan(None)
            faults.configure_from_env({})
            assert not faults.enabled()


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=5)
        delays = [policy.backoff_us(a, "chain.lock") for a in range(8)]
        assert delays == [policy.backoff_us(a, "chain.lock") for a in range(8)]
        assert all(0 <= d <= policy.max_delay_us for d in delays)
        # Different sites draw different jitter.
        assert delays != [policy.backoff_us(a, "chain.open") for a in range(8)]

    def test_retries_transient_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TxDroppedError("gone")
            return "ok"

        assert RetryPolicy().run(flaky, site="chain.transact") == "ok"
        assert len(attempts) == 3

    def test_exhaustion_raises_typed_error(self):
        def always_down():
            raise StorageUnavailableError("nope")

        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=3).run(always_down, site="storage.get")

    def test_non_transient_propagates_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            RetryPolicy().run(broken, site="x")
        assert len(attempts) == 1

    def test_deadline_uses_virtual_clock(self):
        plan = _plan(_always("chain.transact", "drop"))
        with faults.use_plan(plan):
            policy = RetryPolicy(
                max_attempts=50, base_delay_us=300_000, timeout_us=1_000_000
            )
            with pytest.raises(DeadlineExceededError):
                policy.run(
                    lambda: faults.check("chain.transact"), site="chain.transact"
                )


# ---------------------------------------------------------------------------
# Instrumented subsystems
# ---------------------------------------------------------------------------


class TestStorageInjection:
    def test_store_loss_and_recovery(self):
        store = ContentStore()
        with faults.use_plan(_plan(_always("storage.put", "loss", max_faults=1))):
            with pytest.raises(StorageUnavailableError):
                store.put(b"payload")
            uri = store.put(b"payload")  # budget spent: retry succeeds
        assert store.get(uri) == b"payload"

    def test_corrupted_read_is_detected(self):
        store = ContentStore()
        uri = store.put(b"payload")
        with faults.use_plan(_plan(_always("storage.get.data", "corrupt", max_faults=1))):
            with pytest.raises(StorageCorruptionError):
                store.get(uri)
            assert store.get(uri) == b"payload"

    def test_dht_survives_minority_replica_loss(self):
        net = DHTNetwork(["n%d" % i for i in range(8)], replication=4)
        uri = net.put(b"blob")
        with faults.use_plan(_plan(_always("dht.node.get", "loss", max_faults=2))):
            data, _hops = net.get_with_hops(uri)
        assert data == b"blob"

    def test_dht_reports_unavailable_when_all_replicas_down(self):
        net = DHTNetwork(["n%d" % i for i in range(4)], replication=2)
        uri = net.put(b"blob")
        with faults.use_plan(_plan(_always("dht.node.get", "loss"))):
            with pytest.raises(StorageError):
                net.get_with_hops(uri)


class TestChainInjection:
    def _market(self):
        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        contract = FairSwapContract()
        chain.deploy(contract, operator)
        return chain, contract, operator

    def test_dropped_tx_leaves_no_trace(self):
        chain, contract, operator = self._market()
        receipts_before = len(chain.receipts)
        with faults.use_plan(_plan(_always("chain.transact", "drop", max_faults=1))):
            with pytest.raises(TxDroppedError):
                chain.transact(operator, contract, "offer", 1, 2, 3, 4, 1, 100)
        assert len(chain.receipts) == receipts_before

    def test_reverted_tx_leaves_failed_receipt(self):
        chain, contract, operator = self._market()
        with faults.use_plan(_plan(_always("chain.transact", "revert", max_faults=1))):
            with pytest.raises(TxRevertedError):
                chain.transact(operator, contract, "offer", 1, 2, 3, 4, 1, 100)
        assert chain.receipts[-1].status is False
        # The very next submission goes through and executes the method.
        receipt = chain.transact(operator, contract, "offer", 1, 2, 3, 4, 1, 100)
        assert receipt.status

    def test_event_query_stall(self):
        chain, contract, operator = self._market()
        with faults.use_plan(_plan(_always("chain.events", "stall", delay_us=1))):
            with pytest.raises(EventDelayError):
                chain.query_events(contract.address)


class TestTelemetryAccounting:
    def test_injections_and_retries_counted(self):
        with telemetry.use_level("metrics"):
            telemetry.reset_metrics()
            plan = _plan(_always("chain.transact", "drop", max_faults=2))
            with faults.use_plan(plan):
                RetryPolicy().run(
                    lambda: faults.check("chain.transact"), site="chain.transact"
                )
            counters = telemetry.snapshot()["counters"]
            assert counters["faults.injected.drop{site=chain.transact}"] == 2
            assert counters["retry.attempts{site=chain.transact}"] == 2


# ---------------------------------------------------------------------------
# Chaos: the full protocols under seeded fault profiles
# ---------------------------------------------------------------------------

CHAOS_PROFILES = ("chain", "exchange", "all")


def _keysecure_market(snark_ctx):
    chain = Blockchain()
    operator = chain.create_account(funded=10**12)
    verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
    chain.deploy(verifier, operator)
    arbiter = KeySecureArbiterContract(verifier)
    chain.deploy(arbiter, operator)
    seller_addr = chain.create_account(funded=10**9)
    buyer_addr = chain.create_account(funded=10**9)
    return chain, arbiter, seller_addr, buyer_addr


def _run_keysecure(snark_ctx, profile, seed):
    chain, arbiter, seller_addr, buyer_addr = _keysecure_market(snark_ctx)
    asset = DataAsset.create([42, 84], key=555, nonce=666)
    asset.uri = "u"
    seller = Seller(snark_ctx, asset, seller_addr)
    buyer = Buyer(snark_ctx, asset.public_view(), buyer_addr)
    protocol = KeySecureExchange(snark_ctx, chain, arbiter)
    with faults.use_plan(FaultPlan.profile(profile, seed=seed)) as injector:
        result = protocol.run(seller, buyer, price=5000)
    return {
        "chain": chain,
        "arbiter": arbiter,
        "seller": seller_addr,
        "buyer": buyer_addr,
        "asset": asset,
        "result": result,
        "log": injector.log,
    }


def _keysecure_invariants(run):
    chain, result = run["chain"], run["result"]
    seller, buyer = run["seller"], run["buyer"]
    # Exactly one terminal state; a fault can never produce a third.
    assert result.success != result.aborted
    key_events = [
        e for r in chain.receipts if r.status for e in r.events if e.name == "KeyDelivered"
    ]
    if result.success:
        assert result.plaintext == run["asset"].plaintext
        assert chain.balance_of(seller) == 10**9 + 5000
        assert chain.balance_of(buyer) == 10**9 - 5000
        assert len(key_events) == 1
        masked = chain.call_view(run["arbiter"], "masked_key", result.exchange_id)
        assert masked is not None and masked != run["asset"].key
    else:
        # Safe abort: nobody lost a coin, and no key material on chain.
        assert chain.balance_of(seller) == 10**9
        assert chain.balance_of(buyer) == 10**9
        assert key_events == []
        if result.exchange_id is not None:
            masked = chain.call_view(run["arbiter"], "masked_key", result.exchange_id)
            assert masked is None


@pytest.mark.chaos
@pytest.mark.slow
class TestKeySecureChaos:
    @pytest.mark.parametrize("profile", CHAOS_PROFILES)
    @pytest.mark.parametrize("offset", (0, 1, 2))
    def test_terminates_safely(self, snark_ctx, chaos_seed, profile, offset):
        run = _run_keysecure(snark_ctx, profile, chaos_seed + offset)
        _keysecure_invariants(run)

    def test_same_seed_replays_bit_identically(self, snark_ctx, chaos_seed):
        runs = [_run_keysecure(snark_ctx, "all", chaos_seed) for _ in range(2)]
        a, b = runs
        assert a["log"] == b["log"]
        assert a["result"].success == b["result"].success
        assert a["result"].aborted == b["result"].aborted
        assert a["result"].reason == b["result"].reason
        assert [(r.method, r.status) for r in a["chain"].receipts] == [
            (r.method, r.status) for r in b["chain"].receipts
        ]
        for addr_a, addr_b in (("seller", "seller"), ("buyer", "buyer")):
            assert a["chain"].balance_of(a[addr_a]) == b["chain"].balance_of(b[addr_b])


@pytest.mark.chaos
@pytest.mark.slow
class TestZKCPChaos:
    @pytest.mark.parametrize("offset", (0, 1))
    def test_terminates_safely(self, chaos_seed, offset):
        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        arbiter = ZKCPArbiterContract()
        chain.deploy(arbiter, operator)
        seller = chain.create_account(funded=10**9)
        buyer = chain.create_account(funded=10**9)
        asset = DataAsset.create([7, 8], key=4242, nonce=1)
        protocol = ZKCPExchange(chain, arbiter)
        with faults.use_plan(
            FaultPlan.profile("all", seed=chaos_seed + offset)
        ):
            result = protocol.run(seller, buyer, asset, price=3000)
        assert result.success != result.aborted
        opened = [
            e for r in chain.receipts if r.status for e in r.events if e.name == "Opened"
        ]
        if result.success:
            assert chain.balance_of(seller) == 10**9 + 3000
            assert result.plaintext == asset.plaintext
        else:
            assert chain.balance_of(seller) == 10**9
            assert chain.balance_of(buyer) == 10**9
            assert opened == []  # key never reached the chain


@pytest.mark.chaos
class TestFairSwapChaos:
    def _run(self, profile, seed):
        chain = Blockchain()
        seller = chain.create_account(funded=10**9)
        buyer = chain.create_account(funded=10**9)
        contract = FairSwapContract()
        chain.deploy(contract, seller)
        listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
        protocol = FairSwapExchange(chain, contract)
        with faults.use_plan(FaultPlan.profile(profile, seed=seed)) as injector:
            result = protocol.run(seller, buyer, listing, price=5000)
        return chain, contract, seller, buyer, result, injector.log

    @pytest.mark.parametrize("profile", ("chain", "all"))
    @pytest.mark.parametrize("offset", tuple(range(6)))
    def test_terminates_safely(self, chaos_seed, profile, offset):
        chain, contract, seller, buyer, result, _log = self._run(
            profile, chaos_seed + offset
        )
        assert not (result.success and result.aborted)
        if result.success:
            assert chain.balance_of(seller) == 10**9 + 5000
            assert chain.balance_of(buyer) == 10**9 - 5000
        else:
            # Abort or pre-escrow failure: the buyer keeps every coin.
            assert chain.balance_of(buyer) == 10**9
            assert chain.balance_of(seller) == 10**9
            if result.aborted and "reveal" in result.reason:
                assert chain.call_view(contract, "resolution", 1) == "aborted"
                assert chain.call_view(contract, "revealed_key", 1) is None

    def test_same_seed_replays_bit_identically(self, chaos_seed):
        runs = [self._run("all", chaos_seed) for _ in range(2)]
        (ca, _, _, _, ra, la), (cb, _, _, _, rb, lb) = runs
        assert la == lb
        assert (ra.success, ra.aborted, ra.reason, ra.gas_used) == (
            rb.success,
            rb.aborted,
            rb.reason,
            rb.gas_used,
        )
        assert [(r.method, r.status) for r in ca.receipts] == [
            (r.method, r.status) for r in cb.receipts
        ]


@pytest.mark.chaos
class TestForcedAbortPaths:
    """Plans crafted to push each driver down its abort path."""

    def test_fairswap_reveal_blackout_refunds_buyer(self):
        """Seller vanishes after the buyer escrows: offer + accept run
        clean, then a total-blackout plan makes every reveal attempt
        drop.  The driver must wait out the reveal window and pull the
        escrow back through the contract's abort entry point — surviving
        a few dropped abort submissions along the way (the blackout plan
        still has budget left when the abort transactions start)."""
        from repro.primitives.hashing import field_hash

        chain = Blockchain()
        seller = chain.create_account(funded=10**9)
        buyer = chain.create_account(funded=10**9)
        contract = FairSwapContract()
        chain.deploy(contract, seller)
        listing = FairSwapListing.create([10, 20], key=777, nonce=3)
        protocol = FairSwapExchange(chain, contract, retry=RetryPolicy(max_attempts=3))

        receipt = chain.transact(
            seller, contract, "offer",
            listing.cipher_tree.root, listing.plain_tree.root,
            field_hash(listing.key), listing.nonce, len(listing.blocks), 5000,
        )
        sale_id = receipt.return_value
        chain.transact(buyer, contract, "accept", sale_id, value=5000)
        assert chain.balance_of(buyer) == 10**9 - 5000

        blackout = _plan(
            FaultRule("chain.transact", "drop", PPM, max_faults=5), seed=13
        )
        with faults.use_plan(blackout) as injector:
            with pytest.raises(RetryExhaustedError):
                protocol._tx(seller, "reveal_key", sale_id, listing.key,
                             site="chain.reveal")
            aborted = protocol._abort_after_accept(
                buyer, sale_id, 0, "reveal undeliverable"
            )
            assert injector.injected == 5  # 3 reveals + 2 abort submissions
        assert aborted.aborted and not aborted.success
        assert chain.balance_of(buyer) == 10**9
        assert chain.call_view(contract, "resolution", sale_id) == "aborted"
        assert chain.call_view(contract, "revealed_key", sale_id) is None

    def test_fairswap_abort_respects_reveal_window(self):
        chain = Blockchain()
        seller = chain.create_account(funded=10**9)
        buyer = chain.create_account(funded=10**9)
        contract = FairSwapContract()
        chain.deploy(contract, seller)
        listing = FairSwapListing.create([10, 20], key=777, nonce=3)
        from repro.primitives.hashing import field_hash

        receipt = chain.transact(
            seller, contract, "offer",
            listing.cipher_tree.root, listing.plain_tree.root,
            field_hash(listing.key), listing.nonce, len(listing.blocks), 100,
        )
        sale_id = receipt.return_value
        chain.transact(buyer, contract, "accept", sale_id, value=100)
        # Immediately aborting must revert: the seller still has time.
        receipt = chain.transact(buyer, contract, "abort", sale_id)
        assert not receipt.status
        assert "window" in receipt.error


# ---------------------------------------------------------------------------
# Disabled-plane guarantees (fast)
# ---------------------------------------------------------------------------


class TestDisabledPlaneIsInert:
    def test_protocol_results_identical_with_and_without_empty_plan(self):
        def sale():
            chain = Blockchain()
            seller = chain.create_account(funded=10**9)
            buyer = chain.create_account(funded=10**9)
            contract = FairSwapContract()
            chain.deploy(contract, seller)
            listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
            result = FairSwapExchange(chain, contract).run(
                seller, buyer, listing, price=5000
            )
            return result.success, result.reason, result.gas_used

        bare = sale()
        with faults.use_plan(FaultPlan.profile("off", seed=1)):
            empty = sale()
        assert bare == empty

    def test_fr_modulus_sanity(self):
        # Anchor for the suite: field ops used by chaos invariants.
        assert pow(2, R - 1, R) == 1
