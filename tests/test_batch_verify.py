"""Tests for batched verification: Plonk proofs and KZG openings."""

import pytest

from repro.curve.g1 import G1
from repro.errors import VerificationError
from repro.field.fr import MODULUS as R
from repro.kzg import SRS, batch_verify_openings, commit, open_at, verify_opening
from repro.plonk import CircuitBuilder, batch_verify, prove, setup, verify

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def instances():
    """Three proofs: two from one circuit, one from another."""
    srs = SRS.generate(64, tau=13579)

    def square(x_val, w_val):
        b = CircuitBuilder()
        x = b.public_input(x_val)
        w = b.var(w_val)
        b.assert_equal(b.mul(w, w), x)
        return b.compile()

    def cube(x_val, w_val):
        b = CircuitBuilder()
        x = b.public_input(x_val)
        w = b.var(w_val)
        b.assert_equal(b.mul(b.mul(w, w), w), x)
        return b.compile()

    layout_sq, a1 = square(9, 3)
    pk_sq, vk_sq = setup(srs, layout_sq)
    _, a2 = square(25, 5)
    layout_cu, a3 = cube(27, 3)
    pk_cu, vk_cu = setup(srs, layout_cu)

    return [
        (vk_sq, [9], prove(pk_sq, a1)),
        (vk_sq, [25], prove(pk_sq, a2)),
        (vk_cu, [27], prove(pk_cu, a3)),
    ]


class TestBatchVerify:
    def test_valid_batch_accepts(self, instances):
        assert batch_verify(instances)

    def test_empty_batch(self):
        assert batch_verify([])

    def test_single_item_matches_plain_verify(self, instances):
        vk, publics, proof = instances[0]
        assert verify(vk, publics, proof)
        assert batch_verify([instances[0]])

    def test_one_bad_proof_poisons_the_batch(self, instances):
        vk, publics, proof = instances[1]
        bad = proof.replace(c_a=proof.c_a + G1.generator())
        assert not batch_verify([instances[0], (vk, publics, bad), instances[2]])

    def test_wrong_publics_poison_the_batch(self, instances):
        vk, _, proof = instances[0]
        assert not batch_verify([(vk, [10], proof), instances[1]])
        assert not batch_verify([(vk, [], proof)])  # structural reject

    def test_mixed_srs_rejected(self, instances):
        other_srs = SRS.generate(32, tau=24680)
        b = CircuitBuilder()
        x = b.public_input(4)
        w = b.var(2)
        b.assert_equal(b.mul(w, w), x)
        layout, assignment = b.compile()
        pk, vk = setup(other_srs, layout)
        foreign = (vk, [4], prove(pk, assignment))
        with pytest.raises(VerificationError):
            batch_verify([instances[0], foreign])


@pytest.fixture(scope="module")
def kzg_openings():
    """An SRS plus several (commitment, z, value, proof) opening claims."""
    srs = SRS.generate(16, tau=11111)
    claims = []
    for i, coeffs in enumerate(([3, 1, 4, 1, 5], [2, 7, 1, 8], [1, 0, 0, 9])):
        c = commit(srs, coeffs)
        z = 100 + 17 * i
        value, proof = open_at(srs, coeffs, z)
        claims.append((c, z, value, proof))
    return srs, claims


class TestBatchVerifyOpenings:
    def test_valid_batch_accepts(self, kzg_openings):
        srs, claims = kzg_openings
        for claim in claims:  # each claim really is individually valid
            assert verify_opening(srs, *claim)
        assert batch_verify_openings(srs, claims)

    def test_empty_batch(self, kzg_openings):
        srs, _ = kzg_openings
        assert batch_verify_openings(srs, [])

    def test_single_claim(self, kzg_openings):
        srs, claims = kzg_openings
        assert batch_verify_openings(srs, claims[:1])

    def test_poisoned_value_rejects(self, kzg_openings):
        srs, claims = kzg_openings
        c, z, value, proof = claims[1]
        poisoned = list(claims)
        poisoned[1] = (c, z, (value + 1) % R, proof)
        assert not batch_verify_openings(srs, poisoned)

    def test_poisoned_proof_rejects(self, kzg_openings):
        srs, claims = kzg_openings
        c, z, value, proof = claims[2]
        poisoned = list(claims)
        poisoned[2] = (c, z, value, proof + G1.generator())
        assert not batch_verify_openings(srs, poisoned)

    def test_swapped_commitments_reject(self, kzg_openings):
        srs, claims = kzg_openings
        (c0, z0, v0, w0), (c1, z1, v1, w1) = claims[0], claims[1]
        assert not batch_verify_openings(srs, [(c1, z0, v0, w0), (c0, z1, v1, w1)])
