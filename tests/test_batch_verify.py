"""Tests for batched verification: Plonk proofs, Groth16 proofs and KZG openings."""

import pytest

from repro.curve.g1 import G1
from repro.errors import VerificationError
from repro.field.fr import MODULUS as R
from repro.groth16 import (
    Groth16Proof,
    groth16_prove,
    groth16_setup,
    groth16_verify,
)
from repro.groth16 import verify_batch as groth16_verify_batch
from repro.kzg import SRS, batch_verify_openings, commit, open_at, verify_opening
from repro.plonk import CircuitBuilder, batch_verify, prove, setup, verify
from repro.r1cs import R1CSBuilder

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def instances():
    """Three proofs: two from one circuit, one from another."""
    srs = SRS.generate(64, tau=13579)

    def square(x_val, w_val):
        b = CircuitBuilder()
        x = b.public_input(x_val)
        w = b.var(w_val)
        b.assert_equal(b.mul(w, w), x)
        return b.compile()

    def cube(x_val, w_val):
        b = CircuitBuilder()
        x = b.public_input(x_val)
        w = b.var(w_val)
        b.assert_equal(b.mul(b.mul(w, w), w), x)
        return b.compile()

    layout_sq, a1 = square(9, 3)
    pk_sq, vk_sq = setup(srs, layout_sq)
    _, a2 = square(25, 5)
    layout_cu, a3 = cube(27, 3)
    pk_cu, vk_cu = setup(srs, layout_cu)

    return [
        (vk_sq, [9], prove(pk_sq, a1)),
        (vk_sq, [25], prove(pk_sq, a2)),
        (vk_cu, [27], prove(pk_cu, a3)),
    ]


class TestBatchVerify:
    def test_valid_batch_accepts(self, instances):
        assert batch_verify(instances)

    def test_empty_batch(self):
        assert batch_verify([])

    def test_single_item_matches_plain_verify(self, instances):
        vk, publics, proof = instances[0]
        assert verify(vk, publics, proof)
        assert batch_verify([instances[0]])

    def test_one_bad_proof_poisons_the_batch(self, instances):
        vk, publics, proof = instances[1]
        bad = proof.replace(c_a=proof.c_a + G1.generator())
        assert not batch_verify([instances[0], (vk, publics, bad), instances[2]])

    def test_wrong_publics_poison_the_batch(self, instances):
        vk, _, proof = instances[0]
        assert not batch_verify([(vk, [10], proof), instances[1]])
        assert not batch_verify([(vk, [], proof)])  # structural reject

    def test_mixed_srs_rejected(self, instances):
        other_srs = SRS.generate(32, tau=24680)
        b = CircuitBuilder()
        x = b.public_input(4)
        w = b.var(2)
        b.assert_equal(b.mul(w, w), x)
        layout, assignment = b.compile()
        pk, vk = setup(other_srs, layout)
        foreign = (vk, [4], prove(pk, assignment))
        with pytest.raises(VerificationError):
            batch_verify([instances[0], foreign])


def _g16_cube(x_value, y_value, w_value):
    """Statement: I know w with w^3 + w + 5 == x and w * x == y."""
    b = R1CSBuilder()
    x = b.public_input(x_value)
    y = b.public_input(y_value)
    w = b.var(w_value)
    w3 = b.mul(b.mul(w, w), w)
    b.assert_equal(b.linear_combination([(1, w3), (1, w)], 5), x)
    b.assert_equal(b.mul(w, x), y)
    return b.compile()


@pytest.fixture(scope="module")
def g16_instances():
    """Three Groth16 proofs of one circuit (distinct witnesses), plus keys."""
    system, _ = _g16_cube(35, 105, 3)
    pk, vk = groth16_setup(system)
    items = []
    for w in (2, 3, 4):
        x = w**3 + w + 5
        _, witness = _g16_cube(x, w * x, w)
        proof = groth16_prove(pk, witness)
        items.append((vk, witness.public_inputs, proof))
    return items


class TestGroth16VerifyBatch:
    def test_valid_batch_accepts(self, g16_instances):
        assert groth16_verify_batch(g16_instances)

    def test_empty_batch(self):
        assert groth16_verify_batch([])

    def test_single_item_matches_plain_verify(self, g16_instances):
        vk, publics, proof = g16_instances[0]
        assert groth16_verify(vk, publics, proof)
        assert groth16_verify_batch(g16_instances[:1])

    def test_one_poisoned_proof_poisons_the_batch(self, g16_instances):
        vk, publics, proof = g16_instances[1]
        bad = Groth16Proof(a=proof.a, b=proof.b, c=-proof.c)
        assert not groth16_verify_batch(
            [g16_instances[0], (vk, publics, bad), g16_instances[2]]
        )

    def test_wrong_publics_poison_the_batch(self, g16_instances):
        vk, _, proof = g16_instances[0]
        assert not groth16_verify_batch([(vk, [10, 20], proof), g16_instances[1]])
        # Wrong arity is a structural reject, not a fold failure.
        assert not groth16_verify_batch([(vk, [10], proof)])

    def test_mixed_verifying_keys_rejected(self, g16_instances):
        system, _ = _g16_cube(35, 105, 3)
        _, other_vk = groth16_setup(system)
        vk, publics, proof = g16_instances[0]
        with pytest.raises(VerificationError):
            groth16_verify_batch([g16_instances[1], (other_vk, publics, proof)])


@pytest.fixture(scope="module")
def kzg_openings():
    """An SRS plus several (commitment, z, value, proof) opening claims."""
    srs = SRS.generate(16, tau=11111)
    claims = []
    for i, coeffs in enumerate(([3, 1, 4, 1, 5], [2, 7, 1, 8], [1, 0, 0, 9])):
        c = commit(srs, coeffs)
        z = 100 + 17 * i
        value, proof = open_at(srs, coeffs, z)
        claims.append((c, z, value, proof))
    return srs, claims


class TestBatchVerifyOpenings:
    def test_valid_batch_accepts(self, kzg_openings):
        srs, claims = kzg_openings
        for claim in claims:  # each claim really is individually valid
            assert verify_opening(srs, *claim)
        assert batch_verify_openings(srs, claims)

    def test_empty_batch(self, kzg_openings):
        srs, _ = kzg_openings
        assert batch_verify_openings(srs, [])

    def test_single_claim(self, kzg_openings):
        srs, claims = kzg_openings
        assert batch_verify_openings(srs, claims[:1])

    def test_poisoned_value_rejects(self, kzg_openings):
        srs, claims = kzg_openings
        c, z, value, proof = claims[1]
        poisoned = list(claims)
        poisoned[1] = (c, z, (value + 1) % R, proof)
        assert not batch_verify_openings(srs, poisoned)

    def test_poisoned_proof_rejects(self, kzg_openings):
        srs, claims = kzg_openings
        c, z, value, proof = claims[2]
        poisoned = list(claims)
        poisoned[2] = (c, z, value, proof + G1.generator())
        assert not batch_verify_openings(srs, poisoned)

    def test_swapped_commitments_reject(self, kzg_openings):
        srs, claims = kzg_openings
        (c0, z0, v0, w0), (c1, z1, v1, w1) = claims[0], claims[1]
        assert not batch_verify_openings(srs, [(c1, z0, v0, w0), (c0, z1, v1, w1)])
