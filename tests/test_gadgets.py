"""Gadget tests: constraint satisfaction + native/circuit equivalence.

These tests validate circuits by direct constraint evaluation
(``layout.check``), which runs at field speed; full prove/verify round
trips over gadget circuits live in test_plonk_gadget_integration.py.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CircuitError, ReproError, UnsatisfiedConstraintError
from repro.field.fr import MODULUS as R
from repro.gadgets import arithmetic, boolean, comparison
from repro.gadgets.fixedpoint import (
    FixedPointSpec,
    fp_abs,
    fp_assert_le,
    fp_is_negative,
    fp_mul,
    fp_poly,
    fp_relu,
    fp_truncate,
    log_coefficients,
    sigmoid_coefficients,
)
from repro.gadgets.linalg import fp_matvec, fp_softmax, fp_vec_add, matvec_native
from repro.gadgets.merkle import MerkleTree, assert_merkle_membership
from repro.gadgets.mimc import assert_ctr_encryption, mimc_block
from repro.gadgets.poseidon import assert_commitment_opens, poseidon_hash_gadget, poseidon_permutation
from repro.plonk.circuit import CircuitBuilder
from repro.primitives import MiMC, Poseidon, commit, mimc_encrypt_ctr, poseidon_hash


def compile_ok(builder):
    layout, assignment = builder.compile()
    layout.check(assignment)
    return layout, assignment


class TestArithmetic:
    @pytest.mark.parametrize("exp", [0, 1, 2, 3, 7, 10, 31])
    def test_pow_const(self, exp):
        b = CircuitBuilder()
        x = b.var(3)
        out = arithmetic.pow_const(b, x, exp)
        assert b.value(out) == pow(3, exp, R)
        compile_ok(b)

    def test_sum_product_dot(self):
        b = CircuitBuilder()
        xs = [b.var(v) for v in (2, 3, 4)]
        ys = [b.var(v) for v in (5, 6, 7)]
        assert b.value(arithmetic.sum_wires(b, xs)) == 9
        assert b.value(arithmetic.product(b, xs)) == 24
        assert b.value(arithmetic.dot(b, xs, ys)) == 2 * 5 + 3 * 6 + 4 * 7
        assert b.value(arithmetic.product(b, [])) == 1
        assert b.value(arithmetic.dot(b, [], [])) == 0
        compile_ok(b)

    def test_dot_length_mismatch(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            arithmetic.dot(b, [b.var(1)], [])

    def test_horner(self):
        b = CircuitBuilder()
        coeffs = [b.var(v) for v in (1, 2, 3)]  # 1 + 2x + 3x^2
        x = b.var(5)
        out = arithmetic.horner(b, coeffs, x)
        assert b.value(out) == 1 + 10 + 75
        compile_ok(b)


class TestBoolean:
    def test_num_to_bits_roundtrip(self):
        b = CircuitBuilder()
        x = b.var(0b101101)
        bits = boolean.num_to_bits(b, x, 8)
        assert [b.value(w) for w in bits] == [1, 0, 1, 1, 0, 1, 0, 0]
        back = boolean.bits_to_num(b, bits)
        assert b.value(back) == 0b101101
        compile_ok(b)

    def test_num_to_bits_overflow_rejected(self):
        b = CircuitBuilder()
        x = b.var(300)
        with pytest.raises(CircuitError):
            boolean.num_to_bits(b, x, 8)

    @pytest.mark.parametrize(
        "op,table",
        [
            (boolean.and_gate, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (boolean.or_gate, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (boolean.xor_gate, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ],
    )
    def test_logic_gates(self, op, table):
        b = CircuitBuilder()
        for (x, y), expected in table.items():
            assert b.value(op(b, b.var(x), b.var(y))) == expected
        compile_ok(b)

    def test_not_and_is_zero(self):
        b = CircuitBuilder()
        assert b.value(boolean.not_gate(b, b.var(1))) == 0
        assert b.value(boolean.is_zero(b, b.var(0))) == 1
        assert b.value(boolean.is_zero(b, b.var(17))) == 0
        assert b.value(boolean.is_equal(b, b.var(4), b.var(4))) == 1
        assert b.value(boolean.is_equal(b, b.var(4), b.var(5))) == 0
        compile_ok(b)

    def test_select(self):
        b = CircuitBuilder()
        t, f = b.var(10), b.var(20)
        assert b.value(boolean.select(b, b.var(1), t, f)) == 10
        assert b.value(boolean.select(b, b.var(0), t, f)) == 20
        compile_ok(b)

    def test_assert_all_distinct(self):
        b = CircuitBuilder()
        boolean.assert_all_distinct(b, [b.var(v) for v in (1, 2, 3)])
        compile_ok(b)

    def test_assert_all_distinct_fails_on_duplicate(self):
        b = CircuitBuilder()
        # assert_not_zero on zero makes the witness itself inconsistent.
        with pytest.raises(UnsatisfiedConstraintError):
            boolean.assert_all_distinct(b, [b.var(1), b.var(1)])
            b.compile()


class TestComparison:
    @pytest.mark.parametrize("a,b_,expected", [(3, 5, 1), (5, 3, 0), (4, 4, 0), (0, 1, 1)])
    def test_less_than(self, a, b_, expected):
        builder = CircuitBuilder()
        out = comparison.less_than(builder, builder.var(a), builder.var(b_), 8)
        assert builder.value(out) == expected
        compile_ok(builder)

    def test_less_or_equal(self):
        builder = CircuitBuilder()
        assert builder.value(
            comparison.less_or_equal(builder, builder.var(4), builder.var(4), 8)
        ) == 1
        compile_ok(builder)

    def test_assert_less_than(self):
        builder = CircuitBuilder()
        comparison.assert_less_than(builder, builder.var(2), builder.var(9), 8)
        compile_ok(builder)

    def test_abs_diff(self):
        builder = CircuitBuilder()
        assert builder.value(
            comparison.abs_diff(builder, builder.var(3), builder.var(10), 8)
        ) == 7
        assert builder.value(
            comparison.abs_diff(builder, builder.var(10), builder.var(3), 8)
        ) == 7
        compile_ok(builder)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_less_than_property(self, a, b_):
        builder = CircuitBuilder()
        out = comparison.less_than(builder, builder.var(a), builder.var(b_), 8)
        assert builder.value(out) == (1 if a < b_ else 0)
        compile_ok(builder)


class TestMiMCGadget:
    def test_block_matches_native(self):
        b = CircuitBuilder()
        key, block = 111, 222
        out = mimc_block(b, b.var(key), b.var(block), rounds=8)
        assert b.value(out) == MiMC(rounds=8).encrypt_block(key, block)
        compile_ok(b)

    def test_block_matches_native_full_rounds(self):
        b = CircuitBuilder()
        out = mimc_block(b, b.var(5), b.var(6))
        assert b.value(out) == MiMC().encrypt_block(5, 6)
        compile_ok(b)

    def test_ctr_encryption_constraint(self):
        key, nonce = 99, 1000
        plaintext = [10, 20, 30]
        ct = mimc_encrypt_ctr(key, plaintext, nonce)
        b = CircuitBuilder()
        k = b.var(key)
        pts = [b.var(p) for p in plaintext]
        nw = b.var(nonce)
        cts = [b.public_input(c) for c in ct.blocks]
        assert_ctr_encryption(b, k, pts, nw, cts)
        compile_ok(b)

    def test_ctr_encryption_wrong_ciphertext_fails(self):
        key, nonce = 99, 1000
        ct = mimc_encrypt_ctr(key, [10], nonce)
        b = CircuitBuilder()
        cts = [b.public_input((ct.blocks[0] + 1) % R)]
        assert_ctr_encryption(b, b.var(key), [b.var(10)], b.var(nonce), cts)
        with pytest.raises(UnsatisfiedConstraintError):
            b.compile()

    def test_length_mismatch(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            assert_ctr_encryption(b, b.var(1), [b.var(2)], b.var(3), [])


class TestPoseidonGadget:
    def test_permutation_matches_native(self):
        b = CircuitBuilder()
        state = [b.var(v) for v in (1, 2, 3)]
        out = poseidon_permutation(b, state)
        native = Poseidon.get(3).permute([1, 2, 3])
        assert [b.value(w) for w in out] == native
        compile_ok(b)

    @pytest.mark.parametrize("inputs", [[], [5], [1, 2], [1, 2, 3, 4, 5]])
    def test_hash_matches_native(self, inputs):
        b = CircuitBuilder()
        wires = [b.var(v) for v in inputs]
        out = poseidon_hash_gadget(b, wires)
        assert b.value(out) == poseidon_hash(inputs)
        compile_ok(b)

    def test_commitment_open_gadget(self):
        message = [7, 8, 9]
        c, o = commit(message, blinder=4242)
        b = CircuitBuilder()
        msg = [b.var(v) for v in message]
        cw = b.public_input(c.value)
        ow = b.var(o)
        assert_commitment_opens(b, msg, cw, ow)
        compile_ok(b)

    def test_commitment_open_gadget_rejects_bad_blinder(self):
        c, o = commit([7], blinder=4242)
        b = CircuitBuilder()
        assert_commitment_opens(b, [b.var(7)], b.public_input(c.value), b.var(o + 1))
        with pytest.raises(UnsatisfiedConstraintError):
            b.compile()


class TestMerkle:
    def test_native_tree_and_proofs(self):
        tree = MerkleTree([10, 20, 30, 40])
        for i, leaf in enumerate((10, 20, 30, 40)):
            proof = tree.prove(i)
            assert MerkleTree.verify(tree.root, leaf, proof)
            assert not MerkleTree.verify(tree.root, leaf + 1, proof)

    def test_tree_rejects_bad_shapes(self):
        with pytest.raises(ReproError):
            MerkleTree([])
        with pytest.raises(ReproError):
            MerkleTree([1, 2, 3], depth=1)
        with pytest.raises(ReproError):
            MerkleTree([1, 2]).prove(5)

    def test_padding_leaves(self):
        tree = MerkleTree([10, 20, 30], depth=3)
        assert MerkleTree.verify(tree.root, 30, tree.prove(2))
        assert MerkleTree.verify(tree.root, 0, tree.prove(7))

    def test_membership_gadget(self):
        tree = MerkleTree([10, 20, 30, 40])
        proof = tree.prove(2)
        b = CircuitBuilder()
        root = b.public_input(tree.root)
        leaf = b.var(30)
        assert_merkle_membership(b, root, leaf, proof)
        compile_ok(b)

    def test_membership_gadget_rejects_wrong_leaf(self):
        tree = MerkleTree([10, 20, 30, 40])
        proof = tree.prove(2)
        b = CircuitBuilder()
        assert_merkle_membership(b, b.public_input(tree.root), b.var(31), proof)
        with pytest.raises(UnsatisfiedConstraintError):
            b.compile()


class TestFixedPoint:
    spec = FixedPointSpec(frac_bits=12, int_bits=12)

    def test_encode_decode(self):
        s = self.spec
        assert abs(s.decode(s.encode(1.5)) - 1.5) < 1e-3
        assert abs(s.decode(s.encode(-2.75)) + 2.75) < 1e-3
        with pytest.raises(CircuitError):
            s.encode(1e9)

    # Products must stay within int_bits = 12 (|x*y| < 2048), so draw from
    # a comfortably in-range box.
    @given(st.floats(-40, 40), st.floats(-40, 40))
    @settings(max_examples=25, deadline=None)
    def test_mul_gadget_matches_native(self, x, y):
        s = self.spec
        a, bb = s.encode(x), s.encode(y)
        b = CircuitBuilder()
        out = fp_mul(b, b.var(a), b.var(bb), s)
        assert b.value(out) == s.mul_native(a, bb)
        compile_ok(b)
        assert abs(s.decode(b.value(out)) - x * y) < 0.1

    def test_truncate_negative_floor(self):
        s = self.spec
        b = CircuitBuilder()
        raw = (-5) % R  # -5 / 2^12 truncates (floors) to -1
        out = fp_truncate(b, b.var(raw), s)
        assert s.to_signed(b.value(out)) == -1
        compile_ok(b)

    def test_is_negative_abs_relu(self):
        s = self.spec
        b = CircuitBuilder()
        pos, neg = b.var(s.encode(2.0)), b.var(s.encode(-2.0))
        assert b.value(fp_is_negative(b, pos, s)) == 0
        assert b.value(fp_is_negative(b, neg, s)) == 1
        assert s.decode(b.value(fp_abs(b, neg, s))) == 2.0
        assert s.decode(b.value(fp_relu(b, neg, s))) == 0.0
        assert s.decode(b.value(fp_relu(b, pos, s))) == 2.0
        compile_ok(b)

    def test_assert_le(self):
        s = self.spec
        b = CircuitBuilder()
        fp_assert_le(b, b.var(s.encode(-3.0)), b.var(s.encode(0.5)), s)
        compile_ok(b)
        b2 = CircuitBuilder()
        fp_assert_le(b2, b2.var(s.encode(1.0)), b2.var(s.encode(0.5)), s)
        with pytest.raises(UnsatisfiedConstraintError):
            b2.compile()

    def test_poly_gadget_matches_native(self):
        s = self.spec
        coeffs = sigmoid_coefficients(s)
        x = s.encode(0.7)
        b = CircuitBuilder()
        out = fp_poly(b, coeffs, b.var(x), s)
        assert b.value(out) == s.poly_native(coeffs, x)
        compile_ok(b)
        # Approximation sanity: sigmoid(0.7) ~ 0.668.
        assert abs(s.decode(b.value(out)) - 0.668) < 0.01

    def test_log_approximation(self):
        import math

        s = FixedPointSpec(frac_bits=16, int_bits=8)
        coeffs = log_coefficients(s)
        for x in (0.3, 0.5, 0.7):
            val = s.poly_native(coeffs, s.encode(x))
            assert abs(s.decode(val) - math.log(x)) < 0.05


class TestLinalg:
    spec = FixedPointSpec(frac_bits=12, int_bits=12)

    def test_dot_and_matvec_match_native(self):
        s = self.spec
        mat = [[s.encode(v) for v in row] for row in [[1.0, 2.0], [0.5, -1.5]]]
        vec = [s.encode(v) for v in [3.0, 4.0]]
        b = CircuitBuilder()
        mat_w = [[b.var(v) for v in row] for row in mat]
        vec_w = [b.var(v) for v in vec]
        out = fp_matvec(b, mat_w, vec_w, s)
        native = matvec_native(mat, vec, s)
        assert [b.value(w) for w in out] == native
        assert abs(s.decode(native[0]) - 11.0) < 0.01
        assert abs(s.decode(native[1]) + 4.5) < 0.01
        compile_ok(b)

    def test_vec_add(self):
        b = CircuitBuilder()
        out = fp_vec_add(b, [b.var(1), b.var(2)], [b.var(3), b.var(4)])
        assert [b.value(w) for w in out] == [4, 6]
        with pytest.raises(CircuitError):
            fp_vec_add(b, [b.var(1)], [])

    def test_softmax_sums_to_one(self):
        s = self.spec
        b = CircuitBuilder()
        xs = [b.var(s.encode(v)) for v in (0.2, -0.3, 0.5)]
        out = fp_softmax(b, xs, s)
        vals = [s.decode(b.value(w)) for w in out]
        assert abs(sum(vals) - 1.0) < 0.05
        assert all(v > 0 for v in vals)
        # Larger logits get larger mass.
        assert vals[2] > vals[0] > vals[1]
        compile_ok(b)
