"""The run ledger: schema round-trips, per-run attribution, fault capture.

The fast tests exercise the ledger machinery directly (snapshot
differencing, cache-rate derivation, writer sequencing, schema
filtering).  The integration tests then run the real KeySecure exchange
with ``REPRO_LEDGER`` pointed at a temp file and assert the contract the
telemetry CLI depends on: exactly one record per exchange, carrying the
span tree and the per-run metric deltas.  The chaos-marked test closes
the loop with the fault plane — every injected fault must land in the
record's ``faults`` list, which is what makes a ledger line a usable
incident report.
"""

import json

import pytest

from repro import faults, telemetry
from repro.chain import Blockchain
from repro.contracts import KeySecureArbiterContract, PlonkVerifierContract
from repro.core.exchange import Buyer, KeySecureExchange, Seller, key_negotiation_keys
from repro.core.tokens import DataAsset
from repro.faults import FaultPlan
from repro.telemetry import ledger


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Isolate each test: reset level/metrics/spans, detach REPRO_LEDGER."""
    monkeypatch.delenv(ledger.ENV_VAR, raising=False)
    previous = telemetry.set_level(telemetry.OFF)
    telemetry.reset_metrics()
    telemetry.clear_finished()
    yield
    telemetry.set_level(previous)
    telemetry.reset_metrics()
    telemetry.clear_finished()


def _market(snark_ctx):
    chain = Blockchain()
    operator = chain.create_account(funded=10**12)
    verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
    chain.deploy(verifier, operator)
    arbiter = KeySecureArbiterContract(verifier)
    chain.deploy(arbiter, operator)
    seller_addr = chain.create_account(funded=10**9)
    buyer_addr = chain.create_account(funded=10**9)
    return chain, arbiter, seller_addr, buyer_addr


def _run_exchange(snark_ctx):
    chain, arbiter, seller_addr, buyer_addr = _market(snark_ctx)
    asset = DataAsset.create([42, 84], key=555, nonce=666)
    asset.uri = "u"
    seller = Seller(snark_ctx, asset, seller_addr)
    buyer = Buyer(snark_ctx, asset.public_view(), buyer_addr)
    protocol = KeySecureExchange(snark_ctx, chain, arbiter)
    return protocol.run(seller, buyer, price=5000)


# ----- snapshot differencing -------------------------------------------------


class TestDiffSnapshots:
    def test_counters_subtract_and_drop_zero_deltas(self):
        before = {"counters": {"a": 3, "untouched": 7}, "histograms": {}}
        after = {"counters": {"a": 5, "untouched": 7, "new": 2}, "histograms": {}}
        delta = ledger.diff_snapshots(before, after)
        assert delta["counters"] == {"a": 2, "new": 2}

    def test_histograms_rederive_mean_and_quantiles_from_delta(self):
        telemetry.set_level(telemetry.METRICS)
        h = telemetry.histogram("lat", bounds=(1.0, 4.0))
        h.observe(0.5)  # pre-run noise: huge relative to the run itself
        h.observe(0.5)
        before = telemetry.snapshot()
        h.observe(3.0)  # the run's only observation
        delta = ledger.diff_snapshots(before, telemetry.snapshot())
        entry = delta["histograms"]["lat"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(3.0)
        assert entry["mean"] == pytest.approx(3.0)
        assert entry["buckets"] == {"le_1": 0, "le_4": 1, "inf": 0}
        # Quantiles come from the delta buckets, not process lifetime.
        assert 1.0 <= entry["p50"] <= 4.0

    def test_untouched_histogram_is_dropped(self):
        telemetry.set_level(telemetry.METRICS)
        telemetry.histogram("idle", bounds=(1.0,)).observe(0.2)
        before = telemetry.snapshot()
        delta = ledger.diff_snapshots(before, telemetry.snapshot())
        assert delta == {"counters": {}, "histograms": {}}

    def test_cache_hit_rates_parse_engine_cache_counters(self):
        rates = ledger.cache_hit_rates(
            {
                "engine.cache.hits{cache=ntt_plan}": 9,
                "engine.cache.misses{cache=ntt_plan}": 1,
                "engine.cache.misses{cache=coset_eval}": 4,
                "engine.ntt.calls{kind=fft}": 100,  # unrelated counter
            }
        )
        assert rates == {"ntt_plan": 0.9, "coset_eval": 0.0}


# ----- writer / reader -------------------------------------------------------


class TestWriter:
    def test_schema_round_trip(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        book = ledger.Ledger(path)
        first = book.append({"name": "demo", "attrs": {"ok": True}})
        second = book.append({"name": "demo"})
        assert first["schema"] == ledger.SCHEMA
        assert first["schema_version"] == ledger.SCHEMA_VERSION
        assert [first["seq"], second["seq"]] == [0, 1]
        records = ledger.read(path)
        assert records == [first, second]
        # Every line is standalone JSON (the append-only JSONL contract).
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == ledger.SCHEMA for line in lines)

    def test_reader_skips_foreign_schemas(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"schema": "other.tool", "x": 1})
            + "\n\n"
            + json.dumps({"schema": ledger.SCHEMA, "schema_version": 1, "name": "keep"})
            + "\n"
        )
        records = ledger.read(str(path))
        assert [r["name"] for r in records] == ["keep"]

    def test_writer_registry_keeps_sequence_across_begins(self, tmp_path):
        path = str(tmp_path / "seq.jsonl")
        ledger.begin("a", path=path).finish()
        ledger.begin("b", path=path).finish()
        assert [r["seq"] for r in ledger.read(path)] == [0, 1]

    def test_begin_without_path_is_noop(self):
        rec = ledger.begin("nothing")
        assert rec is ledger.NOOP_RECORDER
        assert rec.finish(success=True) == {}

    def test_env_var_enables_default_path(self, tmp_path, monkeypatch):
        target = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(ledger.ENV_VAR, target)
        assert ledger.default_path() == target
        assert ledger.enabled()
        ledger.begin("via-env").finish(ok=1)
        assert [r["name"] for r in ledger.read(target)] == ["via-env"]


class TestRunRecorder:
    def test_record_carries_deltas_spans_and_env(self, tmp_path):
        telemetry.set_level(telemetry.TRACE)
        telemetry.counter("warmup").inc(10)  # pre-run noise
        rec = ledger.begin("unit.run", path=str(tmp_path / "r.jsonl"))
        with telemetry.span("unit.root") as root:
            telemetry.counter("warmup").inc(2)
            with telemetry.span("unit.child"):
                pass
        record = rec.finish(span=root, success=True, gas_used=7)
        assert record["name"] == "unit.run"
        assert record["attrs"] == {"success": True, "gas_used": 7}
        assert record["metrics"]["counters"] == {"warmup": 2}
        assert {"substrate", "backend", "git_revision", "telemetry_level", "pid"} <= set(
            record["env"]
        )
        names = [s["name"] for s in record["spans"]]
        assert names == ["unit.root", "unit.child"]
        assert record["faults"] == []

    def test_non_span_serialises_as_empty_spans(self, tmp_path):
        rec = ledger.begin("quiet.run", path=str(tmp_path / "r.jsonl"))
        record = rec.finish(span=telemetry.NOOP_SPAN)
        assert record["spans"] == []


# ----- the real exchange writes exactly one record ---------------------------


@pytest.mark.slow
class TestExchangeIntegration:
    def test_one_record_per_exchange_under_traced_flow(
        self, tmp_path, monkeypatch, snark_ctx
    ):
        path = str(tmp_path / "exchange.jsonl")
        monkeypatch.setenv(ledger.ENV_VAR, path)
        telemetry.set_level(telemetry.TRACE)
        result = _run_exchange(snark_ctx)
        assert result.success
        records = ledger.read(path)
        assert len(records) == 1
        (record,) = records
        assert record["name"] == "exchange.keysecure"
        assert record["attrs"]["success"] is True
        assert record["attrs"]["gas_used"] == result.gas_used
        # The span tree roots at exchange.run and includes both proofs.
        roots = [s for s in record["spans"] if s["parent"] is None]
        assert [s["name"] for s in roots] == ["exchange.run"]
        names = {s["name"] for s in record["spans"]}
        assert {"exchange.prove", "plonk.prove", "plonk.verify"} <= names
        # Metric deltas attribute to this run: kernels were exercised.
        counters = record["metrics"]["counters"]
        assert counters.get("engine.pairing.calls", 0) >= 1
        assert any(k.startswith("engine.ntt.calls") for k in counters)
        assert "engine.kernel.seconds{kernel=pairing_check}" in record["metrics"][
            "histograms"
        ]
        assert record["cache_hit_rates"]  # at least one cache exercised
        assert record["faults"] == []

    def test_second_exchange_appends_a_second_record(
        self, tmp_path, monkeypatch, snark_ctx
    ):
        path = str(tmp_path / "two.jsonl")
        monkeypatch.setenv(ledger.ENV_VAR, path)
        telemetry.set_level(telemetry.METRICS)
        assert _run_exchange(snark_ctx).success
        assert _run_exchange(snark_ctx).success
        records = ledger.read(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert [r["name"] for r in records] == ["exchange.keysecure"] * 2


# ----- chaos: injected faults land in the record -----------------------------


@pytest.mark.chaos
@pytest.mark.slow
class TestChaosLedger:
    def test_injected_faults_are_recorded(self, tmp_path, monkeypatch, snark_ctx):
        path = str(tmp_path / "chaos.jsonl")
        monkeypatch.setenv(ledger.ENV_VAR, path)
        telemetry.set_level(telemetry.METRICS)
        chain, arbiter, seller_addr, buyer_addr = _market(snark_ctx)
        asset = DataAsset.create([42, 84], key=555, nonce=666)
        asset.uri = "u"
        seller = Seller(snark_ctx, asset, seller_addr)
        buyer = Buyer(snark_ctx, asset.public_view(), buyer_addr)
        protocol = KeySecureExchange(snark_ctx, chain, arbiter)
        with faults.use_plan(FaultPlan.profile("chain", seed=20220707)) as injector:
            protocol.run(seller, buyer, price=5000)
        records = ledger.read(path)
        assert len(records) == 1
        (record,) = records
        # Exactly the faults the injector logged during the run, in order.
        recorded = [(f["sequence"], f["site"], f["kind"]) for f in record["faults"]]
        expected = [(f.sequence, f.site, f.kind) for f in injector.log]
        assert recorded == expected
        for fault in record["faults"]:
            assert {"sequence", "site", "kind", "rule_index"} <= set(fault)
