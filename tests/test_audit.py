"""Tests for the marketplace audit API (buyer-side due diligence)."""

import pytest

from repro.core.marketplace import ZKDETMarketplace
from repro.core.transformations import Duplication

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def audited_market(snark_ctx):
    market = ZKDETMarketplace(snark_ctx)
    alice = market.register_participant()
    source = market.publish_dataset(alice, [77, 88])
    derived, _pi_t = market.transform(alice, [source], Duplication())
    return market, alice, source, derived[0]


class TestAudit:
    def test_clean_lineage_passes(self, audited_market):
        market, _alice, source, derived = audited_market
        report = market.audit(derived.token_id)
        assert report.ok, report.failed_checks()
        descriptions = [d for d, _ in report.checks]
        assert any("pi_e" in d for d in descriptions)
        assert any("pi_t" in d for d in descriptions)
        # Source audits cleanly too (no lineage to check).
        assert market.audit(source.token_id).ok

    def test_unknown_token_fails(self, audited_market):
        market, *_ = audited_market
        report = market.audit(999999)
        assert not report.ok
        assert "token exists on chain" in report.failed_checks()

    def test_tampered_storage_fails_audit(self, audited_market):
        market, alice, source, _derived = audited_market
        market.storage.tamper(source.asset.uri, b"corrupted")
        report = market.audit(source.token_id)
        assert not report.ok
        assert any("ciphertext" in d for d in report.failed_checks())
        # Restore for other tests.
        market.storage.put(source.asset.serialized_ciphertext(), owner=alice)

    def test_missing_pi_t_detected(self, audited_market):
        market, _alice, _source, derived = audited_market
        stashed = market._pi_t_registry.pop(derived.token_id)
        try:
            report = market.audit(derived.token_id)
            assert not report.ok
            assert any("pi_t published" in d for d in report.failed_checks())
        finally:
            market._pi_t_registry[derived.token_id] = stashed

    def test_forged_registry_proof_detected(self, audited_market):
        market, _alice, source, derived = audited_market
        transformation, pi_t, source_ids = market._pi_t_registry[derived.token_id]
        forged = pi_t.__class__(
            proof=pi_t.proof,
            transformation_name=pi_t.transformation_name,
            source_sizes=pi_t.source_sizes,
            derived_sizes=pi_t.derived_sizes,
            source_commitments=(12345,),  # not what the chain records
            derived_commitments=pi_t.derived_commitments,
        )
        market._pi_t_registry[derived.token_id] = (transformation, forged, source_ids)
        try:
            report = market.audit(derived.token_id)
            assert not report.ok
        finally:
            market._pi_t_registry[derived.token_id] = (transformation, pi_t, source_ids)
