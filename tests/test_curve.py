"""Tests for the BN254 curve substrate: groups, MSM, tower fields, pairing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curve import G1, G2, msm_g1, pairing, pairing_check
from repro.curve.fq import FQ2_ONE, Q, fq2_inv, fq2_mul, fq2_pow
from repro.curve.fq12 import FQ12_ONE, fq12, fq12_eq, fq12_inv, fq12_mul, fq12_pow
from repro.curve.msm import msm_jacobian
from repro.errors import CurveError
from repro.field.fr import MODULUS as R

scalars = st.integers(min_value=0, max_value=R - 1)


class TestG1:
    def test_generator_on_curve_and_order(self):
        g = G1.generator()
        assert (g * R).inf
        assert not (g * (R - 1)).inf

    def test_group_law(self):
        g = G1.generator()
        assert g + g == g * 2
        assert g * 2 + g == g * 3
        assert g - g == G1.identity()
        assert g + G1.identity() == g
        assert -(-g) == g
        assert (g * 5) + (g * 7) == g * 12

    @given(scalars, scalars)
    @settings(max_examples=10, deadline=None)
    def test_scalar_mul_distributes(self, a, b):
        g = G1.generator()
        assert g * a + g * b == g * ((a + b) % R)

    def test_rejects_off_curve_point(self):
        with pytest.raises(CurveError):
            G1(1, 3)

    def test_serialisation_roundtrip(self):
        g = G1.generator() * 12345
        assert G1.from_bytes(g.to_bytes()) == g
        assert G1.from_bytes(G1.identity().to_bytes()).inf
        with pytest.raises(CurveError):
            G1.from_bytes(b"\x01" * 63)

    def test_scalar_reduced_mod_r(self):
        g = G1.generator()
        assert g * (R + 3) == g * 3
        assert (g * 0).inf


class TestG2:
    def test_generator_on_curve_and_order(self):
        h = G2.generator()
        assert (h * R).inf
        assert h.in_subgroup()

    def test_group_law(self):
        h = G2.generator()
        assert h + h == h * 2
        assert h * 3 - h == h * 2
        assert h + G2.identity() == h
        assert -(-h) == h

    def test_rejects_off_curve_point(self):
        with pytest.raises(CurveError):
            G2((1, 0), (1, 0))

    def test_serialisation_roundtrip(self):
        h = G2.generator() * 99
        assert G2.from_bytes(h.to_bytes()) == h
        assert G2.from_bytes(G2.identity().to_bytes()).inf


class TestTowerFields:
    def test_fq2_inverse(self):
        a = (12345, 67890)
        assert fq2_mul(a, fq2_inv(a)) == FQ2_ONE

    def test_fq2_frobenius_is_conjugation(self):
        a = (12345, 67890)
        frob = fq2_pow(a, Q)
        assert frob == (a[0], -a[1] % Q)

    def test_fq12_mul_one_and_inverse(self):
        a = fq12(list(range(1, 13)))
        assert fq12_eq(fq12_mul(a, FQ12_ONE), a)
        assert fq12_eq(fq12_mul(a, fq12_inv(a)), FQ12_ONE)

    def test_fq12_pow_laws(self):
        a = fq12([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8])
        assert fq12_eq(fq12_mul(fq12_pow(a, 5), fq12_pow(a, 7)), fq12_pow(a, 12))
        assert fq12_eq(fq12_pow(a, 0), FQ12_ONE)

    def test_fq12_associativity(self):
        a = fq12(list(range(2, 14)))
        b = fq12(list(range(5, 17)))
        c = fq12(list(range(11, 23)))
        assert fq12_eq(fq12_mul(fq12_mul(a, b), c), fq12_mul(a, fq12_mul(b, c)))


class TestMSM:
    def test_msm_matches_naive(self):
        g = G1.generator()
        points = [g * i for i in range(1, 40)]
        ks = [(i * 7919 + 13) % R for i in range(1, 40)]
        expected = G1.identity()
        for p, k in zip(points, ks):
            expected = expected + p * k
        assert msm_g1(points, ks) == expected

    def test_msm_empty_and_zero_scalars(self):
        assert msm_g1([], []) == G1.identity()
        g = G1.generator()
        assert msm_g1([g, g * 2], [0, 0]) == G1.identity()

    def test_msm_single_point(self):
        g = G1.generator()
        assert msm_g1([g], [42]) == g * 42

    def test_msm_mismatched_lengths(self):
        with pytest.raises(CurveError):
            msm_g1([G1.generator()], [1, 2])

    def test_msm_jacobian_with_infinity(self):
        g = G1.generator().to_jacobian()
        inf = (1, 1, 0)
        out = msm_jacobian([g, inf], [5, 9])
        assert G1.from_jacobian(out) == G1.generator() * 5


@pytest.mark.slow
class TestPairing:
    def test_bilinearity(self):
        g1, g2 = G1.generator(), G2.generator()
        lhs = pairing(g1 * 6, g2)
        rhs = pairing(g1, g2 * 6)
        assert fq12_eq(lhs, rhs)
        base = pairing(g1, g2)
        assert fq12_eq(lhs, fq12_pow(base, 6))

    def test_nondegeneracy(self):
        e = pairing(G1.generator(), G2.generator())
        assert not fq12_eq(e, FQ12_ONE)
        assert fq12_eq(fq12_pow(e, R), FQ12_ONE)

    def test_identity_inputs(self):
        assert fq12_eq(pairing(G1.identity(), G2.generator()), FQ12_ONE)
        assert fq12_eq(pairing(G1.generator(), G2.identity()), FQ12_ONE)

    def test_pairing_check_product(self):
        g1, g2 = G1.generator(), G2.generator()
        # e(aG, bH) * e(-abG, H) == 1
        a, b = 5, 11
        assert pairing_check([(g1 * a, g2 * b), (-(g1 * (a * b)), g2)])
        assert not pairing_check([(g1 * a, g2 * b), (-(g1 * (a * b + 1)), g2)])

    def test_pairing_type_check(self):
        with pytest.raises(CurveError):
            pairing(G2.generator(), G1.generator())
