"""Property-based tests of the Plonk circuit builder's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.events import Event
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder, K1, K2

elements = st.integers(min_value=0, max_value=R - 1)

# A random program: sequence of (op, value) instructions applied to a
# rolling stack of wires.
ops = st.lists(
    st.tuples(st.sampled_from(["var", "add", "mul", "sub", "scale", "const"]), elements),
    min_size=1,
    max_size=25,
)


def _run_program(program):
    builder = CircuitBuilder()
    stack = [builder.var(1)]
    for op, value in program:
        if op == "var":
            stack.append(builder.var(value))
        elif op == "const":
            stack.append(builder.constant(value % 1000))
        elif op == "scale":
            stack.append(builder.scale(stack[-1], value))
        elif len(stack) >= 2:
            a, b = stack[-2], stack[-1]
            fn = {"add": builder.add, "mul": builder.mul, "sub": builder.sub}[op]
            stack.append(fn(a, b))
    return builder


class TestBuilderInvariants:
    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_any_program_compiles_satisfied(self, program):
        """Synthesis-style building can never produce an unsatisfied
        witness: values are computed together with constraints."""
        builder = _run_program(program)
        layout, assignment = builder.compile()
        layout.check(assignment)  # must not raise

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_sigma_is_always_a_permutation(self, program):
        layout, _ = _run_program(program).compile()
        assert sorted(layout.sigma) == list(range(3 * layout.n))

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_n_is_power_of_two_and_covers_gates(self, program):
        builder = _run_program(program)
        gates = builder.num_gates
        layout, assignment = builder.compile()
        assert layout.n >= max(gates, 4)
        assert layout.n & (layout.n - 1) == 0
        assert len(assignment.a) == layout.n

    @given(ops, ops)
    @settings(max_examples=20, deadline=None)
    def test_digest_distinguishes_structures(self, p1, p2):
        l1, _ = _run_program(p1).compile()
        l2, _ = _run_program(p2).compile()
        structure1 = (l1.ql, l1.qr, l1.qo, l1.qm, l1.qc, l1.sigma, l1.ell)
        structure2 = (l2.ql, l2.qr, l2.qo, l2.qm, l2.qc, l2.sigma, l2.ell)
        assert (l1.digest() == l2.digest()) == (structure1 == structure2)

    def test_permutation_cosets_are_valid(self):
        # K1, K2 must lie outside every 2-adic subgroup and in distinct
        # cosets — the import-time search guarantees it; re-verify here.
        full = 1 << 28
        assert pow(K1, full, R) != 1
        assert pow(K2, full, R) != 1
        assert pow(K1 * pow(K2, R - 2, R) % R, full, R) != 1


class TestEvents:
    def test_get_and_as_dict(self):
        e = Event("0xabc", "Transfer", (("frm", "a"), ("to", "b")))
        assert e.get("frm") == "a"
        assert e.get("missing", 42) == 42
        assert e.as_dict() == {"frm": "a", "to": "b"}
