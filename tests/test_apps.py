"""Tests for the data-processing applications (Section IV-E).

Most checks run at constraint-satisfaction speed; one full pi_t
prove/verify per application is marked slow.
"""

import pytest

from repro.errors import ProtocolError, UnsatisfiedConstraintError
from repro.apps.logistic import LogisticRegressionTask, logistic_processing
from repro.apps.transformer import TransformerBlock, transformer_processing
from repro.plonk.circuit import CircuitBuilder


@pytest.fixture(scope="module")
def task():
    return LogisticRegressionTask(
        xs=[[0.5], [1.5], [-0.5], [-1.5]],
        ys=[1, 1, 0, 0],
        learning_rate=0.8,
        epsilon=0.05,
    )


@pytest.fixture(scope="module")
def trained_beta(task):
    return task.train(iterations=30)


class TestLogisticRegression:
    def test_training_separates_the_classes(self, task, trained_beta):
        spec = task.spec
        slope = spec.decode(trained_beta[1])
        assert slope > 0.5  # positive class has positive x
        assert task.loss_of(trained_beta) < 0.2

    def test_convergence_predicate_native(self, task, trained_beta):
        assert task.converged(trained_beta)
        # An untrained model is NOT converged.
        assert not task.converged([spec_encode for spec_encode in [0, 0]])

    def test_predicate_circuit_satisfied(self, task, trained_beta):
        proc = logistic_processing(task, iterations=30)
        flat = task.encode_dataset()
        derived = proc.apply([flat])
        assert derived == [trained_beta]
        b = CircuitBuilder()
        src = [[b.var(v) for v in flat]]
        dst = [[b.var(v) for v in derived[0]]]
        proc.constrain(b, src, dst)
        layout, assignment = b.compile()
        layout.check(assignment)

    def test_predicate_circuit_rejects_bad_model(self, task):
        from repro.errors import CircuitError

        proc = logistic_processing(task)
        flat = task.encode_dataset()
        bogus = [task.spec.encode(0.0), task.spec.encode(-1.0)]  # wrong sign
        b = CircuitBuilder()
        src = [[b.var(v) for v in flat]]
        dst = [[b.var(v) for v in bogus]]
        # Either the convergence bound fails or a range check trips —
        # both mean no witness exists for the bogus model.
        with pytest.raises((UnsatisfiedConstraintError, CircuitError)):
            proc.constrain(b, src, dst)
            b.compile()

    def test_dataset_encoding_shape(self, task):
        flat = task.encode_dataset()
        assert len(flat) == task.num_points * (task.num_features + 1)

    def test_invalid_tasks_rejected(self):
        with pytest.raises(ProtocolError):
            LogisticRegressionTask(xs=[], ys=[])
        with pytest.raises(ProtocolError):
            LogisticRegressionTask(xs=[[1.0]], ys=[1, 0])
        with pytest.raises(ProtocolError):
            LogisticRegressionTask(xs=[[1.0], [1.0, 2.0]], ys=[1, 0])

    def test_wrong_beta_size_rejected(self, task):
        b = CircuitBuilder()
        src = [[b.var(v) for v in task.encode_dataset()]]
        with pytest.raises(ProtocolError):
            task.constrain(b, src, [[b.var(0)]])


class TestTransformer:
    @pytest.fixture(scope="class")
    def block(self):
        return TransformerBlock.random(seq_len=2, d_model=2, d_ff=2)

    @pytest.fixture(scope="class")
    def sequence(self):
        return [[0.3, -0.2], [0.1, 0.4]]

    def test_inference_shape_and_determinism(self, block, sequence):
        out1 = block.infer(sequence)
        out2 = block.infer(sequence)
        assert out1 == out2
        assert len(out1) == block.seq_len * block.d_model

    def test_attention_mixes_positions(self, block):
        # Changing position 1's input must influence position 0's output.
        base = block.infer([[0.3, -0.2], [0.1, 0.4]])
        moved = block.infer([[0.3, -0.2], [0.4, -0.3]])
        assert base[: block.d_model] != moved[: block.d_model]

    def test_predicate_circuit_satisfied(self, block, sequence):
        proc = transformer_processing(block)
        x_flat = block.encode_input(sequence)
        w_flat = block.encode_weights()
        derived = proc.apply([x_flat, w_flat])
        assert derived == [block.infer(sequence)]
        b = CircuitBuilder()
        src = [[b.var(v) for v in x_flat], [b.var(v) for v in w_flat]]
        dst = [[b.var(v) for v in derived[0]]]
        proc.constrain(b, src, dst)
        layout, assignment = b.compile()
        layout.check(assignment)

    def test_predicate_rejects_wrong_output(self, block, sequence):
        proc = transformer_processing(block)
        x_flat = block.encode_input(sequence)
        w_flat = block.encode_weights()
        wrong = [(v + 1) for v in block.infer(sequence)]
        b = CircuitBuilder()
        src = [[b.var(v) for v in x_flat], [b.var(v) for v in w_flat]]
        dst = [[b.var(v) for v in wrong]]
        with pytest.raises(UnsatisfiedConstraintError):
            proc.constrain(b, src, dst)
            b.compile()

    def test_weight_roundtrip(self, block):
        flat = block.encode_weights()
        assert len(flat) == block.num_parameters
        b = CircuitBuilder()
        wires = [b.var(v) for v in flat]
        w = block._unflatten_weights(wires)
        assert len(w["w_q"]) == block.d_model
        assert len(w["b_2"]) == block.d_model
        with pytest.raises(ProtocolError):
            block._unflatten_weights(wires + [b.var(0)])

    def test_shape_validation(self):
        with pytest.raises(ProtocolError):
            TransformerBlock(1, 2, 2, [[1]], [[1]], [[1]], [[1]], [1], [[1]], [1])
        block = TransformerBlock.random(2, 2, 2)
        with pytest.raises(ProtocolError):
            block.encode_input([[0.1, 0.2]])  # wrong seq_len


@pytest.mark.slow
class TestAppProofs:
    def test_logistic_pi_t_end_to_end(self, snark_ctx, task):
        """Full prove/verify of the LR convergence predicate (Table I)."""
        from repro.core.tokens import DataAsset
        from repro.core.transform_protocol import prove_transformation, verify_transformation

        small = LogisticRegressionTask(
            xs=[[0.5], [-0.5]], ys=[1, 0], learning_rate=0.8, epsilon=0.1
        )
        proc = logistic_processing(small, iterations=25)
        source = DataAsset.create(small.encode_dataset())
        derived, pi_t = prove_transformation(snark_ctx, [source], proc)
        assert verify_transformation(snark_ctx, proc, pi_t)
        assert derived[0].plaintext == small.train(iterations=25)
