"""Security-property tests mapping to Section V of the paper.

Theorem 5.1 (transformation protocol): integrity — forged statements are
rejected (see also test_core_protocols) — and privacy — proofs and public
artefacts carry no plaintext or key information.
Theorem 5.2 (exchange): buyer/seller fairness (test_core_protocols) and
the key-privacy property unique to ZKDET.
Plus the underlying assumptions: commitment binding/hiding (Defs 2.2-2.3)
and cipher key/position sensitivity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.fr import MODULUS as R
from repro.plonk.transcript import Transcript
from repro.primitives import MiMC, commit, mimc_encrypt_ctr, open_commitment

elements = st.integers(min_value=0, max_value=R - 1)


class TestCommitmentAssumptions:
    """Definitions 2.2 (binding) and 2.3 (hiding)."""

    @given(st.lists(elements, min_size=1, max_size=4), elements)
    @settings(max_examples=20, deadline=None)
    def test_binding_under_any_blinder(self, message, fake_blinder):
        c, o = commit(message)
        altered = list(message)
        altered[0] = (altered[0] + 1) % R
        # No (message', blinder') pair we can cheaply find opens c.
        assert not open_commitment(altered, c, o)
        if fake_blinder != o:
            assert not open_commitment(message, c, fake_blinder)

    def test_hiding_distribution(self):
        # Across many commitments to the SAME message, values look unique
        # (a collision would indicate blinder reuse / low entropy).
        values = {commit([7])[0].value for _ in range(64)}
        assert len(values) == 64

    def test_commitment_does_not_embed_message(self):
        message = [123456789]
        c, _ = commit(message)
        assert c.value != message[0]
        assert str(message[0]) not in str(c.value)[: len(str(message[0])) - 2]


class TestCipherAssumptions:
    def test_keystream_unrelated_across_keys(self):
        c1 = mimc_encrypt_ctr(1, [0, 0, 0, 0], nonce=5)
        c2 = mimc_encrypt_ctr(2, [0, 0, 0, 0], nonce=5)
        assert all(a != b for a, b in zip(c1.blocks, c2.blocks))

    def test_single_bit_key_diffusion(self):
        cipher = MiMC()
        out1 = cipher.encrypt_block(0b1000, 42)
        out2 = cipher.encrypt_block(0b1001, 42)
        # Outputs differ in many bits (avalanche), not just the low bit.
        assert bin(out1 ^ out2).count("1") > 60

    def test_nonce_reuse_visible_positionally_only(self):
        # Same key+nonce: identical plaintext positions leak equality —
        # the standard CTR caveat — but different positions do not.
        ct = mimc_encrypt_ctr(9, [5, 5], nonce=1)
        assert ct.blocks[0] != ct.blocks[1]


class TestProofPrivacy:
    """Privacy side of Theorem 5.1: public artefacts leak nothing."""

    @pytest.mark.slow
    def test_pi_e_reveals_no_plaintext_bytes(self, snark_ctx):
        from repro.core.tokens import DataAsset
        from repro.core.transform_protocol import prove_encryption

        secret = 0xDEADBEEFCAFE
        asset = DataAsset.create([secret, secret], key=5, nonce=6)
        pi_e = prove_encryption(snark_ctx, asset)
        blob = pi_e.proof.to_bytes()
        assert secret.to_bytes(6, "little") not in blob
        assert asset.key.to_bytes(4, "little") * 2 not in blob
        # Publics contain ciphertext + commitments, never plaintext.
        assert secret not in pi_e.public_inputs

    @pytest.mark.slow
    def test_proofs_are_rerandomised(self, snark_ctx):
        """Zero-knowledge blinding: two proofs of the same statement are
        unlinkable at the byte level."""
        from repro.core.tokens import DataAsset
        from repro.core.transform_protocol import prove_encryption

        asset = DataAsset.create([1, 2], key=5, nonce=6)
        p1 = prove_encryption(snark_ctx, asset)
        p2 = prove_encryption(snark_ctx, asset)
        assert p1.proof.to_bytes() != p2.proof.to_bytes()


class TestTranscript:
    def test_deterministic_and_order_sensitive(self):
        t1 = Transcript(b"x")
        t1.append_scalar(b"a", 1)
        t1.append_scalar(b"b", 2)
        t2 = Transcript(b"x")
        t2.append_scalar(b"a", 1)
        t2.append_scalar(b"b", 2)
        assert t1.challenge(b"c") == t2.challenge(b"c")
        t3 = Transcript(b"x")
        t3.append_scalar(b"b", 2)
        t3.append_scalar(b"a", 1)
        assert t3.challenge(b"c") != t1.challenge(b"c")

    def test_domain_separation(self):
        assert Transcript(b"x").challenge(b"c") != Transcript(b"y").challenge(b"c")
        t = Transcript(b"x")
        c1 = t.challenge(b"c")
        c2 = t.challenge(b"c")  # state evolves between challenges
        assert c1 != c2

    def test_labels_matter(self):
        t1 = Transcript(b"x")
        t1.append_bytes(b"label1", b"data")
        t2 = Transcript(b"x")
        t2.append_bytes(b"label2", b"data")
        assert t1.challenge(b"c") != t2.challenge(b"c")

    def test_point_absorption(self):
        from repro.curve import G1

        t1 = Transcript(b"x")
        t1.append_point(b"p", G1.generator())
        t2 = Transcript(b"x")
        t2.append_point(b"p", G1.generator() * 2)
        assert t1.challenge(b"c") != t2.challenge(b"c")

    @given(st.binary(max_size=64))
    @settings(max_examples=20)
    def test_challenges_in_field(self, data):
        t = Transcript(b"x")
        t.append_bytes(b"d", data)
        assert 0 <= t.challenge(b"c") < R
