"""Tests for the telemetry layer: spans, metrics, exporters, kernel counters.

The kernel-accounting tests double as the repo's cache ground truth: the
warm-proof test asserts the *measured* "9 of 15 coset FFTs skipped" claim
that the engine docstring and the repeated-proof benchmark cite.
"""

import io

import pytest

from repro import telemetry
from repro.backend.parallel import ParallelEngine
from repro.backend.serial import SerialEngine
from repro.chain import Blockchain, Contract, external
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.plonk.verifier import verify
from repro.telemetry import workers
from repro.telemetry.metrics import (
    Histogram,
    Registry,
    format_key,
    quantile_from_bucket_dict,
    quantile_from_buckets,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Isolate every test: reset level, registry and finished spans."""
    previous = telemetry.set_level(telemetry.OFF)
    telemetry.reset_metrics()
    telemetry.clear_finished()
    yield
    telemetry.set_level(previous)
    telemetry.reset_metrics()
    telemetry.clear_finished()


def _tiny_circuit():
    """An 8-bit range proof: small enough to prove in well under a second."""
    builder = CircuitBuilder()
    value = 0xA5
    total = builder.constant(0)
    weight = 1
    for i in range(8):
        bit = builder.var((value >> i) & 1)
        builder.assert_bool(bit)
        total = builder.add(total, builder.scale(bit, weight))
        weight *= 2
    public = builder.public_input(value)
    builder.assert_equal(total, public)
    return builder.compile()


# ----- levels and the no-op fast path --------------------------------------


class TestLevels:
    def test_default_span_is_shared_noop(self):
        assert telemetry.span("anything", n=1) is telemetry.NOOP_SPAN
        telemetry.set_level(telemetry.METRICS)
        assert telemetry.span("anything") is telemetry.NOOP_SPAN

    def test_noop_span_records_nothing(self):
        with telemetry.span("root", a=1) as sp:
            assert sp.set_attr("k", "v") is sp
            assert sp.set_attrs({"x": 1}, y=2) is sp
            assert telemetry.current_span() is None
        assert telemetry.finished_roots() == []

    def test_level_parsing_and_restore(self):
        with telemetry.use_level("trace"):
            assert telemetry.level() == telemetry.TRACE
            assert telemetry.trace_enabled() and telemetry.metrics_enabled()
            with telemetry.use_level(1):
                assert telemetry.level_name() == "metrics"
                assert not telemetry.trace_enabled()
            assert telemetry.level() == telemetry.TRACE
        assert telemetry.level() == telemetry.OFF
        with pytest.raises(ValueError):
            telemetry.set_level("verbose")

    def test_configure_from_env(self):
        telemetry.configure_from_env({"REPRO_TELEMETRY": "metrics"})
        assert telemetry.level() == telemetry.METRICS
        telemetry.configure_from_env({})  # empty env leaves the level alone
        assert telemetry.level() == telemetry.METRICS


# ----- spans ----------------------------------------------------------------


class TestSpans:
    def test_nesting_attrs_and_walk(self):
        telemetry.set_level(telemetry.TRACE)
        with telemetry.span("root", job="test") as root:
            assert telemetry.current_span() is root
            with telemetry.span("child_a", i=0) as a:
                a.set_attr("done", True)
            with telemetry.span("child_b") as b:
                with telemetry.span("grandchild"):
                    pass
                b.set_attrs(k=1)
        assert telemetry.current_span() is None
        assert [s.name for s in root.walk()] == [
            "root", "child_a", "child_b", "grandchild",
        ]
        assert root.attrs == {"job": "test"}
        assert root.find("child_a").attrs == {"i": 0, "done": True}
        assert root.find("grandchild").parent is root.find("child_b")
        assert root.find("missing") is None
        assert root.duration >= a.duration
        assert telemetry.finished_roots() == [root]

    def test_exception_annotates_and_unwinds(self):
        telemetry.set_level(telemetry.TRACE)
        with pytest.raises(RuntimeError):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    raise RuntimeError("boom")
        assert telemetry.current_span() is None
        (root,) = telemetry.finished_roots()
        assert root.attrs["error"] == "RuntimeError: boom"
        assert root.find("inner").attrs["error"] == "RuntimeError: boom"

    def test_finished_ring_is_bounded(self):
        telemetry.set_level(telemetry.TRACE)
        for i in range(300):
            with telemetry.span("s%d" % i):
                pass
        roots = telemetry.finished_roots()
        assert len(roots) == 256
        assert roots[-1].name == "s299"


# ----- metrics --------------------------------------------------------------


class TestMetrics:
    def test_counter_identity_and_monotonicity(self):
        c = telemetry.counter("calls", kind="fft")
        c.inc()
        c.inc(4)
        assert telemetry.counter("calls", kind="fft") is c
        assert c.value == 5
        assert telemetry.counter("calls", kind="ifft").value == 0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_buckets_mean_and_dict(self):
        h = Histogram("sizes", bounds=(2, 8, 32))
        for v in (1, 2, 3, 32, 33):
            h.observe(v)
        assert h.count == 5 and h.total == 71
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.mean == pytest.approx(71 / 5)
        d = h.as_dict()
        assert d["buckets"] == {"le_2": 2, "le_8": 1, "le_32": 1, "inf": 1}
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(3, 1))

    def test_as_dict_reports_quantiles(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert set(d) >= {"count", "sum", "mean", "p50", "p95", "p99", "buckets"}
        assert 1.0 <= d["p50"] <= 2.0  # rank 2 falls in the (1, 2] bucket
        assert 2.0 <= d["p99"] <= 4.0

    def test_quantile_empty_histogram_is_zero(self):
        h = Histogram("empty", bounds=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0
        assert h.as_dict()["p99"] == 0.0

    def test_quantile_single_bucket_interpolates_from_zero(self):
        # All mass in the first bucket: interpolation runs from lower
        # bound 0 to the bucket bound, scaled by the rank fraction.
        h = Histogram("single", bounds=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps_to_last_finite_bound(self):
        # Observations above every bound land in +inf; the estimate is a
        # documented lower bound (the last finite bucket edge), never an
        # invented extrapolation.
        h = Histogram("over", bounds=(1.0, 8.0))
        h.observe(100.0)
        h.observe(200.0)
        assert h.quantile(0.5) == 8.0
        assert h.quantile(0.99) == 8.0

    def test_quantile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 0], 1.5)

    def test_quantile_from_bucket_dict_round_trips_as_dict(self):
        h = Histogram("rt", bounds=(1.0, 4.0, 16.0))
        for v in (0.5, 2.0, 3.0, 20.0):
            h.observe(v)
        buckets = h.as_dict()["buckets"]
        for q in (0.5, 0.95, 0.99):
            assert quantile_from_bucket_dict(buckets, q) == pytest.approx(h.quantile(q))
        assert quantile_from_bucket_dict({}, 0.5) == 0.0

    def test_kernel_timer_observes_latency_histogram(self):
        assert telemetry.kernel_timer("ntt") is telemetry.NOOP_SPAN
        telemetry.set_level(telemetry.METRICS)
        with telemetry.kernel_timer("ntt"):
            pass
        with telemetry.kernel_timer("ntt"):
            pass
        snap = telemetry.snapshot()["histograms"]
        entry = snap["engine.kernel.seconds{kernel=ntt}"]
        assert entry["count"] == 2
        assert entry["sum"] >= 0.0

    def test_format_key_sorts_labels(self):
        reg = Registry()
        c = reg.counter("hits", zone="b", cache="a")
        assert format_key(c.name, c.labels) == "hits{cache=a,zone=b}"

    def test_snapshot_and_reset(self):
        telemetry.counter("a").inc(2)
        telemetry.histogram("b", bounds=(10,)).observe(3)
        snap = telemetry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["histograms"]["b"]["count"] == 1
        assert telemetry.registry().counter_values() == {"a": 2}
        telemetry.reset_metrics()
        assert telemetry.snapshot() == {"counters": {}, "histograms": {}}


# ----- exporters ------------------------------------------------------------


def _sample_tree():
    telemetry.set_level(telemetry.TRACE)
    with telemetry.span("root", run=1) as root:
        with telemetry.span("left"):
            with telemetry.span("leaf", deep=True):
                pass
        with telemetry.span("right"):
            pass
    return root


class TestExporters:
    def test_format_span_tree(self):
        root = _sample_tree()
        text = telemetry.format_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("root") and "run=1" in lines[0]
        assert lines[1].startswith("  left")
        assert lines[2].startswith("    leaf") and "deep=True" in lines[2]

    def test_console_exporter_writes_on_root_completion(self):
        stream = io.StringIO()
        exporter = telemetry.ConsoleExporter(stream)
        telemetry.add_exporter(exporter)
        try:
            _sample_tree()
        finally:
            telemetry.remove_exporter(exporter)
        assert "-- trace --" in stream.getvalue()
        assert "leaf" in stream.getvalue()

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        exporter = telemetry.JsonLinesExporter(path)
        telemetry.add_exporter(exporter)
        try:
            _sample_tree()
            _sample_tree()  # appended trees must stay separable
        finally:
            telemetry.remove_exporter(exporter)
        records = telemetry.read_spans(path)
        assert len(records) == 8
        trees = telemetry.tree_from_records(records)
        assert len(trees) == 2
        for tree in trees:
            assert tree["name"] == "root" and tree["parent"] is None
            assert [c["name"] for c in tree["children"]] == ["left", "right"]
            assert tree["children"][0]["children"][0]["name"] == "leaf"
            assert tree["children"][0]["children"][0]["attrs"] == {"deep": True}

    def test_span_records_ids_are_preorder(self):
        root = _sample_tree()
        records = telemetry.span_records(root)
        assert [r["id"] for r in records] == [0, 1, 2, 3]
        assert [r["parent"] for r in records] == [None, 0, 1, 0]
        assert all(r["duration"] >= 0 for r in records)

    def test_span_records_of_an_interior_subtree(self):
        # An exchange.run nested under marketplace.sell is exported from
        # its own node down; the out-of-subtree parent becomes None.
        root = _sample_tree()
        subtree = root.find("left")
        assert subtree.parent is root
        records = telemetry.span_records(subtree)
        assert [r["name"] for r in records] == ["left", "leaf"]
        assert [r["parent"] for r in records] == [None, 0]


# ----- kernel accounting (the cache ground truth) ---------------------------


class TestKernelAccounting:
    def test_warm_proof_skips_nine_of_fifteen_coset_ffts(self, snark_ctx):
        """The measured source of truth for the '9 of 15 FFTs cached' claim.

        Round 3 runs 15 size-8n coset FFTs: 9 per-key-fixed polynomials
        (qm ql qr qo qc s1 s2 s3 l1) served from the engine's coset-eval
        cache, and 6 live ones (a b c z z*omega PI) recomputed per proof.
        """
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)
        engine = SerialEngine()
        prove(keys.pk, assignment, engine=engine)  # warm the caches
        telemetry.set_level(telemetry.METRICS)
        telemetry.reset_metrics()
        proof = prove(keys.pk, assignment, engine=engine)
        assert verify(keys.vk, assignment.public_inputs, proof)
        assert telemetry.counter("engine.ntt.calls", kind="coset_fft").value == 6
        assert telemetry.counter("engine.cache.hits", cache="coset_eval").value == 9
        assert telemetry.counter("engine.cache.misses", cache="coset_eval").value == 0
        # Warm engine: SRS view and NTT plans are cache hits too.
        assert telemetry.counter("engine.cache.misses", cache="srs_jacobian").value == 0
        assert telemetry.counter("engine.cache.hits", cache="srs_jacobian").value > 0

    def test_cold_engine_pays_all_fifteen(self, snark_ctx):
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)
        telemetry.set_level(telemetry.METRICS)
        telemetry.reset_metrics()
        with SerialEngine() as engine:
            prove(keys.pk, assignment, engine=engine)
        # All 15 coset FFT kernels run cold: 9 cache misses + 6 live polys.
        assert telemetry.counter("engine.cache.misses", cache="coset_eval").value == 9
        assert telemetry.counter("engine.ntt.calls", kind="coset_fft").value == 15

    def test_parallel_and_serial_report_identical_totals(self, snark_ctx):
        """Kernel metrics are recorded at the dispatch site, so backend
        choice cannot change the reported ``engine.*`` totals (only the
        process-global ntt_plan cache, the serial-only msm_window table
        cache and the parallel-only ntt_twiddle_shm segment cache may
        differ between runs).  The parallel backend's
        extra ``worker.*`` instruments live in their own namespace
        precisely so this parity holds even at profile level — they are
        excluded here and asserted additive-only below.
        """
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)

        def measured_counters(engine):
            prove(keys.pk, assignment, engine=engine)  # warm this engine
            telemetry.reset_metrics()
            prove(keys.pk, assignment, engine=engine)
            return {
                k: v
                for k, v in telemetry.registry().counter_values().items()
                if "ntt_plan" not in k
                and "msm_window" not in k
                and "ntt_twiddle" not in k
                and not k.startswith("worker.")
            }

        # Profile level: worker stats piggyback on every parallel task,
        # the strictest setting under which parity must still hold.
        telemetry.set_level(telemetry.PROFILE)
        serial_counts = measured_counters(SerialEngine())
        parallel = ParallelEngine(
            workers=2, min_msm_points=1, min_ntt_jobs=1, min_ntt_size=1,
            min_inverse_size=1,
        )
        try:
            parallel_counts = measured_counters(parallel)
            # The parallel run *did* produce worker.* telemetry; it just
            # never leaks into the engine.* namespace compared above.
            worker_counts = {
                k: v
                for k, v in telemetry.registry().counter_values().items()
                if k.startswith("worker.")
            }
        finally:
            parallel.close()
        assert serial_counts == parallel_counts
        assert serial_counts["engine.ntt.calls{kind=coset_fft}"] == 6
        assert any(k.startswith("worker.tasks") for k in worker_counts)


# ----- worker trace propagation (profile level) -----------------------------


class TestWorkerPropagation:
    def _parallel_engine(self):
        return ParallelEngine(
            workers=2, min_msm_points=1, min_ntt_jobs=1, min_ntt_size=1,
            min_inverse_size=1,
        )

    def test_below_profile_no_worker_telemetry(self, snark_ctx):
        """At trace level tasks are untagged: no worker.* instruments, no
        worker.task children — exactly the pre-profile wire format."""
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)
        telemetry.set_level(telemetry.TRACE)
        with self._parallel_engine() as engine:
            prove(keys.pk, assignment, engine=engine)
        counters = telemetry.registry().counter_values()
        assert not any(k.startswith("worker.") for k in counters)
        root = telemetry.finished_roots()[-1]
        for dispatch in (s for s in root.walk() if s.name == "engine.dispatch"):
            assert dispatch.children == []

    def test_warm_proof_worker_spans_cover_dispatch_wall_clock(self, snark_ctx):
        """The acceptance bar for cross-process propagation: on a warm
        pool, the merged ``worker.task`` child spans of the largest
        ``engine.dispatch`` span account for >=90% of its wall-clock —
        i.e. the reconstructed trace actually explains where dispatch
        time went instead of leaving a parent-side blind spot.
        """
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)
        engine = self._parallel_engine()
        try:
            prove(keys.pk, assignment, engine=engine)  # warm pool + caches
            telemetry.set_level(telemetry.PROFILE)
            # A parent-side scheduler stall after the workers finish both
            # inflates a dispatch's tail and makes it the largest — the
            # max-by-duration pick adversely selects such blips, so allow
            # a couple of re-proofs on contended single-CPU runners.
            coverage = 0.0
            for _attempt in range(3):
                telemetry.reset_metrics()
                telemetry.clear_finished()
                prove(keys.pk, assignment, engine=engine)
                root = telemetry.finished_roots()[-1]
                assert root.name == "plonk.prove"
                dispatches = [
                    s for s in root.walk() if s.name == "engine.dispatch"
                ]
                assert dispatches, "parallel proof produced no dispatch spans"
                for dispatch in dispatches:
                    tasks = [
                        c for c in dispatch.children if c.name == "worker.task"
                    ]
                    assert len(tasks) == dispatch.attrs["tasks"]
                    for task in tasks:
                        assert task.parent is dispatch
                        assert task.attrs["kernel"] == dispatch.attrs["kernel"]
                        assert task.duration > 0
                largest = max(dispatches, key=lambda s: s.duration)
                coverage = workers.worker_coverage(largest)
                if coverage >= 0.90:
                    break
        finally:
            engine.close()
        assert coverage >= 0.90, (
            "worker spans cover %.1f%% of the largest dispatch span"
            % (100 * coverage)
        )
        # The piggybacked stats merged into the worker.* namespace too.
        counters = telemetry.registry().counter_values()
        assert any(k.startswith("worker.tasks{") for k in counters)
        assert any(k.startswith("worker.kernel.calls{") for k in counters)
        hists = telemetry.snapshot()["histograms"]
        compute = [k for k in hists if k.startswith("worker.compute.seconds")]
        assert compute and all(hists[k]["count"] > 0 for k in compute)

    def test_worker_coverage_helper_edges(self):
        telemetry.set_level(telemetry.TRACE)
        with telemetry.span("engine.dispatch", kernel="x", tasks=0) as sp:
            pass
        assert workers.worker_coverage(sp) == 0.0
        assert workers.worker_coverage(telemetry.NOOP_SPAN) == 0.0


# ----- prover / protocol span trees ----------------------------------------


class TestSpanTrees:
    def test_plonk_proof_covers_all_five_rounds(self, snark_ctx):
        layout, assignment = _tiny_circuit()
        keys = snark_ctx.keys_for(layout)
        engine = SerialEngine()
        telemetry.set_level(telemetry.TRACE)
        proof = prove(keys.pk, assignment, engine=engine)
        root = telemetry.finished_roots()[-1]
        assert root.name == "plonk.prove"
        assert root.attrs["n"] == layout.n
        assert root.attrs["backend"] == "serial"
        rounds = [(s.name, s.attrs.get("round")) for s in root.children]
        assert rounds == [
            ("blinding", 1),
            ("permutation", 2),
            ("quotient", 3),
            ("evaluation", 4),
            ("opening", 5),
        ]
        assert all(s.duration > 0 for s in root.walk())
        assert verify(keys.vk, assignment.public_inputs, proof)
        vroot = telemetry.finished_roots()[-1]
        assert vroot.name == "plonk.verify"
        assert vroot.attrs["ok"] is True
        assert vroot.find("pairing") is not None

    def test_chain_receipt_span_attrs(self):
        class Toy(Contract):
            @external
            def ping(self) -> int:
                self.emit("Pinged", value=7)
                return 7

        chain = Blockchain()
        sender = chain.create_account(funded=10**9)
        toy = Toy()
        chain.deploy(toy, sender)
        telemetry.set_level(telemetry.TRACE)
        with telemetry.span("step") as sp:
            receipt = chain.transact(sender, toy, "ping")
            sp.set_attrs(receipt.span_attrs())
        (root,) = telemetry.finished_roots()
        assert root.attrs["tx.method"] == "ping"
        assert root.attrs["tx.status"] is True
        assert root.attrs["tx.gas"] > 21000
        assert root.attrs["tx.events"] == ["Pinged"]
        failed = chain.transact(sender, toy, "ping", gas_limit=1)
        attrs = failed.span_attrs(prefix="fail")
        assert attrs["fail.status"] is False and "fail.error" in attrs
