"""Tests for the FairSwap baseline (Section VII-B).

Verifies the optimistic path, the dispute path, and the two properties
the paper contrasts against ZKDET: (i) the key leaks on chain, and
(ii) dispute gas grows with data size.
"""

import pytest

from repro.chain import Blockchain
from repro.core.fairswap import FairSwapExchange, FairSwapListing
from repro.contracts.fairswap import FairSwapContract
from repro.errors import ProtocolError
from repro.primitives.hashing import field_hash


@pytest.fixture
def market():
    chain = Blockchain()
    seller = chain.create_account(funded=10**9)
    buyer = chain.create_account(funded=10**9)
    contract = FairSwapContract()
    chain.deploy(contract, seller)
    return chain, contract, seller, buyer


class TestFairSwapHappyPath:
    def test_honest_sale_settles(self, market):
        chain, contract, seller, buyer = market
        listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
        protocol = FairSwapExchange(chain, contract)
        seller_before = chain.balance_of(seller)
        result = protocol.run(seller, buyer, listing, price=5000)
        assert result.success, result.reason
        assert result.plaintext == [10, 20, 30, 40]
        assert chain.balance_of(seller) == seller_before + 5000

    def test_key_leaks_like_zkcp(self, market):
        chain, contract, seller, buyer = market
        listing = FairSwapListing.create([10, 20], key=777, nonce=3)
        FairSwapExchange(chain, contract).run(seller, buyer, listing, price=100)
        # Any third party reads the key from public chain state.
        assert chain.call_view(contract, "revealed_key", 1) == 777

    def test_empty_listing_rejected(self):
        with pytest.raises(ProtocolError):
            FairSwapListing.create([])


class TestFairSwapDisputes:
    def test_cheating_seller_loses_dispute(self, market):
        chain, contract, seller, buyer = market
        listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
        protocol = FairSwapExchange(chain, contract)
        buyer_before = chain.balance_of(buyer)
        seller_before = chain.balance_of(seller)
        result = protocol.run(seller, buyer, listing, price=5000, cheat_block=2)
        assert not result.success
        assert "refunded" in result.reason
        assert result.dispute_gas > 0
        assert chain.balance_of(buyer) == buyer_before  # made whole
        assert chain.balance_of(seller) == seller_before  # gained nothing
        assert chain.call_view(contract, "resolution", 1) == "refunded"

    def test_false_complaint_rejected(self, market):
        chain, contract, seller, buyer = market
        listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
        # Honest sale; buyer tries to complain anyway with a valid block.
        r = chain.transact(
            seller, contract, "offer",
            listing.cipher_tree.root, listing.plain_tree.root,
            field_hash(listing.key), listing.nonce, 4, 5000,
        )
        sale_id = r.return_value
        chain.transact(buyer, contract, "accept", sale_id, value=5000)
        chain.transact(seller, contract, "reveal_key", sale_id, listing.key)
        c_proof = listing.cipher_tree.prove(1)
        p_proof = listing.plain_tree.prove(1)
        r = chain.transact(
            buyer, contract, "complain", sale_id, 1,
            listing.cipher_blocks[1],
            tuple(c_proof.siblings), tuple(c_proof.path_bits),
            listing.blocks[1],
            tuple(p_proof.siblings), tuple(p_proof.path_bits),
        )
        assert not r.status
        assert "no misbehaviour" in r.error

    def test_complaint_with_forged_path_rejected(self, market):
        chain, contract, seller, buyer = market
        listing = FairSwapListing.create([10, 20, 30, 40], key=777, nonce=3)
        listing.tamper_block(2)
        from repro.primitives.hashing import field_hash

        sale_id = chain.transact(
            seller, contract, "offer",
            listing.cipher_tree.root, listing.plain_tree.root,
            field_hash(listing.key), listing.nonce, 4, 5000,
        ).return_value
        chain.transact(buyer, contract, "accept", sale_id, value=5000)
        chain.transact(seller, contract, "reveal_key", sale_id, listing.key)
        c_proof = listing.cipher_tree.prove(2)
        p_proof = listing.plain_tree.prove(2)
        # Wrong plaintext leaf for the claimed path.
        r = chain.transact(
            buyer, contract, "complain", sale_id, 2,
            listing.cipher_blocks[2],
            tuple(c_proof.siblings), tuple(c_proof.path_bits),
            999,  # not the advertised leaf
            tuple(p_proof.siblings), tuple(p_proof.path_bits),
        )
        assert not r.status

    def test_dispute_gas_grows_with_data_size(self, market):
        """The paper's criticism of FairSwap, measured."""
        chain, contract, seller, buyer = market
        protocol = FairSwapExchange(chain, contract)
        gas_by_size = {}
        for num_blocks in (4, 64, 1024):
            listing = FairSwapListing.create(list(range(1, num_blocks + 1)), key=9, nonce=1)
            result = protocol.run(
                seller, buyer, listing, price=100, cheat_block=num_blocks // 2
            )
            assert not result.success
            gas_by_size[num_blocks] = result.dispute_gas
        assert gas_by_size[4] < gas_by_size[64] < gas_by_size[1024]


class TestFairSwapGuards:
    def test_offer_and_accept_validation(self, market):
        chain, contract, seller, buyer = market
        assert not chain.transact(
            seller, contract, "offer", 1, 2, 3, 4, 0, 100
        ).status  # zero blocks
        listing = FairSwapListing.create([1, 2], key=5, nonce=6)
        from repro.primitives.hashing import field_hash

        sale_id = chain.transact(
            seller, contract, "offer",
            listing.cipher_tree.root, listing.plain_tree.root,
            field_hash(5), 6, 2, 100,
        ).return_value
        assert not chain.transact(buyer, contract, "accept", sale_id, value=55).status
        chain.transact(buyer, contract, "accept", sale_id, value=100)
        assert not chain.transact(buyer, contract, "accept", sale_id, value=100).status
        # Wrong key rejected; early finalize rejected.
        assert not chain.transact(seller, contract, "reveal_key", sale_id, 6).status
        assert not chain.transact(seller, contract, "finalize", sale_id).status
