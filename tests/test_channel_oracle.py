"""Tests for the payment-channel and oracle-committee extension contracts."""

import pytest

from repro.chain import Blockchain
from repro.contracts import OracleCommitteeContract, PaymentChannelContract
from repro.contracts.channel import voucher_message
from repro.contracts.oracle import attestation_message
from repro.primitives.babyjubjub import schnorr_keygen, schnorr_sign


@pytest.fixture
def chain():
    return Blockchain()


class TestPaymentChannel:
    @pytest.fixture
    def channel_env(self, chain):
        buyer = chain.create_account(funded=10**9)
        seller = chain.create_account(funded=10**9)
        contract = PaymentChannelContract()
        chain.deploy(contract, buyer)
        sk, pk = schnorr_keygen(sk=321321)
        cid = chain.transact(
            buyer, contract, "open_channel", seller, pk.x, pk.y, 5, value=10_000
        ).return_value
        return chain, contract, buyer, seller, sk, cid

    def _voucher(self, sk, cid, amount):
        return schnorr_sign(sk, voucher_message(cid, amount), nonce=777 + amount)

    def test_off_chain_payments_settle_once(self, channel_env):
        chain, contract, buyer, seller, sk, cid = channel_env
        # Many off-chain vouchers, strictly increasing; only the last settles.
        final = 0
        sig = None
        for amount in (1_000, 2_500, 7_000):
            sig = self._voucher(sk, cid, amount)
            final = amount
        seller_before = chain.balance_of(seller)
        buyer_before = chain.balance_of(buyer)
        r = chain.transact(
            seller, contract, "close", cid, final,
            sig.r_point.x, sig.r_point.y, sig.s,
        )
        assert r.status, r.error
        assert chain.balance_of(seller) == seller_before + 7_000
        assert chain.balance_of(buyer) == buyer_before + 3_000  # refund

    def test_forged_voucher_rejected(self, channel_env):
        chain, contract, _buyer, seller, sk, cid = channel_env
        sig = self._voucher(sk, cid, 1_000)
        # Claim a larger amount with a signature for a smaller one.
        r = chain.transact(
            seller, contract, "close", cid, 9_999,
            sig.r_point.x, sig.r_point.y, sig.s,
        )
        assert not r.status

    def test_voucher_cannot_exceed_collateral(self, channel_env):
        chain, contract, _buyer, seller, sk, cid = channel_env
        sig = self._voucher(sk, cid, 50_000)
        r = chain.transact(
            seller, contract, "close", cid, 50_000,
            sig.r_point.x, sig.r_point.y, sig.s,
        )
        assert not r.status

    def test_only_payee_settles(self, channel_env):
        chain, contract, buyer, _seller, sk, cid = channel_env
        sig = self._voucher(sk, cid, 1_000)
        r = chain.transact(
            buyer, contract, "close", cid, 1_000,
            sig.r_point.x, sig.r_point.y, sig.s,
        )
        assert not r.status

    def test_reclaim_after_timeout(self, channel_env):
        chain, contract, buyer, _seller, _sk, cid = channel_env
        early = chain.transact(buyer, contract, "reclaim", cid)
        assert not early.status  # not expired yet
        for _ in range(6):
            chain.seal_block()
        before = chain.balance_of(buyer)
        r = chain.transact(buyer, contract, "reclaim", cid)
        assert r.status
        assert chain.balance_of(buyer) == before + 10_000
        assert chain.call_view(contract, "channel_info", cid) is None

    def test_open_requires_collateral(self, chain):
        buyer = chain.create_account(funded=10**9)
        contract = PaymentChannelContract()
        chain.deploy(contract, buyer)
        _, pk = schnorr_keygen(sk=1)
        r = chain.transact(buyer, contract, "open_channel", buyer, pk.x, pk.y)
        assert not r.status


class TestOracleCommittee:
    @pytest.fixture
    def committee(self, chain):
        operator = chain.create_account(funded=10**9)
        contract = OracleCommitteeContract(threshold=2)
        chain.deploy(contract, operator)
        oracles = []
        for i in range(3):
            addr = chain.create_account(funded=10**9)
            sk, pk = schnorr_keygen(sk=1000 + i)
            chain.transact(addr, contract, "register_oracle", pk.x, pk.y)
            oracles.append((addr, sk))
        return chain, contract, oracles

    def _attest(self, chain, contract, oracle, commitment, tag):
        addr, sk = oracle
        sig = schnorr_sign(sk, attestation_message(commitment, tag), nonce=5555)
        return chain.transact(
            addr, contract, "attest", commitment, tag,
            sig.r_point.x, sig.r_point.y, sig.s,
        )

    def test_threshold_attestation(self, committee):
        chain, contract, oracles = committee
        commitment, tag = 123456, 42
        assert not chain.call_view(contract, "is_attested", commitment, tag)
        assert self._attest(chain, contract, oracles[0], commitment, tag).status
        assert not chain.call_view(contract, "is_attested", commitment, tag)
        assert self._attest(chain, contract, oracles[1], commitment, tag).status
        assert chain.call_view(contract, "is_attested", commitment, tag)
        assert chain.call_view(contract, "attestation_count", commitment, tag) == 2
        assert chain.call_view(contract, "num_oracles") == 3

    def test_double_attestation_rejected(self, committee):
        chain, contract, oracles = committee
        assert self._attest(chain, contract, oracles[0], 1, 1).status
        assert not self._attest(chain, contract, oracles[0], 1, 1).status

    def test_unregistered_oracle_rejected(self, committee):
        chain, contract, _ = committee
        stranger = chain.create_account(funded=10**9)
        sk, _pk = schnorr_keygen(sk=9)
        sig = schnorr_sign(sk, attestation_message(1, 1))
        r = chain.transact(
            stranger, contract, "attest", 1, 1, sig.r_point.x, sig.r_point.y, sig.s
        )
        assert not r.status

    def test_wrong_key_signature_rejected(self, committee):
        chain, contract, oracles = committee
        addr, _sk = oracles[0]
        wrong_sk, _ = schnorr_keygen(sk=31415)
        sig = schnorr_sign(wrong_sk, attestation_message(7, 7))
        r = chain.transact(
            addr, contract, "attest", 7, 7, sig.r_point.x, sig.r_point.y, sig.s
        )
        assert not r.status

    def test_double_registration_rejected(self, committee):
        chain, contract, oracles = committee
        addr, _ = oracles[0]
        _, pk = schnorr_keygen(sk=2222)
        r = chain.transact(addr, contract, "register_oracle", pk.x, pk.y)
        assert not r.status

    def test_bad_key_rejected(self, chain):
        operator = chain.create_account(funded=10**9)
        contract = OracleCommitteeContract()
        chain.deploy(contract, operator)
        r = chain.transact(operator, contract, "register_oracle", 1, 1)
        assert not r.status
