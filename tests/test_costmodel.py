"""Tests for the cost model: exact formulas vs. real circuits, fits."""

import pytest

from repro.errors import ReproError
from repro.costmodel import (
    CostModel,
    TimingModel,
    commitment_open_gates,
    encryption_circuit_gates,
    key_negotiation_gates,
    mimc_block_gates,
    padded_circuit_size,
    poseidon_hash_gates,
    poseidon_permutation_gates,
    transformation_circuit_gates,
)
from repro.plonk.circuit import CircuitBuilder


def built_gate_count(build_fn) -> int:
    builder = CircuitBuilder()
    build_fn(builder)
    return builder.num_gates


class TestGateFormulas:
    def test_mimc_block_exact(self):
        from repro.gadgets.mimc import mimc_block

        count = built_gate_count(lambda b: mimc_block(b, b.var(1), b.var(2)))
        assert count == mimc_block_gates()

    def test_poseidon_permutation_exact(self):
        from repro.gadgets.poseidon import poseidon_permutation

        count = built_gate_count(
            lambda b: poseidon_permutation(b, [b.var(1), b.var(2), b.var(3)])
        )
        assert count == poseidon_permutation_gates()

    @pytest.mark.parametrize("num_inputs", [1, 2, 3, 5])
    def test_poseidon_hash_within_constant(self, num_inputs):
        from repro.gadgets.poseidon import poseidon_hash_gadget

        count = built_gate_count(
            lambda b: poseidon_hash_gadget(b, [b.var(i + 1) for i in range(num_inputs)])
        )
        # Formula counts shared constants once; allow that slack.
        assert abs(count - poseidon_hash_gates(num_inputs)) <= 3

    @pytest.mark.parametrize("entries", [1, 2, 4])
    def test_encryption_circuit_close(self, entries):
        from repro.core.transform_protocol import build_encryption_circuit

        count = built_gate_count(
            lambda b: build_encryption_circuit(
                b, [0] * entries, 0, 0, 0, [0] * entries, 0, 0, 0
            )
        )
        predicted = encryption_circuit_gates(entries)
        assert abs(count - predicted) / predicted < 0.02

    def test_transformation_circuit_close(self):
        from repro.core.transform_protocol import build_transformation_circuit
        from repro.core.transformations import Duplication

        count = built_gate_count(
            lambda b: build_transformation_circuit(
                b, Duplication(), [([0] * 4, 0, 0)], [([0] * 4, 0, 0)]
            )
        )
        predicted = transformation_circuit_gates([4], [4])
        assert abs(count - predicted) / predicted < 0.02

    def test_key_negotiation_close(self):
        from repro.core.exchange import build_key_negotiation_circuit

        count = built_gate_count(
            lambda b: build_key_negotiation_circuit(b, 0, 0, 0, 0, 0, 0)
        )
        predicted = key_negotiation_gates()
        assert abs(count - predicted) / predicted < 0.02

    def test_commitment_open_monotone(self):
        assert commitment_open_gates(10) > commitment_open_gates(2)

    def test_padded_circuit_size(self):
        assert padded_circuit_size(1) == 4
        assert padded_circuit_size(5) == 8
        assert padded_circuit_size(4096) == 4096
        assert padded_circuit_size(4097) == 8192


class TestTimingModel:
    def test_fit_recovers_linear_nlogn(self):
        import math

        truth = lambda n: 2e-3 * n * math.log2(n) + 0.5
        points = [(n, truth(n)) for n in (64, 256, 1024, 4096)]
        model = TimingModel.fit(points)
        predicted = model.predict(16384)
        assert abs(predicted - truth(16384)) / truth(16384) < 0.01

    def test_constant_fit(self):
        model = TimingModel.fit([(64, 0.5), (1024, 0.52), (4096, 0.48)], constant=True)
        assert abs(model.predict(10**6) - 0.5) < 0.02

    def test_single_point_degenerates_to_constant(self):
        model = TimingModel.fit([(64, 1.0)])
        assert model.predict(1024) == 1.0

    def test_empty_fit_rejected(self):
        with pytest.raises(ReproError):
            TimingModel.fit([])

    def test_cost_model_report(self):
        cm = CostModel.from_measurements(
            setup_points=[(64, 0.2), (256, 0.8), (1024, 3.0)],
            prove_points=[(64, 0.4), (256, 1.4), (1024, 5.0)],
            verify_points=[(64, 0.5), (1024, 0.5)],
        )
        row = cm.report_row(gates=3000)
        assert row["padded_n"] == 4096
        assert row["prove_seconds"] > row["setup_seconds"] > 0
        assert row["verify_seconds"] == 0.5
        assert row["proof_size_bytes"] == 768
        # Predictions grow with circuit size; verification does not.
        bigger = cm.report_row(gates=100000)
        assert bigger["prove_seconds"] > row["prove_seconds"]
        assert bigger["verify_seconds"] == row["verify_seconds"]
