"""Tests for the phi(D) predicate library (fast satisfaction checks plus
one real predicate-carrying exchange)."""

import pytest

from repro.errors import CircuitError, ProtocolError, UnsatisfiedConstraintError
from repro.gadgets.merkle import MerkleTree
from repro.plonk.circuit import CircuitBuilder
from repro.core.predicates import (
    all_of,
    contains_committed_row,
    entries_in_range,
    entry_at_index_equals,
    mean_bounds,
    sum_in_range,
)


def check(predicate, values, expect_ok=True):
    builder = CircuitBuilder()
    wires = [builder.var(v) for v in values]
    if expect_ok:
        predicate(builder, wires)
        layout, assignment = builder.compile()
        layout.check(assignment)
    else:
        with pytest.raises((UnsatisfiedConstraintError, CircuitError)):
            predicate(builder, wires)
            builder.compile()


class TestPredicates:
    def test_entries_in_range(self):
        check(entries_in_range(8), [0, 255, 17])
        check(entries_in_range(8), [256], expect_ok=False)

    def test_sum_in_range(self):
        check(sum_in_range(10, 20, entry_bits=8), [5, 7])   # sum 12
        check(sum_in_range(10, 20, entry_bits=8), [12, 8])  # sum 20 inclusive
        check(sum_in_range(10, 20, entry_bits=8), [4, 5], expect_ok=False)
        check(sum_in_range(10, 20, entry_bits=8), [15, 15], expect_ok=False)
        with pytest.raises(ProtocolError):
            sum_in_range(20, 10)

    def test_mean_bounds(self):
        # mean of [4, 6, 8] = 6, bounds [5, 7].
        check(mean_bounds(5, 7, num_entries=3, entry_bits=8), [4, 6, 8])
        check(mean_bounds(5, 7, num_entries=3, entry_bits=8), [1, 1, 1], expect_ok=False)

    def test_entry_at_index_equals(self):
        check(entry_at_index_equals(1, 42), [9, 42, 13])
        check(entry_at_index_equals(1, 42), [9, 43, 13], expect_ok=False)
        builder = CircuitBuilder()
        with pytest.raises(ProtocolError):
            entry_at_index_equals(5, 1)(builder, [builder.var(1)])

    def test_contains_committed_row(self):
        registry = MerkleTree([100, 200, 300, 400])
        pred = contains_committed_row(registry.root, registry.prove(2), index=0)
        check(pred, [300, 999])      # D[0] == leaf 300
        check(pred, [301, 999], expect_ok=False)

    def test_all_of_composition(self):
        combined = all_of(entries_in_range(8), sum_in_range(5, 50, entry_bits=8))
        check(combined, [10, 20])
        check(combined, [1, 1], expect_ok=False)  # sum below 5
        assert "entries_in_range" in combined.__name__
        assert "sum_in_range" in combined.__name__

    def test_predicates_have_distinct_names(self):
        assert entries_in_range(8).__name__ != entries_in_range(16).__name__
        assert sum_in_range(1, 2).__name__ != sum_in_range(1, 3).__name__


@pytest.mark.slow
class TestPredicateExchange:
    def test_exchange_with_statistics_predicate(self, snark_ctx):
        """A buyer verifies 'all entries < 2^16 and sum in [50, 150]'
        before paying — without learning the entries."""
        from repro.chain import Blockchain
        from repro.contracts import KeySecureArbiterContract, PlonkVerifierContract
        from repro.core.exchange import Buyer, KeySecureExchange, Seller, key_negotiation_keys
        from repro.core.tokens import DataAsset

        chain = Blockchain()
        operator = chain.create_account(funded=10**12)
        verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
        chain.deploy(verifier, operator)
        arbiter = KeySecureArbiterContract(verifier)
        chain.deploy(arbiter, operator)
        seller_addr = chain.create_account(funded=10**9)
        buyer_addr = chain.create_account(funded=10**9)

        phi = all_of(entries_in_range(16), sum_in_range(50, 150, entry_bits=16))
        asset = DataAsset.create([60, 40], key=123, nonce=456)
        asset.uri = "u"
        seller = Seller(snark_ctx, asset, seller_addr)
        buyer = Buyer(snark_ctx, asset.public_view(), buyer_addr)
        protocol = KeySecureExchange(snark_ctx, chain, arbiter)
        result = protocol.run(seller, buyer, price=4000, predicate=phi)
        assert result.success, result.reason
        assert result.plaintext == [60, 40]

    def test_seller_cannot_prove_false_predicate(self, snark_ctx):
        from repro.errors import ProofError, UnsatisfiedConstraintError
        from repro.core.tokens import DataAsset
        from repro.core.transform_protocol import prove_encryption

        phi = sum_in_range(50, 150, entry_bits=16)
        asset = DataAsset.create([500, 400], key=1, nonce=2)  # sum 900
        with pytest.raises((ProofError, UnsatisfiedConstraintError)):
            prove_encryption(snark_ctx, asset, predicate=phi)
