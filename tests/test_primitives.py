"""Tests for MiMC, Poseidon, the commitment scheme, and codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, ReproError
from repro.field.fr import MODULUS as R
from repro.primitives import (
    MiMC,
    Poseidon,
    bytes_to_elements,
    commit,
    elements_to_bytes,
    field_hash,
    mimc_decrypt_ctr,
    mimc_encrypt_ctr,
    open_commitment,
    poseidon_hash,
)

elements = st.integers(min_value=0, max_value=R - 1)


class TestMiMC:
    def test_block_roundtrip(self):
        cipher = MiMC()
        key, block = 12345, 67890
        assert cipher.decrypt_block(key, cipher.encrypt_block(key, block)) == block

    @given(elements, elements)
    @settings(max_examples=5, deadline=None)
    def test_block_roundtrip_property(self, key, block):
        cipher = MiMC(rounds=8)  # fewer rounds keeps the property test fast
        assert cipher.decrypt_block(key, cipher.encrypt_block(key, block)) == block

    def test_permutation_is_keyed(self):
        cipher = MiMC()
        assert cipher.encrypt_block(1, 5) != cipher.encrypt_block(2, 5)
        assert cipher.encrypt_block(1, 5) != cipher.encrypt_block(1, 6)

    def test_ctr_roundtrip(self):
        plaintext = [3, 1, 4, 1, 5, 9, 2, 6]
        ct = mimc_encrypt_ctr(key=777, plaintext=plaintext, nonce=42)
        assert len(ct) == len(plaintext)
        assert ct.blocks != tuple(plaintext)
        assert mimc_decrypt_ctr(777, ct) == plaintext

    def test_ctr_wrong_key_garbles(self):
        plaintext = [3, 1, 4]
        ct = mimc_encrypt_ctr(key=777, plaintext=plaintext, nonce=42)
        assert mimc_decrypt_ctr(778, ct) != plaintext

    def test_ctr_keystream_is_position_dependent(self):
        ct = mimc_encrypt_ctr(key=1, plaintext=[0, 0, 0], nonce=9)
        assert len(set(ct.blocks)) == 3

    def test_first_round_constant_is_zero(self):
        assert MiMC().constants[0] == 0
        assert len(MiMC().constants) == 91


class TestPoseidon:
    def test_permutation_deterministic_and_width_checked(self):
        p = Poseidon.get(3)
        out1 = p.permute([1, 2, 3])
        out2 = p.permute([1, 2, 3])
        assert out1 == out2
        assert out1 != [1, 2, 3]
        with pytest.raises(FieldError):
            p.permute([1, 2])

    def test_hash_varies_with_input(self):
        assert poseidon_hash([1, 2]) != poseidon_hash([2, 1])
        assert poseidon_hash([1]) != poseidon_hash([1, 0])  # length tagged
        assert poseidon_hash([]) != poseidon_hash([0])

    def test_hash_long_input(self):
        out = poseidon_hash(list(range(20)))
        assert 0 <= out < R

    def test_width_cached(self):
        assert Poseidon.get(3) is Poseidon.get(3)
        assert Poseidon.get(3) is not Poseidon.get(4)

    def test_invalid_width(self):
        with pytest.raises(FieldError):
            Poseidon(1)

    @given(st.lists(elements, max_size=6), st.lists(elements, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_no_trivial_collisions(self, a, b):
        if a != b:
            assert poseidon_hash(a) != poseidon_hash(b)


class TestCommitment:
    def test_commit_open_roundtrip(self):
        c, o = commit([1, 2, 3])
        assert open_commitment([1, 2, 3], c, o)

    def test_open_rejects_wrong_message_or_blinder(self):
        c, o = commit([1, 2, 3])
        assert not open_commitment([1, 2, 4], c, o)
        assert not open_commitment([1, 2, 3], c, o + 1)

    def test_scalar_message(self):
        c, o = commit(42)
        assert open_commitment(42, c, o)
        assert open_commitment([42], c, o)  # scalar == singleton vector

    def test_hiding_blinder_randomised(self):
        c1, _ = commit([7])
        c2, _ = commit([7])
        assert c1 != c2  # fresh blinders

    def test_deterministic_with_fixed_blinder(self):
        c1, _ = commit([7], blinder=99)
        c2, _ = commit([7], blinder=99)
        assert c1 == c2

    @given(st.lists(elements, min_size=1, max_size=5), st.lists(elements, min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_binding_property(self, m1, m2):
        c, o = commit(m1, blinder=5)
        if m1 != m2:
            assert not open_commitment(m2, c, o)


class TestEncoding:
    @given(st.binary(max_size=200))
    @settings(max_examples=50)
    def test_roundtrip(self, data):
        assert elements_to_bytes(bytes_to_elements(data)) == data

    def test_elements_fit_field(self):
        elems = bytes_to_elements(b"\xff" * 100)
        assert all(0 <= e < R for e in elems)

    def test_decode_rejects_malformed(self):
        with pytest.raises(ReproError):
            elements_to_bytes([])
        with pytest.raises(ReproError):
            elements_to_bytes([100])  # claims 100 bytes but no chunks
        with pytest.raises(ReproError):
            elements_to_bytes([1, R])


class TestFieldHash:
    def test_multi_arg(self):
        assert field_hash(1, 2) != field_hash(2, 1)
        assert field_hash(5) == field_hash(5)
