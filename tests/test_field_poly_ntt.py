"""Tests for polynomial arithmetic and NTT evaluation domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.field import Domain, MODULUS, poly

small_polys = st.lists(st.integers(min_value=0, max_value=MODULUS - 1), max_size=12)
elements = st.integers(min_value=0, max_value=MODULUS - 1)


class TestPoly:
    def test_trim_and_degree(self):
        assert poly.trim([1, 2, 0, 0]) == [1, 2]
        assert poly.degree([]) == -1
        assert poly.degree([0, 0]) == -1
        assert poly.degree([5, 0, 3]) == 2

    @given(small_polys, small_polys, elements)
    @settings(max_examples=40)
    def test_add_mul_consistent_with_eval(self, p, q, x):
        assert poly.evaluate(poly.add(p, q), x) == (
            poly.evaluate(p, x) + poly.evaluate(q, x)
        ) % MODULUS
        assert poly.evaluate(poly.mul(p, q), x) == (
            poly.evaluate(p, x) * poly.evaluate(q, x)
        ) % MODULUS
        assert poly.evaluate(poly.sub(p, q), x) == (
            poly.evaluate(p, x) - poly.evaluate(q, x)
        ) % MODULUS

    def test_large_mul_uses_ntt_and_matches_schoolbook(self):
        p = list(range(1, 70))
        q = list(range(3, 90))
        prod = poly.mul(p, q)
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            for j, b in enumerate(q):
                out[i + j] = (out[i + j] + a * b) % MODULUS
        assert prod == poly.trim(out)

    def test_divide_by_linear_exact(self):
        # p = (X - 3)(X + 5) = X^2 + 2X - 15
        p = [-15 % MODULUS, 2, 1]
        assert poly.trim(poly.divide_by_linear(p, 3)) == [5, 1]
        with pytest.raises(FieldError):
            poly.divide_by_linear(p, 4)

    @given(small_polys, elements)
    @settings(max_examples=30)
    def test_divide_by_linear_property(self, q, z):
        q = poly.trim(q)
        if not q:
            return
        p = poly.mul(q, [(-z) % MODULUS, 1])
        assert poly.trim(poly.divide_by_linear(p, z)) == q

    def test_divide_by_vanishing(self):
        n = 8
        q = [3, 1, 4, 1, 5]
        vanish = [-1 % MODULUS] + [0] * (n - 1) + [1]
        p = poly.mul(q, vanish)
        assert poly.divide_by_vanishing(p, n) == poly.trim(q)

    def test_divide_by_vanishing_rejects_nondivisible(self):
        with pytest.raises(FieldError):
            poly.divide_by_vanishing([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 4)

    @given(small_polys, small_polys)
    @settings(max_examples=30)
    def test_divmod_general(self, p, d):
        d = poly.trim(d)
        if not d:
            return
        q, r = poly.divmod_general(p, d)
        assert poly.trim(poly.add(poly.mul(q, d), r)) == poly.trim(p)
        assert poly.degree(r) < poly.degree(d) or not r

    def test_interpolate(self):
        pts = [(1, 2), (2, 5), (3, 10)]  # y = x^2 + 1
        p = poly.interpolate(pts)
        assert p == [1, 0, 1]
        with pytest.raises(FieldError):
            poly.interpolate([(1, 2), (1, 3)])

    def test_shift_degree(self):
        assert poly.shift_degree([1, 2], 2) == [0, 0, 1, 2]
        with pytest.raises(FieldError):
            poly.shift_degree([1], -1)


class TestDomain:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_fft_roundtrip(self, n):
        dom = Domain.get(n)
        coeffs = [(i * 7 + 1) % MODULUS for i in range(n)]
        assert dom.ifft(dom.fft(coeffs)) == coeffs

    def test_fft_matches_naive_evaluation(self):
        dom = Domain.get(8)
        coeffs = [5, 1, 0, 2, 7, 0, 0, 1]
        evals = dom.fft(coeffs)
        for x, e in zip(dom.elements, evals):
            assert poly.evaluate(coeffs, x) == e

    def test_coset_fft_roundtrip_and_values(self):
        dom = Domain.get(16)
        coeffs = [i + 1 for i in range(10)]
        evals = dom.coset_fft(coeffs)
        shift = 7
        for i, x in enumerate(dom.elements):
            assert poly.evaluate(coeffs, shift * x % MODULUS) == evals[i]
        assert poly.trim(dom.coset_ifft(evals)) == coeffs

    def test_vanishing_on_coset(self):
        base = Domain.get(4)
        vals = base.vanishing_on_coset(16)
        big = Domain.get(16)
        for x, v in zip(big.elements, vals):
            assert base.vanishing_eval(7 * x % MODULUS) == v
        assert all(v != 0 for v in vals)

    def test_lagrange_basis(self):
        dom = Domain.get(8)
        pts = dom.elements
        for i in range(3):
            for j, x in enumerate(pts):
                assert dom.lagrange_basis_eval(i, x) == (1 if i == j else 0)
        x = 12345
        batch = dom.lagrange_basis_evals(5, x)
        assert batch == [dom.lagrange_basis_eval(i, x) for i in range(5)]
        # Batch path at a domain point falls back to the safe path.
        on_point = dom.lagrange_basis_evals(3, pts[1])
        assert on_point == [0, 1, 0]

    def test_domain_rejects_bad_sizes(self):
        with pytest.raises(FieldError):
            Domain(3)
        with pytest.raises(FieldError):
            Domain(0)

    def test_fft_rejects_oversized_input(self):
        dom = Domain.get(4)
        with pytest.raises(FieldError):
            dom.fft([1] * 5)
        with pytest.raises(FieldError):
            dom.ifft([1] * 3)
