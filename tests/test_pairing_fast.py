"""The fast pairing pipeline vs the frozen reference oracle.

The rewrite in ``repro.curve.pairing`` must be *observationally
identical* to the seed implementation preserved in
``repro.curve.pairing_ref``: randomized equivalence on full pairings,
final exponentiation and post-final-exp Miller loops (the raw loop
outputs differ by a per-line F_q2 normalisation that the final exp
annihilates), plus bilinearity, degenerate inputs, prepared-G2
bit-identity and the engine kernel's telemetry accounting.
"""

import importlib
import random

import pytest

from repro import telemetry
from repro.backend.parallel import ParallelEngine
from repro.backend.serial import SerialEngine
from repro.curve.fq12 import FQ12_ONE, fq12_eq, fq12_pow
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R

# The package re-exports the `pairing` function as an attribute, which
# shadows the submodule on `from repro.curve import pairing`.
fast = importlib.import_module("repro.curve.pairing")
ref = importlib.import_module("repro.curve.pairing_ref")

_rng = random.Random(0xC0FFEE)


def _rand_pair():
    a = _rng.randrange(1, R)
    b = _rng.randrange(1, R)
    return G1.generator() * a, G2.generator() * b


@pytest.fixture(autouse=True)
def _clean_telemetry():
    previous = telemetry.set_level(telemetry.OFF)
    telemetry.reset_metrics()
    yield
    telemetry.set_level(previous)
    telemetry.reset_metrics()


class TestEquivalence:
    def test_loop_constants_match(self):
        assert fast.ATE_LOOP_COUNT == ref.ATE_LOOP_COUNT
        assert fast.FINAL_EXP == ref.FINAL_EXP
        assert fast.ATE_LOOP_COUNT == 6 * fast.BN_U + 2

    def test_full_pairing_matches_reference(self):
        for _ in range(2):
            p, q = _rand_pair()
            assert fast.pairing(p, q) == ref.pairing(p, q)

    def test_miller_loop_matches_after_final_exp(self):
        # Raw loop outputs differ by an F_q2 scaling per line (projective
        # vs affine lines); the final exponentiation kills the difference.
        p, q = _rand_pair()
        fast_ml = fast.miller_loop(q, p)
        ref_ml = ref.miller_loop(q, p)
        assert fq12_eq(ref.final_exponentiation(fast_ml), ref.final_exponentiation(ref_ml))

    def test_final_exponentiation_matches_reference(self):
        # The decomposed final exp must equal the plain power for *any*
        # input, not just Miller outputs.
        p, q = _rand_pair()
        x = fast.miller_loop(q, p)
        assert fq12_eq(fast.final_exponentiation(x), ref.final_exponentiation(x))

    def test_pairing_check_matches_reference(self):
        p, q = _rand_pair()
        a = _rng.randrange(2, 1000)
        good = [(p * a, q), (-p, q * a)]
        bad = [(p * a, q), (-p, q * (a + 1))]
        assert fast.pairing_check(good) and ref.pairing_check(good)
        assert not fast.pairing_check(bad) and not ref.pairing_check(bad)


class TestPairingProperties:
    def test_bilinearity(self):
        p, q = G1.generator() * 3, G2.generator() * 5
        a, b = 1234, 5678
        e_ab = fast.pairing(p * a, q * b)
        e = fast.pairing(p, q)
        assert fq12_eq(e_ab, fq12_pow(e, a * b))
        assert fq12_eq(fast.pairing(p * a, q), fast.pairing(p, q * a))

    def test_nondegenerate(self):
        assert not fq12_eq(fast.pairing(G1.generator(), G2.generator()), FQ12_ONE)

    def test_infinity_inputs(self):
        p, q = _rand_pair()
        inf1 = G1.identity()
        inf2 = G2.identity()
        assert fq12_eq(fast.pairing(inf1, q), FQ12_ONE)
        assert fq12_eq(fast.pairing(p, inf2), FQ12_ONE)
        assert fast.pairing_check([(inf1, q), (p, inf2)])

    def test_pairing_type_errors(self):
        from repro.errors import CurveError

        p, q = _rand_pair()
        with pytest.raises(CurveError):
            fast.pairing(q, p)
        with pytest.raises(CurveError):
            fast.prepare_g2(p)


class TestPreparedG2:
    def test_prepared_matches_unprepared_bit_for_bit(self):
        p, q = _rand_pair()
        prep = fast.prepare_g2(q)
        assert fast.miller_loop_prepared(prep, p) == fast.miller_loop(q, p)

    def test_prepared_infinity(self):
        prep = fast.prepare_g2(G2.identity())
        assert prep.inf and prep.coeffs == ()
        assert fast.miller_loop_prepared(prep, G1.generator()) == FQ12_ONE

    def test_multi_miller_loop_accepts_mixed_inputs(self):
        p, q = _rand_pair()
        a = 77
        pairs_raw = [(p * a, q), (-p, q * a)]
        pairs_mixed = [(p * a, fast.prepare_g2(q)), (-p, q * a)]
        assert fast.multi_miller_loop(pairs_raw) == fast.multi_miller_loop(pairs_mixed)
        assert fast.pairing_check(pairs_mixed)


class TestEngineKernel:
    def _pairs(self):
        p = G1.generator() * 9
        q = G2.generator() * 4
        return [(p * 21, q), (-p, q * 21)]

    def test_engine_check_and_cache_accounting(self):
        telemetry.set_level(telemetry.METRICS)
        engine = SerialEngine()
        pairs = self._pairs()
        assert engine.pairing_check(pairs)
        assert engine.pairing_check(pairs)  # second call: all G2 prepared
        counters = telemetry.registry().counter_values()
        assert counters["engine.pairing.calls"] == 2
        assert counters["engine.cache.misses{cache=prepared_g2}"] == 2
        assert counters["engine.cache.hits{cache=prepared_g2}"] == 2
        hist = telemetry.registry().histogram("engine.pairing.pairs")
        assert hist.count == 2 and hist.total == 4

    def test_engine_check_target(self):
        engine = SerialEngine()
        p, q = G1.generator() * 5, G2.generator() * 8
        target = fast.pairing(p, q)
        assert engine.pairing_check([(p, q)], target=target)
        assert not engine.pairing_check([(p, q)], target=FQ12_ONE)

    def test_prepared_cache_evicts_lru(self):
        engine = SerialEngine()
        engine.prepared_g2_capacity = 2
        qs = [G2.generator() * k for k in (2, 3, 4)]
        for q in qs:
            engine.prepared_g2(q)
        assert len(engine._prepared_g2_cache) == 2
        telemetry.set_level(telemetry.METRICS)
        engine.prepared_g2(qs[0])  # evicted: a miss again
        counters = telemetry.registry().counter_values()
        assert counters["engine.cache.misses{cache=prepared_g2}"] == 1

    def test_parallel_and_serial_report_identical_totals(self):
        pairs = self._pairs()

        def measured(engine):
            telemetry.reset_metrics()
            assert engine.pairing_check(pairs)
            assert engine.pairing_check(pairs)
            return telemetry.registry().counter_values()

        telemetry.set_level(telemetry.METRICS)
        serial_counts = measured(SerialEngine())
        parallel = ParallelEngine(workers=2)
        try:
            parallel_counts = measured(parallel)
        finally:
            parallel.close()
        assert serial_counts == parallel_counts
        assert serial_counts["engine.pairing.calls"] == 2
