"""Tests for Baby Jubjub (native + in-circuit) and Schnorr signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CurveError, UnsatisfiedConstraintError
from repro.gadgets.babyjubjub import (
    assert_on_curve,
    assert_schnorr_verifies,
    fixed_base_mul,
    point_add,
    point_double,
    scalar_mul,
)
from repro.plonk.circuit import CircuitBuilder
from repro.primitives.babyjubjub import (
    JubjubPoint,
    SUBGROUP_ORDER,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)

scalars = st.integers(min_value=1, max_value=SUBGROUP_ORDER - 1)


class TestNativeCurve:
    def test_base_point_on_curve_and_in_subgroup(self):
        base = JubjubPoint.base()
        assert base.in_subgroup()
        assert (base * SUBGROUP_ORDER).is_identity()

    def test_group_law(self):
        base = JubjubPoint.base()
        assert base + JubjubPoint.identity() == base
        assert (base + base) == base * 2
        assert base * 3 == base * 2 + base
        assert (base + (-base)).is_identity()

    @given(scalars, scalars)
    @settings(max_examples=10, deadline=None)
    def test_scalar_mul_homomorphic(self, a, b):
        base = JubjubPoint.base()
        assert base * a + base * b == base * ((a + b) % SUBGROUP_ORDER)

    def test_off_curve_rejected(self):
        with pytest.raises(CurveError):
            JubjubPoint(1, 1)

    def test_identity(self):
        ident = JubjubPoint.identity()
        assert ident.is_identity()
        assert (ident * 12345).is_identity()


class TestSchnorr:
    def test_sign_verify_roundtrip(self):
        sk, pk = schnorr_keygen(sk=987654321)
        sig = schnorr_sign(sk, message=42, nonce=111222333)
        assert schnorr_verify(pk, 42, sig)

    def test_wrong_message_or_key_rejected(self):
        sk, pk = schnorr_keygen(sk=987654321)
        sig = schnorr_sign(sk, message=42, nonce=111222333)
        assert not schnorr_verify(pk, 43, sig)
        _, other_pk = schnorr_keygen(sk=555)
        assert not schnorr_verify(other_pk, 42, sig)

    def test_tampered_signature_rejected(self):
        sk, pk = schnorr_keygen(sk=987654321)
        sig = schnorr_sign(sk, message=42)
        bad = type(sig)(sig.r_point, (sig.s + 1) % SUBGROUP_ORDER)
        assert not schnorr_verify(pk, 42, bad)

    def test_zero_key_rejected(self):
        with pytest.raises(CurveError):
            schnorr_keygen(sk=0)

    def test_randomised_nonces(self):
        sk, pk = schnorr_keygen(sk=777)
        s1 = schnorr_sign(sk, 9)
        s2 = schnorr_sign(sk, 9)
        assert s1.r_point != s2.r_point  # nonce reuse would leak sk
        assert schnorr_verify(pk, 9, s1) and schnorr_verify(pk, 9, s2)


def _wires(builder, point):
    return (builder.var(point.x), builder.var(point.y))


class TestCurveGadgets:
    def test_on_curve_constraint(self):
        b = CircuitBuilder()
        assert_on_curve(b, _wires(b, JubjubPoint.base()))
        b.compile()
        b2 = CircuitBuilder()
        assert_on_curve(b2, (b2.var(1), b2.var(1)))
        with pytest.raises(UnsatisfiedConstraintError):
            b2.compile()

    def test_point_add_matches_native(self):
        base = JubjubPoint.base()
        p, q = base * 5, base * 9
        b = CircuitBuilder()
        out = point_add(b, _wires(b, p), _wires(b, q))
        native = p + q
        assert (b.value(out[0]), b.value(out[1])) == (native.x, native.y)
        b.compile()

    def test_point_double_matches_native(self):
        base = JubjubPoint.base()
        b = CircuitBuilder()
        out = point_double(b, _wires(b, base))
        native = base * 2
        assert (b.value(out[0]), b.value(out[1])) == (native.x, native.y)
        b.compile()

    @pytest.mark.parametrize("k", [1, 2, 7, 1023])
    def test_scalar_mul_matches_native(self, k):
        base = JubjubPoint.base()
        b = CircuitBuilder()
        out = scalar_mul(b, b.var(k), _wires(b, base), bits=12)
        native = base * k
        assert (b.value(out[0]), b.value(out[1])) == (native.x, native.y)
        b.compile()

    def test_fixed_base_mul_matches_native(self):
        b = CircuitBuilder()
        out = fixed_base_mul(b, b.var(300), bits=10)
        native = JubjubPoint.base() * 300
        assert (b.value(out[0]), b.value(out[1])) == (native.x, native.y)
        b.compile()

    def test_schnorr_gadget_accepts_valid_signature(self):
        sk, pk = schnorr_keygen(sk=424242)
        message = 777
        sig = schnorr_sign(sk, message, nonce=999)
        assert schnorr_verify(pk, message, sig)
        b = CircuitBuilder()
        assert_schnorr_verifies(
            b,
            _wires(b, pk),
            b.var(message),
            _wires(b, sig.r_point),
            b.var(sig.s),
        )
        layout, assignment = b.compile()
        layout.check(assignment)

    def test_schnorr_gadget_rejects_forgery(self):
        sk, pk = schnorr_keygen(sk=424242)
        sig = schnorr_sign(sk, 777, nonce=999)
        b = CircuitBuilder()
        assert_schnorr_verifies(
            b,
            _wires(b, pk),
            b.var(778),  # wrong message
            _wires(b, sig.r_point),
            b.var(sig.s),
        )
        with pytest.raises(UnsatisfiedConstraintError):
            b.compile()
