"""The telemetry CLI: report/diff/flame over ledgers and BENCH tables.

Two committed artifacts double as fixtures so the CLI is continuously
proven against real output of the stack:

- ``benchmarks/baselines/sample_ledger.jsonl`` — one profile-level
  KeySecure exchange on the 2-worker parallel backend (worker spans and
  ``worker.*`` counters included);
- ``benchmarks/baselines/BENCH_substrate.json`` — the quick substrate
  bench table the CI perf job diffs against.

The regression tests here are the CI gate's demonstration: degrading a
speedup cell beyond the tolerance must flip ``diff --check`` to exit 1.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.telemetry import ledger
from repro.telemetry.cli import (
    bench_metrics,
    collapsed_stacks,
    diff_metrics,
    ledger_metrics,
    load_file,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SAMPLE_LEDGER = REPO_ROOT / "benchmarks" / "baselines" / "sample_ledger.jsonl"
BENCH_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_substrate.json"


def _bench_payload():
    return json.loads(BENCH_BASELINE.read_text())


# ----- input sniffing --------------------------------------------------------


class TestLoadFile:
    def test_ledger_jsonl_is_sniffed_by_first_line(self):
        kind, records = load_file(str(SAMPLE_LEDGER))
        assert kind == "ledger"
        assert records and records[0]["schema"] == ledger.SCHEMA

    def test_pretty_printed_bench_json_falls_through(self):
        # First line of a pretty-printed table is just "{" — the sniff
        # must not crash, it must re-parse the whole document.
        kind, payload = load_file(str(BENCH_BASELINE))
        assert kind == "bench"
        assert payload["rows"]

    def test_empty_file_is_a_usage_error(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(SystemExit):
            load_file(str(empty))

    def test_unrecognised_json_is_a_usage_error(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SystemExit):
            load_file(str(other))


# ----- report ---------------------------------------------------------------


class TestReport:
    def test_report_on_committed_sample_ledger(self, capsys):
        assert main(["report", str(SAMPLE_LEDGER)]) == 0
        out = capsys.readouterr().out
        assert "hot kernels" in out
        assert "engine.kernel.seconds{kernel=msm_srs}" in out
        # The sample was recorded at profile on the parallel backend, so
        # the worker attribution sections must be populated.
        assert "worker.compute.seconds" in out
        assert "worker counters:" in out
        assert "cache hit rates:" in out

    def test_report_on_committed_bench_table(self, capsys):
        assert main(["report", str(BENCH_BASELINE)]) == 0
        out = capsys.readouterr().out
        assert "bench: substrate" in out
        assert "warm Plonk proof" in out
        assert "hot kernels (registry snapshot):" in out


# ----- metric extraction and diffing ----------------------------------------


class TestBenchMetrics:
    def test_speedup_cells_gate_seconds_cells_do_not(self):
        metrics = bench_metrics(_bench_payload())
        directions = {name: direction for name, _, direction in metrics}
        speedups = [n for n, d in directions.items() if d == "higher"]
        assert speedups and all("speedup" in n for n in speedups)
        seconds = [n for n, d in directions.items() if d == "info"]
        assert seconds  # raw wall-clock is reported but never gates

    def test_policy_rows_are_skipped(self):
        metrics = bench_metrics(_bench_payload())
        assert not any("floor" in name for name, _, _ in metrics)

    def test_ledger_latency_means_gate_lower(self):
        _, records = load_file(str(SAMPLE_LEDGER))
        directions = {name: d for name, _, d in ledger_metrics(records)}
        lat = "engine.kernel.seconds{kernel=msm_srs} mean"
        assert directions[lat] == "lower"
        assert directions["engine.pairing.calls"] == "info"


class TestDiffMetrics:
    def test_identical_metrics_have_no_regressions(self):
        metrics = [("a", 1.0, "lower"), ("b", 2.0, "higher")]
        rows, regressions = diff_metrics(metrics, list(metrics), tolerance=0.1)
        assert regressions == []
        assert all(row[4] == "" for row in rows)

    def test_lower_is_better_flags_increase(self):
        rows, regressions = diff_metrics(
            [("latency", 1.0, "lower")], [("latency", 1.5, "lower")], tolerance=0.1
        )
        assert regressions == ["latency"]
        assert rows[0][4] == "REGRESSION"

    def test_higher_is_better_flags_decrease(self):
        _, regressions = diff_metrics(
            [("speedup", 1.6, "higher")], [("speedup", 1.0, "higher")], tolerance=0.2
        )
        assert regressions == ["speedup"]

    def test_improvement_within_direction_is_not_a_regression(self):
        rows, regressions = diff_metrics(
            [("latency", 1.0, "lower")], [("latency", 0.5, "lower")], tolerance=0.1
        )
        assert regressions == []
        assert rows[0][4] == "improved"

    def test_info_metrics_never_gate(self):
        _, regressions = diff_metrics(
            [("wall s", 1.0, "info")], [("wall s", 10.0, "info")], tolerance=0.1
        )
        assert regressions == []

    def test_removed_and_added_metrics_are_reported(self):
        rows, regressions = diff_metrics(
            [("gone", 1.0, "lower")], [("fresh", 2.0, "lower")], tolerance=0.1
        )
        assert regressions == []
        assert ("gone", "1", "-", "removed", "") in rows
        assert ("fresh", "-", "2", "added", "") in rows


# ----- the CI perf gate, demonstrated ---------------------------------------


class TestPerfGate:
    def _degraded_copy(self, tmp_path):
        """The baseline with its speedup ratios collapsed to 1.00x."""
        payload = copy.deepcopy(_bench_payload())
        for row in payload["rows"]:
            for i, cell in enumerate(row):
                if isinstance(cell, str) and cell.endswith("x") and cell[0].isdigit():
                    row[i] = "1.00x"
        degraded = tmp_path / "BENCH_degraded.json"
        degraded.write_text(json.dumps(payload, indent=2))
        return degraded

    def test_identical_files_pass_the_gate(self, capsys):
        code = main(
            ["diff", "--check", str(BENCH_BASELINE), str(BENCH_BASELINE)]
        )
        assert code == 0
        assert "no regressions beyond tolerance" in capsys.readouterr().out

    def test_injected_regression_fails_the_gate(self, tmp_path, capsys):
        degraded = self._degraded_copy(tmp_path)
        code = main(
            [
                "diff",
                "--check",
                "--tolerance",
                "0.2",
                str(BENCH_BASELINE),
                str(degraded),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "speedup" in out

    def test_without_check_regressions_are_advisory(self, tmp_path, capsys):
        degraded = self._degraded_copy(tmp_path)
        code = main(
            ["diff", "--tolerance", "0.2", str(BENCH_BASELINE), str(degraded)]
        )
        assert code == 0
        assert "regression(s) beyond tolerance" in capsys.readouterr().out

    def test_mixed_kinds_refuse_to_diff(self):
        with pytest.raises(SystemExit):
            main(["diff", str(BENCH_BASELINE), str(SAMPLE_LEDGER)])


# ----- flame ----------------------------------------------------------------


class TestFlame:
    def test_collapsed_stack_self_time_arithmetic(self):
        record = {
            "spans": [
                {"id": 0, "parent": None, "name": "root", "duration": 0.010},
                {"id": 1, "parent": 0, "name": "child", "duration": 0.004},
                {"id": 2, "parent": 1, "name": "leaf", "duration": 0.001},
                # Sub-microsecond self time: dropped from the export.
                {"id": 3, "parent": 0, "name": "tiny", "duration": 5e-7},
            ]
        }
        lines = sorted(collapsed_stacks([record]))
        assert lines == [
            "root 5999",           # 10ms - (4ms + ~0.5us) of children
            "root;child 3000",     # 4ms - 1ms leaf
            "root;child;leaf 1000",
        ]

    def test_flame_on_committed_sample_ledger(self, capsys):
        assert main(["flame", str(SAMPLE_LEDGER)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) >= 1
        # Worker spans survive the export as dispatch children.
        assert any("engine.dispatch;worker.task" in line for line in lines)

    def test_flame_out_writes_a_file(self, tmp_path, capsys):
        target = tmp_path / "stacks.txt"
        assert main(["flame", str(SAMPLE_LEDGER), "--out", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        content = target.read_text().splitlines()
        assert content and all(" " in line for line in content)

    def test_flame_refuses_bench_tables(self):
        with pytest.raises(SystemExit):
            main(["flame", str(BENCH_BASELINE)])
