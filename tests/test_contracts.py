"""Tests for the ZKDET contract suite: ERC-721 data tokens, auctions,
arbiters, and the on-chain verifier."""

import pytest

from repro.chain import Blockchain
from repro.contracts import (
    ClockAuctionContract,
    DataTokenContract,
    ZKCPArbiterContract,
)
from repro.primitives.hashing import field_hash


@pytest.fixture
def env():
    chain = Blockchain()
    alice = chain.create_account(funded=10**9)
    bob = chain.create_account(funded=10**9)
    token = DataTokenContract()
    chain.deploy(token, alice)
    return chain, alice, bob, token


class TestDataToken:
    def test_mint_and_metadata(self, env):
        chain, alice, _, token = env
        receipt = chain.transact(alice, token, "mint", "uri-1", 12345, "proofhash")
        tid = receipt.return_value
        assert tid == 1
        assert chain.call_view(token, "owner_of", tid) == alice
        assert chain.call_view(token, "token_uri", tid) == "uri-1"
        assert chain.call_view(token, "commitment_of", tid) == 12345
        assert chain.call_view(token, "prev_ids", tid) == ()
        assert chain.call_view(token, "kind_of", tid) == "source"
        assert chain.call_view(token, "proof_hash_of", tid) == "proofhash"
        assert chain.call_view(token, "balance_of", alice) == 1
        assert chain.call_view(token, "total_minted") == 1

    def test_token_ids_are_unique(self, env):
        chain, alice, _, token = env
        ids = [
            chain.transact(alice, token, "mint", "u%d" % i, i).return_value
            for i in range(5)
        ]
        assert len(set(ids)) == 5

    def test_transfer_and_approval(self, env):
        chain, alice, bob, token = env
        tid = chain.transact(alice, token, "mint", "u", 1).return_value
        # Bob cannot move Alice's token.
        r = chain.transact(bob, token, "transfer_from", alice, bob, tid)
        assert not r.status
        # Approval lets him.
        chain.transact(alice, token, "approve", bob, tid)
        r = chain.transact(bob, token, "transfer_from", alice, bob, tid)
        assert r.status
        assert chain.call_view(token, "owner_of", tid) == bob
        assert chain.call_view(token, "balance_of", alice) == 0
        assert chain.call_view(token, "balance_of", bob) == 1

    def test_transfer_wrong_from_rejected(self, env):
        chain, alice, bob, token = env
        tid = chain.transact(alice, token, "mint", "u", 1).return_value
        r = chain.transact(alice, token, "transfer_from", bob, alice, tid)
        assert not r.status

    def test_burn(self, env):
        chain, alice, _, token = env
        tid = chain.transact(alice, token, "mint", "u", 1).return_value
        chain.transact(alice, token, "burn", tid)
        assert chain.call_view(token, "owner_of", tid) is None
        assert chain.call_view(token, "is_burned", tid)
        assert chain.call_view(token, "balance_of", alice) == 0

    def test_aggregate(self, env):
        chain, alice, bob, token = env
        t1 = chain.transact(alice, token, "mint", "u1", 1).return_value
        t2 = chain.transact(alice, token, "mint", "u2", 2).return_value
        agg = chain.transact(
            alice, token, "aggregate", (t1, t2), "u-agg", 3, "pf"
        ).return_value
        assert chain.call_view(token, "prev_ids", agg) == (t1, t2)
        assert chain.call_view(token, "kind_of", agg) == "aggregation"
        # Cannot aggregate tokens you don't own.
        t3 = chain.transact(bob, token, "mint", "u3", 3).return_value
        r = chain.transact(alice, token, "aggregate", (t1, t3), "x", 4, "pf")
        assert not r.status
        # Needs at least two sources.
        r = chain.transact(alice, token, "aggregate", (t1,), "x", 4, "pf")
        assert not r.status

    def test_partition(self, env):
        chain, alice, _, token = env
        src = chain.transact(alice, token, "mint", "u", 9).return_value
        parts = chain.transact(
            alice, token, "partition", src, (("p1", 11), ("p2", 22)), "pf"
        ).return_value
        assert len(parts) == 2
        for p in parts:
            assert chain.call_view(token, "prev_ids", p) == (src,)
            assert chain.call_view(token, "kind_of", p) == "partition"

    def test_duplicate_and_process(self, env):
        chain, alice, _, token = env
        src = chain.transact(alice, token, "mint", "u", 9).return_value
        dup = chain.transact(alice, token, "duplicate", src, "d", 9, "pf").return_value
        assert chain.call_view(token, "kind_of", dup) == "duplication"
        model = chain.transact(
            alice, token, "process", (src,), "m", 77, "pf"
        ).return_value
        assert chain.call_view(token, "kind_of", model) == "processing"
        assert chain.call_view(token, "prev_ids", model) == (src,)

    def test_unknown_parent_rejected(self, env):
        chain, alice, _, token = env
        src = chain.transact(alice, token, "mint", "u", 9).return_value
        r = chain.transact(alice, token, "duplicate", 999, "d", 9, "pf")
        assert not r.status


class TestClockAuction:
    @pytest.fixture
    def market(self, env):
        chain, alice, bob, token = env
        auction = ClockAuctionContract(token)
        chain.deploy(auction, alice)
        tid = chain.transact(alice, token, "mint", "u", 1).return_value
        chain.transact(alice, token, "approve", auction.address, tid)
        return chain, alice, bob, token, auction, tid

    def test_create_escrows_token(self, market):
        chain, alice, _, token, auction, tid = market
        aid = chain.transact(
            alice, auction, "create_auction", tid, 1000, 100, 10
        ).return_value
        assert chain.call_view(token, "owner_of", tid) == auction.address
        assert chain.call_view(auction, "current_price", aid) == 1000
        assert chain.call_view(auction, "seller_of", aid) == alice

    def test_price_decays_to_floor(self, market):
        chain, alice, _, _, auction, tid = market
        aid = chain.transact(
            alice, auction, "create_auction", tid, 1000, 100, 200
        ).return_value
        chain.seal_block()
        chain.seal_block()
        assert chain.call_view(auction, "current_price", aid) == 600
        for _ in range(10):
            chain.seal_block()
        assert chain.call_view(auction, "current_price", aid) == 100

    def test_bid_settles(self, market):
        chain, alice, bob, token, auction, tid = market
        aid = chain.transact(
            alice, auction, "create_auction", tid, 1000, 100, 0
        ).return_value
        alice_before = chain.balance_of(alice)
        bob_before = chain.balance_of(bob)
        r = chain.transact(bob, auction, "bid", aid, value=1500)
        assert r.status and r.return_value == 1000
        assert chain.call_view(token, "owner_of", tid) == bob
        assert chain.balance_of(alice) == alice_before + 1000
        assert chain.balance_of(bob) == bob_before - 1000  # excess refunded

    def test_low_bid_rejected(self, market):
        chain, alice, bob, _, auction, tid = market
        aid = chain.transact(
            alice, auction, "create_auction", tid, 1000, 100, 0
        ).return_value
        r = chain.transact(bob, auction, "bid", aid, value=500)
        assert not r.status

    def test_cancel_returns_token(self, market):
        chain, alice, bob, token, auction, tid = market
        aid = chain.transact(
            alice, auction, "create_auction", tid, 1000, 100, 0
        ).return_value
        r = chain.transact(bob, auction, "cancel", aid)
        assert not r.status  # only seller
        chain.transact(alice, auction, "cancel", aid)
        assert chain.call_view(token, "owner_of", tid) == alice


class TestZKCPArbiter:
    def test_happy_path_leaks_key(self, env):
        chain, alice, bob, _ = env  # alice = seller, bob = buyer
        arbiter = ZKCPArbiterContract()
        chain.deploy(arbiter, alice)
        key = 123456789
        deal = chain.transact(
            bob, arbiter, "lock", alice, field_hash(key), value=5000
        ).return_value
        alice_before = chain.balance_of(alice)
        chain.transact(alice, arbiter, "open", deal, key)
        assert chain.balance_of(alice) == alice_before + 5000
        # The vulnerability: ANY third party can now read the key.
        assert chain.call_view(arbiter, "revealed_key", deal) == key

    def test_wrong_key_rejected(self, env):
        chain, alice, bob, _ = env
        arbiter = ZKCPArbiterContract()
        chain.deploy(arbiter, alice)
        deal = chain.transact(
            bob, arbiter, "lock", alice, field_hash(42), value=5000
        ).return_value
        r = chain.transact(alice, arbiter, "open", deal, 43)
        assert not r.status
        # Buyer can reclaim.
        bob_before = chain.balance_of(bob)
        chain.transact(bob, arbiter, "refund", deal)
        assert chain.balance_of(bob) == bob_before + 5000

    def test_only_counterparties(self, env):
        chain, alice, bob, _ = env
        carol = chain.create_account(funded=10**9)
        arbiter = ZKCPArbiterContract()
        chain.deploy(arbiter, alice)
        deal = chain.transact(
            bob, arbiter, "lock", alice, field_hash(1), value=10
        ).return_value
        assert not chain.transact(carol, arbiter, "open", deal, 1).status
        assert not chain.transact(carol, arbiter, "refund", deal).status
