"""Randomized differential tests: fast paths against reference oracles.

The compute-backend layer promises that engine choice is unobservable
(``ParallelEngine`` bit-identical to ``SerialEngine``) and the Fq2-tower
Miller loop promises equality with the slow reference pairing.  The unit
suites pin those claims on fixed vectors; this suite stresses them on
*randomized* inputs drawn from the shared ``chaos_seed`` fixture, so CI's
chaos job sweeps a fresh region of the input space on every run while any
failure replays from the seed echoed in the test report.
"""

import random

import pytest

from repro import substrate
from repro.backend import ParallelEngine, SerialEngine
from repro.curve import glv, pairing_ref
from repro.curve.g1 import G1, jac_mul, jac_to_affine
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R
from repro.field.frvec import ScalarVector
from repro.field.ntt import COSET_SHIFT, Domain, _ntt_in_place_fast, _ntt_in_place_ref

pytestmark = pytest.mark.differential


@pytest.fixture(scope="module")
def engines():
    serial = SerialEngine()
    parallel = ParallelEngine(
        workers=2, min_msm_points=1, min_ntt_jobs=1, min_ntt_size=1, min_inverse_size=1
    )
    yield serial, parallel
    parallel.close()


def _rng(chaos_seed, salt):
    return random.Random("%d:%s" % (chaos_seed, salt))


class TestEngineDifferential:
    """ParallelEngine vs SerialEngine on randomized inputs."""

    def test_ntt_roundtrip_and_equivalence(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "ntt")
        jobs = []
        for _ in range(4):
            n = 1 << rng.randint(2, 9)
            coeffs = [rng.randrange(R) for _ in range(n)]
            jobs.append(("fft", n, coeffs, 0))
            jobs.append(("ifft", n, coeffs, 0))
            jobs.append(("coset_fft", n, coeffs, COSET_SHIFT))
            jobs.append(("coset_ifft", n, coeffs, COSET_SHIFT))
        out_s = serial.ntt_batch(jobs)
        out_p = parallel.ntt_batch(jobs)
        assert out_s == out_p
        # Forward/inverse really are inverses on the same random vector.
        for i in range(0, len(jobs), 4):
            _kind, n, coeffs, _shift = jobs[i]
            assert serial.ntt_batch([("ifft", n, out_s[i], 0)])[0] == coeffs

    def test_msm_g1_matches_naive(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "msm1")
        n = rng.randint(1, 160)
        points = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
        naive = G1.identity()
        for p, s in zip(points, scalars):
            naive = naive + p * s
        got_s = serial.msm_g1(points, scalars)
        got_p = parallel.msm_g1(points, scalars)
        assert got_s == naive
        assert got_p == naive
        assert got_s.to_bytes() == got_p.to_bytes()

    def test_msm_g2_matches_naive(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "msm2")
        n = rng.randint(1, 12)
        points = [G2.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
        naive = G2.identity()
        for p, s in zip(points, scalars):
            naive = naive + p * s
        assert serial.msm_g2(points, scalars) == naive
        assert parallel.msm_g2(points, scalars) == naive

    def test_batch_inverse_against_fermat(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "inv")
        values = [rng.randrange(1, R) for _ in range(rng.randint(1, 700))]
        inv_s = serial.batch_inverse(values)
        inv_p = parallel.batch_inverse(values)
        assert inv_s == inv_p
        for v, v_inv in zip(values, inv_s):
            assert v_inv == pow(v, R - 2, R)

    def test_fixed_base_mul_matches_generic(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "fb")
        for base in (G1.generator(), G2.generator()):
            for _ in range(4):
                k = rng.choice([0, 1, R - 1, rng.randrange(R)])
                expected = base * k
                assert serial.fixed_base_mul(base, k) == expected
                assert parallel.fixed_base_mul(base, k) == expected


class TestSubstrateDifferential:
    """The fast data plane (GLV, lazy NTT, shared memory) vs the
    retained reference kernels — bit-for-bit, per the PR 6 gate."""

    def test_glv_decomposition_reconstructs_and_is_short(self, chaos_seed):
        rng = _rng(chaos_seed, "glv-split")
        for k in [0, 1, 2, R - 1, glv.LAMBDA, R - glv.LAMBDA] + [
            rng.randrange(R) for _ in range(64)
        ]:
            k1, k2 = glv.decompose(k)
            assert (k1 + k2 * glv.LAMBDA) % R == k % R
            assert abs(k1).bit_length() <= glv.HALF_BITS
            assert abs(k2).bit_length() <= glv.HALF_BITS

    def test_glv_mul_equals_double_and_add(self, chaos_seed):
        rng = _rng(chaos_seed, "glv-mul")
        for _ in range(12):
            p = (G1.generator() * rng.randrange(1, R)).to_jacobian()
            k = rng.choice([0, 1, R - 1, glv.LAMBDA, rng.randrange(R)])
            assert jac_to_affine(glv.glv_jac_mul(p, k)) == jac_to_affine(jac_mul(p, k))

    def test_g1_mul_identical_across_substrate_modes(self, chaos_seed):
        rng = _rng(chaos_seed, "glv-g1")
        p = G1.generator() * rng.randrange(1, R)
        for _ in range(6):
            k = rng.randrange(R)
            with substrate.use_mode("reference"):
                ref = p * k
            assert (p * k).to_bytes() == ref.to_bytes()

    def test_fast_ntt_butterflies_bit_identical(self, chaos_seed):
        rng = _rng(chaos_seed, "ntt-lazy")
        for _ in range(4):
            n = 1 << rng.randint(1, 10)
            dom = Domain.get(n)
            values = [rng.randrange(R) for _ in range(n)]
            ref = list(values)
            fast = list(values)
            _ntt_in_place_ref(ref, dom._twiddles)
            _ntt_in_place_fast(fast, dom._twiddles)
            assert fast == ref

    def test_ntt_over_vector_equals_ntt_over_list(self, chaos_seed):
        rng = _rng(chaos_seed, "ntt-vec")
        n = 1 << rng.randint(2, 9)
        dom = Domain.get(n)
        coeffs = [rng.randrange(R) for _ in range(n)]
        vec = ScalarVector.from_list(coeffs)
        assert dom.fft(vec) == dom.fft(list(coeffs))
        assert dom.ifft(ScalarVector.from_list(coeffs)) == dom.ifft(list(coeffs))
        assert dom.coset_fft(vec) == dom.coset_fft(list(coeffs))
        assert vec.to_list() == coeffs  # boundary round-trip is lossless

    def test_scalar_vector_roundtrip(self, chaos_seed):
        rng = _rng(chaos_seed, "frvec")
        values = [rng.randrange(R) for _ in range(rng.randint(1, 200))]
        vec = ScalarVector.from_list(values)
        assert list(vec) == values
        assert ScalarVector.from_buffer(vec.tobytes()).to_list() == values
        assert vec == values

    def test_shared_memory_msm_equals_pickle_path(self, chaos_seed):
        rng = _rng(chaos_seed, "shm-msm")
        n = rng.randint(130, 200)
        points = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
        shm_engine = ParallelEngine(workers=2, min_msm_points=1, use_shm=True)
        pkl_engine = ParallelEngine(workers=2, min_msm_points=1, use_shm=False)
        try:
            got_shm = shm_engine.msm_g1(points, scalars)
            got_pkl = pkl_engine.msm_g1(points, scalars)
            assert got_shm.to_bytes() == got_pkl.to_bytes()
        finally:
            shm_engine.close()
            pkl_engine.close()

    def test_shared_memory_ntt_and_inverse_equal_pickle_path(self, chaos_seed):
        rng = _rng(chaos_seed, "shm-ntt")
        jobs = []
        for _ in range(3):
            n = 1 << rng.randint(4, 9)
            coeffs = [rng.randrange(R) for _ in range(n)]
            jobs.append(("fft", n, coeffs, 0))
            jobs.append(("coset_ifft", n, coeffs, COSET_SHIFT))
        values = [rng.randrange(1, R) for _ in range(300)]
        shm_engine = ParallelEngine(
            workers=2, min_ntt_jobs=1, min_ntt_size=1, min_inverse_size=1, use_shm=True
        )
        pkl_engine = ParallelEngine(
            workers=2, min_ntt_jobs=1, min_ntt_size=1, min_inverse_size=1, use_shm=False
        )
        try:
            assert shm_engine.ntt_batch(list(jobs)) == pkl_engine.ntt_batch(list(jobs))
            assert shm_engine.batch_inverse(values) == pkl_engine.batch_inverse(values)
        finally:
            shm_engine.close()
            pkl_engine.close()

    def test_twiddle_tables_from_shm_bit_identical(self, chaos_seed):
        """A Domain rebuilt from packed twiddle tables (the shm worker
        path) is bit-identical to a locally constructed one: same
        twiddles, same transforms — including the coset variants, which
        exercise omega_inv and n_inv from the segment header."""
        from repro.backend import shm as _shm
        from repro.field.frvec import pack_scalars, unpack_scalars

        rng = _rng(chaos_seed, "twiddle-shm")
        n = 1 << rng.randint(3, 10)
        built = Domain(n)
        twiddles, inv_twiddles = built.tables()
        # Round-trip through an actual shared-memory segment in the
        # parent-side layout: [omega, omega_inv, n_inv] + tables.
        packed = pack_scalars(
            [built.omega, built.omega_inv, built.n_inv] + twiddles + inv_twiddles
        )
        seg = _shm.create_segment(len(packed))
        try:
            seg.buf[: len(packed)] = packed
            half = max(n >> 1, 1)
            omega, omega_inv, n_inv = unpack_scalars(seg.buf, 0, 3)
            attached = Domain.from_tables(
                n,
                omega,
                omega_inv,
                n_inv,
                unpack_scalars(seg.buf, 3, half),
                unpack_scalars(seg.buf, 3 + half, half),
            )
        finally:
            _shm.release_segment(seg)
        assert attached.tables() == built.tables()
        coeffs = [rng.randrange(R) for _ in range(n)]
        assert attached.fft(list(coeffs)) == built.fft(list(coeffs))
        assert attached.ifft(list(coeffs)) == built.ifft(list(coeffs))
        assert attached.coset_fft(list(coeffs)) == built.coset_fft(list(coeffs))
        assert attached.coset_ifft(list(coeffs)) == built.coset_ifft(list(coeffs))

    def test_seed_cache_never_displaces_local_domain(self):
        local = Domain.get(16)
        rebuilt = Domain.from_tables(
            16, local.omega, local.omega_inv, local.n_inv, *local.tables()
        )
        Domain.seed_cache(rebuilt)
        assert Domain.get(16) is local

    def test_msm_srs_and_fixed_table_kernels_match_msm_jac(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "srs-msm")

        class _FakeSRS:
            def __init__(self, points):
                self.g1_powers = points

        n = rng.randint(140, 180)
        powers = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
        srs = _FakeSRS(powers)
        coeffs = [rng.randrange(R) for _ in range(rng.randint(100, n))]
        expected = serial.msm_jac(
            [p.to_jacobian() for p in powers[: len(coeffs)]], coeffs
        )
        for eng in (serial, parallel):
            got = eng.msm_srs(srs, coeffs)
            assert jac_to_affine(got) == jac_to_affine(expected)
            table = tuple(powers)
            got_fixed = eng.msm_g1_fixed(table, coeffs)
            assert got_fixed.to_bytes() == G1.from_jacobian(expected).to_bytes()

    def test_full_engines_identical_under_both_substrate_modes(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "modes")
        n = rng.randint(130, 170)
        points = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.randrange(R) for _ in range(n)]
        jobs = [("coset_fft", 64, [rng.randrange(R) for _ in range(64)], COSET_SHIFT)]
        with substrate.use_mode("reference"):
            ref_msm = serial.msm_g1(points, scalars)
            ref_ntt = serial.ntt_batch(list(jobs))
        for eng in (serial, parallel):
            assert eng.msm_g1(points, scalars).to_bytes() == ref_msm.to_bytes()
            assert eng.ntt_batch(list(jobs)) == ref_ntt


@pytest.mark.slow
class TestPairingDifferential:
    """The fast Fq2-tower pairing vs the reference implementation."""

    def test_fast_equals_reference_on_random_points(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "pair")
        for _ in range(3):
            p = G1.generator() * rng.randrange(1, R)
            q = G2.generator() * rng.randrange(1, R)
            ref = pairing_ref.pairing(p, q)
            assert serial.pairing(p, q) == ref
            assert parallel.pairing(p, q) == ref

    def test_bilinearity_under_random_scalars(self, engines, chaos_seed):
        serial, _ = engines
        rng = _rng(chaos_seed, "bilin")
        a = rng.randrange(2, R)
        b = rng.randrange(2, R)
        p, q = G1.generator(), G2.generator()
        # e(aP, bQ) == e(abP, Q) == e(P, abQ)
        lhs = serial.pairing(p * a, q * b)
        assert lhs == serial.pairing(p * (a * b % R), q)
        assert lhs == serial.pairing(p, q * (a * b % R))

    def test_pairing_check_random_cancellation(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "check")
        a = rng.randrange(2, R)
        p, q = G1.generator(), G2.generator()
        # e(aP, Q) * e(-P, aQ) == 1
        pairs = [(p * a, q), (-(p), q * a)]
        assert serial.pairing_check(pairs)
        assert parallel.pairing_check(pairs)
        bad = [(p * a, q), (-(p), q * ((a + 1) % R))]
        assert not serial.pairing_check(bad)
        assert not parallel.pairing_check(bad)
