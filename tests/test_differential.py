"""Randomized differential tests: fast paths against reference oracles.

The compute-backend layer promises that engine choice is unobservable
(``ParallelEngine`` bit-identical to ``SerialEngine``) and the Fq2-tower
Miller loop promises equality with the slow reference pairing.  The unit
suites pin those claims on fixed vectors; this suite stresses them on
*randomized* inputs drawn from the shared ``chaos_seed`` fixture, so CI's
chaos job sweeps a fresh region of the input space on every run while any
failure replays from the seed echoed in the test report.
"""

import random

import pytest

from repro.backend import ParallelEngine, SerialEngine
from repro.curve import pairing_ref
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R
from repro.field.ntt import COSET_SHIFT

pytestmark = pytest.mark.differential


@pytest.fixture(scope="module")
def engines():
    serial = SerialEngine()
    parallel = ParallelEngine(
        workers=2, min_msm_points=1, min_ntt_jobs=1, min_ntt_size=1, min_inverse_size=1
    )
    yield serial, parallel
    parallel.close()


def _rng(chaos_seed, salt):
    return random.Random("%d:%s" % (chaos_seed, salt))


class TestEngineDifferential:
    """ParallelEngine vs SerialEngine on randomized inputs."""

    def test_ntt_roundtrip_and_equivalence(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "ntt")
        jobs = []
        for _ in range(4):
            n = 1 << rng.randint(2, 9)
            coeffs = [rng.randrange(R) for _ in range(n)]
            jobs.append(("fft", n, coeffs, 0))
            jobs.append(("ifft", n, coeffs, 0))
            jobs.append(("coset_fft", n, coeffs, COSET_SHIFT))
            jobs.append(("coset_ifft", n, coeffs, COSET_SHIFT))
        out_s = serial.ntt_batch(jobs)
        out_p = parallel.ntt_batch(jobs)
        assert out_s == out_p
        # Forward/inverse really are inverses on the same random vector.
        for i in range(0, len(jobs), 4):
            _kind, n, coeffs, _shift = jobs[i]
            assert serial.ntt_batch([("ifft", n, out_s[i], 0)])[0] == coeffs

    def test_msm_g1_matches_naive(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "msm1")
        n = rng.randint(1, 160)
        points = [G1.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
        naive = G1.identity()
        for p, s in zip(points, scalars):
            naive = naive + p * s
        got_s = serial.msm_g1(points, scalars)
        got_p = parallel.msm_g1(points, scalars)
        assert got_s == naive
        assert got_p == naive
        assert got_s.to_bytes() == got_p.to_bytes()

    def test_msm_g2_matches_naive(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "msm2")
        n = rng.randint(1, 12)
        points = [G2.generator() * rng.randrange(1, R) for _ in range(n)]
        scalars = [rng.choice([0, 1, R - 1, rng.randrange(R)]) for _ in range(n)]
        naive = G2.identity()
        for p, s in zip(points, scalars):
            naive = naive + p * s
        assert serial.msm_g2(points, scalars) == naive
        assert parallel.msm_g2(points, scalars) == naive

    def test_batch_inverse_against_fermat(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "inv")
        values = [rng.randrange(1, R) for _ in range(rng.randint(1, 700))]
        inv_s = serial.batch_inverse(values)
        inv_p = parallel.batch_inverse(values)
        assert inv_s == inv_p
        for v, v_inv in zip(values, inv_s):
            assert v_inv == pow(v, R - 2, R)

    def test_fixed_base_mul_matches_generic(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "fb")
        for base in (G1.generator(), G2.generator()):
            for _ in range(4):
                k = rng.choice([0, 1, R - 1, rng.randrange(R)])
                expected = base * k
                assert serial.fixed_base_mul(base, k) == expected
                assert parallel.fixed_base_mul(base, k) == expected


@pytest.mark.slow
class TestPairingDifferential:
    """The fast Fq2-tower pairing vs the reference implementation."""

    def test_fast_equals_reference_on_random_points(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "pair")
        for _ in range(3):
            p = G1.generator() * rng.randrange(1, R)
            q = G2.generator() * rng.randrange(1, R)
            ref = pairing_ref.pairing(p, q)
            assert serial.pairing(p, q) == ref
            assert parallel.pairing(p, q) == ref

    def test_bilinearity_under_random_scalars(self, engines, chaos_seed):
        serial, _ = engines
        rng = _rng(chaos_seed, "bilin")
        a = rng.randrange(2, R)
        b = rng.randrange(2, R)
        p, q = G1.generator(), G2.generator()
        # e(aP, bQ) == e(abP, Q) == e(P, abQ)
        lhs = serial.pairing(p * a, q * b)
        assert lhs == serial.pairing(p * (a * b % R), q)
        assert lhs == serial.pairing(p, q * (a * b % R))

    def test_pairing_check_random_cancellation(self, engines, chaos_seed):
        serial, parallel = engines
        rng = _rng(chaos_seed, "check")
        a = rng.randrange(2, R)
        p, q = G1.generator(), G2.generator()
        # e(aP, Q) * e(-P, aQ) == 1
        pairs = [(p * a, q), (-(p), q * a)]
        assert serial.pairing_check(pairs)
        assert parallel.pairing_check(pairs)
        bad = [(p * a, q), (-(p), q * ((a + 1) % R))]
        assert not serial.pairing_check(bad)
        assert not parallel.pairing_check(bad)
