"""Tests for the zklint static-analysis suite (``repro.analysis``).

Both acceptance directions from the issue are asserted here: the PR-head
source tree is clean under ``--strict``, and the fixture tree at
``tests/fixtures/zklint`` (one seeded violation per rule) fails with
every rule represented.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    DEFAULT_CONFIG,
    analyze_paths,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.__main__ import main as zklint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "zklint"
BASELINE = REPO_ROOT / "analysis_baseline.json"

ALL_RULE_IDS = {rule.rule_id for rule in ALL_RULES}


def _analyze_snippet(tmp_path, rel, source):
    """Write ``source`` at ``repro/<rel>`` under tmp_path and analyse it."""
    target = tmp_path / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())


class TestAcceptance:
    def test_source_tree_is_clean_under_strict(self):
        exit_code = zklint_main(
            ["--strict", "--baseline", str(BASELINE), str(SRC)]
        )
        assert exit_code == 0

    def test_source_tree_clean_via_subprocess_cli(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--strict", "src"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fixture_tree_fails_strict_with_every_rule(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        assert result.failed
        assert {f.rule for f in result.findings} == ALL_RULE_IDS
        exit_code = zklint_main(["--strict", "--no-baseline", str(FIXTURES)])
        assert exit_code == 1

    def test_fixture_tree_is_advisory_without_strict(self, capsys):
        exit_code = zklint_main(["--no-baseline", str(FIXTURES)])
        assert exit_code == 0
        assert "advisory" in capsys.readouterr().out


class TestPerRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id, fixture, needle",
        [
            ("FS-001", "repro/plonk/fs_violation.py", "no absorption"),
            ("SEC-001", "repro/plonk/sec_violation.py", "witness"),
            ("DET-001", "repro/plonk/det_violation.py", "random"),
            ("DET-001", "repro/plonk/faults_violation.py", "repro.faults"),
            ("FLD-001", "repro/plonk/fld_violation.py", "literal"),
            ("ENG-001", "repro/kzg/eng_violation.py", "compute engine"),
            ("ENG-001", "repro/plonk/substrate_violation.py", "contiguous-representation"),
            ("ENG-001", "repro/backend/untimed_kernel.py", "never times itself"),
        ],
    )
    def test_seeded_violation_fires(self, rule_id, fixture, needle):
        result = analyze_paths([FIXTURES / fixture], DEFAULT_CONFIG, baseline=set())
        matching = [f for f in result.findings if f.rule == rule_id]
        assert matching, "expected %s on %s" % (rule_id, fixture)
        assert any(needle in f.message for f in matching)


class TestRuleBehaviour:
    def test_fs001_accepts_absorb_challenge_alternation(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "plonk/good_transcript.py",
            "from repro.plonk.transcript import Transcript\n"
            "\n\n"
            "def derive(c1: bytes, c2: bytes) -> int:\n"
            "    t = Transcript(b'ok')\n"
            "    t.append_bytes(b'c1', c1)\n"
            "    beta = t.challenge(b'beta')\n"
            "    t.append_bytes(b'c2', c2)\n"
            "    return beta + t.challenge(b'zeta')\n",
        )
        assert not result.findings

    def test_sec001_does_not_taint_through_calls(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "core/good_secrecy.py",
            "def run(prove, witness: int) -> None:\n"
            "    proof = prove(witness)\n"
            "    print(proof)\n",
        )
        assert not result.findings

    def test_sec001_sanitizer_len_is_clean_but_str_is_not(self, tmp_path):
        clean = _analyze_snippet(
            tmp_path,
            "core/a.py",
            "def report(plaintext: list) -> None:\n"
            "    print(len(plaintext))\n",
        )
        assert not clean.findings
        dirty = _analyze_snippet(
            tmp_path,
            "core/b.py",
            "def report(key: int) -> None:\n"
            "    print(str(key))\n",
        )
        assert [f.rule for f in dirty.findings] == ["SEC-001"]

    def test_det001_allowlists_the_sanctioned_sampler(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "field/fr.py",
            "import secrets\n"
            "\n\n"
            "def random_scalar() -> int:\n"
            "    return secrets.randbelow(7)\n",
        )
        assert not result.findings

    def test_fld001_allows_floats_in_costmodel(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "costmodel/gas.py",
            "def price(n: int) -> float:\n"
            "    return n * 0.5\n",
        )
        assert not result.findings


class TestPragmas:
    def test_pragma_suppresses_single_line(self, tmp_path):
        source = (
            "def check(witness: int) -> None:\n"
            "    raise ValueError(f'bad {witness}')  # zklint: disable=SEC-001\n"
        )
        result = _analyze_snippet(tmp_path, "plonk/pragma_case.py", source)
        assert not result.findings

    def test_pragma_is_rule_specific(self, tmp_path):
        source = (
            "def check(witness: int) -> None:\n"
            "    raise ValueError(f'bad {witness}')  # zklint: disable=FS-001\n"
        )
        result = _analyze_snippet(tmp_path, "plonk/pragma_case.py", source)
        assert [f.rule for f in result.findings] == ["SEC-001"]


class TestBaseline:
    def test_write_and_load_round_trip(self, tmp_path):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)
        accepted = load_baseline(baseline_path)
        assert accepted == {f.fingerprint() for f in result.findings}

    def test_baselined_findings_do_not_fail_strict(self, tmp_path):
        first = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        second = analyze_paths(
            [FIXTURES], DEFAULT_CONFIG, baseline=load_baseline(baseline_path)
        )
        assert not second.findings
        assert not second.failed
        assert len(second.baselined) == len(first.findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_committed_baseline_is_valid_and_empty(self):
        assert load_baseline(BASELINE) == set()


class TestReporters:
    def test_json_report_schema(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        payload = json.loads(render_json(result, strict=True))
        assert payload["schema_version"] == 1
        assert payload["tool"] == "repro.analysis"
        assert payload["summary"]["failed"] is True
        assert set(payload["rules"]) == ALL_RULE_IDS
        assert len(payload["findings"]) == payload["summary"]["findings"]
        for finding in payload["findings"]:
            assert {"rule", "path", "line", "col", "message"} <= set(finding)

    def test_text_report_names_every_finding(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        text = render_text(result, strict=True)
        for finding in result.findings:
            assert finding.rule in text
        assert "file(s) scanned" in text

    def test_cli_writes_json_output_file(self, tmp_path):
        out = tmp_path / "report.json"
        exit_code = zklint_main(
            [
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out),
                str(FIXTURES),
            ]
        )
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["findings"] > 0


class TestCli:
    def test_list_rules(self, capsys):
        assert zklint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_rule_selection(self):
        result_code = zklint_main(
            ["--strict", "--no-baseline", "--rules", "FLD-001", str(FIXTURES)]
        )
        assert result_code == 1
        only = analyze_paths(
            [FIXTURES],
            DEFAULT_CONFIG,
            rules=[rule for rule in ALL_RULES if rule.rule_id == "FLD-001"],
            baseline=set(),
        )
        assert {f.rule for f in only.findings} == {"FLD-001"}

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            zklint_main(["--rules", "NOPE-9", str(FIXTURES)])
        assert excinfo.value.code == 2

    def test_syntax_error_reported_and_fails_strict(self, tmp_path):
        bad = tmp_path / "repro" / "plonk" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        result = analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())
        assert result.errors and result.failed


class TestMypyStrictSubset:
    def test_strict_subset_typechecks(self):
        if shutil.which("mypy") is None and not _module_available("mypy"):
            pytest.skip("mypy not installed (CI-only dependency)")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


def _module_available(name):
    import importlib.util

    return importlib.util.find_spec(name) is not None
