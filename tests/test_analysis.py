"""Tests for the zklint static-analysis suite (``repro.analysis``).

Both acceptance directions from the issue are asserted here: the PR-head
source tree is clean under ``--strict``, and the fixture tree at
``tests/fixtures/zklint`` (at least one seeded violation per rule) fails
with every rule represented.  The whole-program core gets direct unit
coverage too: call-graph resolution (``analysis/graph.py``), CFG
reachability/dominance (``analysis/flow.py``), and the RES-001
"deleted ``finally`` release" regression on a copy of the real
shared-memory dispatch code.
"""

import ast
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    DEFAULT_CONFIG,
    analyze_paths,
    build_flow,
    build_project,
    load_baseline,
    render_json,
    render_sarif,
    render_suppressions,
    render_text,
    write_baseline,
)
from repro.analysis.__main__ import main as zklint_main
from repro.analysis.engine import load_module
from repro.analysis.graph import module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "zklint"
BASELINE = REPO_ROOT / "analysis_baseline.json"

ALL_RULE_IDS = {rule.rule_id for rule in ALL_RULES}


def _analyze_snippet(tmp_path, rel, source):
    """Write ``source`` at ``repro/<rel>`` under tmp_path and analyse it."""
    target = tmp_path / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())


def _build_project(tmp_path, files):
    """Materialise ``{rel: source}`` under ``repro/`` and build the graph."""
    modules = []
    for rel, source in files.items():
        target = tmp_path / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        modules.append(load_module(target))
    return build_project(modules)


def _flow(source):
    """Build a FlowGraph for the first function in ``source``."""
    func = ast.parse(source).body[0]
    return build_flow(func), func


class TestAcceptance:
    def test_source_tree_is_clean_under_strict(self):
        exit_code = zklint_main(
            ["--strict", "--baseline", str(BASELINE), str(SRC)]
        )
        assert exit_code == 0

    def test_source_tree_clean_via_subprocess_cli(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--strict", "src"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fixture_tree_fails_strict_with_every_rule(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        assert result.failed
        assert {f.rule for f in result.findings} == ALL_RULE_IDS
        exit_code = zklint_main(["--strict", "--no-baseline", str(FIXTURES)])
        assert exit_code == 1

    def test_fixture_tree_is_advisory_without_strict(self, capsys):
        exit_code = zklint_main(["--no-baseline", str(FIXTURES)])
        assert exit_code == 0
        assert "advisory" in capsys.readouterr().out


class TestPerRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id, fixture, needle",
        [
            ("FS-001", "repro/plonk/fs_violation.py", "no absorption"),
            ("SEC-001", "repro/plonk/sec_violation.py", "witness"),
            ("DET-001", "repro/plonk/det_violation.py", "random"),
            ("DET-001", "repro/plonk/faults_violation.py", "repro.faults"),
            ("FLD-001", "repro/plonk/fld_violation.py", "literal"),
            ("ENG-001", "repro/kzg/eng_violation.py", "compute engine"),
            ("ENG-001", "repro/plonk/substrate_violation.py", "contiguous-representation"),
            ("ENG-001", "repro/backend/untimed_kernel.py", "never times itself"),
            ("ASYNC-001", "repro/service/async_violation.py", "blocks the calling thread"),
            ("ASYNC-002", "repro/service/async_lock_violation.py", "holding a sync lock"),
            ("RES-001", "repro/backend/res_violation.py", "not released on all paths"),
            ("FORK-001", "repro/service/fork_violation.py", "fork children inherit"),
            ("FLT-002", "repro/service/flt_violation.py", "RetryPolicy"),
        ],
    )
    def test_seeded_violation_fires(self, rule_id, fixture, needle):
        result = analyze_paths([FIXTURES / fixture], DEFAULT_CONFIG, baseline=set())
        matching = [f for f in result.findings if f.rule == rule_id]
        assert matching, "expected %s on %s" % (rule_id, fixture)
        assert any(needle in f.message for f in matching)


class TestRuleBehaviour:
    def test_fs001_accepts_absorb_challenge_alternation(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "plonk/good_transcript.py",
            "from repro.plonk.transcript import Transcript\n"
            "\n\n"
            "def derive(c1: bytes, c2: bytes) -> int:\n"
            "    t = Transcript(b'ok')\n"
            "    t.append_bytes(b'c1', c1)\n"
            "    beta = t.challenge(b'beta')\n"
            "    t.append_bytes(b'c2', c2)\n"
            "    return beta + t.challenge(b'zeta')\n",
        )
        assert not result.findings

    def test_sec001_does_not_taint_through_calls(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "core/good_secrecy.py",
            "def run(prove, witness: int) -> None:\n"
            "    proof = prove(witness)\n"
            "    print(proof)\n",
        )
        assert not result.findings

    def test_sec001_sanitizer_len_is_clean_but_str_is_not(self, tmp_path):
        clean = _analyze_snippet(
            tmp_path,
            "core/a.py",
            "def report(plaintext: list) -> None:\n"
            "    print(len(plaintext))\n",
        )
        assert not clean.findings
        dirty = _analyze_snippet(
            tmp_path,
            "core/b.py",
            "def report(key: int) -> None:\n"
            "    print(str(key))\n",
        )
        assert [f.rule for f in dirty.findings] == ["SEC-001"]

    def test_det001_allowlists_the_sanctioned_sampler(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "field/fr.py",
            "import secrets\n"
            "\n\n"
            "def random_scalar() -> int:\n"
            "    return secrets.randbelow(7)\n",
        )
        assert not result.findings

    def test_fld001_allows_floats_in_costmodel(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "costmodel/gas.py",
            "def price(n: int) -> float:\n"
            "    return n * 0.5\n",
        )
        assert not result.findings

    def test_sec001_interprocedural_flags_leaky_helper(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "core/leaky.py",
            "def _explain(diag: object) -> None:\n"
            "    raise ValueError('context: %s' % (diag,))\n"
            "\n\n"
            "def check(witness: int) -> None:\n"
            "    _explain(witness)\n",
        )
        assert [f.rule for f in result.findings] == ["SEC-001"]
        assert any(
            "witness" in f.message and "_explain" in f.message
            for f in result.findings
        )

    def test_sec001_interprocedural_ignores_non_secret_args(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "core/leaky.py",
            "def _explain(diag: object) -> None:\n"
            "    raise ValueError('context: %s' % (diag,))\n"
            "\n\n"
            "def check(code: int) -> None:\n"
            "    _explain(code)\n",
        )
        assert not result.findings

    def test_async001_allows_awaited_executor_offload(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "service/good_async.py",
            "import asyncio\n"
            "\n\n"
            "class Node:\n"
            "    async def stop(self, pool) -> None:\n"
            "        loop = asyncio.get_running_loop()\n"
            "        await loop.run_in_executor(None, pool.close)\n"
            "\n"
            "    async def submit(self, pool, work) -> None:\n"
            "        pool.apply_async(work)\n",
        )
        assert not result.findings

    def test_async002_allows_async_lock_and_awaitless_sync_lock(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "service/good_locks.py",
            "import asyncio\n"
            "import threading\n"
            "\n\n"
            "class Batcher:\n"
            "    def __init__(self) -> None:\n"
            "        self._alock = asyncio.Lock()\n"
            "        self._slock = threading.Lock()\n"
            "\n"
            "    async def flush(self) -> None:\n"
            "        async with self._alock:\n"
            "            await asyncio.sleep(0)\n"
            "        with self._slock:\n"
            "            self.count = 1\n",
        )
        assert not result.findings

    def test_res001_allows_finally_and_with_releases(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "backend/good_res.py",
            "from repro.backend import shm as _shm\n"
            "\n\n"
            "def roundtrip(n: int) -> int:\n"
            "    seg = _shm.create_segment(n)\n"
            "    try:\n"
            "        return len(seg.buf)\n"
            "    finally:\n"
            "        _shm.release_segment(seg)\n"
            "\n\n"
            "def scoped(n: int) -> None:\n"
            "    seg = _shm.create_segment(n)\n"
            "    with seg:\n"
            "        pass\n",
        )
        assert not result.findings

    def test_fork001_allows_hazards_created_after_the_fork(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "service/good_fork.py",
            "import multiprocessing\n"
            "import threading\n"
            "\n\n"
            "class ColdPool:\n"
            "    def __init__(self, workers: int) -> None:\n"
            "        self._pool = multiprocessing.get_context('fork').Pool(workers)\n"
            "        self._hb = threading.Thread(target=lambda: None, daemon=True)\n",
        )
        assert not result.findings

    def test_flt002_allows_retry_run_and_abort_handlers(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "service/good_faults.py",
            "class Settler:\n"
            "    def __init__(self, chain, policy) -> None:\n"
            "        self.chain = chain\n"
            "        self.policy = policy\n"
            "\n"
            "    def settle(self, xid: int) -> object:\n"
            "        return self.policy.run(lambda: self.chain.transact('submit', xid))\n"
            "\n"
            "    def settle_guarded(self, xid: int) -> object:\n"
            "        try:\n"
            "            return self.chain.transact('submit', xid)\n"
            "        except Exception:\n"
            "            return self.chain.refund(xid)\n",
        )
        assert not result.findings


class TestProjectGraph:
    def test_module_name_for_maps_rel_paths_to_dotted_names(self):
        assert module_name_for("service/node.py") == "repro.service.node"
        assert module_name_for("field/__init__.py") == "repro.field"

    def test_resolves_self_attr_method_calls_across_modules(self, tmp_path):
        project = _build_project(
            tmp_path,
            {
                "service/pool.py": (
                    "class ProverPool:\n"
                    "    def close(self) -> None:\n"
                    "        pass\n"
                ),
                "service/node.py": (
                    "from repro.service.pool import ProverPool\n"
                    "\n\n"
                    "class Node:\n"
                    "    def __init__(self) -> None:\n"
                    "        self.pool = ProverPool()\n"
                    "\n"
                    "    def stop(self) -> None:\n"
                    "        self.pool.close()\n"
                ),
            },
        )
        stop = project.function("repro.service.node.Node.stop")
        assert stop is not None
        assert "repro.service.pool.ProverPool.close" in {
            c.target for c in stop.calls
        }
        assert "repro.service.node.Node.stop" in project.callers(
            "repro.service.pool.ProverPool.close"
        )

    def test_resolves_bare_name_imports_and_callees(self, tmp_path):
        project = _build_project(
            tmp_path,
            {
                "util.py": "def helper() -> int:\n    return 1\n",
                "service/caller.py": (
                    "from repro.util import helper\n"
                    "\n\n"
                    "def run() -> int:\n"
                    "    return helper()\n"
                ),
            },
        )
        assert project.callees("repro.service.caller.run") == {"repro.util.helper"}
        assert project.importers("repro.util") == {"repro.service.caller"}


class TestFlowGraph:
    def test_dominance_of_straight_line_over_branch(self):
        graph, func = _flow(
            "def f(x):\n"
            "    a = setup()\n"
            "    if x:\n"
            "        b = branch()\n"
            "    c = teardown()\n"
        )
        node_a = graph.node_for(func.body[0])
        node_b = graph.node_for(func.body[1].body[0])
        node_c = graph.node_for(func.body[2])
        assert graph.dominates(node_a, node_c)
        assert not graph.dominates(node_b, node_c)

    def test_loop_body_falls_through_to_successor(self):
        graph, func = _flow(
            "def f(items):\n"
            "    for item in items:\n"
            "        work(item)\n"
            "    done()\n"
        )
        body = graph.node_for(func.body[0].body[0])
        after = graph.node_for(func.body[1])
        assert after in graph.reachable(body)

    def test_any_path_avoids_sees_exception_escape(self):
        # Without try/finally the may-raise call has an exception edge
        # straight to EXIT, so a path that skips the release exists.
        graph, func = _flow(
            "def f():\n"
            "    seg = acquire()\n"
            "    work(seg)\n"
            "    release(seg)\n"
        )
        acquire = graph.node_for(func.body[0])
        release = graph.node_for(func.body[2])
        assert any(
            graph.any_path_avoids(succ, {release})
            for succ in graph.normal_succs(acquire)
        )

    def test_any_path_avoids_respects_finally(self):
        graph, func = _flow(
            "def f():\n"
            "    seg = acquire()\n"
            "    try:\n"
            "        work(seg)\n"
            "    finally:\n"
            "        release(seg)\n"
        )
        acquire = graph.node_for(func.body[0])
        release = graph.node_for(func.body[1].finalbody[0])
        assert all(
            not graph.any_path_avoids(succ, {release})
            for succ in graph.normal_succs(acquire)
        )


class TestResourceReleaseOnRealCode:
    """RES-001 acceptance: a deleted ``finally`` release must be caught.

    Runs against a copy of the real shared-memory dispatch module, so the
    rule is proven on production-shaped code, not just toy fixtures.
    """

    def test_deleting_a_finally_release_is_caught(self, tmp_path):
        source = (SRC / "repro" / "backend" / "parallel.py").read_text()
        target = tmp_path / "repro" / "backend" / "parallel.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        clean = analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())
        assert not [f for f in clean.findings if f.rule == "RES-001"]

        # Neuter the first `finally: _shm.release_segment(out_seg)` the
        # same way a careless refactor would.
        lines = source.splitlines()
        idx = next(
            i
            for i, line in enumerate(lines)
            if "_shm.release_segment(out_seg)" in line
        )
        indent = len(lines[idx]) - len(lines[idx].lstrip())
        lines[idx] = " " * indent + "pass"
        target.write_text("\n".join(lines) + "\n")

        broken = analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())
        res_findings = [f for f in broken.findings if f.rule == "RES-001"]
        assert res_findings
        assert any("out_seg" in f.message for f in res_findings)


class TestPragmas:
    def test_pragma_suppresses_single_line(self, tmp_path):
        source = (
            "def check(witness: int) -> None:\n"
            "    raise ValueError(f'bad {witness}')  # zklint: disable=SEC-001\n"
        )
        result = _analyze_snippet(tmp_path, "plonk/pragma_case.py", source)
        assert not result.findings

    def test_pragma_is_rule_specific(self, tmp_path):
        source = (
            "def check(witness: int) -> None:\n"
            "    raise ValueError(f'bad {witness}')  # zklint: disable=FS-001\n"
        )
        result = _analyze_snippet(tmp_path, "plonk/pragma_case.py", source)
        assert [f.rule for f in result.findings] == ["SEC-001"]


class TestBaseline:
    def test_write_and_load_round_trip(self, tmp_path):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)
        accepted = load_baseline(baseline_path)
        assert accepted == {f.fingerprint() for f in result.findings}

    def test_baselined_findings_do_not_fail_strict(self, tmp_path):
        first = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        second = analyze_paths(
            [FIXTURES], DEFAULT_CONFIG, baseline=load_baseline(baseline_path)
        )
        assert not second.findings
        assert not second.failed
        assert len(second.baselined) == len(first.findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_committed_baseline_is_valid_and_empty(self):
        assert load_baseline(BASELINE) == set()


class TestReporters:
    def test_json_report_schema(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        payload = json.loads(render_json(result, strict=True))
        assert payload["schema_version"] == 1
        assert payload["tool"] == "repro.analysis"
        assert payload["summary"]["failed"] is True
        assert set(payload["rules"]) == ALL_RULE_IDS
        assert len(payload["findings"]) == payload["summary"]["findings"]
        for finding in payload["findings"]:
            assert {"rule", "path", "line", "col", "message"} <= set(finding)

    def test_text_report_names_every_finding(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        text = render_text(result, strict=True)
        for finding in result.findings:
            assert finding.rule in text
        assert "file(s) scanned" in text

    def test_sarif_report_schema(self):
        result = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        payload = json.loads(render_sarif(result, strict=True))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert {rule["id"] for rule in rules} == ALL_RULE_IDS
        assert len(run["results"]) == len(result.findings)
        for entry in run["results"]:
            location = entry["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert entry["partialFingerprints"]["zklintFingerprint/v1"]
            assert entry["baselineState"] == "new"
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_sarif_marks_baselined_unchanged(self, tmp_path):
        first = analyze_paths([FIXTURES], DEFAULT_CONFIG, baseline=set())
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        second = analyze_paths(
            [FIXTURES], DEFAULT_CONFIG, baseline=load_baseline(baseline_path)
        )
        payload = json.loads(render_sarif(second, strict=True))
        states = {r["baselineState"] for r in payload["runs"][0]["results"]}
        assert states == {"unchanged"}

    def test_suppressed_findings_are_tracked_and_reported(self, tmp_path):
        result = _analyze_snippet(
            tmp_path,
            "plonk/pragma_case.py",
            "def check(witness: int) -> None:\n"
            "    raise ValueError(f'bad {witness}')  # zklint: disable=SEC-001\n",
        )
        assert not result.findings
        assert [f.rule for f in result.suppressed] == ["SEC-001"]
        report = render_suppressions(result)
        assert "SEC-001" in report
        assert "1 finding(s) silenced" in report
        sarif = json.loads(render_sarif(result, strict=True))
        suppressed = [
            r for r in sarif["runs"][0]["results"] if r.get("suppressions")
        ]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"

    def test_suppressions_report_on_clean_result(self, tmp_path):
        result = _analyze_snippet(
            tmp_path, "costmodel/ok.py", "def f() -> int:\n    return 1\n"
        )
        assert "0 finding(s) silenced" in render_suppressions(result)

    def test_cli_writes_json_output_file(self, tmp_path):
        out = tmp_path / "report.json"
        exit_code = zklint_main(
            [
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out),
                str(FIXTURES),
            ]
        )
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["findings"] > 0


class TestCli:
    def test_list_rules(self, capsys):
        assert zklint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_rule_selection(self):
        result_code = zklint_main(
            ["--strict", "--no-baseline", "--rules", "FLD-001", str(FIXTURES)]
        )
        assert result_code == 1
        only = analyze_paths(
            [FIXTURES],
            DEFAULT_CONFIG,
            rules=[rule for rule in ALL_RULES if rule.rule_id == "FLD-001"],
            baseline=set(),
        )
        assert {f.rule for f in only.findings} == {"FLD-001"}

    def test_cli_writes_sarif_output_file(self, tmp_path):
        out = tmp_path / "report.sarif"
        exit_code = zklint_main(
            [
                "--no-baseline",
                "--format",
                "sarif",
                "--output",
                str(out),
                str(FIXTURES),
            ]
        )
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]

    def test_cli_report_suppressions(self, capsys):
        exit_code = zklint_main(
            ["--no-baseline", "--report-suppressions", str(SRC)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "suppression debt" in out

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            zklint_main(["--rules", "NOPE-9", str(FIXTURES)])
        assert excinfo.value.code == 2

    def test_syntax_error_reported_and_fails_strict(self, tmp_path):
        bad = tmp_path / "repro" / "plonk" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        result = analyze_paths([tmp_path], DEFAULT_CONFIG, baseline=set())
        assert result.errors and result.failed


class TestDocstringCatalogue:
    def test_package_docstring_lists_every_rule(self):
        # Guards against the catalogue drifting from ALL_RULES (the
        # docstring once said "five rules ship" after the tenth landed).
        import repro.analysis

        for rule_id in ALL_RULE_IDS:
            assert rule_id in (repro.analysis.__doc__ or "")


class TestMypyStrictSubset:
    def test_strict_subset_typechecks(self):
        if shutil.which("mypy") is None and not _module_available("mypy"):
            pytest.skip("mypy not installed (CI-only dependency)")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


def _module_available(name):
    import importlib.util

    return importlib.util.find_spec(name) is not None
