"""Unit tests for the contiguous data plane (PR 6).

Covers the substrate mode switch, the packed scalar/point
representations and their conversion boundaries, shared-memory segment
lifecycle (including the worker-crash unlink guarantee, driven by the
fault plane's ``workers`` profile), and the GLV constants.
"""

import os
import signal
import threading
import time

import pytest

from repro import substrate
from repro.backend import shm
from repro.backend.parallel import ParallelEngine
from repro.curve import glv
from repro.curve.fq import Q
from repro.curve.g1 import G1, JAC_INF
from repro.errors import BackendError, FieldError
from repro.faults.plan import FaultPlan, draw
from repro.field.fr import MODULUS as R
from repro.field.frvec import ScalarVector, as_scalar_list, pack_scalars, unpack_scalars


class TestSubstrateMode:
    def test_default_is_fast(self):
        assert substrate.mode() == substrate.MODE_FAST
        assert substrate.fast_enabled()

    def test_use_mode_restores_on_exit(self):
        with substrate.use_mode("reference"):
            assert not substrate.fast_enabled()
            with substrate.use_mode("fast"):
                assert substrate.fast_enabled()
            assert substrate.mode() == "reference"
        assert substrate.mode() == "fast"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            substrate.set_mode("turbo")
        assert substrate.mode() == "fast"  # failed set leaves mode untouched

    def test_use_mode_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with substrate.use_mode("reference"):
                raise RuntimeError("boom")
        assert substrate.mode() == "fast"


class TestScalarVector:
    def test_pack_unpack_roundtrip(self):
        values = [0, 1, R - 1, 12345, R + 7]  # last one reduces mod r
        buf = pack_scalars(values)
        assert len(buf) == 32 * len(values)
        assert unpack_scalars(buf) == [v % R for v in values]

    def test_from_list_to_list_boundary(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        vec = ScalarVector.from_list(values)
        assert len(vec) == 8
        assert vec.to_list() == values
        assert list(vec) == values
        assert vec[0] == 3 and vec[-1] == 6

    def test_setitem_reduces(self):
        vec = ScalarVector(2)
        vec[0] = R + 5
        assert vec[0] == 5

    def test_slice_is_contiguous_view(self):
        vec = ScalarVector.from_list(list(range(10)))
        sub = vec[2:5]
        assert sub.to_list() == [2, 3, 4]
        with pytest.raises(FieldError):
            vec[::2]

    def test_from_buffer_zero_copy(self):
        values = [7, 8, 9]
        backing = bytearray(pack_scalars(values))
        vec = ScalarVector.from_buffer(backing)
        backing[0] = 1  # mutate the backing store; the view sees it
        assert vec[0] == 1

    def test_from_buffer_rejects_short_buffer(self):
        with pytest.raises(FieldError):
            ScalarVector.from_buffer(b"\x00" * 16, count=2)

    def test_as_scalar_list_accepts_both(self):
        assert as_scalar_list([1, 2]) == [1, 2]
        assert as_scalar_list(ScalarVector.from_list([1, 2])) == [1, 2]

    def test_equality(self):
        vec = ScalarVector.from_list([1, 2, 3])
        assert vec == [1, 2, 3]
        assert vec == ScalarVector.from_list([1, 2, 3])
        assert vec != ScalarVector.from_list([1, 2, 4])


class TestPointPacking:
    def test_roundtrip_with_infinity(self):
        pts = [(G1.generator() * k).to_jacobian() for k in (1, 2, 3)]
        pts.insert(1, JAC_INF)
        packed = shm.pack_points(pts)
        assert len(packed) == 64 * 4
        out = shm.unpack_points(packed)
        assert out[1] == JAC_INF
        assert [p[:2] for p in out if p[2]] == [p[:2] for p in pts if p[2]]

    def test_slice_addressing(self):
        pts = [(G1.generator() * k).to_jacobian() for k in (5, 6, 7, 8)]
        packed = shm.pack_points(pts)
        assert shm.unpack_points(packed, start=2, count=2) == pts[2:]


class TestSegmentLifecycle:
    def test_create_release_unlinks(self):
        seg = shm.create_segment(128)
        name = seg.name
        assert name in shm.owned_names()
        assert shm.segment_exists(name)
        shm.release_segment(seg)
        assert name not in shm.owned_names()
        assert not shm.segment_exists(name)

    def test_release_is_idempotent(self):
        seg = shm.create_segment(32)
        shm.release_segment(seg)
        shm.release_segment(seg)  # second release is a no-op

    def test_cleanup_owned_sweeps_everything(self):
        names = [shm.create_segment(32).name for _ in range(3)]
        shm.cleanup_owned()
        assert all(not shm.segment_exists(n) for n in names)

    def test_engine_close_releases_pinned_segments(self):
        table = tuple(G1.generator() * k for k in range(1, 140))
        scalars = list(range(1, 140))
        engine = ParallelEngine(workers=2, min_msm_points=1, use_shm=True)
        try:
            before = set(shm.owned_names())
            engine.msm_g1_fixed(table, scalars)
            pinned = set(shm.owned_names()) - before
            assert pinned, "warm table should pin a packed segment"
        finally:
            engine.close()
        assert all(not shm.segment_exists(n) for n in pinned)

    def test_scratch_segments_released_after_each_call(self):
        engine = ParallelEngine(
            workers=2, min_inverse_size=1, min_msm_points=10**9, use_shm=True
        )
        try:
            before = set(shm.owned_names())
            engine.batch_inverse(list(range(1, 64)))
            assert set(shm.owned_names()) == before  # scratch fully reclaimed
        finally:
            engine.close()


class TestGLVConstants:
    def test_beta_is_nontrivial_cube_root(self):
        assert glv.BETA != 1
        assert pow(glv.BETA, 3, Q) == 1

    def test_lambda_is_eigenvalue(self):
        assert (glv.LAMBDA * glv.LAMBDA + glv.LAMBDA + 1) % R == 0
        g = G1.generator()
        lhs = g * glv.LAMBDA
        assert (lhs.x, lhs.y) == (glv.BETA * g.x % Q, g.y)

    def test_basis_vectors_are_half_width(self):
        assert glv.HALF_BITS <= 131
        for a, b in (glv._V1, glv._V2):
            assert (a + b * glv.LAMBDA) % R == 0


@pytest.mark.chaos
class TestWorkerCrashCleanup:
    """The PR 6 fix: shm segments are unlinked on worker crash/abort.

    ``backend/`` may not import ``repro.faults`` (DET-001), so the
    fault plane's ``workers`` profile is consulted *here*: the plan's
    seeded draws decide which pool workers get SIGKILLed mid-MSM, and
    the engine must surface a :class:`BackendError` (watchdog timeout)
    with every scratch segment unlinked — never a hang, never a leak.
    """

    def _kill_set(self, chaos_seed, n_workers):
        plan = FaultPlan.profile("workers", chaos_seed)
        rule_index = 0  # the "drop" rule
        budget = plan.rules[rule_index].max_faults
        prob = plan.rules[rule_index].probability_ppm
        kills = []
        for seq in range(n_workers):
            if len(kills) >= budget:
                break
            if draw(plan.seed, rule_index, seq, "backend.worker") < prob:
                kills.append(seq)
        return kills

    def test_worker_kill_unlinks_segments_and_raises(self, chaos_seed):
        workers = 3
        kills = self._kill_set(chaos_seed, workers)
        engine = ParallelEngine(
            workers=workers, min_msm_points=1, use_shm=True, task_timeout=4.0
        )
        # A workload big enough that every worker's chunk is still in
        # flight when the kills land (cycled base points keep setup cheap;
        # packing cost is per-point so the MSM itself stays large).
        base = [G1.generator() * (k + 1) for k in range(16)]
        n = 8000
        points = [base[k % 16] for k in range(n)]
        scalars = [(k * k + 1) % R for k in range(n)]
        try:
            if not kills:
                # This seed's schedule spares every worker: the call must
                # succeed and still reclaim its scratch segments.
                before = set(shm.owned_names())
                engine.msm_g1(points, scalars)
                assert set(shm.owned_names()) - before == set()
                return
            pool = engine._get_pool()
            stop = threading.Event()

            def assassinate():
                # Keep killing whatever pids occupy the victim slots so a
                # respawned worker cannot rescue the lost chunk; a task
                # that died with its worker is never re-dispatched, so the
                # watchdog must fire.
                while not stop.wait(0.02):
                    for i in kills:
                        try:
                            pid = pool._pool[i].pid
                            os.kill(pid, signal.SIGKILL)
                        except (IndexError, ProcessLookupError):
                            pass

            killer = threading.Thread(target=assassinate)
            killer.start()
            before = set(shm.owned_names())
            try:
                with pytest.raises(BackendError):
                    engine.msm_g1(points, scalars)
            finally:
                stop.set()
                killer.join()
            # Crash path: every scratch segment created for the failed
            # call has been unlinked despite the worker deaths.
            leaked = {
                name for name in set(shm.owned_names()) - before
                if shm.segment_exists(name)
            }
            assert leaked == set()
        finally:
            engine.close()
        assert all(not shm.segment_exists(n) for n in shm.owned_names())
