"""Full data-asset lifecycle: transform, auction, trace, burn.

The scenario the paper's introduction motivates — a data broker composes
assets from multiple providers and sells derived products:

1. two providers publish source datasets;
2. a broker buys both, aggregates them (proof pi_t: aggregation), then
   partitions the aggregate into two slices (pi_t: partition);
3. one slice is sold through a descending-price clock auction;
4. the provenance DAG shows the full history; the broker burns the other
   slice, taking it out of circulation.

Run:  python examples/marketplace_lifecycle.py   (~5 minutes pure Python)
"""

import time

from repro import Aggregation, Partition, SnarkContext, ZKDETMarketplace


def main():
    print("Setting up (SRS + marketplace)...")
    snark = SnarkContext.with_fresh_srs(8208)
    market = ZKDETMarketplace(snark)
    provider_a = market.register_participant()
    provider_b = market.register_participant()
    broker = market.register_participant()
    trader = market.register_participant()

    print("Providers publish source datasets...")
    src_a = market.publish_dataset(provider_a, [11, 12])
    src_b = market.publish_dataset(provider_b, [21, 22])
    print("  provider A minted token %d, provider B minted token %d"
          % (src_a.token_id, src_b.token_id))

    print("Broker buys both sources via key-secure exchanges...")
    for owner, listing in ((provider_a, src_a), (provider_b, src_b)):
        result = market.sell(owner, listing, broker, price=2000)
        assert result.success, result.reason
    print("  broker now owns tokens %d and %d" % (src_a.token_id, src_b.token_id))

    print("Broker aggregates the two datasets (pi_t: aggregation)...")
    t0 = time.time()
    merged, pi_agg = market.transform(broker, [src_a, src_b], Aggregation())
    print("  aggregate token %d holds %d entries (%.0f s)"
          % (merged[0].token_id, len(merged[0].asset.plaintext), time.time() - t0))

    print("Broker partitions the aggregate into 2 slices (pi_t: partition)...")
    t0 = time.time()
    slices, pi_part = market.transform(
        broker, merged, Partition(sizes=(2, 2))
    )
    print("  slice tokens %s (%.0f s)"
          % ([s.token_id for s in slices], time.time() - t0))

    print("Broker lists slice %d in a clock auction..." % slices[0].token_id)
    chain, auction, token = market.chain, market.auction, market.token
    chain.transact(broker, token, "approve", auction.address, slices[0].token_id)
    aid = chain.transact(
        broker, auction, "create_auction", slices[0].token_id, 10_000, 1_000, 500
    ).return_value
    chain.seal_block()
    chain.seal_block()  # the clock ticks down with each block
    price = chain.call_view(auction, "current_price", aid)
    print("  price after 2 blocks: %d" % price)
    receipt = chain.transact(trader, auction, "bid", aid, value=price)
    assert receipt.status
    print("  trader won slice %d at %d" % (slices[0].token_id, receipt.return_value))

    print("Provenance audit from public chain state:")
    graph = market.provenance()
    for tid, kind in graph.transformation_history(slices[0].token_id):
        print("  token %d  <- %s" % (tid, kind))
    print("  ultimate sources: %s" % sorted(graph.sources_of(slices[0].token_id)))

    print("Broker burns the unsold slice %d..." % slices[1].token_id)
    chain.transact(broker, token, "burn", slices[1].token_id)
    print("  burned: %s (lineage stays on chain: ancestors %s)"
          % (chain.call_view(token, "is_burned", slices[1].token_id),
             sorted(market.provenance().ancestors(slices[1].token_id))))
    print("Done. Total chain gas spent: %d"
          % sum(r.gas_used for r in chain.receipts))


if __name__ == "__main__":
    main()
