"""Quickstart: publish a dataset, trade it, trace it.

Runs the whole ZKDET pipeline on a small dataset (~2 minutes in pure
Python — every proof is a real Plonk proof over BN254):

1. a universal SRS ceremony (Plonk's one-time setup);
2. a marketplace with the contract suite deployed;
3. Alice publishes an encrypted dataset as an NFT (with proof pi_e);
4. Bob buys it through the key-secure exchange — the decryption key
   never touches the chain;
5. the provenance graph records everything.

Run:  python examples/quickstart.py
"""

import time

from repro import SnarkContext, ZKDETMarketplace


def main():
    t0 = time.time()
    print("[1/5] Running the universal setup ceremony (powers of tau)...")
    snark = SnarkContext.with_fresh_srs(8208)
    print("      SRS supports circuits up to %d constraints (%.0f s)"
          % (snark.srs.max_degree, time.time() - t0))

    print("[2/5] Deploying the marketplace (token, auction, verifier, arbiter)...")
    market = ZKDETMarketplace(snark)
    alice = market.register_participant()
    bob = market.register_participant()
    print("      alice = %s" % alice)
    print("      bob   = %s" % bob)

    print("[3/5] Alice publishes a dataset (encrypt, store, prove, mint)...")
    t0 = time.time()
    listing = market.publish_dataset(alice, plaintext=[20260705, 42])
    print("      token id    : %d" % listing.token_id)
    print("      storage URI : %s..." % listing.asset.uri[:16])
    print("      commitment  : %d..." % (listing.asset.data_commitment.value % 10**12))
    print("      pi_e proved and verified in %.0f s (size %d bytes)"
          % (time.time() - t0, listing.encryption_proof.proof.size_bytes))

    print("[4/5] Bob buys it via the key-secure two-phase exchange...")
    t0 = time.time()
    result = market.sell(alice, listing, bob, price=5000)
    assert result.success, result.reason
    print("      bob decrypted: %s (%.0f s, gas %d)"
          % (result.plaintext, time.time() - t0, result.gas_used))
    masked = market.chain.call_view(market.arbiter, "masked_key", result.exchange_id)
    print("      on-chain key material: k_c = %d... (masked; the raw key "
          "never appeared on chain)" % (masked % 10**12))

    print("[5/5] Provenance from chain state...")
    graph = market.provenance()
    owner = market.chain.call_view(market.token, "owner_of", listing.token_id)
    print("      tokens: %d, DAG acyclic: %s, token %d owner is bob: %s"
          % (graph.num_tokens, graph.is_acyclic(), listing.token_id, owner == bob))
    print("Done.")


if __name__ == "__main__":
    main()
