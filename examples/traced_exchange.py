"""A fully traced key-secure exchange: spans, kernel counters, run ledger.

Runs the publish -> sell pipeline with the telemetry layer at trace
level and then shows the four things it produces:

1. the span tree of the exchange — every protocol step (prove, verify,
   commit, reveal, settle) with the matching transaction's gas and
   emitted events attached as attributes;
2. the prover's own span tree — the five Plonk rounds with wall-clock;
3. the kernel counters — NTT/MSM calls and the engine-cache hit/miss
   accounting (warm proofs show the 9 cached coset FFTs directly);
4. the run ledger — the durable JSONL record the exchange appended, and
   the `python -m repro.telemetry report` rendered from it.

Run:  python examples/traced_exchange.py        (~2 minutes, real proofs)
Tip:  REPRO_TELEMETRY=profile REPRO_BACKEND=parallel REPRO_WORKERS=2 \
          python examples/traced_exchange.py
      additionally reconstructs worker.task child spans inside every
      parallel dispatch and attributes queue-wait/shm-attach/compute
      time per worker in the report.
"""

import os
import tempfile

from repro import SnarkContext, ZKDETMarketplace, telemetry
from repro.telemetry import cli as telemetry_cli
from repro.telemetry import ledger


def main():
    # REPRO_TELEMETRY is honoured if it asks for trace or profile;
    # anything lower is raised to trace so the span trees below exist.
    if telemetry.level() < telemetry.TRACE:
        telemetry.set_level("trace")
    ledger_path = ledger.default_path()
    if ledger_path is None:
        ledger_path = os.path.join(tempfile.mkdtemp(prefix="repro-"), "runs.jsonl")
        os.environ[ledger.ENV_VAR] = ledger_path

    print("[setup] universal SRS ceremony + marketplace deployment...")
    snark = SnarkContext.with_fresh_srs(8208)
    market = ZKDETMarketplace(snark)
    alice = market.register_participant()
    bob = market.register_participant()

    print("[run] publish + key-secure sale (every proof is real)...\n")
    listing = market.publish_dataset(alice, plaintext=[7, 1001])
    result = market.sell(alice, listing, bob, price=5000)
    assert result.success, result.reason

    roots = telemetry.finished_roots()

    publish = next(r for r in roots if r.name == "marketplace.publish")
    sell = next(r for r in roots if r.name == "marketplace.sell")
    print("=" * 70)
    print("Protocol span trees (gas and events attached to on-chain steps)")
    print("=" * 70)
    print(telemetry.format_span_tree(publish))
    print()
    print(telemetry.format_span_tree(sell))

    # The exchange's phase-2 prover run is a complete Plonk proof; its
    # span tree hangs under exchange.prove -> plonk.prove.
    plonk = sell.find("plonk.prove")
    print()
    print("=" * 70)
    print("One Plonk proof, by round")
    print("=" * 70)
    print(telemetry.format_span_tree(plonk))

    print()
    print("=" * 70)
    print("Kernel + cache counters (telemetry.snapshot())")
    print("=" * 70)
    for key, value in sorted(telemetry.registry().counter_values().items()):
        print("  %-55s %d" % (key, value))

    mint_gas = publish.find("publish.mint").attrs["tx.gas"]
    print()
    print("mint gas: %d; exchange gas total: %d; events on mint: %s"
          % (mint_gas, result.gas_used, publish.find("publish.mint").attrs["tx.events"]))

    # The exchange appended one durable record per run; render it the
    # way the CI perf job does.
    records = ledger.read(ledger_path)
    print()
    print("=" * 70)
    print("Run ledger (%s): %d record(s)" % (ledger_path, len(records)))
    print("=" * 70)
    telemetry_cli.main(["report", ledger_path])
    print()
    print("flame input (`python -m repro.telemetry flame %s`):" % ledger_path)
    for line in list(telemetry_cli.collapsed_stacks(records))[:5]:
        print("  " + line)
    print("  ...")
    print("Done.")


if __name__ == "__main__":
    main()
