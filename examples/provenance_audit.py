"""Buyer-side due diligence and the ZKCP privacy leak, demonstrated.

Shows the two properties ZKDET was built for:

A. **Traceability with verification** — a buyer audits a derived asset
   from public information only: walks the on-chain prevIds DAG, verifies
   the pi_t proof chain back to the source commitment, verifies pi_e, and
   detects storage tampering through the content-addressed URI.

B. **Key privacy** — the same dataset sold twice: once with classic ZKCP
   (after which an uninvolved eavesdropper decrypts it straight from
   public data) and once with ZKDET's key-secure protocol (the
   eavesdropper learns nothing).

Run:  python examples/provenance_audit.py   (~5 minutes)
"""

from repro import Duplication, SnarkContext, ZKDETMarketplace
from repro.contracts import ZKCPArbiterContract
from repro.core.transform_protocol import verify_encryption, verify_proof_chain
from repro.core.zkcp import ZKCPExchange
from repro.errors import StorageError
from repro.primitives.mimc import mimc_decrypt_ctr


def main():
    print("Setting up (SRS + marketplace)...")
    snark = SnarkContext.with_fresh_srs(8208)
    market = ZKDETMarketplace(snark)
    alice = market.register_participant()
    eve = market.register_participant()  # a curious third party

    print("\n--- Part A: provenance audit -------------------------------")
    source = market.publish_dataset(alice, [314, 159])
    replicas, pi_t = market.transform(alice, [source], Duplication())
    replica = replicas[0]
    print("source token %d -> duplication -> token %d"
          % (source.token_id, replica.token_id))

    print("Auditing token %d from public data:" % replica.token_id)
    graph = market.provenance()
    src_commitment = market.chain.call_view(market.token, "commitment_of", source.token_id)
    dst_commitment = market.chain.call_view(market.token, "commitment_of", replica.token_id)
    ok_chain = verify_proof_chain(
        snark, [(Duplication(), pi_t)], src_commitment, dst_commitment
    )
    print("  pi_t chain source->replica verifies : %s" % ok_chain)
    ok_enc = verify_encryption(snark, replica.asset.public_view(), replica.encryption_proof)
    print("  pi_e for the replica verifies       : %s" % ok_enc)
    print("  lineage recorded on chain           : %s"
          % (graph.ancestors(replica.token_id) == {source.token_id}))

    print("Tamper check: corrupting the stored ciphertext...")
    market.storage.tamper(replica.asset.uri, b"malicious bytes")
    try:
        market.storage.get(replica.asset.uri)
        print("  !!! tampering went unnoticed")
    except StorageError:
        print("  tampering detected: content no longer matches its URI")
    # Restore for part B.
    market.storage.put(replica.asset.serialized_ciphertext(), owner=alice)

    print("\n--- Part B: ZKCP leak vs key-secure exchange ---------------")
    bob = market.register_participant()
    zkcp_arbiter = ZKCPArbiterContract()
    market.chain.deploy(zkcp_arbiter, alice)

    print("Selling via classic ZKCP (Groth16 + hash lock)...")
    zkcp = ZKCPExchange(market.chain, zkcp_arbiter)
    z = zkcp.run(alice, bob, source.asset, price=1000)
    assert z.success
    print("  buyer got: %s" % z.plaintext)
    # Eve reads everything from PUBLIC data: the chain and the store.
    leaked_key = market.chain.call_view(zkcp_arbiter, "revealed_key", 1)
    stolen = mimc_decrypt_ctr(leaked_key, source.asset.ciphertext)
    print("  EVE decrypted the same data from public chain state: %s" % stolen)

    print("Selling via ZKDET's key-secure protocol...")
    r = market.sell(alice, replica, bob, price=1000)
    assert r.success, r.reason
    masked = market.chain.call_view(market.arbiter, "masked_key", r.exchange_id)
    garbage = mimc_decrypt_ctr(masked, replica.asset.ciphertext)
    print("  buyer got: %s" % r.plaintext)
    print("  EVE tries the only on-chain value k_c and gets garbage: %s..."
          % [str(v)[:8] for v in garbage])
    print("Done: same fairness, no leak.")


if __name__ == "__main__":
    main()
