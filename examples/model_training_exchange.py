"""Computational delegation: sell a trained model with proof of training.

Section IV-E of the paper: data owners can "perform data mining and model
training based on existing datasets, and sell the computational results as
new data assets".  Here a modeller:

1. publishes a labelled training set;
2. trains a logistic-regression model in verifiable fixed-point
   arithmetic;
3. mints the model as a *processing* transformation of the training set,
   with a zero-knowledge proof that training **converged**
   (|J(beta^(k+1)) - J(beta^(k))| <= eps) — without revealing the data
   or the model;
4. sells the model through the key-secure exchange.

Run:  python examples/model_training_exchange.py   (~10 minutes — the
convergence predicate over 4 training points is a 32768-constraint
circuit, proved for real)
"""

import time

from repro import SnarkContext, ZKDETMarketplace
from repro.apps.logistic import LogisticRegressionTask, logistic_processing


def main():
    print("Setting up (SRS + marketplace)...")
    # The 4-point convergence predicate pads to 32768 constraints.
    snark = SnarkContext.with_fresh_srs(32800)
    market = ZKDETMarketplace(snark)
    modeller = market.register_participant()
    client = market.register_participant()

    task = LogisticRegressionTask(
        xs=[[0.5], [1.2], [-0.6], [-1.1]],
        ys=[1, 1, 0, 0],
        learning_rate=0.8,
        epsilon=0.05,
    )
    print("Publishing the labelled training set (%d points)..." % task.num_points)
    training_set = market.publish_dataset(modeller, task.encode_dataset())

    print("Training in verifiable fixed-point arithmetic...")
    beta = task.train(iterations=30)
    print("  model: intercept=%.3f slope=%.3f  loss=%.4f  converged=%s"
          % (task.spec.decode(beta[0]), task.spec.decode(beta[1]),
             task.loss_of(beta), task.converged(beta)))

    print("Minting the model with a proof of convergence (pi_t)...")
    t0 = time.time()
    proc = logistic_processing(task, iterations=30)
    models, pi_t = market.transform(modeller, [training_set], proc)
    model_asset = models[0]
    print("  model token %d minted in %.0f s; proof %d bytes; prevIds -> %s"
          % (model_asset.token_id, time.time() - t0, pi_t.proof.size_bytes,
             market.chain.call_view(market.token, "prev_ids", model_asset.token_id)))

    print("Client buys the model via the key-secure exchange...")
    result = market.sell(modeller, model_asset, client, price=9000)
    assert result.success, result.reason
    bought = [task.spec.decode(v) for v in result.plaintext]
    print("  client decrypted model parameters: %s" % ["%.3f" % v for v in bought])

    print("Client-side due diligence from public data alone:")
    graph = market.provenance()
    print("  model token %d derives from training-set token %d: %s"
          % (model_asset.token_id, training_set.token_id,
             training_set.token_id in graph.ancestors(model_asset.token_id)))
    print("  recorded transformation kind: %s"
          % market.chain.call_view(market.token, "kind_of", model_asset.token_id))
    print("Done.")


if __name__ == "__main__":
    main()
