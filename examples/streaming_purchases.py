"""Layer-2 streaming purchases with attested sources.

The extensions the paper points at but does not build:

- **Oracle attestation** (Section IV-F cites DECO): source datasets get
  their origin countersigned by an oracle committee before listing;
- **Payment channels** (Section I cites Layer-2 scaling): a buyer who
  purchases many datasets from one seller opens a channel once, streams
  signed off-chain vouchers per purchase, and settles a single on-chain
  transaction — compare the gas totals printed at the end.

Run:  python examples/streaming_purchases.py   (fast: no SNARKs needed)
"""

from repro.chain import Blockchain
from repro.contracts import OracleCommitteeContract, PaymentChannelContract
from repro.contracts.channel import voucher_message
from repro.contracts.oracle import attestation_message
from repro.primitives.babyjubjub import schnorr_keygen, schnorr_sign
from repro.primitives.commitment import commit

NUM_PURCHASES = 10
PRICE = 500


def main():
    chain = Blockchain()
    seller = chain.create_account(funded=10**9)
    buyer = chain.create_account(funded=10**9)

    print("Registering an oracle committee (threshold 2 of 3)...")
    committee = OracleCommitteeContract(threshold=2)
    chain.deploy(committee, seller)
    oracles = []
    for i in range(3):
        addr = chain.create_account(funded=10**9)
        sk, pk = schnorr_keygen(sk=5000 + i)
        chain.transact(addr, committee, "register_oracle", pk.x, pk.y)
        oracles.append((addr, sk))

    print("Seller gets a source dataset's origin attested...")
    c, _o = commit([11, 22, 33])
    origin_tag = 0xFEED  # e.g. "api.weather.gov/2026-07"
    for addr, sk in oracles[:2]:
        sig = schnorr_sign(sk, attestation_message(c.value, origin_tag))
        chain.transact(
            addr, committee, "attest", c.value, origin_tag,
            sig.r_point.x, sig.r_point.y, sig.s,
        )
    print("  attested: %s (%d signatures)"
          % (chain.call_view(committee, "is_attested", c.value, origin_tag),
             chain.call_view(committee, "attestation_count", c.value, origin_tag)))

    print("Buyer opens a payment channel for %d purchases..." % NUM_PURCHASES)
    channels = PaymentChannelContract()
    chain.deploy(channels, seller)
    buyer_sk, buyer_pk = schnorr_keygen(sk=777777)
    open_receipt = chain.transact(
        buyer, channels, "open_channel", seller, buyer_pk.x, buyer_pk.y, 50,
        value=NUM_PURCHASES * PRICE,
    )
    cid = open_receipt.return_value

    print("Streaming %d off-chain vouchers (zero gas each)..." % NUM_PURCHASES)
    voucher = None
    for i in range(1, NUM_PURCHASES + 1):
        cumulative = i * PRICE
        voucher = schnorr_sign(buyer_sk, voucher_message(cid, cumulative))
        # ... dataset i is delivered off-chain in exchange for the voucher.
    print("  final voucher covers %d" % (NUM_PURCHASES * PRICE))

    print("Seller settles the channel in ONE transaction...")
    close_receipt = chain.transact(
        seller, channels, "close", cid, NUM_PURCHASES * PRICE,
        voucher.r_point.x, voucher.r_point.y, voucher.s,
    )
    assert close_receipt.status, close_receipt.error

    channel_gas = open_receipt.gas_used + close_receipt.gas_used
    per_tx_gas = 21000 + 30000  # typical escrowed payment per purchase
    naive_gas = NUM_PURCHASES * per_tx_gas
    print("  gas via channel : %7d (open + close)" % channel_gas)
    print("  gas via %2d txs  : %7d (estimated)" % (NUM_PURCHASES, naive_gas))
    print("  saving          : %.0f%%" % (100 * (1 - channel_gas / naive_gas)))
    print("Done.")


if __name__ == "__main__":
    main()
