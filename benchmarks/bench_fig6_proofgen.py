"""Figure 6: proof-generation time vs. data size.

Three series, as in the paper:

- pi_e / pi_p (proofs of encryption) — grows with the dataset: the paper
  reports ~3 minutes for a 5 MB dataset (native prover);
- pi_t (transformation proofs for dup/agg/part, "essentially data
  comparisons") — ~10 s for 5 MB;
- pi_k (key negotiation) — constant, ~120 ms, independent of data size.

We prove for real at 2-8 entries, fit the model, and extrapolate to the
paper's 1 MB / 5 MB points.  Shape claims reproduced: pi_e and pi_t grow
linearly with data, pi_k is flat and cheapest.

Known deviation (see EXPERIMENTS.md): the paper's pi_t is ~18x cheaper
than pi_e because its CP-NIZK links commitments algebraically
(LegoSNARK-style), making openings free in-circuit; our commitments are
Poseidon hashes re-computed in-circuit, so pi_t pays the opening cost and
lands close to pi_e rather than far below it.  The pi_e > pi_t ordering
still holds (MiMC re-encryption is pi_e-only), just with a smaller gap.
"""

import time

from conftest import print_table, run_once

from repro.costmodel import (
    TimingModel,
    encryption_circuit_gates,
    padded_circuit_size,
    transformation_circuit_gates,
)
from repro.core.exchange import build_key_negotiation_circuit
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import prove_encryption, prove_transformation
from repro.core.transformations import Duplication
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove

ENTRY_BYTES = 31
MEGABYTE_ENTRIES = (1 << 20) // ENTRY_BYTES

PAPER = {
    "pi_e at 5 MB": "~180 s",
    "pi_t at 5 MB": "~10 s",
    "pi_k": "~0.12 s",
}


def test_fig6_proof_generation(benchmark, snark_ctx):
    results = {}

    def sweep():
        # pi_e series (encryption proofs).
        pi_e = []
        for entries in (2, 4, 8):
            asset = DataAsset.create(list(range(1, entries + 1)), key=7, nonce=3)
            prove_encryption(snark_ctx, asset)  # warm the key cache
            start = time.perf_counter()
            prove_encryption(snark_ctx, asset)
            n = padded_circuit_size(encryption_circuit_gates(entries))
            pi_e.append((entries, n, time.perf_counter() - start))
        results["pi_e"] = pi_e

        # pi_t series (duplication — "essentially data comparisons").
        pi_t = []
        for entries in (2, 4, 8):
            asset = DataAsset.create(list(range(1, entries + 1)), key=7, nonce=3)
            prove_transformation(snark_ctx, [asset], Duplication())
            start = time.perf_counter()
            prove_transformation(snark_ctx, [asset], Duplication())
            n = padded_circuit_size(transformation_circuit_gates([entries], [entries]))
            pi_t.append((entries, n, time.perf_counter() - start))
        results["pi_t"] = pi_t

        # pi_k (constant size).
        def prove_pik():
            builder = CircuitBuilder()
            build_key_negotiation_circuit(builder, 12, 34, 56, 0, 0, 0)
            layout, assignment = builder.compile(check=False)
            keys = snark_ctx.keys_for(layout)
            # pi_k needs a *satisfying* witness: build honestly.
            from repro.field.fr import MODULUS as R
            from repro.primitives.commitment import commit
            from repro.primitives.hashing import field_hash

            k, k_v = 111, 222
            c, o = commit(k, blinder=9)
            builder2 = CircuitBuilder()
            build_key_negotiation_circuit(
                builder2, (k + k_v) % R, c.value, field_hash(k_v), k, o, k_v
            )
            layout2, assignment2 = builder2.compile()
            keys2 = snark_ctx.keys_for(layout2)
            start = time.perf_counter()
            prove(keys2.pk, assignment2)
            return time.perf_counter() - start

        prove_pik()  # warm cache
        results["pi_k"] = prove_pik()

    run_once(benchmark, sweep)

    # Fit per-series models on padded circuit size and extrapolate.
    e_model = TimingModel.fit([(n, t) for _, n, t in results["pi_e"]])
    t_model = TimingModel.fit([(n, t) for _, n, t in results["pi_t"]])

    rows = []
    for entries, n, t in results["pi_e"]:
        rows.append(("pi_e", "%d entries" % entries, "measured", "%.1f s" % t))
    for label, entries in (("1 MB", MEGABYTE_ENTRIES), ("5 MB", 5 * MEGABYTE_ENTRIES)):
        n = padded_circuit_size(encryption_circuit_gates(entries))
        note = " (paper native: %s)" % PAPER["pi_e at 5 MB"] if label == "5 MB" else ""
        rows.append(("pi_e", label, "model", "%.0f s%s" % (e_model.predict(n), note)))
    for entries, n, t in results["pi_t"]:
        rows.append(("pi_t", "%d entries" % entries, "measured", "%.1f s" % t))
    for label, entries in (("1 MB", MEGABYTE_ENTRIES), ("5 MB", 5 * MEGABYTE_ENTRIES)):
        n = padded_circuit_size(transformation_circuit_gates([entries], [entries]))
        note = " (paper native: %s)" % PAPER["pi_t at 5 MB"] if label == "5 MB" else ""
        rows.append(("pi_t", label, "model", "%.0f s%s" % (t_model.predict(n), note)))
    rows.append(("pi_k", "any size", "measured", "%.2f s (paper native: %s)"
                 % (results["pi_k"], PAPER["pi_k"])))
    print_table(
        "Figure 6 - proof generation time vs data size",
        ["proof", "data size", "kind", "time"],
        rows,
    )

    # Shape assertions.
    e_times = [t for _, _, t in results["pi_e"]]
    assert e_times[-1] > e_times[0]  # pi_e grows with data
    # pi_t needs fewer raw constraints than pi_e at equal data size (no
    # MiMC re-encryption); timing may round to the same padded n.
    assert transformation_circuit_gates([8], [8]) < encryption_circuit_gates(8)
    # pi_k is independent of the data and cheaper than both at 8 entries.
    assert results["pi_k"] < results["pi_e"][-1][2]
    assert results["pi_k"] < results["pi_t"][-1][2]
