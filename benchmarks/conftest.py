"""Shared benchmark fixtures.

Every benchmark runs real cryptography once (``rounds=1``) — a Plonk proof
takes seconds in pure Python, so statistical repetition is pointless —
then prints a paper-vs-measured table.  Extrapolated rows (marked `model`)
come from the cost model calibrated on the measured points.
"""

import pytest

from repro.core.snark import SnarkContext

#: Large enough for circuits up to n = 32768 (the 4-point logistic-
#: regression predicate pads to that size).
_SRS_DEGREE = 32800


@pytest.fixture(scope="session")
def snark_ctx():
    return SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xBEEF)


def run_once(benchmark, fn):
    """Time a function exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, headers: list, rows: list) -> None:
    """Render an aligned comparison table to stdout."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print("\n== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
