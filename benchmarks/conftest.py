"""Shared benchmark fixtures.

Every benchmark runs real cryptography once (``rounds=1``) — a Plonk proof
takes seconds in pure Python, so statistical repetition is pointless —
then prints a paper-vs-measured table.  Extrapolated rows (marked `model`)
come from the cost model calibrated on the measured points.

Each table is also written as machine-readable JSON (``BENCH_<slug>.json``
under ``REPRO_BENCH_DIR``, default ``benchmarks/results/``) so CI runs and
regression tooling can diff numbers without scraping stdout.  Every
payload is stamped with a schema version, a UTC timestamp, the git
revision and the active backend/telemetry level, and — when
``REPRO_TELEMETRY`` is at least ``metrics`` — a snapshot of the telemetry
registry, so a result file records the kernel counters that produced it.
"""

import datetime
import json
import os
import re
import subprocess
import time

import pytest

from repro import faults, telemetry
from repro.core.snark import SnarkContext
from repro.telemetry import ledger as _ledger

#: Bump when the BENCH json payload shape changes incompatibly.
BENCH_SCHEMA_VERSION = 2

#: Large enough for circuits up to n = 32768 (the 4-point logistic-
#: regression predicate pads to that size).
_SRS_DEGREE = 32800


@pytest.fixture(scope="session")
def snark_ctx():
    return SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xBEEF)


def run_once(benchmark, fn):
    """Time a function exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def _slugify(title: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _emit_json(title: str, headers: list, rows: list) -> None:
    out_dir = os.environ.get(
        "REPRO_BENCH_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
    )
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[c for c in row] for row in rows],
        "unix_time": time.time(),
        "utc_time": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_revision": _git_revision(),
        "backend": os.environ.get("REPRO_BACKEND", "serial"),
        "telemetry_level": telemetry.level_name(),
    }
    # Stamp the active fault schedule so a soak/chaos result is
    # replayable from the artifact alone: profile + seed pin the whole
    # injected-failure sequence (see repro/faults/plan.py).
    injector = faults.active()
    payload["fault_profile"] = injector.plan.name if injector is not None else "off"
    payload["fault_seed"] = injector.plan.seed if injector is not None else None
    chaos_seed = os.environ.get("REPRO_CHAOS_SEED", "").strip()
    if chaos_seed:
        payload["chaos_seed"] = chaos_seed
    if telemetry.metrics_enabled():
        payload["telemetry"] = telemetry.snapshot()
    path = os.path.join(out_dir, "BENCH_%s.json" % _slugify(title))
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    # With REPRO_LEDGER set, every emitted table also lands in the run
    # ledger (the CI perf gate diffs that record against the committed
    # baseline with `python -m repro.telemetry diff --check`).
    ledger_path = _ledger.default_path()
    if ledger_path is not None:
        metrics = (
            _ledger.diff_snapshots({}, telemetry.snapshot())
            if telemetry.metrics_enabled()
            else {"counters": {}, "histograms": {}}
        )
        _ledger.writer(ledger_path).append(
            {
                "name": "bench.%s" % _slugify(title),
                "attrs": {"headers": payload["headers"], "rows": payload["rows"]},
                "env": _ledger.environment(),
                "metrics": metrics,
                "cache_hit_rates": _ledger.cache_hit_rates(metrics["counters"]),
                "faults": [],
                "spans": [],
            }
        )


def print_table(title: str, headers: list, rows: list) -> None:
    """Render an aligned comparison table to stdout and mirror it to JSON."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print("\n== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    _emit_json(title, headers, rows)
