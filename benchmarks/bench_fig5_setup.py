"""Figure 5: universal setup time vs. number of constraints.

The paper reports setup times growing with circuit size, reaching about
two minutes for 2^20 constraints on an i9-11900K.  We measure real SRS
generation + circuit preprocessing at 2^8 .. 2^12 and extrapolate the
paper-scale points with the calibrated model; the *shape* (near-linear
growth in n) is the claim under test.
"""

import time

from conftest import print_table, run_once

from repro.costmodel import TimingModel
from repro.kzg import SRS
from repro.plonk import CircuitBuilder, setup

#: The paper's reference point: ~2 minutes at 2^20 constraints.
PAPER_SETUP_2_20_SECONDS = 120

MEASURED_SIZES = [256, 512, 1024, 2048, 4096]
MODELLED_SIZES = [2**14, 2**16, 2**18, 2**20]


def _setup_circuit_of_size(n: int) -> float:
    """Full universal setup for a size-n circuit: SRS + preprocessing."""
    builder = CircuitBuilder()
    x = builder.public_input(3)
    acc = x
    while builder.num_gates < n - 4:
        acc = builder.mul(acc, x)
    layout, _ = builder.compile(min_size=n)
    start = time.perf_counter()
    srs = SRS.generate(layout.n + 8, tau=123457)
    setup(srs, layout)
    return time.perf_counter() - start


def test_fig5_setup_time(benchmark):
    measured = []

    def sweep():
        for n in MEASURED_SIZES:
            measured.append((n, _setup_circuit_of_size(n)))

    run_once(benchmark, sweep)

    model = TimingModel.fit(measured)
    rows = [
        (n, "measured", "%.2f s" % t, "") for n, t in measured
    ]
    for n in MODELLED_SIZES:
        note = (
            "(paper: ~%d s on native i9)" % PAPER_SETUP_2_20_SECONDS
            if n == 2**20
            else ""
        )
        rows.append((n, "model", "%.1f s" % model.predict(n), note))
    print_table(
        "Figure 5 - circuit setup time vs constraints",
        ["constraints", "kind", "setup time", "notes"],
        rows,
    )

    # Shape assertions: monotone growth, near-linear scaling.
    times = [t for _, t in measured]
    assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
    ratio = measured[-1][1] / measured[0][1]
    size_ratio = MEASURED_SIZES[-1] / MEASURED_SIZES[0]
    assert size_ratio / 3 < ratio < size_ratio * 3  # linear-ish in n
