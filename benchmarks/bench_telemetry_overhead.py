"""The telemetry layer's disabled-path overhead budget (< 2%).

Every instrumentation point in the hot kernels compiles down, when
``REPRO_TELEMETRY=off``, to either a ``telemetry.span(...)`` call that
returns the shared no-op singleton or a ``metrics_enabled()`` guard — one
global load and compare each.  The budget in ISSUE/DESIGN is that this
costs under 2% of a warm Plonk proof.

Cross-checkout wall-clock comparisons are too noisy to gate on inside one
process, so this benchmark asserts the budget deterministically: it
micro-times the two no-op primitives, counts how many instrumented events
one warm proof actually executes (read off the metrics registry itself),
and checks that (events x per-event no-op cost) stays under 2% of the
measured off-level proof time.  The off-vs-trace wall clock is printed as
an informational row.
"""

import time

from conftest import print_table, run_once

from repro import telemetry
from repro.backend.serial import SerialEngine
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.plonk.verifier import verify


def _range_circuit(builder: CircuitBuilder, value: int, bits: int = 64) -> None:
    total = builder.constant(0)
    weight = 1
    for i in range(bits):
        bit = builder.var((value >> i) & 1)
        builder.assert_bool(bit)
        total = builder.add(total, builder.scale(bit, weight))
        weight *= 2
    public = builder.public_input(value)
    builder.assert_equal(total, public)


def test_telemetry_off_overhead(benchmark, snark_ctx):
    builder = CircuitBuilder()
    _range_circuit(builder, 0xFEEDFACE)
    layout, assignment = builder.compile()
    keys = snark_ctx.keys_for(layout)
    engine = SerialEngine()
    prove(keys.pk, assignment, engine=engine)  # warm every cache first

    # Off-level warm proof (the baseline the budget is measured against).
    off_times = []
    with telemetry.use_level(telemetry.OFF):
        for _ in range(2):
            t0 = time.perf_counter()
            prove(keys.pk, assignment, engine=engine)
            off_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        proof = run_once(benchmark, lambda: prove(keys.pk, assignment, engine=engine))
        off_times.append(time.perf_counter() - t0)
    assert verify(keys.vk, assignment.public_inputs, proof)
    off_s = min(off_times)

    # Trace-level warm proof (informational: spans + metrics live).
    with telemetry.use_level(telemetry.TRACE):
        t0 = time.perf_counter()
        prove(keys.pk, assignment, engine=engine)
        trace_s = time.perf_counter() - t0
        root = telemetry.finished_roots()[-1]
        n_spans = sum(1 for _ in root.walk())

    # How many instrumented events does one warm proof execute?  The
    # registry itself is the counter: every guarded site increments a
    # counter and/or observes a histogram when metrics are on.
    with telemetry.use_level(telemetry.METRICS):
        telemetry.reset_metrics()
        prove(keys.pk, assignment, engine=engine)
        snap = telemetry.snapshot()
    n_events = int(sum(snap["counters"].values()))
    n_events += int(sum(h["count"] for h in snap["histograms"].values()))

    # Micro-time the two disabled primitives.
    reps = 200_000
    with telemetry.use_level(telemetry.OFF):
        t0 = time.perf_counter()
        for _ in range(reps):
            telemetry.span("overhead_probe", n=1)
        span_cost = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            telemetry.metrics_enabled()
        guard_cost = (time.perf_counter() - t0) / reps

    # Upper bound: every event charged the guard, every span the no-op
    # span constructor (n_events over-counts guards — several instruments
    # share one guard at most sites).
    est_overhead_s = n_events * guard_cost + n_spans * span_cost
    overhead_pct = 100.0 * est_overhead_s / off_s
    trace_pct = 100.0 * (trace_s - off_s) / off_s

    print_table(
        "Telemetry overhead, warm proof (n=%d)" % layout.n,
        ["quantity", "value", "note"],
        [
            ["off-level proof", "%.3f s" % off_s, "baseline"],
            ["trace-level proof", "%.3f s" % trace_s, "%+.1f%% (informational)" % trace_pct],
            ["instrumented events/proof", "%d" % n_events, "from the registry"],
            ["spans/proof", "%d" % n_spans, "prover span tree"],
            ["no-op span() call", "%.0f ns" % (span_cost * 1e9), "shared singleton"],
            ["metrics_enabled() guard", "%.0f ns" % (guard_cost * 1e9), "load + compare"],
            ["estimated off overhead", "%.4f%%" % overhead_pct, "budget < 2%"],
        ],
    )
    assert overhead_pct < 2.0, (
        "disabled-telemetry overhead estimate %.3f%% breaches the 2%% budget"
        % overhead_pct
    )
