"""Ablations for the paper's design choices (Section IV-C and IV-B).

1. Circuit-friendly primitives: MiMC vs. an AES-class cipher and
   Poseidon vs. a SHA-256-class hash, in constraints per data block.
   (Literature constants for AES/SHA in arithmetic circuits, our exact
   gadget counts for MiMC/Poseidon.)
2. Proof decoupling: chained transformations with the naive protocol of
   Section III-B (every pi re-proves both encryptions) vs. the decoupled
   pi_e / pi_t protocol of Section IV-B — constraints saved per chain.
"""

from conftest import print_table, run_once

from repro.costmodel import (
    encryption_circuit_gates,
    mimc_ctr_element_gates,
    poseidon_permutation_gates,
    transformation_circuit_gates,
)

#: Published arithmetic-circuit costs for the conventional primitives the
#: paper rejects (Section IV-C cites "millions of constraints" for ~1000
#: AES blocks): AES-128 ~6400 R1CS constraints per 16-byte block;
#: SHA-256 ~27k constraints per 64-byte block.
AES_CONSTRAINTS_PER_BLOCK = 6400
AES_BLOCK_BYTES = 16
SHA256_CONSTRAINTS_PER_BLOCK = 27000
SHA256_BLOCK_BYTES = 64
FIELD_ELEMENT_BYTES = 31


def test_ablation_circuit_friendly_primitives(benchmark):
    result = {}

    def compute():
        result["mimc_per_byte"] = mimc_ctr_element_gates() / FIELD_ELEMENT_BYTES
        result["aes_per_byte"] = AES_CONSTRAINTS_PER_BLOCK / AES_BLOCK_BYTES
        result["poseidon_per_byte"] = poseidon_permutation_gates() / (
            2 * FIELD_ELEMENT_BYTES
        )  # rate-2 sponge absorbs two elements per permutation
        result["sha_per_byte"] = SHA256_CONSTRAINTS_PER_BLOCK / SHA256_BLOCK_BYTES

    run_once(benchmark, compute)

    enc_advantage = result["aes_per_byte"] / result["mimc_per_byte"]
    hash_advantage = result["sha_per_byte"] / result["poseidon_per_byte"]
    print_table(
        "Ablation - circuit-friendly primitives (constraints per byte)",
        ["primitive", "constraints/byte", "advantage"],
        [
            ("MiMC-CTR (ours)", "%.1f" % result["mimc_per_byte"], ""),
            ("AES-128 (literature)", "%.1f" % result["aes_per_byte"],
             "MiMC is %.0fx cheaper" % enc_advantage),
            ("Poseidon (ours)", "%.1f" % result["poseidon_per_byte"], ""),
            ("SHA-256 (literature)", "%.1f" % result["sha_per_byte"],
             "Poseidon is %.0fx cheaper" % hash_advantage),
        ],
    )
    # The paper's qualitative claims: both replacements are major wins.
    assert enc_advantage > 10
    assert hash_advantage > 20

    # 1000-block sanity check against "millions of constraints" for AES.
    assert 1000 * AES_CONSTRAINTS_PER_BLOCK > 1_000_000


def test_ablation_proof_decoupling(benchmark):
    """Constraints proved across a chain of k transformations.

    Naive (Section III-B): each step proves Enc(S), Enc(D) and f.
    Decoupled (Section IV-B): pi_e once per dataset, pi_t per step —
    interior datasets' encryption proofs are shared by adjacent steps.
    """
    rows = []
    summary = {}

    def compute():
        entries = 64
        enc = encryption_circuit_gates(entries)
        trans = transformation_circuit_gates([entries], [entries])
        for chain_len in (1, 2, 4, 8):
            naive = chain_len * (2 * enc + trans)
            decoupled = (chain_len + 1) * enc + chain_len * trans
            saving = 1 - decoupled / naive
            rows.append((chain_len, "{:,}".format(naive), "{:,}".format(decoupled),
                         "%.0f%%" % (100 * saving)))
            summary[chain_len] = saving

    run_once(benchmark, compute)

    print_table(
        "Ablation - proof decoupling over transformation chains (64-entry data)",
        ["chain length", "naive constraints", "decoupled constraints", "saving"],
        rows,
    )
    # The paper: decoupling "halves the cost of proof generation" for
    # continued transformations - savings approach the encryption share
    # as chains grow, and must increase monotonically.
    savings = [summary[k] for k in sorted(summary)]
    assert all(b >= a for a, b in zip(savings, savings[1:]))
    assert savings[-1] > 0.25
