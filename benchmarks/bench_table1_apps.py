"""Table I: proof of transformation for data-processing applications.

Paper rows (native Circom/Snarkjs prover, i9-11900K):

    Logistic regression   495 entries  ->   3.11 s,  2.42 KB
                        1 963 entries  ->  21.73 s,  2.41 KB
                       10 210 entries  -> 131.44 s,  2.45 KB
    Transformer        201 163 params  ->  1 m 29 s, 2.43 KB
                     1 016 783 params  ->  8 m 12 s, 2.41 KB

We run the real prover on reduced instances of the *same circuits*
(convergence predicate, attention+FFN block), measure time and exact
proof size, then extrapolate the paper-scale rows with the calibrated
model.  Claims under test: proof generation grows roughly linearly in the
workload while the proof stays constant-size.
"""

import time

from conftest import print_table, run_once

from repro.apps.logistic import LogisticRegressionTask, logistic_processing
from repro.apps.transformer import TransformerBlock, transformer_processing
from repro.costmodel import (
    TimingModel,
    logistic_circuit_gates,
    padded_circuit_size,
    transformer_circuit_gates,
)
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import prove_transformation, verify_transformation

PAPER_LR = [(495, 3.11), (1963, 21.73), (10210, 131.44)]
PAPER_TF = [(201163, 89.0), (1016783, 492.0)]


def _lr_instance(num_points):
    half = num_points // 2
    xs = [[0.4 + 0.05 * i] for i in range(half)] + [[-0.4 - 0.05 * i] for i in range(half)]
    ys = [1] * half + [0] * half
    return LogisticRegressionTask(xs=xs, ys=ys, learning_rate=0.8, epsilon=0.2)


def test_table1_applications(benchmark, snark_ctx):
    lr_measured = []
    tf_measured = []
    proof_sizes = []

    def sweep():
        for num_points in (2, 4):
            task = _lr_instance(num_points)
            proc = logistic_processing(task, iterations=25)
            source = DataAsset.create(task.encode_dataset())
            prove_transformation(snark_ctx, [source], proc)  # warm keys
            start = time.perf_counter()
            _, pi_t = prove_transformation(snark_ctx, [source], proc)
            elapsed = time.perf_counter() - start
            assert verify_transformation(snark_ctx, proc, pi_t)
            n = padded_circuit_size(logistic_circuit_gates(num_points, 1))
            lr_measured.append((num_points, n, elapsed))
            proof_sizes.append(pi_t.proof.size_bytes)

        block = TransformerBlock.random(seq_len=2, d_model=1, d_ff=2)
        proc = transformer_processing(block)
        seq = [[0.3], [-0.2]]
        x_asset = DataAsset.create(block.encode_input(seq))
        w_asset = DataAsset.create(block.encode_weights())
        prove_transformation(snark_ctx, [x_asset, w_asset], proc)  # warm
        start = time.perf_counter()
        _, pi_t = prove_transformation(snark_ctx, [x_asset, w_asset], proc)
        elapsed = time.perf_counter() - start
        assert verify_transformation(snark_ctx, proc, pi_t)
        n = padded_circuit_size(transformer_circuit_gates(2, 1, 2))
        tf_measured.append((block.num_parameters, n, elapsed))
        proof_sizes.append(pi_t.proof.size_bytes)

    run_once(benchmark, sweep)

    # One shared prover-speed model (seconds per padded constraint).
    model = TimingModel.fit(
        [(n, t) for _, n, t in lr_measured] + [(n, t) for _, n, t in tf_measured]
    )

    rows = []
    for pts, n, t in lr_measured:
        rows.append(("LogReg", "%d entries" % pts, "measured",
                     "%.0f s" % t, "%d B" % proof_sizes[0]))
    for pts, paper_t in PAPER_LR:
        n = padded_circuit_size(logistic_circuit_gates(pts, 1))
        rows.append(("LogReg", "%d entries" % pts, "model",
                     "%.0f s (paper native: %.2f s)" % (model.predict(n), paper_t),
                     "768 B (paper: ~2.4 KB)"))
    for params, n, t in tf_measured:
        rows.append(("Transformer", "%d params" % params, "measured",
                     "%.0f s" % t, "%d B" % proof_sizes[-1]))
    for params, paper_t in PAPER_TF:
        # Scale the block dims so the parameter count matches the row.
        d = max(2, int((params / 8) ** 0.5))
        n = padded_circuit_size(transformer_circuit_gates(4, d, 2 * d))
        rows.append(("Transformer", "%d params" % params, "model",
                     "%.0f s (paper native: %.0f s)" % (model.predict(n), paper_t),
                     "768 B (paper: ~2.4 KB)"))
    print_table(
        "Table I - proofs of transformation for data processing",
        ["task", "workload", "kind", "proof generation", "proof size"],
        rows,
    )

    # Claims: proof size constant; time grows with workload.
    assert len(set(proof_sizes)) == 1
    assert lr_measured[1][2] > lr_measured[0][2] * 0.8  # larger is not faster
    # Paper-scale ordering preserved: 10210-entry LR slower than 495-entry.
    n_small = padded_circuit_size(logistic_circuit_gates(495, 1))
    n_big = padded_circuit_size(logistic_circuit_gates(10210, 1))
    assert model.predict(n_big) > model.predict(n_small)
