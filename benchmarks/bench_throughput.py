"""Exchange-settlement throughput: single vs. batched verification.

The abstract claims ZKDET "maintains high throughput despite large data
volumes".  Verification is the per-exchange on-chain bottleneck (proof
generation is off-chain and parallel across sellers), so we measure how
many pi_k verifications per second a settlement node sustains — one by
one versus batched through the small-exponent folding of
repro.plonk.batch (k proofs, still one two-pairing check).
"""

import time

from conftest import print_table, run_once

from repro.field.fr import MODULUS as R
from repro.plonk import batch_verify, prove, verify
from repro.plonk.circuit import CircuitBuilder
from repro.primitives.commitment import commit
from repro.primitives.hashing import field_hash
from repro.core.exchange import build_key_negotiation_circuit

BATCH = 8


def _pik_instance(snark_ctx, seed):
    key, k_v = 1000 + seed, 2000 + seed
    c, o = commit(key, blinder=300 + seed)
    k_c = (key + k_v) % R
    h_v = field_hash(k_v)
    builder = CircuitBuilder()
    build_key_negotiation_circuit(builder, k_c, c.value, h_v, key, o, k_v)
    layout, assignment = builder.compile()
    keys = snark_ctx.keys_for(layout)
    return keys.vk, assignment.public_inputs, prove(keys.pk, assignment)


def test_throughput_batched_settlement(benchmark, snark_ctx):
    results = {}

    def measure():
        instances = [_pik_instance(snark_ctx, i) for i in range(BATCH)]
        start = time.perf_counter()
        assert all(verify(vk, pubs, proof) for vk, pubs, proof in instances)
        results["single"] = time.perf_counter() - start
        start = time.perf_counter()
        assert batch_verify(instances)
        results["batched"] = time.perf_counter() - start

    run_once(benchmark, measure)

    single_rate = BATCH / results["single"]
    batch_rate = BATCH / results["batched"]
    print_table(
        "Throughput - settling %d exchanges (pi_k verifications)" % BATCH,
        ["strategy", "total time", "exchanges/second", "speedup"],
        [
            ("one-by-one", "%.1f s" % results["single"], "%.2f" % single_rate, "1.0x"),
            ("batched", "%.1f s" % results["batched"], "%.2f" % batch_rate,
             "%.1fx" % (results["single"] / results["batched"])),
        ],
    )
    # Batching must amortise the pairing cost substantially.
    assert results["batched"] < results["single"] / 2
