"""Repeated proving under one key: the engine-cache and MSM payoff.

A deployed marketplace proves the *same* circuit over and over (every data
exchange runs the same transformation predicate with fresh witnesses).
Two backend-layer changes target exactly that workload:

- the engine caches per-key state: the 9 per-key-fixed polynomials
  (selectors, permutation columns, L1) keep their size-8n coset
  evaluations after the first proof, the SRS Jacobian view is converted
  once, and NTT twiddle plans are memoised — a fresh engine per proof
  repays all of it every time;
- the G1 MSM (the prover's dominant cost) moved from unsigned windows
  with per-call Jacobian additions to signed windows with batch-affine
  bucket accumulation.

Measured back-to-back against a seed-checkout worktree on the dev
machine (64-bit range proof, n = 256, warm median of 7): seed
1.066 s/proof vs 0.640 s/proof here — a 40% wall-clock reduction for
second-proof-onward proving, past the >= 25% acceptance bar.  That
cross-checkout number cannot be re-measured inside one process, and
single-core wall clock on a shared box is too noisy to gate on, so
this benchmark asserts the two
deterministic components that produced it: the second proof must run
only the 6 live-polynomial coset FFTs (the 9 per-key-fixed ones must be
cache hits), and the batch-affine MSM kernel must beat the generic
signed bucket loop by >= 20% on a prover-sized workload.
"""

import random
import time

from conftest import print_table, run_once

from repro import telemetry
from repro.backend.serial import SerialEngine
from repro.curve import msm as msm_mod
from repro.curve.g1 import jac_batch_normalize, jac_mul
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.plonk.verifier import verify

#: Seed-checkout warm-proof median on the dev machine (informational),
#: measured back-to-back with this checkout under identical load.
SEED_WARM_PROOF_S = 1.066


def _range_circuit(builder: CircuitBuilder, value: int, bits: int = 64) -> None:
    """A bit-decomposition range proof: enough gates to exercise the MSMs."""
    total = builder.constant(0)
    weight = 1
    for i in range(bits):
        bit = builder.var((value >> i) & 1)
        builder.assert_bool(bit)
        total = builder.add(total, builder.scale(bit, weight))
        weight *= 2
    public = builder.public_input(value)
    builder.assert_equal(total, public)


def test_repeated_proof_cache(benchmark, snark_ctx):
    builder = CircuitBuilder()
    _range_circuit(builder, 0xDEADBEEF)
    layout, assignment = builder.compile()
    keys = snark_ctx.keys_for(layout)

    # Cold: a fresh engine per proof repays domain plans, the SRS Jacobian
    # conversion, and all 15 size-8n coset FFTs on every call.
    cold_times = []
    for _ in range(3):
        with SerialEngine() as cold_engine:
            t0 = time.perf_counter()
            proof = prove(keys.pk, assignment, engine=cold_engine)
            cold_times.append(time.perf_counter() - t0)
    assert verify(keys.vk, assignment.public_inputs, proof)
    cold = min(cold_times)

    # Warm: one engine across proofs — second proof onward skips 9 of the
    # 15 coset FFTs and every one-time conversion.  The telemetry kernel
    # counters are the source of truth for the cache accounting: run the
    # warm proofs at metrics level and read the live-FFT and cache-hit
    # counts straight off the registry.
    warm_engine = SerialEngine()
    prove(keys.pk, assignment, engine=warm_engine)
    warm_times = []
    with telemetry.use_level(max(telemetry.level(), telemetry.METRICS)):
        telemetry.reset_metrics()
        for _ in range(2):
            t0 = time.perf_counter()
            prove(keys.pk, assignment, engine=warm_engine)
            warm_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        second = run_once(
            benchmark, lambda: prove(keys.pk, assignment, engine=warm_engine)
        )
        warm_times.append(time.perf_counter() - t0)
        live_ffts = telemetry.counter("engine.ntt.calls", kind="coset_fft").value
        coset_hits = telemetry.counter("engine.cache.hits", cache="coset_eval").value
    assert verify(keys.vk, assignment.public_inputs, second)
    warm = min(warm_times)
    ffts_per_proof = live_ffts / 3.0
    hits_per_proof = coset_hits / 3.0

    cache_reduction = 100.0 * (1.0 - warm / cold)
    vs_seed = 100.0 * (1.0 - warm / SEED_WARM_PROOF_S)
    print_table(
        "Repeated proving, one key (n=%d)" % layout.n,
        ["configuration", "s/proof", "note"],
        [
            ["seed checkout (recorded)", "%.3f" % SEED_WARM_PROOF_S, "dev machine"],
            ["cold engine each proof", "%.3f" % cold, "caches repaid every call"],
            ["warm engine, 2nd proof on", "%.3f" % warm, "engine caches hit"],
            ["warm vs cold", "%.1f%%" % cache_reduction, "engine caching"],
            ["warm vs seed", "%.1f%%" % vs_seed, "target >= 25% (recorded)"],
            ["coset FFTs per warm proof", "%.0f" % ffts_per_proof, "6 live of 15 total"],
            ["coset cache hits per proof", "%.0f" % hits_per_proof, "9 per-key-fixed"],
        ],
    )
    # 6 live polys (a, b, c, z, z*omega, PI) re-run per proof; the 9
    # per-key-fixed ones (selectors, sigmas, L1) must all be cache hits.
    assert ffts_per_proof == 6, (
        "expected 6 coset FFTs per warm proof, measured %.1f" % ffts_per_proof
    )
    assert hits_per_proof == 9, (
        "expected 9 coset-eval cache hits per warm proof, measured %.1f" % hits_per_proof
    )


def _seed_style_msm(pairs, c):
    """The seed checkout's kernel: unsigned windows, mixed Jacobian adds."""
    num_windows = (254 + c - 1) // c
    mask = (1 << c) - 1
    jac_add, jac_double = msm_mod.jac_add, msm_mod.jac_double
    result = msm_mod.JAC_INF
    for w in range(num_windows - 1, -1, -1):
        if result[2] != 0:
            for _ in range(c):
                result = jac_double(result)
        shift = w * c
        buckets = [None] * mask
        for p, s in pairs:
            digit = (s >> shift) & mask
            if digit:
                cur = buckets[digit - 1]
                buckets[digit - 1] = p if cur is None else jac_add(cur, p)
        running = msm_mod.JAC_INF
        acc = msm_mod.JAC_INF
        for b in range(mask - 1, -1, -1):
            if buckets[b] is not None:
                running = jac_add(running, buckets[b])
            acc = jac_add(acc, running)
        result = jac_add(result, acc)
    return result


def test_msm_batch_affine_vs_seed_kernel(benchmark):
    """The satellite MSM fix in isolation, on a prover-sized workload."""
    rng = random.Random(0xC0FFEE)
    n = 260  # one wire-commitment MSM for an n=256 circuit
    gen = (1, 2, 1)
    points = jac_batch_normalize([jac_mul(gen, rng.randrange(1, R)) for _ in range(n)])
    scalars = [rng.randrange(R) for _ in range(n)]
    pairs = list(zip(points, scalars))

    # Interleave the two kernels so a background-load burst lands on
    # both equally; min-of-N then discards whatever noise remains.
    seed_times, affine_times = [], []
    for _ in range(4):
        t0 = time.perf_counter()
        reference = _seed_style_msm(pairs, 7)  # the seed's window for this n
        seed_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fast = msm_mod._bucket_msm_g1(pairs)
        affine_times.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    reference = _seed_style_msm(pairs, 7)
    seed_times.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    fast = run_once(benchmark, lambda: msm_mod._bucket_msm_g1(pairs))
    affine_times.append(time.perf_counter() - t0)
    seed_s = min(seed_times)
    affine_s = min(affine_times)

    from repro.curve.g1 import jac_to_affine

    assert jac_to_affine(fast) == jac_to_affine(reference)
    reduction = 100.0 * (1.0 - affine_s / seed_s)
    print_table(
        "G1 MSM kernel, n=%d" % n,
        ["kernel", "seconds", "note"],
        [
            ["unsigned, mixed add (seed)", "%.3f" % seed_s, "per-call bucket adds"],
            ["signed + batch-affine", "%.3f" % affine_s, "one inversion per round"],
            ["reduction", "%.1f%%" % reduction, "target >= 15%"],
        ],
    )
    assert reduction >= 15.0, (
        "batch-affine MSM only %.1f%% faster than the seed kernel" % reduction
    )
