"""Data-plane speedup: the fast substrate vs the retained reference plane.

PR 6 rebuilt the scalar/point data plane (GLV G1 scalar multiplication,
lazy-reduction NTT butterflies, contiguous scalar cells — see
``docs/data_plane.md``) behind the ``repro.substrate`` mode switch.  Both
planes are bit-identical by the differential suite; this benchmark
measures the speed gap by flipping ``substrate.use_mode`` around the
*same* warm prover in one process, so SRS, circuit, engine caches and
background load are all shared.

Floors: >= 1.3x on warm Plonk proof generation (the issue's acceptance
bar), plus a kernel-level >= 1.4x on a warm prover-sized SRS MSM — the
fixed-base window-table path that produces most of the proof win — to
catch it regressing independently of prover mix.  Both pytest and
``python benchmarks/bench_substrate.py [--quick]`` enforce the floors;
either path writes ``BENCH_substrate.json`` via the shared emitter.
"""

import argparse
import random
import sys
import time

from conftest import print_table, run_once

from repro import substrate
from repro.backend.serial import SerialEngine
from repro.core.snark import SnarkContext
from repro.curve.g1 import jac_to_affine
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.plonk.verifier import verify

WARM_PROOF_FLOOR = 1.3
MSM_FLOOR = 1.4

#: Enough SRS headroom for the n=256 range circuit's 8n coset domain.
_SRS_DEGREE = 2200


def _range_circuit(builder, value, bits=64):
    total = builder.constant(0)
    weight = 1
    for i in range(bits):
        bit = builder.var((value >> i) & 1)
        builder.assert_bool(bit)
        total = builder.add(total, builder.scale(bit, weight))
        weight *= 2
    public = builder.public_input(value)
    builder.assert_equal(total, public)


def _best(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(repeats: int = 3) -> dict:
    """Warm-proof and MSM timings under both substrate modes."""
    builder = CircuitBuilder()
    _range_circuit(builder, 0xDEADBEEF)
    layout, assignment = builder.compile()
    ctx = SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xBEEF)
    keys = ctx.keys_for(layout)

    rng = random.Random(0xC0FFEE)
    n = 260  # one wire-commitment MSM for an n=256 circuit
    scalars = [rng.randrange(R) for _ in range(n)]

    results = {}
    proof = None
    with SerialEngine() as engine:
        # Interleave the modes so a background-load burst lands on both
        # equally; min-of-N then discards whatever noise remains.  One
        # priming proof per mode makes every timed measurement warm (the
        # engine's Jacobian/coset caches are mode-independent; the fast
        # mode's window tables are built during its priming proof).
        for mode in (substrate.MODE_REFERENCE, substrate.MODE_FAST):
            with substrate.use_mode(mode):
                prove(keys.pk, assignment, engine=engine)
                proof_s, proof = _best(
                    lambda: prove(keys.pk, assignment, engine=engine), repeats
                )
                msm_s, point = _best(lambda: engine.msm_srs(ctx.srs, scalars), repeats)
            results["%s_proof_seconds" % mode] = proof_s
            results["%s_msm_seconds" % mode] = msm_s
            results["%s_msm_point" % mode] = jac_to_affine(point)
    assert verify(keys.vk, assignment.public_inputs, proof)
    assert results["reference_msm_point"] == results["fast_msm_point"]

    results["proof_speedup"] = (
        results["reference_proof_seconds"] / results["fast_proof_seconds"]
    )
    results["msm_speedup"] = results["reference_msm_seconds"] / results["fast_msm_seconds"]
    return results


def report(results: dict) -> None:
    print_table(
        "substrate",
        ["measurement", "reference s", "fast s", "speedup"],
        [
            ("warm Plonk proof (n=256)",
             "%.3f" % results["reference_proof_seconds"],
             "%.3f" % results["fast_proof_seconds"],
             "%.2fx" % results["proof_speedup"]),
            ("warm SRS MSM (n=260)",
             "%.3f" % results["reference_msm_seconds"],
             "%.3f" % results["fast_msm_seconds"],
             "%.2fx" % results["msm_speedup"]),
            ("required floors", "-", "-",
             ">=%.1fx proof / >=%.1fx msm" % (WARM_PROOF_FLOOR, MSM_FLOOR)),
        ],
    )


def test_substrate_speedup(benchmark):
    results = {}

    def run():
        results.update(measure(repeats=2))

    run_once(benchmark, run)
    report(results)
    assert results["proof_speedup"] >= WARM_PROOF_FLOOR
    assert results["msm_speedup"] >= MSM_FLOOR


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single timing rep per measurement (CI smoke mode)",
    )
    args = parser.parse_args()
    results = measure(repeats=1 if args.quick else 3)
    report(results)
    ok = (
        results["proof_speedup"] >= WARM_PROOF_FLOOR
        and results["msm_speedup"] >= MSM_FLOOR
    )
    if not ok:
        print("FAIL: speedup below the %.1fx/%.1fx floors"
              % (WARM_PROOF_FLOOR, MSM_FLOOR))
        sys.exit(1)
