"""Figure 7: verification time — ZKDET (Plonk) vs. ZKCP (Groth16).

The paper's claim: Plonk verification stays flat (<0.1 s native; 2
pairings + 18 G1 exponentiations) regardless of input size, while ZKCP's
Groth16 verifier performs 3 pairings + one G1 exponentiation *per public
input*, so its cost grows with ell.  We verify real proofs from both
systems while sweeping the public-input count and check the crossover
shape, plus the Section VI-B3 proof-size/op-count claims.
"""

import time

from conftest import print_table, run_once

from repro.costmodel import measure_pairing_seconds
from repro.groth16 import (
    groth16_prove,
    groth16_setup,
    groth16_verify,
    verification_group_operations as groth16_ops,
)
from repro.plonk import CircuitBuilder, prove, verify
from repro.plonk.verifier import verification_group_operations as plonk_ops
from repro.r1cs import R1CSBuilder

ELL_SWEEP = [4, 32, 128, 512]


def _plonk_instance(snark_ctx, ell):
    builder = CircuitBuilder()
    total = builder.constant(0)
    for i in range(ell):
        w = builder.public_input(i + 1)
        total = builder.add(total, w)
    builder.assert_constant(total, ell * (ell + 1) // 2)
    layout, assignment = builder.compile()
    keys = snark_ctx.keys_for(layout)
    proof = prove(keys.pk, assignment)
    return keys.vk, assignment.public_inputs, proof


def _groth16_instance(ell):
    builder = R1CSBuilder()
    publics = [builder.public_input(i + 1) for i in range(ell)]
    total = builder.linear_combination([(1, p) for p in publics])
    builder.assert_constant(total, ell * (ell + 1) // 2)
    system, witness = builder.compile()
    pk, vk = groth16_setup(system)
    proof = groth16_prove(pk, witness)
    return vk, witness.public_inputs, proof


def test_fig7_verification_time(benchmark, snark_ctx):
    plonk_rows = []
    groth_rows = []

    def sweep():
        for ell in ELL_SWEEP:
            vk, publics, proof = _plonk_instance(snark_ctx, ell)
            start = time.perf_counter()
            ok = verify(vk, publics, proof)
            plonk_rows.append((ell, time.perf_counter() - start, ok))

            gvk, gpublics, gproof = _groth16_instance(ell)
            start = time.perf_counter()
            gok = groth16_verify(gvk, gpublics, gproof)
            groth_rows.append((ell, time.perf_counter() - start, gok))

    run_once(benchmark, sweep)

    rows = []
    for (ell, t, ok), (_, gt, gok) in zip(plonk_rows, groth_rows):
        assert ok and gok
        rows.append((ell, "%.2f s" % t, "%.2f s" % gt))
    print_table(
        "Figure 7 - verification time vs public-input count",
        ["public inputs", "ZKDET (Plonk)", "ZKCP (Groth16)"],
        rows,
    )

    ops_p = plonk_ops(None)
    ops_g = groth16_ops(ELL_SWEEP[-1])
    # Measured (not just counted) pairing cost: time the engine's real
    # pairing_check kernel at each verifier's Miller-loop count.
    pairing_p = measure_pairing_seconds(ops_p["miller_loops"])
    pairing_g = measure_pairing_seconds(ops_g["miller_loops"])
    print_table(
        "Section VI-B3 - succinctness",
        ["system", "pairings", "measured pairing cost", "G1 exps", "proof size"],
        [
            ("ZKDET/Plonk", ops_p["pairings"], "%.4f s" % pairing_p,
             ops_p["g1_scalar_mults"], "%d B (9 G1 + 6 F)" % ops_p["proof_size_bytes"]),
            ("ZKCP/Groth16 (ell=%d)" % ELL_SWEEP[-1], ops_g["pairings"],
             "%.4f s" % pairing_g, ops_g["g1_scalar_mults"],
             "%d B" % ops_g["proof_size_bytes"]),
        ],
    )

    # Shape assertions: Plonk flat within noise; Groth16's verifier work
    # grows linearly in ell.  With the fast pairing engine the 3-vs-2
    # Miller-loop gap is only a few milliseconds, so the growth now shows
    # in wall-clock too: the ell=512 vk_x MSM costs tens of milliseconds
    # in pure Python, well clear of timing noise, while Plonk's verifier
    # never sees ell-dependent group work.
    plonk_times = [t for _, t, _ in plonk_rows]
    groth_times = [t for _, t, _ in groth_rows]
    assert max(plonk_times) < 2.5 * min(plonk_times)  # flat-ish
    assert groth16_ops(ELL_SWEEP[-1])["g1_scalar_mults"] > groth16_ops(ELL_SWEEP[0])["g1_scalar_mults"]
    assert groth_times[-1] > groth_times[0] + 0.010  # measured linear growth
    assert pairing_g > pairing_p  # 3 Miller loops cost more than 2
