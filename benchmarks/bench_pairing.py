"""Pairing engine speedup: fast tower pipeline vs the frozen reference.

The rewrite in :mod:`repro.curve.pairing` (projective F_q2 Miller loop,
013-sparse line accumulation, cyclotomic final exponentiation, prepared
G2) must beat the seed implementation kept in
:mod:`repro.curve.pairing_ref` by at least 5x on a cold 2-pairing check
and 8x warm (prepared-G2 cache hit, only G1-side work left).  Both
pytest and ``python benchmarks/bench_pairing.py [--quick]`` enforce the
floors; either path writes ``BENCH_pairing.json`` with the speedup
ratios via the shared table emitter.
"""

import argparse
import importlib
import sys
import time

from conftest import print_table, run_once

from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.curve.g2 import G2

# The package re-exports the `pairing` *function* as an attribute, which
# shadows the submodule on `from repro.curve import pairing`; go through
# importlib to get the modules themselves.
fast = importlib.import_module("repro.curve.pairing")
ref = importlib.import_module("repro.curve.pairing_ref")

COLD_SPEEDUP_FLOOR = 5.0
WARM_SPEEDUP_FLOOR = 8.0


def _pairs():
    """A non-degenerate 2-pair product equal to one: e(aP,bQ)e(-P,abQ)."""
    g1, g2 = G1.generator(), G2.generator()
    a, b = 7, 13
    return [(g1 * a, g2 * b), (-g1, g2 * (a * b))]


def _best(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(repeats: int = 3) -> dict:
    """Time reference vs fast (cold and warm) 2-pair checks."""
    pairs = _pairs()
    engine = get_engine()

    ref_s, ref_ok = _best(lambda: ref.pairing_check(pairs), repeats)
    cold_s, cold_ok = _best(lambda: fast.pairing_check(pairs), repeats)

    # Warm: the engine's prepared_g2 cache already holds both G2 points
    # after one priming call, so only the G1-side evaluation remains.
    engine.pairing_check(pairs)
    warm_s, warm_ok = _best(lambda: engine.pairing_check(pairs), repeats)

    assert ref_ok and cold_ok and warm_ok, "pairing checks disagree on a valid product"
    return {
        "ref_seconds": ref_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "cold_speedup": ref_s / cold_s,
        "warm_speedup": ref_s / warm_s,
    }


def report(results: dict) -> None:
    print_table(
        "pairing",
        ["measurement", "seconds", "speedup vs reference"],
        [
            ("reference 2-pair check", "%.4f" % results["ref_seconds"], "1.0x"),
            ("fast cold (incl. prepare_g2)", "%.4f" % results["cold_seconds"],
             "%.1fx" % results["cold_speedup"]),
            ("fast warm (prepared-G2 cache)", "%.4f" % results["warm_seconds"],
             "%.1fx" % results["warm_speedup"]),
            ("required floors", "-", ">=%.0fx cold / >=%.0fx warm"
             % (COLD_SPEEDUP_FLOOR, WARM_SPEEDUP_FLOOR)),
        ],
    )


def test_pairing_speedup(benchmark):
    results = {}

    def run():
        results.update(measure(repeats=2))

    run_once(benchmark, run)
    report(results)
    assert results["cold_speedup"] >= COLD_SPEEDUP_FLOOR
    assert results["warm_speedup"] >= WARM_SPEEDUP_FLOOR


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single timing rep per measurement (CI smoke mode)",
    )
    args = parser.parse_args()
    results = measure(repeats=1 if args.quick else 3)
    report(results)
    ok = (
        results["cold_speedup"] >= COLD_SPEEDUP_FLOOR
        and results["warm_speedup"] >= WARM_SPEEDUP_FLOOR
    )
    if not ok:
        print("FAIL: speedup below the %.0fx/%.0fx floors"
              % (COLD_SPEEDUP_FLOOR, WARM_SPEEDUP_FLOOR))
        sys.exit(1)
