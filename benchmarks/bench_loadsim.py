"""Population-scale load-simulator benchmark: sustained tx/s across lanes.

PR 10 added the seedable workload generator (``src/repro/loadsim/``, see
``docs/loadsim.md``) and the scale path under it: the fee-ordered
bounded mempool and parallel block lanes in ``repro.chain``, plus
incremental DHT replica rebalancing under churn.  This benchmark drives
the same seeded mixed workload through every lane configuration so the
table isolates what sharding the sealing pipeline buys (and costs) at a
fixed operation stream:

- **lanes 1 / 2 / 4** — identical (seed, mix) op stream, faults off;
  sustained transactions/sec, provenance-audit latency p50/p99 (the
  ``EventIndex`` + DHT read path), and the abort/refund rate.
- **soak row** — lanes 4 under the unbounded ``soak`` fault profile, so
  the artifact records throughput *under* sustained injected failure,
  not just the sunny-day number.

Every row asserts zero invariant violations — a fast corrupt run is not
a result.  The JSON artifact (``BENCH_loadsim.json``) is stamped by the
shared emitter with the active fault profile and seed, so any row can be
replayed with ``python -m repro.loadsim`` from the artifact alone.

Either entry point — pytest or ``python benchmarks/bench_loadsim.py
[--quick]`` — writes the artifact via the shared emitter.  Full mode
runs the acceptance-scale 10^4-user population; quick mode (CI) scales
the population down but keeps every lane configuration measured.
"""

import argparse
import sys

from conftest import print_table

from repro.loadsim import run_sim

_SEED = 20220707
_MIX = "mixed"
_LANE_SWEEP = (1, 2, 4)
_SOAK_LANES = 4


def _row_config(quick: bool) -> dict:
    if quick:
        return dict(users=1_000, ops=1_500, mix=_MIX, seed=_SEED)
    return dict(users=10_000, ops=4_000, mix=_MIX, seed=_SEED)


def measure(quick: bool = False) -> list:
    base = _row_config(quick)
    reports = []
    for lanes in _LANE_SWEEP:
        reports.append(("lanes=%d" % lanes, run_sim(lanes=lanes, **base)))
    reports.append(
        (
            "lanes=%d soak" % _SOAK_LANES,
            run_sim(lanes=_SOAK_LANES, fault_profile="soak", **base),
        )
    )
    for label, report in reports:
        assert report.violations == [], (
            "%s: %d invariant violations — first: %s"
            % (label, len(report.violations), report.violations[0])
        )
    return reports


def report(reports: list, quick: bool) -> None:
    rows = []
    for label, sim in reports:
        rows.append(
            (
                label,
                sim.config.users,
                sim.mined,
                "%.1f" % sim.tx_per_sec,
                "%.0f" % sim.audit_p50_us,
                "%.0f" % sim.audit_p99_us,
                "%.4f" % sim.abort_rate,
                sim.dropped,
                sim.blocks,
                sim.digest[:16],
            )
        )
    print_table(
        "loadsim",
        ["config", "users", "mined", "tx/s", "audit p50 (us)",
         "audit p99 (us)", "abort rate", "dropped", "blocks", "digest"],
        rows,
    )
    mode = "quick" if quick else "full"
    print("mode=%s seed=%d mix=%s — all rows invariant-clean" % (mode, _SEED, _MIX))


def test_loadsim_bench():
    """CI entry: quick-scale sweep, every row invariant-clean."""
    reports = measure(quick=True)
    report(reports, quick=True)
    by_label = {label: sim for label, sim in reports}
    # Sharding changes the sealing layout, not the workload's success.
    assert by_label["lanes=4"].blocks > by_label["lanes=1"].blocks
    assert all(sim.trades_completed > 0 for _, sim in reports)
    soak = by_label["lanes=%d soak" % _SOAK_LANES]
    assert soak.faults_injected > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 10^3-user population instead of the full 10^4",
    )
    options = parser.parse_args(argv)
    report(measure(quick=options.quick), quick=options.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
