"""Table II: gas consumption of the ZKDET smart contracts.

Paper values (Rinkeby deployment):

    ZKDET contract deployment      1,020,954
    Verifier contract deployment   1,644,969
    Token minting                    106,048
    Token transferring                36,574
    Token burning                     50,084
    Aggregation                       96,780
    Partition                         83,124
    Duplication                       94,012

We deploy and invoke the same operations on the simulated chain, metering
with the Ethereum gas schedule, and compare each measured value with the
paper's.  The claims under test are the *relative* costs: deployment in
the ~1M range (verifier more expensive than the token contract), minting
the most expensive method, transfers the cheapest, transformations in
between.

Below the paper's rows we add the settlement comparison the paper does
not table: the per-exchange gas of a lone ``submit_key`` (one pairing
check per exchange) against the amortised share of a k=8
``submit_key_batch`` (one folded pairing check for the whole batch —
see ``docs/service.md``).
"""

from conftest import print_table, run_once

from repro.chain import Blockchain
from repro.contracts import (
    DataTokenContract,
    KeySecureArbiterContract,
    PlonkVerifierContract,
)
from repro.core.exchange import build_key_negotiation_circuit, key_negotiation_keys
from repro.field.fr import MODULUS as R
from repro.plonk import prove
from repro.plonk.circuit import CircuitBuilder
from repro.primitives.commitment import commit
from repro.primitives.hashing import field_hash

SETTLEMENT_BATCH = 8

PAPER = {
    "ZKDET contract deployment": 1020954,
    "Verifier contract deployment": 1644969,
    "Token minting": 106048,
    "Token transferring": 36574,
    "Token burning": 50084,
    "Aggregation": 96780,
    "Partition": 83124,
    "Duplication": 94012,
}


def test_table2_gas(benchmark, snark_ctx):
    measured = {}

    def run():
        chain = Blockchain()
        alice = chain.create_account(funded=10**12)
        bob = chain.create_account(funded=10**12)
        token = DataTokenContract()
        measured["ZKDET contract deployment"] = chain.deploy(token, alice).gas_used
        verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
        measured["Verifier contract deployment"] = chain.deploy(verifier, alice).gas_used

        r = chain.transact(alice, token, "mint", "Qm" + "a" * 44, 12345, "ph")
        measured["Token minting"] = r.gas_used
        t1 = r.return_value
        t2 = chain.transact(alice, token, "mint", "Qm" + "b" * 44, 23456, "ph").return_value
        t3 = chain.transact(alice, token, "mint", "Qm" + "c" * 44, 34567, "ph").return_value

        measured["Token transferring"] = chain.transact(
            alice, token, "transfer_from", alice, bob, t3
        ).gas_used
        measured["Aggregation"] = chain.transact(
            alice, token, "aggregate", (t1, t2), "Qm" + "d" * 44, 45678, "ph"
        ).gas_used
        src = chain.transact(alice, token, "mint", "Qm" + "e" * 44, 55555, "ph").return_value
        measured["Partition"] = chain.transact(
            alice, token, "partition", src,
            (("Qm" + "f" * 44, 1), ("Qm" + "g" * 44, 2)), "ph",
        ).gas_used
        measured["Duplication"] = chain.transact(
            alice, token, "duplicate", t1, "Qm" + "h" * 44, 66666, "ph"
        ).gas_used
        measured["Token burning"] = chain.transact(alice, token, "burn", t1).gas_used

        # --- settlement: single submit_key vs amortised batch share ---
        arbiter = KeySecureArbiterContract(verifier)
        chain.deploy(arbiter, alice)
        key, k_v = 4242, 5353
        c, o = commit(key, blinder=717)
        k_c, h_v = (key + k_v) % R, field_hash(k_v)
        builder = CircuitBuilder()
        build_key_negotiation_circuit(builder, k_c, c.value, h_v, key, o, k_v)
        layout, assignment = builder.compile()
        proof_bytes = prove(snark_ctx.keys_for(layout).pk, assignment).to_bytes()
        # One pi_k serves every lock: the statement (k_c, c, h_v) is per
        # listing, the escrow record is per exchange.
        eids = [
            chain.transact(
                bob, arbiter, "lock_payment", alice, c.value, h_v, value=1000
            ).return_value
            for _ in range(1 + SETTLEMENT_BATCH)
        ]
        measured["Exchange settlement (single)"] = chain.transact(
            alice, arbiter, "submit_key", eids[0], k_c, proof_bytes
        ).gas_used
        batch = chain.transact(
            alice,
            arbiter,
            "submit_key_batch",
            tuple((eid, k_c, proof_bytes) for eid in eids[1:]),
        )
        assert len(batch.return_value) == SETTLEMENT_BATCH
        measured["Exchange settlement (batched share)"] = (
            batch.gas_used // SETTLEMENT_BATCH
        )

    run_once(benchmark, run)

    rows = []
    for name, paper_gas in PAPER.items():
        got = measured[name]
        ratio = got / paper_gas
        rows.append((name, "{:,}".format(got), "{:,}".format(paper_gas), "%.2fx" % ratio))
    single = measured["Exchange settlement (single)"]
    share = measured["Exchange settlement (batched share)"]
    rows.append(("Exchange settlement (single)", "{:,}".format(single), "-", "-"))
    rows.append(
        (
            "Exchange settlement (batched k=%d, per exchange)" % SETTLEMENT_BATCH,
            "{:,}".format(share),
            "-",
            "-",
        )
    )
    rows.append(("Settlement amortisation", "-", "-", "%.2fx" % (single / share)))
    print_table(
        "Table II - gas consumption of ZKDET contracts",
        ["operation", "measured gas", "paper gas", "ratio"],
        rows,
    )

    # Relative-cost claims from the paper.
    assert measured["Verifier contract deployment"] > measured["ZKDET contract deployment"] * 0.5
    assert measured["Token minting"] > measured["Token transferring"]
    assert measured["Token burning"] < measured["Token minting"]
    for op in ("Aggregation", "Partition", "Duplication"):
        assert measured["Token transferring"] < measured[op]
    # Same order of magnitude as the paper for every row.
    for name, paper_gas in PAPER.items():
        assert paper_gas / 5 < measured[name] < paper_gas * 5, name
    # Batched settlement must amortise the pairing check substantially.
    assert share < single * 0.75
