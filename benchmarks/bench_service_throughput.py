"""Service throughput: the asyncio marketplace node vs one-at-a-time serving.

PR 8 added the long-lived service plane (``src/repro/service/``, see
``docs/service.md``): sessions amortise the phase-1 pi_p re-verification,
a bounded fair queue admits many concurrent buyers, and completed
exchanges settle k at a time through ``submit_key_batch``'s single
batched pairing check.  This benchmark measures what that buys on the
same chain/contract/proof substrate:

- **serial baseline** — a node configured to behave like the synchronous
  :class:`~repro.core.exchange.KeySecureExchange` driver: one request in
  flight at a time, ``verify_phase1="always"`` (pi_p re-checked per
  exchange, as the paper's per-exchange protocol does), and
  ``batch_size=1`` so every settlement pays its own pairing check.
- **service** — sessions verified once, ``concurrency`` pipeline workers,
  settlement batches of ``concurrency`` members.

Both paths serve seller-precomputed :class:`NegotiationBundle` offers
(pi_k proven off-node), so the comparison isolates *serving* throughput
rather than raw proving speed — on this interpreter a single pi_k proof
costs ~4 s and would swamp both columns equally.

Floors: the service must clear >= 3x exchanges/sec over the serial
baseline at 10^3 concurrent buyers (the issue's acceptance bar; the
quick/CI mode measures 10^2 buyers against a >= 2x floor and models the
larger populations).  Wall-clock population scans above the measured
points are extrapolated from sustained throughput and marked ``model``.
Either entry point — pytest or ``python benchmarks/bench_service_throughput.py
[--quick]`` — writes ``BENCH_service.json`` via the shared emitter.
"""

import argparse
import asyncio
import sys
import time

from conftest import print_table, run_once

from repro.core.exchange import Seller
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import prove_encryption
from repro.primitives.hashing import field_hash
from repro.service import ExchangeRequest, MarketplaceNode, NegotiationBundle, NodeConfig

FULL_FLOOR = 3.0  # >= 3x at 10^3 buyers (full mode)
QUICK_FLOOR = 2.0  # >= 2x at 10^2 buyers (CI smoke)

#: pi_p for a 2-entry asset pads to n = 8192; headroom for the 8n coset.
_SRS_DEGREE = 8300

_PRICE = 5000
_BUNDLES = 4
_CONCURRENCY = 8


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _setup(ctx):
    """One listed asset, its pi_p, and a few seller-proven pi_k bundles."""
    asset = DataAsset.create([2022, 707], key=424242, nonce=99)
    asset.uri = "bench://service/asset"
    pi_p = prove_encryption(ctx, asset)
    seller = Seller(ctx, asset, "bench-offchain-prover")
    bundles = []
    for salt in range(_BUNDLES):
        k_v = 77_000 + salt
        h_v = field_hash(k_v)
        k_c, pi_k = seller.key_negotiation_message(k_v, h_v)
        bundles.append(NegotiationBundle(k_v, h_v, k_c, pi_k.to_bytes()))
    return asset, pi_p, bundles


def _run_population(ctx, asset, pi_p, bundles, population, serial):
    """Serve ``population`` buyers; returns throughput/latency/gas stats."""
    if serial:
        config = NodeConfig(
            queue_depth=population + 8,
            per_tenant_depth=None,
            concurrency=1,
            batch_size=1,
            verify_phase1="always",
            request_timeout=None,
        )
    else:
        config = NodeConfig(
            queue_depth=population + 8,
            per_tenant_depth=None,
            concurrency=_CONCURRENCY,
            batch_size=_CONCURRENCY,
            batch_delay=0.02,
            verify_phase1="session",
            request_timeout=None,
        )
    node = MarketplaceNode(ctx, config)
    session = node.open_session(asset, encryption_proof=pi_p)
    requests = [
        ExchangeRequest(
            session.session_id,
            tenant="tenant-%d" % (i % 8),
            price=_PRICE,
            bundle=bundles[i % len(bundles)],
        )
        for i in range(population)
    ]

    async def scenario():
        await node.start()
        try:
            start = time.perf_counter()
            outcomes = await node.serve(requests)
            return time.perf_counter() - start, outcomes
        finally:
            await node.stop()

    wall, outcomes = asyncio.run(scenario())
    succeeded = [o for o in outcomes if o.success]
    assert len(succeeded) == population, (
        "expected every bench exchange to succeed, got %d/%d"
        % (len(succeeded), population)
    )
    latencies = [o.latency_s for o in succeeded]
    return {
        "population": population,
        "wall_s": wall,
        "throughput": population / wall,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "settle_gas_per_exchange": node.batcher.gas_total // population,
        "batches": node.batcher.batches_flushed,
    }


def _model_row(measured, population):
    """Extrapolate a larger population from sustained throughput.

    Admission and settlement costs are linear in the number of requests
    once the pipeline is saturated (measured throughput is flat from
    ~4x concurrency upward), so wall clock scales with population while
    p50/p99 are dominated by time spent queued behind ``population``
    predecessors draining at the sustained rate.
    """
    rate = measured["throughput"]
    wall = population / rate
    return {
        "population": population,
        "wall_s": wall,
        "throughput": rate,
        "p50_s": population / 2 / rate,
        "p99_s": 0.99 * population / rate,
        "settle_gas_per_exchange": measured["settle_gas_per_exchange"],
    }


def measure(quick: bool = False) -> dict:
    from repro.core.snark import SnarkContext

    ctx = SnarkContext.with_fresh_srs(_SRS_DEGREE, tau=0xBEEF)
    asset, pi_p, bundles = _setup(ctx)

    baseline_n = 10 if quick else 50
    baseline = _run_population(ctx, asset, pi_p, bundles, baseline_n, serial=True)

    results = {"baseline": baseline, "service": {}, "quick": quick}
    measured_points = [100] if quick else [100, 1000]
    for population in measured_points:
        results["service"][population] = _run_population(
            ctx, asset, pi_p, bundles, population, serial=False
        )
    anchor = results["service"][max(measured_points)]
    for population in (100, 1000, 10000):
        if population not in results["service"]:
            results["service"][population] = _model_row(anchor, population)
            results["service"][population]["model"] = True
    return results


def report(results: dict) -> None:
    baseline = results["baseline"]
    base_rate = baseline["throughput"]
    rows = [
        (
            "serial baseline (measured)",
            baseline["population"],
            "%.2f" % baseline["wall_s"],
            "%.1f" % base_rate,
            "%.3f" % baseline["p50_s"],
            "%.3f" % baseline["p99_s"],
            "1.00x",
        )
    ]
    for population in (100, 1000, 10000):
        stats = results["service"][population]
        kind = "model" if stats.get("model") else "measured"
        rows.append(
            (
                "service 10^%d buyers (%s)" % (len(str(population)) - 1, kind),
                population,
                "%.2f" % stats["wall_s"],
                "%.1f" % stats["throughput"],
                "%.3f" % stats["p50_s"],
                "%.3f" % stats["p99_s"],
                "%.2fx" % (stats["throughput"] / base_rate),
            )
        )
    anchor = results["service"][100 if results["quick"] else 1000]
    rows.append(
        (
            "settlement gas per exchange",
            "-",
            "single: %d" % baseline["settle_gas_per_exchange"],
            "batched: %d" % anchor["settle_gas_per_exchange"],
            "-",
            "-",
            "%.2fx"
            % (
                baseline["settle_gas_per_exchange"]
                / max(1, anchor["settle_gas_per_exchange"])
            ),
        )
    )
    floor = QUICK_FLOOR if results["quick"] else FULL_FLOOR
    rows.append(
        (
            "required floor",
            "-",
            "-",
            "-",
            "-",
            "-",
            ">=%.1fx ex/s" % floor,
        )
    )
    print_table(
        "service",
        ["scenario", "buyers", "wall s", "ex/s", "p50 s", "p99 s", "vs serial"],
        rows,
    )


def _speedup(results: dict) -> float:
    anchor = results["service"][100 if results["quick"] else 1000]
    return anchor["throughput"] / results["baseline"]["throughput"]


def test_service_throughput(benchmark):
    results = {}

    def run():
        results.update(measure(quick=True))

    run_once(benchmark, run)
    report(results)
    assert _speedup(results) >= QUICK_FLOOR


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="measure 10^2 buyers only and model the rest (CI smoke mode)",
    )
    args = parser.parse_args()
    results = measure(quick=args.quick)
    report(results)
    floor = QUICK_FLOOR if args.quick else FULL_FLOOR
    if _speedup(results) < floor:
        print("FAIL: service throughput below the %.1fx floor" % floor)
        sys.exit(1)
