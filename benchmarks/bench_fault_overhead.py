"""The fault plane's disabled-path overhead budget (< 2%).

With no plan installed every instrumented site — ``faults.check``,
``faults.unavailable``, ``faults.filter_bytes`` — is one module-global
load plus a ``None`` compare.  As with the telemetry budget, wall-clock
A/B runs of a whole exchange are too noisy to gate on, so the budget is
asserted deterministically: count how many fault-plane consultations one
protocol run actually performs (read off a zero-probability counting
plan's injector), micro-time the disabled primitive, and check that
(consultations x per-call cost) stays under 2% of the measured run.

Two protocols bound the claim from both sides: the key-secure exchange
(SNARK proving dominates, overhead vanishes into it) and FairSwap (no
proving at all — the least favourable denominator the exchange stack
offers).  An enabled-profile run is printed as an informational row.
"""

import time

from conftest import print_table, run_once

from repro import faults
from repro.chain import Blockchain
from repro.contracts import KeySecureArbiterContract, PlonkVerifierContract
from repro.contracts.fairswap import FairSwapContract
from repro.core.exchange import Buyer, KeySecureExchange, Seller, key_negotiation_keys
from repro.core.fairswap import FairSwapExchange, FairSwapListing
from repro.core.tokens import DataAsset
from repro.faults import FaultPlan, FaultRule

#: Matches every site but never fires: consultations get counted on the
#: injector without perturbing the run.
_COUNTING_PLAN = FaultPlan(
    seed=0,
    rules=(FaultRule(site="*", kind="loss", probability_ppm=0),),
    name="counting",
)

_BUDGET_PCT = 2.0


def _keysecure_run(snark_ctx):
    chain = Blockchain()
    operator = chain.create_account(funded=10**12)
    verifier = PlonkVerifierContract(key_negotiation_keys(snark_ctx).vk)
    chain.deploy(verifier, operator)
    arbiter = KeySecureArbiterContract(verifier)
    chain.deploy(arbiter, operator)
    seller_addr = chain.create_account(funded=10**9)
    buyer_addr = chain.create_account(funded=10**9)
    asset = DataAsset.create([42, 84], key=555, nonce=666)
    asset.uri = "bench"
    seller = Seller(snark_ctx, asset, seller_addr)
    buyer = Buyer(snark_ctx, asset.public_view(), buyer_addr)

    def run():
        result = KeySecureExchange(snark_ctx, chain, arbiter).run(
            seller, buyer, price=5000
        )
        assert result.success, result.reason
        return result

    return run


def _fairswap_run():
    chain = Blockchain()
    seller = chain.create_account(funded=10**12)
    buyer = chain.create_account(funded=10**12)
    contract = FairSwapContract()
    chain.deploy(contract, seller)
    listing = FairSwapListing.create(list(range(1, 65)), key=777, nonce=3)

    def run():
        result = FairSwapExchange(chain, contract).run(
            seller, buyer, listing, price=5000
        )
        assert result.success, result.reason
        return result

    return run


def _check_cost_ns(reps: int = 200_000) -> float:
    with faults.use_plan(None):
        t0 = time.perf_counter()
        for _ in range(reps):
            faults.check("chain.transact")
        return (time.perf_counter() - t0) / reps * 1e9


def _measure(run, benchmark=None):
    """(disabled seconds, consultation count) for one protocol run."""
    with faults.use_plan(None):
        run()  # warm every cache first
        times = []
        for _ in range(2):
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        if benchmark is not None:
            t0 = time.perf_counter()
            run_once(benchmark, run)
            times.append(time.perf_counter() - t0)
    with faults.use_plan(_COUNTING_PLAN) as injector:
        run()
        consultations = injector.consultations
        assert injector.injected == 0
    return min(times), consultations


def test_fault_plane_off_overhead(benchmark, snark_ctx):
    check_ns = _check_cost_ns()

    ks_s, ks_consults = _measure(_keysecure_run(snark_ctx), benchmark)
    fs_s, fs_consults = _measure(_fairswap_run())

    ks_pct = 100.0 * (ks_consults * check_ns * 1e-9) / ks_s
    fs_pct = 100.0 * (fs_consults * check_ns * 1e-9) / fs_s

    # Informational: a live profile on the cheap protocol.
    fs_run = _fairswap_run()
    with faults.use_plan(FaultPlan.profile("chain", seed=7)) as injector:
        t0 = time.perf_counter()
        fs_run()
        enabled_s = time.perf_counter() - t0
        injected = injector.injected

    print_table(
        "Fault-plane overhead, disabled (budget < %.0f%%)" % _BUDGET_PCT,
        ["quantity", "value", "note"],
        [
            ["disabled check() call", "%.0f ns" % check_ns, "global load + None compare"],
            ["keysecure run", "%.3f s" % ks_s, "%d consultations" % ks_consults],
            ["keysecure overhead", "%.5f%%" % ks_pct, "consultations x check cost"],
            ["fairswap run", "%.6f s" % fs_s, "%d consultations" % fs_consults],
            ["fairswap overhead", "%.5f%%" % fs_pct, "no proving to hide behind"],
            ["fairswap, chain profile", "%.6f s" % enabled_s,
             "%d faults injected (informational)" % injected],
        ],
    )
    assert ks_pct < _BUDGET_PCT, (
        "disabled fault-plane overhead %.4f%% breaches the %.0f%% budget "
        "(key-secure exchange)" % (ks_pct, _BUDGET_PCT)
    )
    assert fs_pct < _BUDGET_PCT, (
        "disabled fault-plane overhead %.4f%% breaches the %.0f%% budget "
        "(fairswap)" % (fs_pct, _BUDGET_PCT)
    )
