"""Exception hierarchy for the ZKDET reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FieldError(ReproError):
    """Invalid finite-field operation (e.g. inverting zero)."""


class BackendError(ReproError):
    """Compute-backend selection or kernel dispatch failed."""


class CurveError(ReproError):
    """Point is not on the curve or group operation is invalid."""


class SRSError(ReproError):
    """Structured reference string is too small or malformed."""


class CircuitError(ReproError):
    """Constraint-system construction failed."""


class UnsatisfiedConstraintError(CircuitError):
    """A witness does not satisfy the constraint system."""


class ProofError(ReproError):
    """Proof generation failed."""


class VerificationError(ReproError):
    """Proof verification failed (raised only by checked variants)."""


class SerializationError(ReproError):
    """Proof or key (de)serialisation failed."""


class TransientError(ReproError):
    """A failure expected to clear on retry (timeouts, drops, churn).

    Every fault the deterministic fault plane (:mod:`repro.faults`) can
    inject that a :class:`repro.faults.RetryPolicy` is allowed to absorb
    derives from this class; anything else is treated as a protocol-level
    outcome and surfaces to the caller.
    """


class ChainError(ReproError):
    """Blockchain substrate error."""


class OutOfGasError(ChainError):
    """Transaction exceeded its gas limit."""


class ContractError(ChainError):
    """Smart-contract level revert."""


class TxDroppedError(ChainError, TransientError):
    """A submitted transaction was never mined (mempool drop); resubmit."""


class MempoolFullError(ChainError):
    """The fee-ordered mempool is at capacity and the offered fee does not
    beat the current floor.  Deliberately *not* a :class:`TransientError`:
    blind resubmission at the same fee can never succeed — the client must
    either raise its fee or back off, a decision no retry policy inside
    the chain can make for it (mirrors :class:`QueueFullError`)."""


class TxRevertedError(ChainError, TransientError):
    """A transaction was mined but reverted for a transient reason
    (injected revert); the failed receipt is on chain, resubmission may
    succeed."""


class EventDelayError(ChainError, TransientError):
    """The event log is lagging behind chain head; re-query later."""


class StorageError(ReproError):
    """Content-addressed storage error."""


class StorageUnavailableError(StorageError, TransientError):
    """A storage node or chunk was unreachable; another replica (or a
    retry) may serve it."""


class StorageTimeoutError(StorageError, TransientError):
    """A storage read exceeded its latency budget."""


class StorageCorruptionError(StorageError, TransientError):
    """Fetched bytes fail content-integrity verification.

    Transient because content addressing makes corruption detectable and
    therefore recoverable: a re-read or a different replica yields the
    genuine bytes (silent corruption is impossible by construction)."""


class ProtocolError(ReproError):
    """A ZKDET protocol interaction was violated."""


class MessageLossError(ProtocolError, TransientError):
    """An off-chain protocol message was lost in transit; resend."""


class MessageStallError(ProtocolError, TransientError):
    """An off-chain counterparty stalled past its response window."""


class RetryExhaustedError(ReproError):
    """A retried operation failed on every attempt the policy allowed."""


class DeadlineExceededError(ReproError):
    """An operation's (virtual) per-operation timeout elapsed."""


class ExchangeAbortedError(ProtocolError):
    """An exchange could not be driven into a safe terminal state.

    Raised only when even the abort/refund path failed persistently —
    chaos plans with bounded fault budgets never reach this."""


class CommitmentError(ReproError):
    """Commitment open/verify failure in a checked context."""


class ServiceError(ReproError):
    """Marketplace service-plane failure (node, queue, prover pool)."""


class QueueFullError(ServiceError):
    """Admission control rejected a request: the tenant's queue budget
    (or the node's global bound) is exhausted.  Deliberately *not* a
    :class:`TransientError` — the node sheds load at the door and the
    client, not a retry policy inside the node, decides when to re-offer
    the request."""


class SessionError(ServiceError):
    """A request referenced a session the node does not hold (never
    opened, expired, or already closed)."""
