"""Exception hierarchy for the ZKDET reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FieldError(ReproError):
    """Invalid finite-field operation (e.g. inverting zero)."""


class BackendError(ReproError):
    """Compute-backend selection or kernel dispatch failed."""


class CurveError(ReproError):
    """Point is not on the curve or group operation is invalid."""


class SRSError(ReproError):
    """Structured reference string is too small or malformed."""


class CircuitError(ReproError):
    """Constraint-system construction failed."""


class UnsatisfiedConstraintError(CircuitError):
    """A witness does not satisfy the constraint system."""


class ProofError(ReproError):
    """Proof generation failed."""


class VerificationError(ReproError):
    """Proof verification failed (raised only by checked variants)."""


class SerializationError(ReproError):
    """Proof or key (de)serialisation failed."""


class ChainError(ReproError):
    """Blockchain substrate error."""


class OutOfGasError(ChainError):
    """Transaction exceeded its gas limit."""


class ContractError(ChainError):
    """Smart-contract level revert."""


class StorageError(ReproError):
    """Content-addressed storage error."""


class ProtocolError(ReproError):
    """A ZKDET protocol interaction was violated."""


class CommitmentError(ReproError):
    """Commitment open/verify failure in a checked context."""
