"""Bounded, deterministic retry with exponential backoff.

The recovery half of the fault plane: protocol drivers wrap each
fallible step (a storage read, a transaction submission, an off-chain
message) in :meth:`RetryPolicy.run`.  Only :class:`repro.errors.TransientError`
subclasses are retried — everything else is a genuine protocol outcome
and propagates immediately.

Backoff is exponential with *deterministic seeded jitter*: the jitter
fraction for attempt ``a`` at site ``s`` is a SHA-256 draw of
``(seed, s, a)``, so two runs of the same plan back off identically and
replays stay bit-exact.  All durations are integer microseconds on the
injector's :class:`repro.faults.injector.VirtualClock`; no real sleeping
ever happens, which is also why the disabled-path overhead of a policy
is one ``try``/``except`` per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import telemetry
from repro.errors import DeadlineExceededError, RetryExhaustedError, TransientError
from repro.faults.plan import PPM, draw

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``max_attempts`` counts calls, not retries (1 = no retry at all).
    ``timeout_us`` is a per-operation budget on the *virtual* clock:
    when injected latency plus backoff exceed it, the operation fails
    with :class:`DeadlineExceededError` even if attempts remain — the
    "per-operation timeout" leg of the failure taxonomy.
    """

    max_attempts: int = 5
    base_delay_us: int = 50_000
    max_delay_us: int = 2_000_000
    multiplier: int = 2
    jitter_ppm: int = PPM // 2
    timeout_us: int | None = None
    seed: int = 0

    def backoff_us(self, attempt: int, salt: str = "") -> int:
        """Virtual backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay_us * self.multiplier**attempt, self.max_delay_us)
        if self.jitter_ppm:
            fraction = draw(self.seed, attempt, 0, "retry:%s" % salt)
            delay -= delay * self.jitter_ppm * fraction // (PPM * PPM)
        return delay

    def run(
        self,
        operation: Callable[[], T],
        site: str = "operation",
    ) -> T:
        """Call ``operation`` until it succeeds, retrying transient errors.

        Raises :class:`RetryExhaustedError` once ``max_attempts`` calls
        all failed transiently, or :class:`DeadlineExceededError` when
        the virtual per-operation timeout elapses first.
        """
        from repro import faults  # late import: faults imports this module

        injector = faults.active()
        clock = injector.clock if injector is not None else None
        started_us = clock.now_us if clock is not None else 0
        last: TransientError | None = None
        for attempt in range(self.max_attempts):
            if attempt and telemetry.metrics_enabled():
                telemetry.counter("retry.attempts", site=site).inc()
            try:
                return operation()
            except TransientError as exc:
                last = exc
                if clock is not None:
                    clock.advance(self.backoff_us(attempt, site))
                    if (
                        self.timeout_us is not None
                        and clock.now_us - started_us > self.timeout_us
                    ):
                        if telemetry.metrics_enabled():
                            telemetry.counter("retry.deadline", site=site).inc()
                        raise DeadlineExceededError(
                            "operation %r exceeded its %d us budget after %d attempts"
                            % (site, self.timeout_us, attempt + 1)
                        ) from exc
        if telemetry.metrics_enabled():
            telemetry.counter("retry.exhausted", site=site).inc()
        raise RetryExhaustedError(
            "operation %r failed on all %d attempts; last error: %s"
            % (site, self.max_attempts, last)
        ) from last


#: The default policy protocol drivers use: enough attempts to outlast
#: every bounded budget in the shipped chaos profiles.
DEFAULT_POLICY = RetryPolicy()

#: A patient policy for safety-critical cleanup (abort/refund paths).
ABORT_POLICY = RetryPolicy(max_attempts=8, base_delay_us=25_000)
