"""Seeded fault schedules: which failures fire, where, and when.

A :class:`FaultPlan` is a pure value — a seed plus a tuple of
:class:`FaultRule` — and the decision whether consultation *n* of rule
*r* at site *s* fires is a hash of ``(seed, r, n, s)``.  Two runs of the
same protocol under the same plan therefore see byte-identical fault
schedules regardless of wall-clock, process layout or interleaving:
per-rule streams are independent, so adding a rule (or an unrelated
code path consulting a different site) never perturbs the draws of the
others.  This is what makes every chaos failure replayable from the
seed printed in the test report.

No ``random`` module anywhere: draws come from SHA-256, which keeps the
fault plane trivially deterministic and keeps zklint's DET-001 story
simple (``faults/`` is measurement-layer code; the proving path may not
import it at all).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.errors import ReproError

#: The fault kinds a rule may inject.
KINDS = ("loss", "delay", "revert", "drop", "stall", "corrupt")

#: Scale for hash-derived uniform draws (first 8 digest bytes).
_DRAW_SCALE = 1 << 64

#: Probabilities and delays are stored in parts-per-million / microseconds
#: so a plan is all-integer (exact equality, exact replay, no float drift).
PPM = 1_000_000


def draw(seed: int, rule_index: int, sequence: int, site: str) -> int:
    """Deterministic uniform draw in ``[0, PPM)`` for one consultation."""
    payload = b"zkdet-fault:%d:%d:%d:%s" % (seed, rule_index, sequence, site.encode())
    value = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
    return value * PPM // _DRAW_SCALE


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a site pattern plus a probability schedule.

    ``site`` is an ``fnmatch`` glob over site names (``"storage.*"``,
    ``"chain.transact"``).  ``probability_ppm`` is the per-consultation
    firing probability in parts per million; ``max_faults`` bounds how
    many times the rule may fire in one run (``None`` = unbounded), which
    is how chaos plans guarantee that retried protocols terminate.
    ``delay_us`` is the virtual latency (microseconds) a ``delay`` /
    ``stall`` fault adds to the injector's clock.
    """

    site: str
    kind: str
    probability_ppm: int
    max_faults: int | None = None
    delay_us: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError("unknown fault kind %r (expected one of %s)" % (self.kind, KINDS))
        if not 0 <= self.probability_ppm <= PPM:
            raise ReproError("probability_ppm must be in [0, %d]" % PPM)
        if self.max_faults is not None and self.max_faults < 0:
            raise ReproError("max_faults must be non-negative")
        if self.delay_us < 0:
            raise ReproError("delay_us must be non-negative")

    def matches(self, site: str) -> bool:
        return fnmatchcase(site, self.site)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault rules."""

    seed: int
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    name: str = "custom"

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(seed=seed, rules=self.rules, name=self.name)

    @staticmethod
    def profile(name: str, seed: int) -> "FaultPlan":
        """One of the named presets below, bound to ``seed``."""
        try:
            rules = PROFILES[name]
        except KeyError:
            raise ReproError(
                "unknown fault profile %r (available: %s)" % (name, ", ".join(sorted(PROFILES)))
            ) from None
        return FaultPlan(seed=seed, rules=rules, name=name)

    @staticmethod
    def from_env(spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value.

        Accepted forms: ``"<seed>"`` (the ``all`` profile) and
        ``"<profile>:<seed>"``, e.g. ``REPRO_FAULTS=storage:42``.
        """
        text = spec.strip()
        if ":" in text:
            profile_name, _, seed_text = text.partition(":")
        else:
            profile_name, seed_text = "all", text
        try:
            seed = int(seed_text, 0)
        except ValueError:
            raise ReproError("REPRO_FAULTS seed %r is not an integer" % seed_text) from None
        return FaultPlan.profile(profile_name.strip() or "all", seed)


def _pct(p: int) -> int:
    return p * PPM // 100


#: Named rule presets.  Budgets (``max_faults``) are deliberately finite
#: everywhere a retried path consults the rule, so a bounded
#: :class:`repro.faults.RetryPolicy` provably outlasts the plan and every
#: chaos run terminates.
PROFILES: dict[str, tuple[FaultRule, ...]] = {
    "off": (),
    "storage": (
        FaultRule("storage.get", "loss", _pct(25), max_faults=2),
        FaultRule("storage.get", "delay", _pct(30), max_faults=4, delay_us=40_000),
        FaultRule("storage.get.data", "corrupt", _pct(20), max_faults=1),
        FaultRule("storage.put", "loss", _pct(15), max_faults=1),
        FaultRule("dht.node.get", "loss", _pct(30), max_faults=3),
        FaultRule("dht.node.put", "loss", _pct(15), max_faults=2),
        FaultRule("dht.get", "delay", _pct(30), max_faults=4, delay_us=25_000),
    ),
    "chain": (
        FaultRule("chain.transact", "drop", _pct(20), max_faults=2),
        FaultRule("chain.transact", "revert", _pct(10), max_faults=1),
        FaultRule("chain.transact", "delay", _pct(30), max_faults=4, delay_us=120_000),
        FaultRule("chain.events", "stall", _pct(25), max_faults=2, delay_us=80_000),
    ),
    "exchange": (
        FaultRule("exchange.msg.*", "loss", _pct(20), max_faults=2),
        FaultRule("exchange.msg.*", "stall", _pct(10), max_faults=1, delay_us=200_000),
        FaultRule("chain.transact", "drop", _pct(15), max_faults=2),
    ),
    # Worker-process mortality for the parallel backend.  backend/ may
    # not import repro.faults (DET-001), so this profile is consulted by
    # the *test harness*: the chaos test draws "drop" decisions at the
    # backend.worker site and SIGKILLs pool workers itself, then asserts
    # the engine's shared-memory segments were unlinked on the crash
    # path and the failure surfaced as a BackendError, not a hang.
    "workers": (
        FaultRule("backend.worker", "drop", _pct(60), max_faults=2),
        FaultRule("backend.worker", "stall", _pct(20), max_faults=1, delay_us=50_000),
    ),
    "all": (
        FaultRule("storage.get", "loss", _pct(15), max_faults=1),
        FaultRule("storage.get.data", "corrupt", _pct(10), max_faults=1),
        FaultRule("dht.node.*", "loss", _pct(20), max_faults=2),
        FaultRule("chain.transact", "drop", _pct(15), max_faults=2),
        FaultRule("chain.transact", "revert", _pct(10), max_faults=1),
        FaultRule("chain.events", "stall", _pct(20), max_faults=2, delay_us=80_000),
        FaultRule("exchange.msg.*", "loss", _pct(15), max_faults=2),
        FaultRule("exchange.msg.*", "stall", _pct(10), max_faults=1, delay_us=150_000),
    ),
    # Population-scale soak: *unbounded* budgets at low per-consultation
    # rates.  The bounded-budget profiles above exhaust after a handful
    # of firings — useless over 10^5 operations — so the load simulator
    # needs rules that keep firing for the whole run.  Termination is the
    # simulator's job, not the plan's: clients bound their own retries
    # and the drain phase runs with faults uninstalled (docs/loadsim.md).
    "soak": (
        FaultRule("storage.get", "loss", _pct(2)),
        FaultRule("dht.node.*", "loss", _pct(3)),
        FaultRule("chain.transact", "drop", _pct(3)),
        FaultRule("chain.transact", "revert", _pct(1)),
        FaultRule("chain.events", "stall", _pct(2), delay_us=50_000),
        FaultRule("exchange.msg.*", "loss", _pct(2)),
    ),
}
