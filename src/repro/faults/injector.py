"""The runtime side of the fault plane: consultation, logging, clocks.

Instrumented sites in storage, chain and protocol code consult the
active :class:`FaultInjector` (via the module-level helpers in
:mod:`repro.faults`); the injector evaluates the plan's rules against
the site name and either returns quietly, advances the virtual clock
(``delay``/``stall``), mutates bytes in flight (``corrupt``) or raises
one of the typed transient errors from :mod:`repro.errors`.

Everything the injector does is recorded twice: in ``self.log`` (the
deterministic ground truth the replay tests compare bit-for-bit) and —
when telemetry is at least ``metrics`` — in the global registry under
``faults.injected.<kind>`` counters.

Time is *virtual*: injected latency and retry backoff advance
:class:`VirtualClock` rather than sleeping, so chaos suites explore
timeout behaviour (deadlines, stalls, backoff budgets) in microseconds
of real time while remaining bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro import telemetry
from repro.errors import (
    EventDelayError,
    MessageLossError,
    MessageStallError,
    ReproError,
    StorageTimeoutError,
    StorageUnavailableError,
    TxDroppedError,
    TxRevertedError,
)
from repro.faults.plan import PPM, FaultPlan, FaultRule, draw


class VirtualClock:
    """Monotonic simulated time in integer microseconds."""

    __slots__ = ("now_us",)

    def __init__(self) -> None:
        self.now_us = 0

    def advance(self, delta_us: int) -> None:
        if delta_us < 0:
            raise ReproError("the virtual clock cannot run backwards")
        self.now_us += delta_us


@dataclass(frozen=True)
class InjectedFault:
    """One log entry: the n-th fault of a run, with full provenance."""

    sequence: int
    site: str
    kind: str
    rule_index: int


def _loss_error(site: str) -> ReproError:
    if site.startswith(("storage", "dht")):
        return StorageUnavailableError("injected fault: %s unavailable" % site)
    if site.startswith("chain"):
        return TxDroppedError("injected fault: transaction dropped at %s" % site)
    return MessageLossError("injected fault: message lost at %s" % site)


def _stall_error(site: str) -> ReproError:
    if site.startswith(("storage", "dht")):
        return StorageTimeoutError("injected fault: %s stalled" % site)
    if site.startswith("chain"):
        return EventDelayError("injected fault: event delivery lagging at %s" % site)
    return MessageStallError("injected fault: counterparty stalled at %s" % site)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every consulted site."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.clock = VirtualClock()
        self.log: list[InjectedFault] = []
        self._consults: dict[int, int] = {}
        self._fired: dict[int, int] = {}

    # ----- bookkeeping ----------------------------------------------------

    @property
    def consultations(self) -> int:
        """Total per-rule consultations so far (the overhead-bench count)."""
        return sum(self._consults.values())

    @property
    def injected(self) -> int:
        return len(self.log)

    def _record(self, site: str, rule: FaultRule, rule_index: int) -> None:
        self.log.append(InjectedFault(len(self.log), site, rule.kind, rule_index))
        if telemetry.metrics_enabled():
            telemetry.counter("faults.injected.%s" % rule.kind, site=site).inc()

    def _firing(self, site: str) -> Iterator[FaultRule]:
        """Yield every rule that fires for this consultation of ``site``."""
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(site):
                continue
            sequence = self._consults.get(index, 0)
            self._consults[index] = sequence + 1
            if rule.max_faults is not None and self._fired.get(index, 0) >= rule.max_faults:
                continue
            if rule.probability_ppm == 0:
                continue
            if draw(self.plan.seed, index, sequence, site) < rule.probability_ppm:
                self._fired[index] = self._fired.get(index, 0) + 1
                self._record(site, rule, index)
                yield rule

    # ----- consultation API ----------------------------------------------

    def check(self, site: str) -> None:
        """Raise a typed transient error (or advance the clock) if a
        matching rule fires; quiet otherwise."""
        for rule in self._firing(site):
            if rule.kind in ("delay",):
                self.clock.advance(rule.delay_us)
            elif rule.kind == "stall":
                self.clock.advance(rule.delay_us)
                raise _stall_error(site)
            elif rule.kind == "loss":
                raise _loss_error(site)
            elif rule.kind == "drop":
                raise TxDroppedError("injected fault: transaction dropped at %s" % site)
            elif rule.kind == "revert":
                raise TxRevertedError("injected fault: transaction reverted at %s" % site)
            # "corrupt" rules only act through filter_bytes().

    def unavailable(self, site: str) -> bool:
        """Boolean consultation for graceful-skip sites (DHT replicas):
        ``loss`` means "this node is unreachable, try the next" rather
        than an exception."""
        lost = False
        for rule in self._firing(site):
            if rule.kind in ("delay", "stall"):
                self.clock.advance(rule.delay_us)
            elif rule.kind == "loss":
                lost = True
        return lost

    def filter_bytes(self, site: str, data: bytes) -> bytes:
        """Pass ``data`` through any matching ``corrupt`` rules.

        Corruption is deterministic (first byte XOR 0xFF) so a replayed
        run corrupts identically.
        """
        for rule in self._firing(site):
            if rule.kind == "corrupt" and data:
                data = bytes([data[0] ^ 0xFF]) + data[1:]
        return data

    def __repr__(self) -> str:
        return "FaultInjector(plan=%s, seed=%d, injected=%d)" % (
            self.plan.name,
            self.plan.seed,
            len(self.log),
        )


__all__ = ["FaultInjector", "InjectedFault", "VirtualClock", "PPM"]
