"""Deterministic fault injection for the exchange stack.

The paper's fairness argument (Section IV) assumes storage, chain and
arbiter all behave; this package is how the reproduction checks what
happens when they don't.  A seeded :class:`FaultPlan` schedules typed
failures — storage chunk loss and slow reads, transaction drops and
reverts, event-log lag, off-chain message loss and stalls — at named
*sites* instrumented throughout ``storage/``, ``chain/`` and ``core/``;
a :class:`RetryPolicy` plus explicit abort/refund paths in the protocol
drivers provide the recovery machinery, and the chaos suite
(``tests/test_faults.py``) asserts every schedule still terminates in a
safe state.

Off by default and designed to stay invisible: with no plan installed
every instrumented site is a single module-global ``None`` check
(budgeted at <2% of protocol wall-clock by
``benchmarks/bench_fault_overhead.py``).  Enable with::

    REPRO_FAULTS=storage:42         # <profile>:<seed>
    REPRO_FAULTS=42                 # seed only, 'all' profile

or programmatically::

    from repro import faults
    with faults.use_plan(faults.FaultPlan.profile("chain", seed=7)) as injector:
        result = marketplace.sell(...)
    injector.log                    # every injected fault, in order

Same seed, same plan => bit-identical fault schedule, which is what
makes every chaos failure replayable from the seed in the test report.
See ``docs/fault_injection.md`` for the taxonomy and replay recipe.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional

from repro.faults.injector import FaultInjector, InjectedFault, VirtualClock
from repro.faults.plan import KINDS, PPM, PROFILES, FaultPlan, FaultRule, draw
from repro.faults.retry import ABORT_POLICY, DEFAULT_POLICY, RetryPolicy

#: The process-wide active injector.  ``None`` (the default) is the
#: fast path: every helper below starts with one global load + compare.
_active: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The installed :class:`FaultInjector`, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def set_plan(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install (or, with ``None``, remove) the active fault plan.

    Returns the previous injector so callers can restore it.
    """
    global _active
    previous = _active
    _active = None if plan is None else FaultInjector(plan)
    return previous


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install a pre-built injector (or ``None``), returning the previous.

    :func:`set_plan` always constructs a *fresh* injector, which is right
    for tests but wrong for two callers: restoring an ambient injector
    you displaced (its budgets and log must survive), and fault-epoch
    rotation in the load simulator, where each epoch installs an
    injector built from a derived seed and the original must come back
    intact afterwards.
    """
    global _active
    previous = _active
    _active = injector
    return previous


@contextmanager
def use_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultInjector]]:
    """Scoped fault plane: installs ``plan``, yields its injector, and
    restores the previous state on exit."""
    global _active
    previous = set_plan(plan)
    try:
        yield _active
    finally:
        _active = previous


# ----- site helpers (the functions instrumented code calls) ---------------


def check(site: str) -> None:
    """Consult the fault plane at ``site``; no-op when disabled."""
    injector = _active
    if injector is not None:
        injector.check(site)


def unavailable(site: str) -> bool:
    """Boolean consultation for graceful-skip sites (DHT replicas)."""
    injector = _active
    return injector is not None and injector.unavailable(site)


def filter_bytes(site: str, data: bytes) -> bytes:
    """Route bytes through any matching ``corrupt`` rules."""
    injector = _active
    if injector is not None:
        return injector.filter_bytes(site, data)
    return data


def clock() -> Optional[VirtualClock]:
    """The active injector's virtual clock, if any."""
    injector = _active
    return None if injector is None else injector.clock


# ----- environment wiring -------------------------------------------------


def configure_from_env(environ: "Mapping[str, str] | None" = None) -> None:
    """Install a plan from ``REPRO_FAULTS`` (``<profile>:<seed>`` or a
    bare seed); with the variable unset or empty, nothing changes."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_FAULTS", "").strip()
    if raw:
        set_plan(FaultPlan.from_env(raw))


configure_from_env()

__all__ = [
    "ABORT_POLICY",
    "DEFAULT_POLICY",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KINDS",
    "PPM",
    "PROFILES",
    "RetryPolicy",
    "VirtualClock",
    "active",
    "check",
    "clock",
    "configure_from_env",
    "draw",
    "enabled",
    "filter_bytes",
    "install",
    "set_plan",
    "unavailable",
    "use_plan",
]
