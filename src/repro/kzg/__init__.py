"""KZG polynomial commitments over BN254 with a universal updatable SRS.

The SRS module simulates the *Perpetual Powers of Tau* ceremony the paper
relies on: a sequence of participants each re-randomise the running string
and publish an update proof, so the final parameters are secure as long as
one participant was honest.
"""

from repro.kzg.srs import SRS, Ceremony
from repro.kzg.commit import (
    batch_verify_openings,
    commit,
    fold_opening_claims,
    open_at,
    verify_opening,
)

__all__ = [
    "SRS",
    "Ceremony",
    "batch_verify_openings",
    "commit",
    "fold_opening_claims",
    "open_at",
    "verify_opening",
]
