"""KZG commit / open / verify over the powers-of-tau SRS.

A commitment to p(X) is [p(tau)]_1; an opening proof at z is the quotient
commitment [ (p(X) - p(z)) / (X - z) ]_1, verified with one pairing check:

    e(W, [tau - z]_2) == e([p(tau)]_1 - [p(z)]_1, [1]_2)

All group kernels run through the compute backend: the engine keeps a
one-time Jacobian view of the SRS powers, so repeated commitments under
the same SRS skip the per-call affine-to-Jacobian conversion, and its
``prepared_g2`` cache amortises the G2-side Miller-loop work for the two
fixed verification points ``[1]_2`` and ``[tau]_2`` across every opening
check.

:func:`batch_verify_openings` folds k opening claims into a *single*
two-pairing check with random weights (small-exponent batching), the same
trick :mod:`repro.plonk.batch` uses one level up.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import SRSError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.field import poly
from repro.field.fr import MODULUS as R, random_scalar
from repro.kzg.srs import SRS


def commit(srs: SRS, coeffs: list[int], engine=None) -> G1:
    """Commit to the polynomial with coefficients ``coeffs``."""
    engine = engine or get_engine()
    coeffs = poly.trim(coeffs)
    if len(coeffs) - 1 > srs.max_degree:
        raise SRSError(
            "polynomial degree %d exceeds SRS bound %d" % (len(coeffs) - 1, srs.max_degree)
        )
    if telemetry.metrics_enabled():
        telemetry.counter("kzg.commit.calls").inc()
        telemetry.histogram("kzg.commit.degree").observe(max(len(coeffs) - 1, 0))
    # msm_srs resolves the points inside the engine (cached Jacobian view
    # plus, on shm backends, a pinned packed segment) — no per-call copy
    # of the SRS prefix and no point pickling on the parallel path.
    return G1.from_jacobian(engine.msm_srs(srs, coeffs))


def open_at(srs: SRS, coeffs: list[int], z: int, engine=None) -> tuple[int, G1]:
    """Return ``(p(z), proof)`` for the polynomial ``coeffs`` at point ``z``."""
    z %= R
    value = poly.evaluate(coeffs, z)
    numerator = poly.sub(coeffs, [value])
    quotient = poly.divide_by_linear(numerator, z)
    return value, commit(srs, quotient, engine=engine)


def verify_opening(
    srs: SRS, commitment: G1, z: int, value: int, proof: G1, engine=None
) -> bool:
    """Verify that the committed polynomial evaluates to ``value`` at ``z``.

    Rearranged to a two-pairing product check:
    e(W, [tau]_2) * e(-z*W + [value]_1 - C, [1]_2) == 1.
    """
    engine = engine or get_engine()
    z %= R
    value %= R
    shifted = proof * (-z % R) + G1.generator() * value - commitment
    return engine.pairing_check([(proof, srs.g2_tau), (shifted, srs.g2)])


def fold_opening_claims(
    openings: list[tuple[G1, int, int, G1]], engine=None
) -> tuple[G1, G1]:
    """Random-linear-combine opening claims into one pairing equation.

    Each claim ``(commitment, z, value, proof)`` asserts
    e(W_i, [tau]_2) == e(z_i*W_i - [v_i]_1 + C_i, [1]_2).  With fresh
    random weights rho_i, the claims hold simultaneously (up to
    soundness error ~k/r) iff

        e(sum rho_i W_i, [tau]_2) == e(sum rho_i (z_i*W_i - [v_i]_1 + C_i), [1]_2).

    Returns ``(L, R)`` with L = sum rho_i W_i and R the right-hand
    combination, computed as two MSMs (the [v_i]_1 terms collapse onto a
    single generator scalar).
    """
    engine = engine or get_engine()
    # A zero weight would silently drop that opening from the batch.
    rhos = [random_scalar(nonzero=True) for _ in openings]
    lhs = engine.msm_g1([proof for (_, _, _, proof) in openings], rhos)
    points: list[G1] = []
    scalars: list[int] = []
    gen_scalar = 0
    for rho, (commitment, z, value, proof) in zip(rhos, openings):
        points.append(proof)
        scalars.append(rho * (z % R) % R)
        points.append(commitment)
        scalars.append(rho)
        gen_scalar = (gen_scalar + rho * (value % R)) % R
    points.append(G1.generator())
    scalars.append(-gen_scalar % R)
    rhs = engine.msm_g1(points, scalars)
    return lhs, rhs


def batch_verify_openings(
    srs: SRS, openings: list[tuple[G1, int, int, G1]], engine=None
) -> bool:
    """Verify many ``(commitment, z, value, proof)`` claims at once.

    Folds all k claims with :func:`fold_opening_claims` and settles them
    with a single two-pairing check — O(k) group work instead of k
    pairing checks.  An empty batch is vacuously valid.
    """
    if not openings:
        return True
    engine = engine or get_engine()
    if telemetry.metrics_enabled():
        telemetry.counter("kzg.batch_verify.calls").inc()
        telemetry.histogram("kzg.batch_verify.openings").observe(len(openings))
    lhs, rhs = fold_opening_claims(openings, engine=engine)
    return engine.pairing_check([(lhs, srs.g2_tau), (-rhs, srs.g2)])
