"""KZG commit / open / verify over the powers-of-tau SRS.

A commitment to p(X) is [p(tau)]_1; an opening proof at z is the quotient
commitment [ (p(X) - p(z)) / (X - z) ]_1, verified with one pairing check:

    e(W, [tau - z]_2) == e([p(tau)]_1 - [p(z)]_1, [1]_2)

All group kernels run through the compute backend: the engine keeps a
one-time Jacobian view of the SRS powers, so repeated commitments under
the same SRS skip the per-call affine-to-Jacobian conversion.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import SRSError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.curve.pairing import pairing_check
from repro.field import poly
from repro.field.fr import MODULUS as R
from repro.kzg.srs import SRS


def commit(srs: SRS, coeffs: list[int], engine=None) -> G1:
    """Commit to the polynomial with coefficients ``coeffs``."""
    engine = engine or get_engine()
    coeffs = poly.trim(coeffs)
    if len(coeffs) - 1 > srs.max_degree:
        raise SRSError(
            "polynomial degree %d exceeds SRS bound %d" % (len(coeffs) - 1, srs.max_degree)
        )
    if telemetry.metrics_enabled():
        telemetry.counter("kzg.commit.calls").inc()
        telemetry.histogram("kzg.commit.degree").observe(max(len(coeffs) - 1, 0))
    points = engine.srs_g1_jacobian(srs)
    return G1.from_jacobian(engine.msm_jac(list(points[: len(coeffs)]), coeffs))


def open_at(srs: SRS, coeffs: list[int], z: int, engine=None) -> tuple[int, G1]:
    """Return ``(p(z), proof)`` for the polynomial ``coeffs`` at point ``z``."""
    z %= R
    value = poly.evaluate(coeffs, z)
    numerator = poly.sub(coeffs, [value])
    quotient = poly.divide_by_linear(numerator, z)
    return value, commit(srs, quotient, engine=engine)


def verify_opening(srs: SRS, commitment: G1, z: int, value: int, proof: G1) -> bool:
    """Verify that the committed polynomial evaluates to ``value`` at ``z``.

    Rearranged to a two-pairing product check:
    e(W, [tau]_2) * e(-z*W + [value]_1 - C, [1]_2) == 1.
    """
    z %= R
    value %= R
    shifted = proof * (-z % R) + G1.generator() * value - commitment
    return pairing_check([(proof, srs.g2_tau), (shifted, srs.g2)])
