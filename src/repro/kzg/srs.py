"""Universal structured reference string (powers of tau).

ZKDET uses Plonk precisely because its SRS is *universal* (one string for
every circuit up to a size bound) and *updatable* (anyone can re-randomise
it; security holds if a single contributor was honest).  The paper uses the
Perpetual Powers of Tau ceremony run by Zcash/Semaphore; offline, we
reproduce the ceremony itself: :class:`Ceremony` chains contributions, each
with a publicly checkable update proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SRSError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R, random_scalar


@dataclass(frozen=True)
class SRS:
    """Powers of tau: [tau^i]_1 for i <= max_degree, plus [1]_2 and [tau]_2.

    Attributes:
        g1_powers: ``[G, tau*G, tau^2*G, ...]`` (length ``max_degree + 1``).
        g2: the G2 generator ``[1]_2``.
        g2_tau: ``[tau]_2`` — the only G2 power KZG verification needs.
    """

    g1_powers: tuple
    g2: G2
    g2_tau: G2

    @property
    def max_degree(self) -> int:
        """Largest polynomial degree this SRS can commit to."""
        return len(self.g1_powers) - 1

    @staticmethod
    def generate(max_degree: int, tau: int | None = None, engine=None) -> "SRS":
        """Generate a fresh SRS from a (then discarded) secret ``tau``.

        A single-party trusted setup; :class:`Ceremony` builds the
        multi-party version on top of repeated calls to :meth:`update`.
        The engine's fixed-base window table for the G1 generator plus a
        single batched affine conversion replace the per-power
        double-and-add + inversion of the naive construction.
        """
        if max_degree < 1:
            raise SRSError("SRS degree must be at least 1")
        engine = engine or get_engine()
        secret = random_scalar(nonzero=True) if tau is None else tau % R
        if secret == 0:
            raise SRSError("tau must be non-zero")
        gen = G1.generator()
        scalars = []
        acc = 1
        for _ in range(max_degree + 1):
            scalars.append(acc)
            acc = acc * secret % R
        jacs = [engine.fixed_base_mul_jac(gen, s) for s in scalars]
        powers = G1.batch_from_jacobian(jacs)
        return SRS(tuple(powers), G2.generator(), engine.fixed_base_mul(G2.generator(), secret))

    def update(self, rho: int | None = None) -> tuple["SRS", "UpdateProof"]:
        """Re-randomise the SRS with a fresh secret ``rho`` (tau' = rho*tau).

        Returns the updated SRS and a proof that the update was well-formed
        (knowledge of rho relative to the previous string).
        """
        secret = random_scalar(nonzero=True) if rho is None else rho % R
        if secret == 0:
            raise SRSError("update secret must be non-zero")
        acc = 1
        powers = []
        for p in self.g1_powers:
            powers.append(p * acc)
            acc = acc * secret % R
        new = SRS(tuple(powers), self.g2, self.g2_tau * secret)
        proof = UpdateProof(
            rho_g1=G1.generator() * secret,
            rho_g2=G2.generator() * secret,
            after_tau_g1=new.g1_powers[1],
        )
        return new, proof

    def truncate(self, max_degree: int) -> "SRS":
        """Return a prefix of this SRS supporting a smaller degree bound."""
        if max_degree > self.max_degree:
            raise SRSError(
                "cannot truncate degree %d SRS to %d" % (self.max_degree, max_degree)
            )
        return SRS(self.g1_powers[: max_degree + 1], self.g2, self.g2_tau)

    def is_well_formed(self, check_powers: int = 4, engine=None) -> bool:
        """Spot-check internal consistency with pairings.

        Verifies e([tau^i]_1, [tau]_2) == e([tau^(i+1)]_1, [1]_2) for the
        first ``check_powers`` indices (full verification is linear in the
        SRS size and is exercised in tests on small strings).  Each
        equality runs as a two-pair product check, so [tau]_2 and [1]_2
        hit the engine's prepared-G2 cache across iterations.
        """
        engine = engine or get_engine()
        for i in range(min(check_powers, self.max_degree)):
            ok = engine.pairing_check(
                [
                    (self.g1_powers[i], self.g2_tau),
                    (-self.g1_powers[i + 1], self.g2),
                ]
            )
            if not ok:
                return False
        return True


@dataclass(frozen=True)
class UpdateProof:
    """Publicly verifiable evidence that an SRS update used a known rho."""

    rho_g1: G1
    rho_g2: G2
    after_tau_g1: G1


@dataclass
class Ceremony:
    """A simulated Perpetual-Powers-of-Tau ceremony.

    Each contribution multiplies the trapdoor by a fresh secret.  The final
    SRS is secure if at least one contributor discarded their secret —
    exactly the trust model the paper inherits from Zcash/Semaphore.
    """

    srs: SRS
    transcript: list[UpdateProof] = field(default_factory=list)

    @staticmethod
    def bootstrap(max_degree: int) -> "Ceremony":
        """Start a ceremony from the canonical tau = 1 string (no secret)."""
        return Ceremony(SRS.generate(max_degree, tau=1))

    def contribute(self, rho: int | None = None) -> UpdateProof:
        """Apply one participant's contribution and record its proof."""
        self.srs, proof = self.srs.update(rho)
        self.transcript.append(proof)
        return proof

    def verify_transcript(self, engine=None) -> bool:
        """Verify every recorded update proof against the chain of strings.

        Checks (i) each update's rho is consistent across G1/G2, batched:
        random weights w_i fold all k consistency equations into the
        single check e(sum w_i rho_g1_i, [1]_2) == e([1]_1, sum w_i
        rho_g2_i) — one G1 MSM, one G2 MSM and two pairings instead of 2k
        pairings (standard small-exponent batching); and (ii) the chain
        links: the post-update [tau]_1 matches the pre-update [tau]_1
        scaled by rho (verified in the exponent via pairings).
        """
        engine = engine or get_engine()
        if self.transcript:
            # Zero weights would drop an equation from the batch, so
            # sample from F_r^*.
            weights = [random_scalar(nonzero=True) for _ in self.transcript]
            folded_g1 = engine.msm_g1([p.rho_g1 for p in self.transcript], weights)
            folded_g2 = engine.msm_g2([p.rho_g2 for p in self.transcript], weights)
            if not engine.pairing_check(
                [
                    (folded_g1, G2.generator()),
                    (-G1.generator(), folded_g2),
                ]
            ):
                return False
        prev_tau_g1 = G1.generator()  # bootstrap tau = 1
        for proof in self.transcript:
            # Chain link: e(tau'_1, [1]_2) == e(tau_1, rho_2).
            if not engine.pairing_check(
                [
                    (proof.after_tau_g1, G2.generator()),
                    (-prev_tau_g1, proof.rho_g2),
                ]
            ):
                return False
            prev_tau_g1 = proof.after_tau_g1
        # Finally the claimed SRS must carry the chained tau.
        return self.srs.g1_powers[1] == prev_tau_g1
