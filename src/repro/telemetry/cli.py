"""The telemetry CLI: ``python -m repro.telemetry {report,diff,flame}``.

Reads the two machine formats the stack emits — run-ledger JSONL files
(:mod:`repro.telemetry.ledger`) and ``BENCH_<slug>.json`` tables
(``benchmarks/conftest.py``) — and turns them into the three things a
developer or a CI job actually wants:

- ``report``  — hot-kernel table (count, total, mean, p50/p95/p99 from
  the fixed-bucket histograms), worker phase attribution, cache hit
  rates and fault summary for one file;
- ``diff``    — two files side by side, flagging changes beyond a
  tolerance; ``--check`` turns regressions into exit code 1, which is
  the whole CI perf gate;
- ``flame``   — collapsed-stack export of the ledger's span trees
  (``a;b;c <self-µs>`` lines), the input format of every flamegraph
  renderer (flamegraph.pl, speedscope, inferno).

All pure stdlib, no third-party dependencies, same as the rest of the
telemetry layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, TextIO, Tuple

from repro.telemetry import ledger as _ledger
from repro.telemetry.metrics import quantile_from_bucket_dict

#: Default relative-change tolerance for ``diff`` (10%).
DEFAULT_TOLERANCE = 0.10


# ----- input loading -------------------------------------------------------


def load_file(path: str) -> Tuple[str, Any]:
    """Sniff and load ``path``; returns ``("ledger", records)`` or
    ``("bench", payload)``."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        raise SystemExit("%s: empty file" % path)
    # A ledger is one complete JSON object per line; a BENCH table is one
    # pretty-printed object spanning the whole file.
    try:
        first = json.loads(stripped.splitlines()[0])
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and first.get("schema") == _ledger.SCHEMA:
        return "ledger", _ledger.read(path)
    payload = json.loads(stripped)
    if isinstance(payload, dict) and "rows" in payload:
        return "bench", payload
    raise SystemExit(
        "%s: neither a %s ledger nor a BENCH_*.json table" % (path, _ledger.SCHEMA)
    )


# ----- shared aggregation --------------------------------------------------


def merge_histograms(records: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Sum per-record histogram deltas across a ledger, keyed by metric."""
    merged: Dict[str, Dict[str, Any]] = {}
    for record in records:
        for name, hist in record.get("metrics", {}).get("histograms", {}).items():
            agg = merged.get(name)
            if agg is None:
                merged[name] = {
                    "count": int(hist["count"]),
                    "sum": float(hist["sum"]),
                    "buckets": dict(hist["buckets"]),
                }
                continue
            agg["count"] += int(hist["count"])
            agg["sum"] += float(hist["sum"])
            for bucket, n in hist["buckets"].items():
                agg["buckets"][bucket] = agg["buckets"].get(bucket, 0) + int(n)
    for agg in merged.values():
        agg["mean"] = agg["sum"] / agg["count"] if agg["count"] else 0.0
        for q, label in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            agg[label] = quantile_from_bucket_dict(agg["buckets"], q)
    return merged


def merge_counters(records: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for record in records:
        for name, value in record.get("metrics", {}).get("counters", {}).items():
            merged[name] = merged.get(name, 0) + int(value)
    return merged


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]], out: TextIO) -> None:
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("-" * len(line) + "\n")
    for row in rows:
        out.write("  ".join(str(c).ljust(w) for c, w in zip(row, widths)) + "\n")


# ----- report --------------------------------------------------------------


def _seconds(value: float) -> str:
    return "%.4f" % value


def report_ledger(records: List[Dict[str, Any]], out: TextIO) -> None:
    out.write(
        "ledger: %d record(s), schema %s v%s\n"
        % (
            len(records),
            _ledger.SCHEMA,
            records[0]["schema_version"] if records else _ledger.SCHEMA_VERSION,
        )
    )
    names: Dict[str, int] = {}
    for record in records:
        names[record.get("name", "?")] = names.get(record.get("name", "?"), 0) + 1
    out.write(
        "runs: %s\n" % ", ".join("%s x%d" % (n, c) for n, c in sorted(names.items()))
    )
    histograms = merge_histograms(records)
    latency = {
        name: h for name, h in histograms.items() if name.split("{")[0].endswith(".seconds")
    }
    if latency:
        out.write("\nhot kernels (by total seconds):\n")
        rows = [
            (
                name,
                str(h["count"]),
                _seconds(h["sum"]),
                _seconds(h["mean"]),
                _seconds(h["p50"]),
                _seconds(h["p95"]),
                _seconds(h["p99"]),
            )
            for name, h in sorted(
                latency.items(), key=lambda kv: kv[1]["sum"], reverse=True
            )
        ]
        _table(
            ["metric", "count", "total s", "mean s", "p50 s", "p95 s", "p99 s"],
            rows,
            out,
        )
    counters = merge_counters(records)
    rates = _ledger.cache_hit_rates(counters)
    if rates:
        out.write("\ncache hit rates:\n")
        _table(
            ["cache", "hit rate"],
            [(cache, "%.1f%%" % (rate * 100)) for cache, rate in sorted(rates.items())],
            out,
        )
    worker = {n: v for n, v in counters.items() if n.startswith("worker.")}
    if worker:
        out.write("\nworker counters:\n")
        _table(["counter", "value"], sorted((n, str(v)) for n, v in worker.items()), out)
    faults = [fault for record in records for fault in record.get("faults", [])]
    if faults:
        out.write("\ninjected faults: %d\n" % len(faults))
        by_site: Dict[str, int] = {}
        for fault in faults:
            by_site["%s/%s" % (fault["site"], fault["kind"])] = (
                by_site.get("%s/%s" % (fault["site"], fault["kind"]), 0) + 1
            )
        _table(["site/kind", "count"], sorted((s, str(c)) for s, c in by_site.items()), out)


def report_bench(payload: Mapping[str, Any], out: TextIO) -> None:
    out.write(
        "bench: %s (git %s, backend %s)\n\n"
        % (
            payload.get("title", "?"),
            str(payload.get("git_revision", "?"))[:12],
            payload.get("backend", "?"),
        )
    )
    _table(payload["headers"], payload["rows"], out)
    snapshot = payload.get("telemetry")
    if isinstance(snapshot, dict):
        histograms = snapshot.get("histograms", {})
        latency = {
            name: h
            for name, h in histograms.items()
            if name.split("{")[0].endswith(".seconds")
        }
        if latency:
            out.write("\nhot kernels (registry snapshot):\n")
            rows = [
                (
                    name,
                    str(h["count"]),
                    _seconds(float(h["sum"])),
                    _seconds(float(h.get("mean", 0.0))),
                    _seconds(float(h.get("p50", 0.0))),
                    _seconds(float(h.get("p95", 0.0))),
                    _seconds(float(h.get("p99", 0.0))),
                )
                for name, h in sorted(
                    latency.items(), key=lambda kv: float(kv[1]["sum"]), reverse=True
                )
            ]
            _table(
                ["metric", "count", "total s", "mean s", "p50 s", "p95 s", "p99 s"],
                rows,
                out,
            )


# ----- diff ----------------------------------------------------------------


#: A comparable scalar pulled out of a file: (metric name, value,
#: direction).  Direction is "lower" (regression = increase), "higher"
#: (regression = decrease) or "info" (never gates).
Metric = Tuple[str, float, str]


def _parse_cell(cell: Any) -> Optional[Tuple[float, bool]]:
    """``(value, is_speedup)`` for numeric-looking table cells."""
    text = str(cell).strip()
    speedup = text.endswith("x")
    if speedup:
        text = text[:-1]
    try:
        return float(text), speedup
    except ValueError:
        return None


def bench_metrics(payload: Mapping[str, Any]) -> List[Metric]:
    """Numeric cells of a BENCH table as named, direction-tagged metrics.

    Speedup cells (``1.73x``) gate as higher-is-better: they are
    intra-run ratios, so a committed baseline from one machine is
    comparable with a CI runner's measurement.  Raw seconds cells are
    reported but never gate — absolute wall-clock does not transfer
    across machines, and a real substrate regression moves the ratio
    anyway.  Rows mentioning "floor" or "required" are policy lines, not
    data, and are skipped entirely.
    """
    headers = [str(h) for h in payload.get("headers", [])]
    metrics: List[Metric] = []
    for row in payload.get("rows", []):
        label = str(row[0]) if row else ""
        if "floor" in label.lower() or "required" in label.lower():
            continue
        for header, cell in zip(headers[1:], list(row)[1:]):
            parsed = _parse_cell(cell)
            if parsed is None:
                continue
            value, speedup = parsed
            direction = "higher" if speedup else "info"
            metrics.append(("%s / %s" % (label, header.strip()), value, direction))
    return metrics


def ledger_metrics(records: List[Dict[str, Any]]) -> List[Metric]:
    """Gateable metrics of a ledger: latency means plus bench-table cells."""
    metrics: List[Metric] = []
    for name, hist in sorted(merge_histograms(records).items()):
        if name.split("{")[0].endswith(".seconds"):
            metrics.append(("%s mean" % name, float(hist["mean"]), "lower"))
        else:
            metrics.append(("%s mean" % name, float(hist["mean"]), "info"))
    for name, value in sorted(merge_counters(records).items()):
        metrics.append((name, float(value), "info"))
    for record in records:
        attrs = record.get("attrs", {})
        if "rows" in attrs and "headers" in attrs:
            for name, value, direction in bench_metrics(attrs):
                metrics.append(
                    ("%s / %s" % (record.get("name", "?"), name), value, direction)
                )
    return metrics


def extract_metrics(kind: str, data: Any) -> List[Metric]:
    return bench_metrics(data) if kind == "bench" else ledger_metrics(data)


def diff_metrics(
    a: Sequence[Metric], b: Sequence[Metric], tolerance: float
) -> Tuple[List[Tuple[str, str, str, str, str]], List[str]]:
    """Rows for the diff table plus the list of regressed metric names."""
    b_by_name = {name: (value, direction) for name, value, direction in b}
    rows: List[Tuple[str, str, str, str, str]] = []
    regressions: List[str] = []
    for name, old, direction in a:
        entry = b_by_name.pop(name, None)
        if entry is None:
            rows.append((name, "%.6g" % old, "-", "removed", ""))
            continue
        new = entry[0]
        if old == 0:
            change = 0.0 if new == 0 else float("inf")
        else:
            change = (new - old) / abs(old)
        flag = ""
        if direction == "lower" and change > tolerance:
            flag = "REGRESSION"
        elif direction == "higher" and change < -tolerance:
            flag = "REGRESSION"
        elif direction != "info" and abs(change) > tolerance:
            flag = "improved"
        if flag == "REGRESSION":
            regressions.append(name)
        rows.append((name, "%.6g" % old, "%.6g" % new, "%+.1f%%" % (change * 100), flag))
    for name, (value, _) in sorted(b_by_name.items()):
        rows.append((name, "-", "%.6g" % value, "added", ""))
    return rows, regressions


# ----- flame ---------------------------------------------------------------


def collapsed_stacks(records: Sequence[Mapping[str, Any]]) -> Iterator[str]:
    """Yield ``a;b;c <self-µs>`` lines from every span tree in a ledger.

    Self time is a span's duration minus its children's — the flamegraph
    convention, so stack widths sum correctly when renderers re-add the
    hierarchy.  Spans from all records fold into one graph (identical
    stacks accumulate downstream; renderers sum duplicate lines).
    """
    for record in records:
        spans = record.get("spans", [])
        by_id = {span["id"]: span for span in spans}
        child_time: Dict[int, float] = {}
        for span in spans:
            if span.get("parent") is not None:
                child_time[span["parent"]] = (
                    child_time.get(span["parent"], 0.0) + float(span["duration"])
                )
        for span in spans:
            stack: List[str] = []
            node: Optional[Mapping[str, Any]] = span
            while node is not None:
                stack.append(str(node["name"]).replace(";", ","))
                parent = node.get("parent")
                node = by_id.get(parent) if parent is not None else None
            self_us = (float(span["duration"]) - child_time.get(span["id"], 0.0)) * 1e6
            if self_us >= 1.0:
                yield "%s %d" % (";".join(reversed(stack)), int(self_us))


# ----- entry points --------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    kind, data = load_file(args.file)
    if kind == "ledger":
        report_ledger(data, sys.stdout)
    else:
        report_bench(data, sys.stdout)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    kind_a, data_a = load_file(args.old)
    kind_b, data_b = load_file(args.new)
    if kind_a != kind_b:
        raise SystemExit(
            "cannot diff a %s file against a %s file" % (kind_a, kind_b)
        )
    rows, regressions = diff_metrics(
        extract_metrics(kind_a, data_a),
        extract_metrics(kind_b, data_b),
        args.tolerance,
    )
    sys.stdout.write(
        "diff (%s) tolerance ±%.0f%%: %s -> %s\n\n"
        % (kind_a, args.tolerance * 100, args.old, args.new)
    )
    _table(["metric", "old", "new", "change", ""], rows, sys.stdout)
    if regressions:
        sys.stdout.write(
            "\n%d regression(s) beyond tolerance:\n" % len(regressions)
        )
        for name in regressions:
            sys.stdout.write("  %s\n" % name)
        return 1 if args.check else 0
    sys.stdout.write("\nno regressions beyond tolerance\n")
    return 0


def cmd_flame(args: argparse.Namespace) -> int:
    kind, data = load_file(args.file)
    if kind != "ledger":
        raise SystemExit("flame needs a ledger file (BENCH tables have no spans)")
    lines = list(collapsed_stacks(data))
    out: TextIO
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        sys.stdout.write("wrote %d stack(s) to %s\n" % (len(lines), args.out))
    else:
        for line in lines:
            sys.stdout.write(line + "\n")
    if not lines:
        sys.stdout.write(
            "no spans in ledger (record runs with REPRO_TELEMETRY=trace or profile)\n"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Read, diff and export repro telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="hot-kernel table, cache hit rates, quantiles"
    )
    p_report.add_argument("file", help="ledger .jsonl or BENCH_*.json")
    p_report.set_defaults(func=cmd_report)

    p_diff = sub.add_parser("diff", help="compare two ledgers or two BENCH files")
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_diff.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative change treated as noise (default %.2f)" % DEFAULT_TOLERANCE,
    )
    p_diff.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any regression exceeds the tolerance (CI gate)",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_flame = sub.add_parser(
        "flame", help="collapsed-stack flamegraph export of ledger span trees"
    )
    p_flame.add_argument("file", help="ledger .jsonl")
    p_flame.add_argument("--out", default=None, help="write stacks to a file")
    p_flame.set_defaults(func=cmd_flame)
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    result = args.func(args)
    return int(result)
