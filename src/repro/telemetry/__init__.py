"""Structured observability for the whole stack — spans, metrics, exporters.

Zero-dependency and **off by default**: the ``REPRO_TELEMETRY``
environment variable selects one of four levels,

- ``off``     — every instrumentation point is a module-level no-op
  fast path (a single integer comparison; budgeted at <2% of proof
  wall-clock, see ``benchmarks/bench_telemetry_overhead.py``);
- ``metrics`` — counters and histograms record kernel calls, sizes,
  durations and cache hit/miss outcomes, but no spans are created;
- ``trace``   — metrics plus nested wall-clock spans (prover rounds,
  Groth16 phases, exchange protocol steps) exported to stderr and/or a
  JSON-lines file;
- ``profile`` — trace plus cross-process worker attribution: the
  parallel backend ships a trace context with every pool task, workers
  time their queue-wait/shm-attach/compute phases, and the parent
  merges the piggybacked stats back as ``worker.*`` metrics and child
  spans of the dispatching kernel span (see
  :mod:`repro.telemetry.workers`).

Typical use::

    from repro import telemetry

    with telemetry.use_level("trace"):
        proof = prove(pk, assignment)
    tree = telemetry.finished_roots()[-1]     # the plonk.prove span tree
    stats = telemetry.snapshot()              # counters + histograms

Sinks are configured with ``REPRO_TELEMETRY_CONSOLE=1`` (span trees on
stderr) and ``REPRO_TELEMETRY_FILE=<path>`` (JSON-lines), or
programmatically via :func:`add_exporter`.  See ``docs/observability.md``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Union

from repro.telemetry.export import (
    ConsoleExporter,
    JsonLinesExporter,
    format_span_tree,
    read_spans,
    span_records,
    tree_from_records,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Histogram,
    Registry,
    quantile_from_bucket_dict,
    quantile_from_buckets,
)
from repro.telemetry.spans import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    add_exporter,
    clear_finished,
    current_span,
    finished_roots,
    remove_exporter,
)

#: Telemetry levels, ordered.  ``metrics`` implies counters/histograms;
#: ``trace`` additionally creates spans; ``profile`` additionally ships
#: trace contexts to pool workers and merges their stats back.
OFF, METRICS, TRACE, PROFILE = 0, 1, 2, 3

_LEVEL_NAMES = {"off": OFF, "metrics": METRICS, "trace": TRACE, "profile": PROFILE}

#: The active level.  Module-level integer so the disabled fast path is
#: one global load and compare — cheap enough for the hottest kernels.
_level = OFF

_registry = Registry()


def _parse_level(value: Union[int, str]) -> int:
    if isinstance(value, int):
        if value not in (OFF, METRICS, TRACE, PROFILE):
            raise ValueError("telemetry level must be 0, 1, 2 or 3, got %r" % value)
        return value
    name = str(value).strip().lower()
    if name in _LEVEL_NAMES:
        return _LEVEL_NAMES[name]
    if name.isdigit() and int(name) in (OFF, METRICS, TRACE, PROFILE):
        return int(name)
    raise ValueError(
        "unknown telemetry level %r (expected off, metrics, trace or profile)" % (value,)
    )


def level() -> int:
    """The active level as an integer (OFF / METRICS / TRACE / PROFILE)."""
    return _level


def level_name() -> str:
    return {OFF: "off", METRICS: "metrics", TRACE: "trace", PROFILE: "profile"}[_level]


def set_level(value: Union[int, str]) -> int:
    """Set the active level ('off' ... 'profile' or 0-3); returns the previous."""
    global _level
    previous = _level
    _level = _parse_level(value)
    return previous


@contextmanager
def use_level(value: Union[int, str]) -> Iterator[None]:
    """Scoped level override (restores the previous level on exit)."""
    previous = set_level(value)
    try:
        yield
    finally:
        set_level(previous)


def metrics_enabled() -> bool:
    return _level >= METRICS


def trace_enabled() -> bool:
    return _level >= TRACE


def profile_enabled() -> bool:
    return _level >= PROFILE


# ----- instruments --------------------------------------------------------


def registry() -> Registry:
    """The process-wide metrics registry."""
    return _registry


def counter(name: str, **labels: object) -> Counter:
    """Fetch (creating on first use) a counter from the global registry."""
    return _registry.counter(name, **labels)


def histogram(name: str, bounds: tuple = SIZE_BUCKETS, **labels: object) -> Histogram:
    """Fetch (creating on first use) a histogram from the global registry."""
    return _registry.histogram(name, bounds, **labels)


def snapshot() -> dict:
    """JSON-ready view of every counter and histogram."""
    return _registry.snapshot()


def reset_metrics() -> None:
    _registry.reset()


def span(name: str, **attrs: Any) -> Union[Span, NoopSpan]:
    """A traced region: real :class:`Span` at trace level, no-op otherwise.

    The returned object supports ``with``, :meth:`~Span.set_attr` and
    :meth:`~Span.set_attrs` in both modes, so call sites never branch.
    """
    if _level < TRACE:
        return NOOP_SPAN
    return Span(name, attrs)


class _KernelTimer:
    """``with``-scoped duration observation into a latency histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_KernelTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._hist.observe(time.perf_counter() - self._start)
        return False


def kernel_timer(kernel: str, **labels: object) -> Union[_KernelTimer, NoopSpan]:
    """Time one kernel invocation into ``engine.kernel.seconds{kernel=...}``.

    The duration half of the ENG-001 contract: every public engine
    kernel wrapper both *counts* its call (counter/histogram) and
    *times* it through this context manager, so the hot-kernel table in
    ``python -m repro.telemetry report`` can rank kernels by wall-clock
    and quantiles, not just call counts.  Returns the shared no-op span
    below metrics level, so the disabled path stays one compare.
    """
    if _level < METRICS:
        return NOOP_SPAN
    return _KernelTimer(
        _registry.histogram("engine.kernel.seconds", LATENCY_BUCKETS, kernel=kernel, **labels)
    )


# ----- environment wiring -------------------------------------------------


def configure_from_env(environ: "Mapping[str, str] | None" = None) -> None:
    """Apply ``REPRO_TELEMETRY`` / ``_CONSOLE`` / ``_FILE`` settings.

    Called once at import; safe to call again after mutating ``os.environ``
    in tests (exporters registered by a previous call stay registered —
    use :func:`remove_exporter` to drop them).
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_TELEMETRY", "").strip()
    if raw:
        set_level(raw)
    if env.get("REPRO_TELEMETRY_CONSOLE", "").strip() in ("1", "true", "yes"):
        add_exporter(ConsoleExporter())
    path = env.get("REPRO_TELEMETRY_FILE", "").strip()
    if path:
        add_exporter(JsonLinesExporter(path))


configure_from_env()

__all__ = [
    "OFF",
    "METRICS",
    "TRACE",
    "PROFILE",
    "Counter",
    "Histogram",
    "Registry",
    "Span",
    "NOOP_SPAN",
    "ConsoleExporter",
    "JsonLinesExporter",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "add_exporter",
    "clear_finished",
    "configure_from_env",
    "counter",
    "current_span",
    "finished_roots",
    "format_span_tree",
    "histogram",
    "kernel_timer",
    "level",
    "level_name",
    "metrics_enabled",
    "profile_enabled",
    "quantile_from_bucket_dict",
    "quantile_from_buckets",
    "read_spans",
    "registry",
    "remove_exporter",
    "reset_metrics",
    "set_level",
    "snapshot",
    "span",
    "span_records",
    "trace_enabled",
    "tree_from_records",
    "use_level",
]
