"""Exporters: turn finished span trees into something a human or a tool reads.

Three sinks, matching the three consumers we actually have:

- :func:`format_span_tree` / :class:`ConsoleExporter` — an indented,
  duration-annotated tree on stderr, for a developer reading one run;
- :class:`JsonLinesExporter` — one JSON object per span, parent links by
  id, appended to a file; :func:`read_spans` / :func:`tree_from_records`
  round-trip it back into nested dicts for tooling;
- the in-memory registry snapshot (``telemetry.snapshot()``) that
  ``benchmarks/conftest.py`` folds into every ``BENCH_<slug>.json``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

from repro.telemetry.spans import Span


def _format_attr(value: Any) -> str:
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def format_span_tree(span: Span, indent: str = "") -> str:
    """Render one span subtree as indented text with millisecond timings."""
    attrs = ""
    if span.attrs:
        attrs = "  [%s]" % ", ".join(
            "%s=%s" % (k, _format_attr(v)) for k, v in span.attrs.items()
        )
    lines = ["%s%s  %.1f ms%s" % (indent, span.name, span.duration * 1e3, attrs)]
    for child in span.children:
        lines.append(format_span_tree(child, indent + "  "))
    return "\n".join(lines)


class ConsoleExporter:
    """Write every finished root span tree to a stream (default stderr)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream

    def __call__(self, root: Span) -> None:
        stream = self.stream or sys.stderr
        stream.write("-- trace --\n%s\n" % format_span_tree(root))
        stream.flush()


def span_records(root: Span) -> list[dict]:
    """Flatten a span tree to records with ``id``/``parent`` links.

    Ids are depth-first pre-order positions within this tree (the root is
    0), so records are self-contained per tree and stable across runs.
    ``root`` may itself be an interior span of a larger trace (e.g. an
    ``exchange.run`` nested under ``marketplace.sell``); parents outside
    the exported subtree serialise as ``None``.
    """
    ids: dict[int, int] = {}
    records: list[dict] = []
    for i, node in enumerate(root.walk()):
        ids[id(node)] = i
        records.append(
            {
                "id": i,
                "parent": ids.get(id(node.parent)) if node.parent is not None else None,
                "name": node.name,
                "start": node.start,
                "duration": node.duration,
                "attrs": dict(node.attrs),
            }
        )
    return records


class JsonLinesExporter:
    """Append finished span trees to ``path``, one JSON object per span."""

    def __init__(self, path: str) -> None:
        self.path = path

    def __call__(self, root: Span) -> None:
        with open(self.path, "a") as fh:
            for record in span_records(root):
                fh.write(json.dumps(record, default=str))
                fh.write("\n")


def read_spans(path: str) -> list[dict]:
    """Parse a JSON-lines span file back into a list of records."""
    records: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def tree_from_records(records: list[dict]) -> list[dict]:
    """Rebuild nested trees from flat records (returns the list of roots).

    Each returned node is its record plus a ``children`` list.  Records
    from multiple appended trees are supported: a new ``id == 0`` record
    starts a new tree.
    """
    roots: list[dict] = []
    current: dict[int, dict] = {}
    for record in records:
        node = dict(record)
        node["children"] = []
        if record["parent"] is None:
            roots.append(node)
            current = {}
        else:
            current[record["parent"]]["children"].append(node)
        current[record["id"]] = node
    return roots
