"""``python -m repro.telemetry`` — see :mod:`repro.telemetry.cli`."""

import sys

from repro.telemetry.cli import main

if __name__ == "__main__":
    sys.exit(main())
