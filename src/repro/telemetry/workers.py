"""Cross-process worker telemetry: trace propagation and stats piggyback.

PR 2 recorded kernel metrics *at the dispatch site in the parent
process*, which keeps serial/parallel counter parity but makes the pool
workers a black box: queue wait, shared-memory attach and the actual
compute all disappear into one opaque ``pool.map``.  This module is the
missing half.  At ``REPRO_TELEMETRY=profile`` every worker task payload
carries a compact :data:`TaskContext` — trace id, the dispatching
kernel, the telemetry level and the parent's enqueue timestamp — and the
worker runs a lightweight local recorder (phase timers plus per-kernel
counts; no global registry, no exporters).  The recorder's stats blob
rides back on the task result, and the parent merges it twice over:

- into the global registry under ``worker.*`` names (task counts,
  queue-wait / shm-attach / compute latency histograms, per-kernel call
  counts, task sizes) — deliberately a *separate namespace* from the
  ``engine.*`` dispatch-site metrics, so the serial==parallel parity of
  the engine counters is untouched;
- as ``worker.task`` child :class:`~repro.telemetry.spans.Span` objects
  under the ``engine.dispatch`` span, reconstructed on the parent's
  timeline, so a proof's span tree finally shows where the fan-out
  wall-clock went.

Clock contract: both sides stamp ``time.perf_counter()``, which on the
fork start method reads the same ``CLOCK_MONOTONIC`` in parent and
child, so worker timestamps are directly comparable to the parent's
span clock.  Below profile level the context is ``None``, workers get a
shared no-op recorder, and the only cost is one ``None`` per pickled
task payload.
"""

from __future__ import annotations

import os
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro import telemetry as _tel
from repro.telemetry.metrics import LATENCY_BUCKETS
from repro.telemetry.spans import NOOP_SPAN, NoopSpan, Span

#: The picklable per-dispatch context shipped inside every task payload:
#: ``(trace_id, kernel, level, enqueued_at)``.
TaskContext = Tuple[int, str, int, float]

#: The picklable stats blob a worker returns with its result:
#: ``(pid, queue_wait_s, started_at, ended_at, phase_seconds, kernel_counts, size)``.
StatsBlob = Tuple[int, float, float, float, "dict[str, float]", "dict[str, int]", int]

#: Worker task results travel as ``(result, blob-or-None)``.
TaskResult = Tuple[Any, Optional[StatsBlob]]

#: Monotonic per-process dispatch counter; trace ids are deterministic
#: within a run (no entropy — replays produce the same ids).
_next_trace_id = 0


def _new_trace_id() -> int:
    global _next_trace_id
    _next_trace_id += 1
    return _next_trace_id


# ----- worker side ---------------------------------------------------------


class _PhaseTimer:
    """``with``-scoped accumulation of one named phase's seconds."""

    __slots__ = ("_recorder", "_phase", "_start")

    def __init__(self, recorder: "TaskRecorder", phase: str) -> None:
        self._recorder = recorder
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        elapsed = time.perf_counter() - self._start
        phases = self._recorder.phases
        phases[self._phase] = phases.get(self._phase, 0.0) + elapsed
        return False


class TaskRecorder:
    """The worker-side registry for one task: phase timers and counts.

    Deliberately not the global :class:`~repro.telemetry.metrics.Registry`
    — a forked worker's global registry is a stale copy of the parent's
    and merging it back would double-count the dispatch-site metrics.
    This recorder holds only what the task itself did.
    """

    __slots__ = ("ctx", "started", "phases", "counts", "size")

    def __init__(self, ctx: TaskContext) -> None:
        self.ctx = ctx
        self.started = time.perf_counter()
        self.phases: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.size = 0

    def timer(self, phase: str) -> _PhaseTimer:
        """Time a named phase (``shm_attach``, ``compute``); additive."""
        return _PhaseTimer(self, phase)

    def count(self, name: str, amount: int = 1) -> None:
        """Count a kernel invocation executed inside this task."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def set_size(self, n: int) -> None:
        """Record the task's input size (points, cells, values)."""
        self.size = n

    def blob(self) -> StatsBlob:
        """The compact stats tuple piggybacked on the task result."""
        queue_wait = max(0.0, self.started - self.ctx[3])
        return (
            os.getpid(),
            queue_wait,
            self.started,
            time.perf_counter(),
            dict(self.phases),
            dict(self.counts),
            self.size,
        )


class _NoopRecorder:
    """Shared do-nothing recorder for tasks dispatched below profile level."""

    __slots__ = ()

    def timer(self, phase: str) -> NoopSpan:
        return NOOP_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def set_size(self, n: int) -> None:
        return None

    def blob(self) -> None:
        return None


NOOP_RECORDER = _NoopRecorder()


def task_begin(ctx: Optional[TaskContext]) -> "TaskRecorder | _NoopRecorder":
    """Start the worker-side recorder for one task.

    Gating rides on the *context*, not the worker's (forked, possibly
    stale) global level: a ``None`` context means the parent dispatched
    below profile level and the shared no-op recorder is returned.
    """
    if ctx is None:
        return NOOP_RECORDER
    return TaskRecorder(ctx)


# ----- parent side ---------------------------------------------------------


class Dispatch:
    """Parent-side handle for one fan-out: span, contexts, and the merge.

    Use as a context manager around the pool call::

        with workers.dispatch("msm_g1", len(tasks)) as dsp:
            raw = pool.map(worker_fn, dsp.tag(tasks))
            partials = dsp.collect(raw)

    At trace level the handle opens an ``engine.dispatch`` span under
    the current (kernel or protocol) span; at profile level it
    additionally builds the :data:`TaskContext` that :meth:`tag`
    prepends to every task payload, and :meth:`collect` merges the
    returned stats blobs into ``worker.*`` metrics and child spans.
    """

    __slots__ = ("kernel", "n_tasks", "span", "ctx", "trace_id")

    def __init__(self, kernel: str, n_tasks: int) -> None:
        self.kernel = kernel
        self.n_tasks = n_tasks
        self.trace_id = 0
        self.span: "Span | NoopSpan" = _tel.span(
            "engine.dispatch", kernel=kernel, tasks=n_tasks
        )
        self.ctx: Optional[TaskContext] = None

    def __enter__(self) -> "Dispatch":
        self.span.__enter__()
        if _tel.profile_enabled():
            self.trace_id = _new_trace_id()
            self.span.set_attr("trace_id", self.trace_id)
            self.ctx = (self.trace_id, self.kernel, _tel.level(), time.perf_counter())
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.span.__exit__(exc_type, exc, tb)
        return False

    def tag(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Prepend the dispatch context to every task payload tuple."""
        ctx = self.ctx
        return [(ctx,) + tuple(task) for task in tasks]

    def collect(self, raw: Sequence[TaskResult]) -> List[Any]:
        """Unzip ``(result, blob)`` pairs, merging every stats blob."""
        results: List[Any] = []
        for index, (result, blob) in enumerate(raw):
            results.append(result)
            if blob is not None:
                self._merge(index, blob)
        return results

    def _merge(self, index: int, blob: StatsBlob) -> None:
        pid, queue_wait, started, ended, phases, counts, size = blob
        kernel = self.kernel
        _tel.counter("worker.tasks", kernel=kernel).inc()
        _tel.histogram(
            "worker.queue_wait.seconds", LATENCY_BUCKETS, kernel=kernel
        ).observe(queue_wait)
        for phase, seconds in sorted(phases.items()):
            _tel.histogram(
                "worker.%s.seconds" % phase, LATENCY_BUCKETS, kernel=kernel
            ).observe(seconds)
        for name, amount in sorted(counts.items()):
            _tel.counter("worker.kernel.calls", kernel=kernel, kind=name).inc(amount)
        if size:
            _tel.histogram("worker.task.size", kernel=kernel).observe(size)
        if isinstance(self.span, Span):
            child = Span(
                "worker.task",
                {
                    "trace_id": self.trace_id,
                    "kernel": kernel,
                    "task": index,
                    "pid": pid,
                    "queue_wait_s": queue_wait,
                    "size": size,
                    **{"%s_s" % phase: seconds for phase, seconds in sorted(phases.items())},
                },
            )
            # Reconstruct the task on the parent timeline: the span opens
            # at enqueue (start of queue wait) and closes when the worker
            # finished, so queue-wait + shm-attach + compute are all
            # inside it.  perf_counter is CLOCK_MONOTONIC under fork, so
            # worker stamps line up with the parent's span clock.
            child.start = started - queue_wait
            child.end = ended
            child.parent = self.span
            self.span.children.append(child)


def dispatch(kernel: str, n_tasks: int) -> Dispatch:
    """A :class:`Dispatch` handle for one parallel kernel fan-out."""
    return Dispatch(kernel, n_tasks)


def worker_coverage(dispatch_span: Span) -> float:
    """Fraction of a dispatch span's wall-clock its worker spans explain.

    The acceptance metric for trace propagation: the union of the
    ``worker.task`` children (each spanning queue-wait + shm-attach +
    compute on the parent timeline) divided by the ``engine.dispatch``
    parent's duration.  Anything missing is parent-side work the workers
    cannot see: payload packing, result unpickling and the partial-sum
    fold.  Returns 0.0 when the span has no worker children.
    """
    children = [c for c in dispatch_span.children if c.name == "worker.task"]
    if not children or not dispatch_span.duration:
        return 0.0
    starts = [c.start for c in children if c.start is not None]
    ends = [c.end for c in children if c.end is not None]
    if not starts or not ends or dispatch_span.start is None or dispatch_span.end is None:
        return 0.0
    covered = min(max(ends), dispatch_span.end) - max(min(starts), dispatch_span.start)
    return max(0.0, covered) / dispatch_span.duration
