"""Counters and histograms: the aggregate half of the telemetry layer.

Spans answer "where did this proof spend its time"; metrics answer "how
many kernel calls of which size and how many cache hits did it take".
Both kinds of instrument live in a :class:`Registry`, keyed by name plus
an optional label set, and are cheap enough to update from the hottest
engine paths (one dict lookup and an integer add).

Everything here is deliberately dumb and deterministic: monotonic
counters, histograms with *fixed* bucket boundaries (so two runs of the
same workload produce byte-identical snapshots), no clocks, no threads,
no third-party dependencies.
"""

from __future__ import annotations

#: Default histogram boundaries for *size-like* quantities (NTT domain
#: sizes, MSM point counts, inversion batch lengths): powers of two up to
#: 2**20, matching the radix-2 domains the kernels actually see.
SIZE_BUCKETS = tuple(1 << k for k in range(21))

#: Default histogram boundaries for *latency-like* quantities, in
#: seconds: 1 ms to ~2 minutes on a roughly x4 grid.
LATENCY_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; cannot add %r" % amount)
        self.value += amount

    def __repr__(self) -> str:
        return "<Counter %s=%d>" % (format_key(self.name, self.labels), self.value)


class Histogram:
    """A distribution with fixed, inclusive upper-bound buckets.

    ``bucket_counts[i]`` counts observations ``v <= bounds[i]`` (and
    greater than ``bounds[i-1]``); the final slot counts the overflow
    above the last bound.  ``count`` and ``total`` track the exact
    number and sum of observations so means stay exact even when the
    bucketing is coarse.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, bounds: tuple = SIZE_BUCKETS, labels: tuple = ()
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: float = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0

    def as_dict(self) -> dict:
        buckets = {("le_%g" % b): c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.total, "buckets": buckets}

    def __repr__(self) -> str:
        return "<Histogram %s count=%d sum=%s>" % (
            format_key(self.name, self.labels),
            self.count,
            self.total,
        )


def format_key(name: str, labels: tuple) -> str:
    """Render ``name`` + labels as ``name{k=v,...}`` (sorted, stable)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Registry:
    """Holds every live instrument; snapshot() is the export surface.

    Instruments are created on first use and keep accumulating until
    :meth:`reset`.  Tests and benchmarks measure *deltas* between two
    snapshots rather than resetting, so concurrent instrumented code
    cannot clobber each other's baselines.
    """

    def __init__(self) -> None:
        self._instruments: dict = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Counter(name, key[1])
            self._instruments[key] = inst
        return inst

    def histogram(
        self, name: str, bounds: tuple = SIZE_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, bounds, key[1])
            self._instruments[key] = inst
        return inst

    def reset(self) -> None:
        self._instruments.clear()

    def snapshot(self) -> dict:
        """A plain-dict, JSON-ready view: {"counters": {...}, "histograms": {...}}."""
        counters: dict = {}
        histograms: dict = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            key = format_key(name, labels)
            if isinstance(inst, Counter):
                counters[key] = inst.value
            else:
                histograms[key] = inst.as_dict()
        return {"counters": counters, "histograms": histograms}

    def counter_values(self, prefix: str = "") -> dict:
        """Flat {formatted_key: value} for counters under ``prefix``."""
        out: dict = {}
        for (name, labels), inst in self._instruments.items():
            if isinstance(inst, Counter) and name.startswith(prefix):
                out[format_key(name, labels)] = inst.value
        return out
