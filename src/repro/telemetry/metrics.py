"""Counters and histograms: the aggregate half of the telemetry layer.

Spans answer "where did this proof spend its time"; metrics answer "how
many kernel calls of which size and how many cache hits did it take".
Both kinds of instrument live in a :class:`Registry`, keyed by name plus
an optional label set, and are cheap enough to update from the hottest
engine paths (one dict lookup and an integer add).

Everything here is deliberately dumb and deterministic: monotonic
counters, histograms with *fixed* bucket boundaries (so two runs of the
same workload produce byte-identical snapshots), no clocks, no threads,
no third-party dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Default histogram boundaries for *size-like* quantities (NTT domain
#: sizes, MSM point counts, inversion batch lengths): powers of two up to
#: 2**20, matching the radix-2 domains the kernels actually see.
SIZE_BUCKETS = tuple(1 << k for k in range(21))

#: Default histogram boundaries for *latency-like* quantities, in
#: seconds: 1 ms to ~2 minutes on a roughly x4 grid.
LATENCY_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; cannot add %r" % amount)
        self.value += amount

    def __repr__(self) -> str:
        return "<Counter %s=%d>" % (format_key(self.name, self.labels), self.value)


class Histogram:
    """A distribution with fixed, inclusive upper-bound buckets.

    ``bucket_counts[i]`` counts observations ``v <= bounds[i]`` (and
    greater than ``bounds[i-1]``); the final slot counts the overflow
    above the last bound.  ``count`` and ``total`` track the exact
    number and sum of observations so means stay exact even when the
    bucketing is coarse.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, bounds: tuple = SIZE_BUCKETS, labels: tuple = ()
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: float = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the fixed buckets.

        See :func:`quantile_from_buckets` for the estimation contract
        (linear interpolation inside a bucket, overflow clamped to the
        last finite bound, 0.0 on an empty histogram).
        """
        return quantile_from_buckets(self.bounds, self.bucket_counts, q)

    def as_dict(self) -> dict:
        buckets = {("le_%g" % b): c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return "<Histogram %s count=%d sum=%s>" % (
            format_key(self.name, self.labels),
            self.count,
            self.total,
        )


def quantile_from_buckets(
    bounds: Sequence[float], bucket_counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket distribution.

    The classic Prometheus-style estimator: find the bucket the rank
    falls into, then interpolate linearly between the bucket's lower and
    upper bound (the first bucket's lower bound is 0).  Observations in
    the overflow bucket are clamped to the last *finite* bound — the
    histogram records nothing above it, so the estimate is a documented
    lower bound rather than an invented extrapolation.  An empty
    histogram estimates 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % (q,))
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= rank and count:
            if i >= len(bounds):  # overflow bucket: clamp to the last bound
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i else 0.0
            upper = float(bounds[i])
            fraction = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
    return float(bounds[-1])


def quantile_from_bucket_dict(buckets: Mapping[str, int], q: float) -> float:
    """:func:`quantile_from_buckets` over a serialised ``as_dict`` bucket map.

    Accepts the ``{"le_<bound>": count, ..., "inf": count}`` shape the
    exporters and the run ledger store, so tooling can recompute
    quantiles after differencing two snapshots.
    """
    bounds = sorted(float(name[3:]) for name in buckets if name.startswith("le_"))
    counts = [int(buckets["le_%g" % b]) for b in bounds]
    counts.append(int(buckets.get("inf", 0)))
    if not bounds:
        return 0.0
    return quantile_from_buckets(bounds, counts, q)


def format_key(name: str, labels: tuple) -> str:
    """Render ``name`` + labels as ``name{k=v,...}`` (sorted, stable)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Registry:
    """Holds every live instrument; snapshot() is the export surface.

    Instruments are created on first use and keep accumulating until
    :meth:`reset`.  Tests and benchmarks measure *deltas* between two
    snapshots rather than resetting, so concurrent instrumented code
    cannot clobber each other's baselines.
    """

    def __init__(self) -> None:
        self._instruments: dict = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Counter(name, key[1])
            self._instruments[key] = inst
        return inst

    def histogram(
        self, name: str, bounds: tuple = SIZE_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, bounds, key[1])
            self._instruments[key] = inst
        return inst

    def reset(self) -> None:
        self._instruments.clear()

    def snapshot(self) -> dict:
        """A plain-dict, JSON-ready view: {"counters": {...}, "histograms": {...}}."""
        counters: dict = {}
        histograms: dict = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            key = format_key(name, labels)
            if isinstance(inst, Counter):
                counters[key] = inst.value
            else:
                histograms[key] = inst.as_dict()
        return {"counters": counters, "histograms": histograms}

    def counter_values(self, prefix: str = "") -> dict:
        """Flat {formatted_key: value} for counters under ``prefix``."""
        out: dict = {}
        for (name, labels), inst in self._instruments.items():
            if isinstance(inst, Counter) and name.startswith(prefix):
                out[format_key(name, labels)] = inst.value
        return out
