"""Spans: nested wall-clock regions with structured attributes.

A span is a named ``with`` region; entering pushes it onto a
``contextvars`` stack so children attach to the innermost open span no
matter which thread or task runs them.  The :class:`repro.backend.parallel.ParallelEngine`
fan-out boundary keeps the stack parent-only — worker processes never
push spans — but at ``REPRO_TELEMETRY=profile`` the dispatch machinery
in :mod:`repro.telemetry.workers` reconstructs each pool task as a
``worker.task`` child span from the stats blob the worker piggybacks on
its result, stamped directly with the worker's (fork-shared) monotonic
clock rather than entered through this stack.

When a **root** span (one with no open parent) closes, the finished tree
is handed to every registered exporter and kept in a bounded in-memory
ring so tests and the benchmark harness can inspect it without I/O.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from typing import Any, Callable, Iterator, Optional

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_telemetry_span", default=None
)

#: Finished *root* spans, newest last.  Bounded so a long-running process
#: with tracing left on cannot grow without limit.
_finished_roots: "deque[Span]" = deque(maxlen=256)

#: Callables invoked with each finished root span.
_exporters: "list[Callable[[Span], Any]]" = []


class Span:
    """One timed region.  Use via ``with span("name", attr=...) as sp:``."""

    __slots__ = ("name", "attrs", "start", "end", "children", "parent", "_token")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.start: float | None = None
        self.end: float | None = None
        self.children: list[Span] = []
        self.parent: Span | None = None
        self._token: contextvars.Token | None = None

    # ----- attributes -----------------------------------------------------

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def set_attrs(self, mapping: dict | None = None, **attrs: Any) -> "Span":
        if mapping:
            self.attrs.update(mapping)
        if attrs:
            self.attrs.update(attrs)
        return self

    # ----- lifecycle ------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        self.parent = _current_span.get()
        self._token = _current_span.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", "%s: %s" % (exc_type.__name__, exc))
        if self._token is not None:
            _current_span.reset(self._token)
        if self.parent is not None:
            self.parent.children.append(self)
        else:
            _finish_root(self)
        return False

    # ----- introspection --------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def __repr__(self) -> str:
        return "<Span %s %.3fms children=%d>" % (
            self.name,
            self.duration * 1e3,
            len(self.children),
        )


class NoopSpan:
    """Shared do-nothing span returned when tracing is off.

    Stateless, so one instance can be re-entered concurrently; every
    mutator is a no-op and returns ``self`` for chaining.
    """

    __slots__ = ()

    name = "noop"
    attrs: dict = {}
    children: list = []
    duration = 0.0

    def set_attr(self, key: str, value: Any) -> "NoopSpan":
        return self

    def set_attrs(self, mapping: dict | None = None, **attrs: Any) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


NOOP_SPAN = NoopSpan()


def current_span() -> "Span | None":
    """The innermost open span, or ``None`` outside any traced region."""
    return _current_span.get()


def _finish_root(span: Span) -> None:
    _finished_roots.append(span)
    for exporter in list(_exporters):
        exporter(span)


def finished_roots() -> "list[Span]":
    """Completed root spans, oldest first (bounded ring)."""
    return list(_finished_roots)


def clear_finished() -> None:
    _finished_roots.clear()


def add_exporter(exporter: "Callable[[Span], Any]") -> None:
    """Register ``exporter(root_span)`` to run on every finished root."""
    _exporters.append(exporter)


def remove_exporter(exporter: "Callable[[Span], Any]") -> None:
    try:
        _exporters.remove(exporter)
    except ValueError:
        pass
