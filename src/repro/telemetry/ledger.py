"""The run ledger: one append-only JSONL record per proof or exchange.

Spans and metrics answer questions about *one process right now*; the
ledger is the durable trail — the observability counterpart of the
paper's on-chain traceability.  Each record captures everything needed
to reconstruct what one run did and cost:

- the span tree (flattened via :func:`~repro.telemetry.export.span_records`);
- the **delta** of the counter/histogram snapshot over the run, so
  records attribute per-exchange even when many runs share a process;
- per-cache hit rates derived from the ``engine.cache.*`` deltas;
- every fault the active :class:`~repro.faults.injector.FaultInjector`
  injected during the run;
- environment provenance: substrate mode, backend, git revision,
  telemetry level.

Schema (one JSON object per line)::

    {
      "schema": "repro.telemetry.ledger",   # constant
      "schema_version": 1,
      "name": "exchange.keysecure",         # what kind of run
      "seq": 3,                             # per-writer sequence number
      "attrs": {...},                       # caller-provided outcome attrs
      "env": {"substrate": ..., "backend": ..., "git_revision": ...,
              "telemetry_level": ..., "pid": ...},
      "metrics": {"counters": {...}, "histograms": {...}},   # run delta
      "cache_hit_rates": {"<cache>": 0.93, ...},
      "faults": [{"sequence": ..., "site": ..., "kind": ..., "rule_index": ...}],
      "spans": [ ...span_records... ]       # [] below trace level
    }

Readers must ignore unknown keys; writers bump ``schema_version`` on any
incompatible change.  Gating: a path passed explicitly, or the
``REPRO_LEDGER`` environment variable; with neither, :func:`begin`
returns a no-op recorder and the instrumented code paths cost one
``None`` check.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, Dict, List, Mapping, Optional, Union

from repro import faults as _faults
from repro import substrate as _substrate
from repro import telemetry as _tel
from repro.telemetry.export import span_records
from repro.telemetry.metrics import quantile_from_bucket_dict
from repro.telemetry.spans import Span

SCHEMA = "repro.telemetry.ledger"
SCHEMA_VERSION = 1

#: Environment variable naming the ledger file; empty/unset disables.
ENV_VAR = "REPRO_LEDGER"


def default_path() -> Optional[str]:
    """The ledger path from ``REPRO_LEDGER``, or ``None`` when unset."""
    path = os.environ.get(ENV_VAR, "").strip()
    return path or None


def enabled() -> bool:
    return default_path() is not None


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def environment() -> Dict[str, Any]:
    """The provenance block every record carries."""
    return {
        "substrate": _substrate.mode(),
        "backend": os.environ.get("REPRO_BACKEND", "serial"),
        "git_revision": _git_revision(),
        "telemetry_level": _tel.level_name(),
        "pid": os.getpid(),
    }


# ----- snapshot differencing ----------------------------------------------


def diff_snapshots(before: Mapping[str, Any], after: Mapping[str, Any]) -> Dict[str, Any]:
    """The per-run delta between two ``telemetry.snapshot()`` dicts.

    Counters subtract; histograms subtract count/sum and per-bucket
    counts, then re-derive mean and p50/p95/p99 from the delta buckets —
    the registry's own quantiles describe the process lifetime, not the
    run.  Instruments untouched during the run are dropped.
    """
    counters: Dict[str, int] = {}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = int(value) - int(before_counters.get(name, 0))
        if delta:
            counters[name] = delta
    histograms: Dict[str, Any] = {}
    before_hists = before.get("histograms", {})
    for name, hist in after.get("histograms", {}).items():
        base = before_hists.get(name, {})
        count = int(hist["count"]) - int(base.get("count", 0))
        if count <= 0:
            continue
        total = float(hist["sum"]) - float(base.get("sum", 0.0))
        base_buckets = base.get("buckets", {})
        buckets = {
            bucket: int(n) - int(base_buckets.get(bucket, 0))
            for bucket, n in hist["buckets"].items()
        }
        histograms[name] = {
            "count": count,
            "sum": total,
            "mean": total / count,
            "p50": quantile_from_bucket_dict(buckets, 0.50),
            "p95": quantile_from_bucket_dict(buckets, 0.95),
            "p99": quantile_from_bucket_dict(buckets, 0.99),
            "buckets": buckets,
        }
    return {"counters": counters, "histograms": histograms}


def cache_hit_rates(counters: Mapping[str, int]) -> Dict[str, float]:
    """Per-cache hit rates from ``engine.cache.hits/misses{cache=...}``."""
    hits: Dict[str, int] = {}
    misses: Dict[str, int] = {}
    for name, value in counters.items():
        if name.startswith("engine.cache.hits{cache="):
            hits[name.split("cache=", 1)[1].rstrip("}")] = int(value)
        elif name.startswith("engine.cache.misses{cache="):
            misses[name.split("cache=", 1)[1].rstrip("}")] = int(value)
    rates: Dict[str, float] = {}
    for cache in sorted(set(hits) | set(misses)):
        h, m = hits.get(cache, 0), misses.get(cache, 0)
        if h + m:
            rates[cache] = h / (h + m)
    return rates


# ----- the writer ----------------------------------------------------------


class Ledger:
    """Append-only JSONL writer with a per-writer sequence counter."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0

    def append(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Stamp schema fields onto ``record`` and append one JSON line."""
        stamped: Dict[str, Any] = {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "seq": self._seq,
        }
        stamped.update(record)
        self._seq += 1
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(stamped, default=str))
            fh.write("\n")
        return stamped


def read(path: str) -> List[Dict[str, Any]]:
    """Parse a ledger file, skipping lines of other/newer major schemas."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") == SCHEMA:
                records.append(record)
    return records


# ----- run capture ---------------------------------------------------------


class RunRecorder:
    """Captures one run: baselines at :func:`begin`, deltas at :meth:`finish`."""

    __slots__ = ("ledger", "name", "_baseline", "_fault_baseline", "record")

    def __init__(self, ledger: Ledger, name: str) -> None:
        self.ledger = ledger
        self.name = name
        self._baseline = _tel.snapshot()
        injector = _faults.active()
        self._fault_baseline = len(injector.log) if injector is not None else 0
        self.record: Optional[Dict[str, Any]] = None

    def finish(
        self,
        span: "Span | Any" = None,
        **attrs: Any,
    ) -> Dict[str, Any]:
        """Write this run's ledger record; returns the stamped record.

        ``span`` is the run's root :class:`Span` (the ``exchange.run`` or
        ``plonk.prove`` region); anything that is not a real span —
        e.g. the shared no-op below trace level — serialises as ``[]``.
        """
        metrics = diff_snapshots(self._baseline, _tel.snapshot())
        injector = _faults.active()
        injected: List[Dict[str, Any]] = []
        if injector is not None:
            for fault in injector.log[self._fault_baseline :]:
                injected.append(
                    {
                        "sequence": fault.sequence,
                        "site": fault.site,
                        "kind": fault.kind,
                        "rule_index": fault.rule_index,
                    }
                )
        self.record = self.ledger.append(
            {
                "name": self.name,
                "attrs": dict(attrs),
                "env": environment(),
                "metrics": metrics,
                "cache_hit_rates": cache_hit_rates(metrics["counters"]),
                "faults": injected,
                "spans": span_records(span) if isinstance(span, Span) else [],
            }
        )
        return self.record


class _NoopRecorder:
    """Returned by :func:`begin` when no ledger path is configured."""

    __slots__ = ()

    def finish(self, span: Any = None, **attrs: Any) -> Dict[str, Any]:
        return {}


NOOP_RECORDER = _NoopRecorder()

#: Writers keyed by absolute path so sequence numbers survive multiple
#: ``begin`` calls against the same file within one process.
_writers: Dict[str, Ledger] = {}


def writer(path: str) -> Ledger:
    key = os.path.abspath(path)
    ledger = _writers.get(key)
    if ledger is None:
        ledger = Ledger(path)
        _writers[key] = ledger
    return ledger


def begin(name: str, path: Optional[str] = None) -> "Union[RunRecorder, _NoopRecorder]":
    """Start capturing one run into the ledger at ``path`` (or ``REPRO_LEDGER``).

    Returns a no-op recorder when neither is set, so instrumenting a code
    path costs nothing without opt-in::

        rec = ledger.begin("exchange.keysecure")
        with telemetry.span("exchange.run") as root:
            result = run_protocol()
        rec.finish(span=root, success=result.success)
    """
    target = path if path is not None else default_path()
    if target is None:
        return NOOP_RECORDER
    return RunRecorder(writer(target), name)
