"""The fee-ordered mempool: bounded admission, priority mining, eviction.

The seed chain executed every transaction the moment it was submitted —
fine for per-exchange tests, wrong for a population-scale simulation
where 10^4 clients compete for block space.  This module adds the
missing admission layer:

- :class:`PendingTx` — an unmined transaction: target, calldata, value,
  and an integer priority ``fee`` (a tip, in wei-like units; priority
  metadata only, never debited, so balance conservation stays exact).
- :class:`Mempool` — a bounded pool ordered by ``(fee desc, seq asc)``:
  the highest bidder mines first, FIFO among equal fees.  At capacity a
  new transaction must strictly beat the current fee floor; it then
  evicts the cheapest resident (ties broken against the *latest*
  arrival, so long-waiting transactions survive a fee war longest).
  Anything cheaper is rejected synchronously with
  :class:`~repro.errors.MempoolFullError` — the client learns it was
  shed before any state exists for it, exactly like the service plane's
  :class:`~repro.service.queue.FairQueue`.

Everything is integer-valued and insertion-ordered, so a mempool replay
under the same submission stream is bit-identical — the property the
load simulator's whole-run digest relies on.

Implementation: two lazily-synchronised binary heaps (a serving max-heap
and an eviction min-heap) over the same entries, with a live-sequence
set as the tombstone filter.  ``add``/``pop``/``evict`` are all
O(log n) amortised.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro import telemetry
from repro.errors import MempoolFullError


@dataclass(frozen=True)
class PendingTx:
    """One submitted-but-unmined transaction."""

    seq: int  #: global admission order (the FIFO tiebreak)
    sender: str
    contract: object  #: the deployed Contract instance to call
    method: str
    args: tuple
    value: int
    fee: int
    gas_limit: int

    def priority(self) -> tuple:
        """Mining order: higher fee first, then earlier admission."""
        return (-self.fee, self.seq)


class Mempool:
    """Bounded fee-priority transaction pool with deterministic eviction."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise MempoolFullError("mempool capacity must be at least 1")
        self.capacity = capacity
        self._serve: List[tuple] = []  # (-fee, seq) max-fee heap
        self._evict: List[tuple] = []  # (fee, -seq) min-fee heap
        self._txs: Dict[int, PendingTx] = {}  # live entries by seq
        self._next_seq = 0
        self._evicted_txs: List[PendingTx] = []
        #: Lifetime accounting (monotonic, survives drains).
        self.admitted = 0
        self.evicted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._txs)

    def __bool__(self) -> bool:
        return bool(self._txs)

    def fee_floor(self) -> Optional[int]:
        """The lowest live fee (what a new transaction must beat when
        the pool is full), or ``None`` when empty."""
        while self._evict and self._evict[0][1] * -1 not in self._txs:
            heapq.heappop(self._evict)
        return self._evict[0][0] if self._evict else None

    def add(
        self,
        sender: str,
        contract: object,
        method: str,
        args: tuple = (),
        value: int = 0,
        fee: int = 0,
        gas_limit: int = 30_000_000,
    ) -> PendingTx:
        """Admit one transaction, evicting the cheapest resident if full.

        Raises :class:`MempoolFullError` when the pool is full and
        ``fee`` does not strictly beat the current floor.
        """
        if fee < 0 or value < 0:
            raise MempoolFullError("fee and value must be non-negative")
        if len(self._txs) >= self.capacity:
            floor = self.fee_floor()
            if floor is None or fee <= floor:
                self.rejected += 1
                if telemetry.metrics_enabled():
                    telemetry.counter("chain.mempool.rejected").inc()
                raise MempoolFullError(
                    "mempool full (%d txs); fee %d does not beat the floor %s"
                    % (len(self._txs), fee, floor)
                )
            self._evict_cheapest()
        tx = PendingTx(self._next_seq, sender, contract, method, tuple(args), value, fee, gas_limit)
        self._next_seq += 1
        self._insert(tx)
        self.admitted += 1
        if telemetry.metrics_enabled():
            telemetry.counter("chain.mempool.admitted").inc()
        return tx

    def _insert(self, tx: PendingTx) -> None:
        self._txs[tx.seq] = tx
        heapq.heappush(self._serve, (-tx.fee, tx.seq))
        heapq.heappush(self._evict, (tx.fee, -tx.seq))

    def _evict_cheapest(self) -> PendingTx:
        while True:
            fee, neg_seq = heapq.heappop(self._evict)
            victim = self._txs.pop(-neg_seq, None)
            if victim is not None:
                self.evicted += 1
                self._evicted_txs.append(victim)
                if telemetry.metrics_enabled():
                    telemetry.counter("chain.mempool.evicted").inc()
                return victim

    def pop(self) -> Optional[PendingTx]:
        """Remove and return the highest-priority transaction."""
        while self._serve:
            neg_fee, seq = heapq.heappop(self._serve)
            tx = self._txs.pop(seq, None)
            if tx is not None:
                return tx
        return None

    def requeue(self, tx: PendingTx) -> None:
        """Put a popped transaction back, keeping its original admission
        order (used when a mining round's per-lane budget is exhausted).
        Requeued transactions bypass the capacity check: they were
        already admitted once and eviction happens against new arrivals."""
        self._insert(tx)

    def take_round(
        self, lane_of: Callable[[str], int], lanes: int, per_lane: int
    ) -> List[List[PendingTx]]:
        """Select the next mining round: up to ``per_lane`` transactions
        for each of ``lanes`` lanes, in global fee order.

        Transactions whose lane budget is already full are held back and
        requeued with their original sequence numbers, so the round after
        next sees them in unchanged priority order.
        """
        batches: List[List[PendingTx]] = [[] for _ in range(lanes)]
        held: List[PendingTx] = []
        open_lanes = lanes
        while open_lanes and self._txs:
            tx = self.pop()
            if tx is None:
                break
            lane = lane_of(tx.sender)
            batch = batches[lane]
            batch.append(tx)
            if len(batch) == per_lane:
                open_lanes -= 1
            elif len(batch) > per_lane:
                batch.pop()
                held.append(tx)
        for tx in held:
            self._insert(tx)
        return batches

    def drain_evicted(self) -> List[PendingTx]:
        """Evicted transactions since the last call (and clear the log).

        Eviction is silent from the submitter's point of view — the
        transaction simply never mines — so clients that must not lose
        work (the load simulator's trade state machines) poll this each
        round and re-offer victims at a higher fee.
        """
        out, self._evicted_txs = self._evicted_txs, []
        return out

    def drain_order(self) -> List[PendingTx]:
        """The current contents in mining order, without removing them
        (diagnostics / digest support)."""
        live: Set[int] = set(self._txs)
        return [self._txs[seq] for _fee, seq in sorted(self._serve) if seq in live]
