"""Contract event logs and the chain's emission-order event index."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """An emitted log entry, indexed by contract address and event name."""

    address: str
    name: str
    fields: tuple  # of (key, value) pairs, insertion-ordered

    def get(self, key: str, default=None):
        """Look up a field by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict:
        return dict(self.fields)


class EventIndex:
    """Emission-ordered event log with O(1) name/address narrowing.

    The chain appends every event of every *successful* transaction as
    it is recorded; :meth:`select` serves ``query_events`` lookups from
    per-name and per-address posting lists (dict hit + slice) instead of
    rescanning all receipts.  Posting lists hold positions in the global
    emission order, so filtered results keep the exact order the linear
    scan produces — ``tests/test_chain.py`` holds the two paths equal.
    """

    __slots__ = ("_all", "_by_name", "_by_address")

    def __init__(self) -> None:
        self._all: list[Event] = []
        self._by_name: dict[str, list[int]] = {}
        self._by_address: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self._all)

    def add(self, event: Event) -> None:
        """Append one emitted event (next position in emission order)."""
        pos = len(self._all)
        self._all.append(event)
        self._by_name.setdefault(event.name, []).append(pos)
        self._by_address.setdefault(event.address, []).append(pos)

    def select(self, name: str | None = None, address: str | None = None) -> list[Event]:
        """Events matching ``name`` and/or ``address``, in emission order.

        Both posting lists are ascending, so the AND case is a linear
        merge of two sorted lists — no set building, order preserved.
        """
        if name is None and address is None:
            return list(self._all)
        if name is not None and address is not None:
            a = self._by_name.get(name, [])
            b = self._by_address.get(address, [])
            out = []
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i] == b[j]:
                    out.append(self._all[a[i]])
                    i += 1
                    j += 1
                elif a[i] < b[j]:
                    i += 1
                else:
                    j += 1
            return out
        postings = self._by_name.get(name, []) if name is not None else self._by_address.get(
            address, []
        )
        return [self._all[p] for p in postings]
