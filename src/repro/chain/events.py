"""Contract event logs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """An emitted log entry, indexed by contract address and event name."""

    address: str
    name: str
    fields: tuple  # of (key, value) pairs, insertion-ordered

    def get(self, key: str, default=None):
        """Look up a field by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict:
        return dict(self.fields)
