"""The simulated blockchain: accounts, transactions, mempool, block lanes.

Implements the standard assumptions of the paper's threat model
(Section IV-A): the chain is tamper-resistant (blocks are hash-chained and
:meth:`Blockchain.verify_chain` detects modification) and consistent (one
world state; every transaction either commits atomically or reverts).

Two scale upgrades sit on top of the seed semantics, both invisible at
their defaults:

- **Fee-ordered mempool** (:attr:`Blockchain.mempool`): clients
  :meth:`submit` transactions instead of executing them inline;
  :meth:`mine_round` pulls them in fee order under a per-lane block-size
  budget.  The direct :meth:`transact` path is unchanged — mining is the
  same call under the hood.
- **Parallel block lanes** (``lanes=k``): every account hashes to one of
  ``k`` lanes, a transaction executes and is sealed on its *sender's*
  lane, and each lane keeps its own hash-linked block chain (a genesis
  block per lane).  World state, balances and the event index stay
  global, so cross-lane value transfer and provenance queries need no
  extra machinery — lanes shard *ordering and sealing*, which is what
  the load simulator stresses.  ``lanes=1`` (the default) is exactly the
  seed chain.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro import faults
from repro.errors import ChainError, ContractError, OutOfGasError, TxDroppedError, TxRevertedError
from repro.chain.contract import Contract, ExecutionContext
from repro.chain.events import Event, EventIndex
from repro.chain.gas import DEFAULT_SCHEDULE, GasSchedule
from repro.chain.mempool import Mempool, PendingTx


def encode_calldata(method: str, args: tuple) -> bytes:
    """Deterministic ABI-style encoding used for calldata gas metering."""
    out = bytearray(hashlib.sha256(method.encode()).digest()[:4])

    def enc(value):
        if isinstance(value, bool):
            out.extend(int(value).to_bytes(32, "big"))
        elif isinstance(value, int):
            out.extend((value % (1 << 256)).to_bytes(32, "big"))
        elif isinstance(value, str):
            out.extend(len(value).to_bytes(32, "big"))
            out.extend(value.encode())
        elif isinstance(value, bytes):
            out.extend(len(value).to_bytes(32, "big"))
            out.extend(value)
        elif isinstance(value, (list, tuple)):
            out.extend(len(value).to_bytes(32, "big"))
            for item in value:
                enc(item)
        elif value is None:
            out.extend(b"\x00" * 32)
        else:  # objects with a canonical byte form
            to_bytes = getattr(value, "to_bytes", None)
            if callable(to_bytes):
                data = value.to_bytes()
                out.extend(len(data).to_bytes(32, "big"))
                out.extend(data)
            else:
                raise ChainError("cannot encode calldata value %r" % (value,))

    for a in args:
        enc(a)
    return bytes(out)


@dataclass
class TransactionReceipt:
    """Outcome of a transaction."""

    tx_hash: str
    sender: str
    to: str
    method: str
    gas_used: int
    status: bool
    events: list
    return_value: object = None
    error: str | None = None
    block_number: int | None = None
    lane: int = 0

    def span_attrs(self, prefix: str = "tx") -> dict:
        """This receipt as flat span attributes (gas, status, event names).

        The telemetry layer attaches these to protocol-step spans so a
        trace carries the matching on-chain evidence for every step.
        """
        attrs = {
            prefix + ".method": self.method,
            prefix + ".gas": self.gas_used,
            prefix + ".status": self.status,
            prefix + ".events": [e.name for e in self.events],
        }
        if self.error:
            attrs[prefix + ".error"] = self.error
        return attrs


@dataclass(frozen=True)
class Block:
    number: int  #: height within this block's lane (genesis = 0)
    parent_hash: str
    tx_hashes: tuple
    lane: int = 0

    @property
    def hash(self) -> str:
        payload = "%d:%s:%s" % (self.number, self.parent_hash, ",".join(self.tx_hashes))
        if self.lane:
            payload = "%d|%s" % (self.lane, payload)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class MiningRound:
    """Outcome of one :meth:`Blockchain.mine_round`."""

    blocks: list = field(default_factory=list)
    #: ``(tx, receipt)`` for every transaction that was mined (the
    #: receipt may be a failed one — reverts are still on chain).
    executed: list = field(default_factory=list)
    #: Transactions lost in flight (injected ``drop`` faults): no
    #: receipt, no nonce bump — the submitter decides whether to retry.
    dropped: list = field(default_factory=list)


class Blockchain:
    """A single-node simulated chain with deterministic gas metering."""

    def __init__(
        self,
        schedule: GasSchedule = DEFAULT_SCHEDULE,
        lanes: int = 1,
        mempool_capacity: int = 4096,
    ):
        if lanes < 1:
            raise ChainError("a chain needs at least one block lane")
        self.schedule = schedule
        self.lanes = lanes
        self.mempool = Mempool(mempool_capacity)
        self._balances: dict[str, int] = {}
        self._nonces: dict[str, int] = {}
        self.contracts: dict[str, Contract] = {}
        self.receipts: list[TransactionReceipt] = []
        self._event_index = EventIndex()
        self.blocks: list[Block] = []
        #: Unsealed receipts per lane (sealing stamps block numbers in
        #: O(pending), not O(all receipts)).
        self._pending: list[list[TransactionReceipt]] = [[] for _ in range(lanes)]
        self._lane_heads: list[Block] = []
        self._counter = itertools.count(1)
        self._genesis()

    def _genesis(self) -> None:
        for lane in range(self.lanes):
            block = Block(0, "0" * 64, (), lane)
            self.blocks.append(block)
            self._lane_heads.append(block)

    def lane_of(self, address: str) -> int:
        """The block lane an account's transactions execute on."""
        if self.lanes == 1:
            return 0
        digest = hashlib.sha256(b"lane:" + address.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.lanes

    # ----- accounts -----------------------------------------------------------

    def create_account(self, funded: int = 0) -> str:
        """Create an externally owned account with an optional balance."""
        address = "0x" + hashlib.sha256(b"account:%d" % next(self._counter)).hexdigest()[:40]
        self._balances[address] = funded
        self._nonces[address] = 0
        return address

    def balance_of(self, address: str) -> int:
        return self._balances.get(address, 0)

    def faucet(self, address: str, amount: int) -> None:
        """Credit an account (test/benchmark convenience)."""
        self._balances[address] = self.balance_of(address) + amount

    def _move_balance(self, sender: str, to: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("negative transfer")
        if self.balance_of(sender) < amount:
            raise ContractError("insufficient balance in %s" % sender)
        self._balances[sender] = self.balance_of(sender) - amount
        self._balances[to] = self.balance_of(to) + amount

    # ----- deployment -----------------------------------------------------------

    def deploy(self, contract: Contract, sender: str) -> TransactionReceipt:
        """Deploy a contract instance; gas follows the code-deposit rule."""
        address = "0x" + hashlib.sha256(
            b"contract:%s:%d" % (type(contract).__name__.encode(), next(self._counter))
        ).hexdigest()[:40]
        contract._bind(self, address)
        self.contracts[address] = contract
        self._balances[address] = 0
        gas = self.schedule.deployment_cost(contract.code_size())
        receipt = self._record(
            sender, address, "<deploy:%s>" % type(contract).__name__, gas, True, [], address
        )
        return receipt

    # ----- transactions -----------------------------------------------------------

    def transact(
        self,
        sender: str,
        contract: Contract,
        method: str,
        *args,
        value: int = 0,
        gas_limit: int = 30_000_000,
    ) -> TransactionReceipt:
        """Execute a state-changing contract call as one atomic transaction.

        Under a fault plan the ``chain.transact`` site can inject: a
        ``drop`` (the transaction is never mined — no receipt, no nonce
        bump, :class:`TxDroppedError` raised for the submitter to retry),
        a ``revert`` (mined but reverted before the call body ran: a
        failed receipt is recorded and :class:`TxRevertedError` raised),
        or a ``delay`` (inclusion latency on the virtual clock).
        """
        if contract.address not in self.contracts:
            raise ChainError("contract is not deployed on this chain")
        fn = getattr(contract, method, None)
        if fn is None or not getattr(fn, "_is_external", False):
            raise ChainError("method %r is not an external entry point" % method)
        try:
            faults.check("chain.transact")
        except TxRevertedError as exc:
            # Mined-but-reverted: the chain records the failed attempt.
            self._nonces[sender] = self._nonces.get(sender, 0) + 1
            self._record(sender, contract.address, method,
                         self.schedule.tx_base, False, [], None, str(exc))
            raise
        calldata = encode_calldata(method, args)
        ctx = ExecutionContext(self, sender, value, gas_limit)
        self._nonces[sender] = self._nonces.get(sender, 0) + 1

        balance_snapshot = dict(self._balances)
        contract._ctx = ctx
        status, ret, error = True, None, None
        try:
            ctx.burn(self.schedule.tx_base + self.schedule.calldata_cost(calldata))
            if value:
                self._move_balance(sender, contract.address, value)
            ret = fn(*args)
        except (ContractError, OutOfGasError) as exc:
            status, error = False, str(exc)
            ctx.revert_writes()
            self._balances = balance_snapshot
        finally:
            contract._ctx = None

        return self._record(
            sender,
            contract.address,
            method,
            ctx.gas_used,
            status,
            ctx.events if status else [],
            ret,
            error,
        )

    def call_view(self, contract: Contract, method: str, *args):
        """Free read-only call."""
        fn = getattr(contract, method, None)
        if fn is None or not getattr(fn, "_is_view", False):
            raise ChainError("method %r is not a view" % method)
        return fn(*args)

    def _record(self, sender, to, method, gas, status, events, ret, error=None):
        tx_hash = hashlib.sha256(
            b"%s:%s:%s:%d" % (sender.encode(), to.encode(), method.encode(), len(self.receipts))
        ).hexdigest()
        lane = self.lane_of(sender)
        receipt = TransactionReceipt(
            tx_hash, sender, to, method, gas, status, list(events), ret, error, lane=lane
        )
        self.receipts.append(receipt)
        for event in receipt.events:
            self._event_index.add(event)
        self._pending[lane].append(receipt)
        return receipt

    # ----- mempool ------------------------------------------------------------------

    def submit(
        self,
        sender: str,
        contract: Contract,
        method: str,
        *args,
        value: int = 0,
        fee: int = 0,
        gas_limit: int = 30_000_000,
    ) -> PendingTx:
        """Queue a transaction in the fee-ordered mempool.

        Nothing executes until :meth:`mine_round`; at capacity the
        mempool evicts its cheapest resident or raises
        :class:`~repro.errors.MempoolFullError` (see
        :mod:`repro.chain.mempool`).
        """
        if contract.address not in self.contracts:
            raise ChainError("contract is not deployed on this chain")
        return self.mempool.add(sender, contract, method, tuple(args), value, fee, gas_limit)

    def execute_batch(self, batch: list[PendingTx]) -> tuple[list, list]:
        """Execute one lane's mined transactions in priority order.

        Returns ``(executed, dropped)``: ``executed`` pairs each
        transaction with its receipt (possibly a failed one); ``dropped``
        holds transactions an injected ``chain.transact`` drop removed
        from flight — they were *not* mined and left no receipt.
        """
        executed, dropped = [], []
        for tx in batch:
            try:
                receipt = self.transact(
                    tx.sender,
                    tx.contract,
                    tx.method,
                    *tx.args,
                    value=tx.value,
                    gas_limit=tx.gas_limit,
                )
            except TxDroppedError:
                dropped.append(tx)
                continue
            except TxRevertedError:
                executed.append((tx, self.receipts[-1]))
                continue
            executed.append((tx, receipt))
        return executed, dropped

    def mine_round(self, max_txs_per_lane: int = 64) -> MiningRound:
        """Mine one round: pull fee-ordered transactions from the mempool
        (up to ``max_txs_per_lane`` for each lane), execute them, and
        seal one block per lane that did any work."""
        round_ = MiningRound()
        batches = self.mempool.take_round(self.lane_of, self.lanes, max_txs_per_lane)
        for lane, batch in enumerate(batches):
            executed, dropped = self.execute_batch(batch)
            round_.executed.extend(executed)
            round_.dropped.extend(dropped)
            if self._pending[lane]:
                round_.blocks.append(self.seal_lane(lane))
        return round_

    # ----- blocks -----------------------------------------------------------------

    def seal_lane(self, lane: int) -> Block:
        """Group one lane's pending transactions into its next block."""
        if not 0 <= lane < self.lanes:
            raise ChainError("no such lane %d" % lane)
        head = self._lane_heads[lane]
        pending = self._pending[lane]
        block = Block(head.number + 1, head.hash, tuple(r.tx_hash for r in pending), lane)
        for receipt in pending:
            receipt.block_number = block.number
        self._pending[lane] = []
        self.blocks.append(block)
        self._lane_heads[lane] = block
        return block

    def seal_block(self) -> Block:
        """Seed-compatible single-lane sealing (lane 0)."""
        return self.seal_lane(0)

    def seal_round(self, include_empty: bool = False) -> list[Block]:
        """Seal every lane that has pending transactions (all lanes with
        ``include_empty=True``)."""
        return [
            self.seal_lane(lane)
            for lane in range(self.lanes)
            if include_empty or self._pending[lane]
        ]

    def verify_chain(self) -> bool:
        """Check per-lane block hash linkage (the tamper-resistance
        assumption); with one lane this is the seed's single chain."""
        heads: dict[int, Block] = {}
        for block in self.blocks:
            prev = heads.get(block.lane)
            if prev is None:
                if block.number != 0 or block.parent_hash != "0" * 64:
                    return False
            elif block.parent_hash != prev.hash or block.number != prev.number + 1:
                return False
            heads[block.lane] = block
        return True

    def total_balance(self) -> int:
        """Sum of every account and contract balance — the quantity the
        load simulator's conservation invariant holds constant."""
        return sum(self._balances.values())

    # ----- queries ------------------------------------------------------------------

    def events(self, name: str | None = None, address: str | None = None) -> list[Event]:
        """All events across successful transactions, optionally filtered."""
        return self.query_events(name=name, address=address)

    def query_events(
        self,
        name: str | None = None,
        address: str | None = None,
        where=None,
        **fields,
    ) -> list[Event]:
        """Filter the event log without hand-rolled receipt scans.

        Combines (AND semantics) any of: event ``name``, emitting contract
        ``address`` (a hex string or a deployed :class:`Contract`), exact
        ``field=value`` matches on event fields, and an arbitrary
        ``where(event) -> bool`` predicate for anything richer::

            chain.query_events("Transfer", token_id=3)
            chain.query_events("Locked", address=arbiter, where=lambda e: e.get("amount") > 10**6)

        Events are returned in emission order across all successful
        transactions (reverted transactions log nothing).  Under a fault
        plan the ``chain.events`` site models event-delivery lag: a
        ``delay`` fault raises :class:`repro.errors.EventDelayError`
        (transient — re-query after backoff).
        """
        faults.check("chain.events")
        if address is not None and not isinstance(address, str):
            address = address.address  # a deployed Contract instance
        # Name/address narrowing is an O(1) posting-list hit in the
        # emission-order index; only the already-narrowed candidates pay
        # the per-event field/predicate checks.
        out = []
        for event in self._event_index.select(name=name, address=address):
            if fields and any(event.get(k) != v for k, v in fields.items()):
                continue
            if where is not None and not where(event):
                continue
            out.append(event)
        return out

    def query_events_linear(
        self,
        name: str | None = None,
        address: str | None = None,
        where=None,
        **fields,
    ) -> list[Event]:
        """Reference receipt-scan implementation of :meth:`query_events`.

        Retained as the oracle the index is tested against (same
        filters, same emission order, no index) — not for production
        use.  Deliberately does *not* consult the fault plane: oracle
        reads must be deterministic.
        """
        if address is not None and not isinstance(address, str):
            address = address.address
        out = []
        for receipt in self.receipts:
            for event in receipt.events:
                if name is not None and event.name != name:
                    continue
                if address is not None and event.address != address:
                    continue
                if fields and any(event.get(k) != v for k, v in fields.items()):
                    continue
                if where is not None and not where(event):
                    continue
                out.append(event)
        return out
