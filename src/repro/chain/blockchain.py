"""The simulated blockchain: accounts, transactions, blocks.

Implements the standard assumptions of the paper's threat model
(Section IV-A): the chain is tamper-resistant (blocks are hash-chained and
:meth:`Blockchain.verify_chain` detects modification) and consistent (one
world state; every transaction either commits atomically or reverts).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro import faults
from repro.errors import ChainError, ContractError, OutOfGasError, TxRevertedError
from repro.chain.contract import Contract, ExecutionContext
from repro.chain.events import Event, EventIndex
from repro.chain.gas import DEFAULT_SCHEDULE, GasSchedule


def encode_calldata(method: str, args: tuple) -> bytes:
    """Deterministic ABI-style encoding used for calldata gas metering."""
    out = bytearray(hashlib.sha256(method.encode()).digest()[:4])

    def enc(value):
        if isinstance(value, bool):
            out.extend(int(value).to_bytes(32, "big"))
        elif isinstance(value, int):
            out.extend((value % (1 << 256)).to_bytes(32, "big"))
        elif isinstance(value, str):
            out.extend(len(value).to_bytes(32, "big"))
            out.extend(value.encode())
        elif isinstance(value, bytes):
            out.extend(len(value).to_bytes(32, "big"))
            out.extend(value)
        elif isinstance(value, (list, tuple)):
            out.extend(len(value).to_bytes(32, "big"))
            for item in value:
                enc(item)
        elif value is None:
            out.extend(b"\x00" * 32)
        else:  # objects with a canonical byte form
            to_bytes = getattr(value, "to_bytes", None)
            if callable(to_bytes):
                data = value.to_bytes()
                out.extend(len(data).to_bytes(32, "big"))
                out.extend(data)
            else:
                raise ChainError("cannot encode calldata value %r" % (value,))

    for a in args:
        enc(a)
    return bytes(out)


@dataclass
class TransactionReceipt:
    """Outcome of a transaction."""

    tx_hash: str
    sender: str
    to: str
    method: str
    gas_used: int
    status: bool
    events: list
    return_value: object = None
    error: str | None = None
    block_number: int | None = None

    def span_attrs(self, prefix: str = "tx") -> dict:
        """This receipt as flat span attributes (gas, status, event names).

        The telemetry layer attaches these to protocol-step spans so a
        trace carries the matching on-chain evidence for every step.
        """
        attrs = {
            prefix + ".method": self.method,
            prefix + ".gas": self.gas_used,
            prefix + ".status": self.status,
            prefix + ".events": [e.name for e in self.events],
        }
        if self.error:
            attrs[prefix + ".error"] = self.error
        return attrs


@dataclass(frozen=True)
class Block:
    number: int
    parent_hash: str
    tx_hashes: tuple

    @property
    def hash(self) -> str:
        payload = "%d:%s:%s" % (self.number, self.parent_hash, ",".join(self.tx_hashes))
        return hashlib.sha256(payload.encode()).hexdigest()


class Blockchain:
    """A single-node simulated chain with deterministic gas metering."""

    def __init__(self, schedule: GasSchedule = DEFAULT_SCHEDULE):
        self.schedule = schedule
        self._balances: dict[str, int] = {}
        self._nonces: dict[str, int] = {}
        self.contracts: dict[str, Contract] = {}
        self.receipts: list[TransactionReceipt] = []
        self._event_index = EventIndex()
        self.blocks: list[Block] = []
        self._pending: list[str] = []
        self._counter = itertools.count(1)
        self._genesis()

    def _genesis(self) -> None:
        self.blocks.append(Block(0, "0" * 64, ()))

    # ----- accounts -----------------------------------------------------------

    def create_account(self, funded: int = 0) -> str:
        """Create an externally owned account with an optional balance."""
        address = "0x" + hashlib.sha256(b"account:%d" % next(self._counter)).hexdigest()[:40]
        self._balances[address] = funded
        self._nonces[address] = 0
        return address

    def balance_of(self, address: str) -> int:
        return self._balances.get(address, 0)

    def faucet(self, address: str, amount: int) -> None:
        """Credit an account (test/benchmark convenience)."""
        self._balances[address] = self.balance_of(address) + amount

    def _move_balance(self, sender: str, to: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("negative transfer")
        if self.balance_of(sender) < amount:
            raise ContractError("insufficient balance in %s" % sender)
        self._balances[sender] = self.balance_of(sender) - amount
        self._balances[to] = self.balance_of(to) + amount

    # ----- deployment -----------------------------------------------------------

    def deploy(self, contract: Contract, sender: str) -> TransactionReceipt:
        """Deploy a contract instance; gas follows the code-deposit rule."""
        address = "0x" + hashlib.sha256(
            b"contract:%s:%d" % (type(contract).__name__.encode(), next(self._counter))
        ).hexdigest()[:40]
        contract._bind(self, address)
        self.contracts[address] = contract
        self._balances[address] = 0
        gas = self.schedule.deployment_cost(contract.code_size())
        receipt = self._record(
            sender, address, "<deploy:%s>" % type(contract).__name__, gas, True, [], address
        )
        return receipt

    # ----- transactions -----------------------------------------------------------

    def transact(
        self,
        sender: str,
        contract: Contract,
        method: str,
        *args,
        value: int = 0,
        gas_limit: int = 30_000_000,
    ) -> TransactionReceipt:
        """Execute a state-changing contract call as one atomic transaction.

        Under a fault plan the ``chain.transact`` site can inject: a
        ``drop`` (the transaction is never mined — no receipt, no nonce
        bump, :class:`TxDroppedError` raised for the submitter to retry),
        a ``revert`` (mined but reverted before the call body ran: a
        failed receipt is recorded and :class:`TxRevertedError` raised),
        or a ``delay`` (inclusion latency on the virtual clock).
        """
        if contract.address not in self.contracts:
            raise ChainError("contract is not deployed on this chain")
        fn = getattr(contract, method, None)
        if fn is None or not getattr(fn, "_is_external", False):
            raise ChainError("method %r is not an external entry point" % method)
        try:
            faults.check("chain.transact")
        except TxRevertedError as exc:
            # Mined-but-reverted: the chain records the failed attempt.
            self._nonces[sender] = self._nonces.get(sender, 0) + 1
            self._record(sender, contract.address, method,
                         self.schedule.tx_base, False, [], None, str(exc))
            raise
        calldata = encode_calldata(method, args)
        ctx = ExecutionContext(self, sender, value, gas_limit)
        self._nonces[sender] = self._nonces.get(sender, 0) + 1

        balance_snapshot = dict(self._balances)
        contract._ctx = ctx
        status, ret, error = True, None, None
        try:
            ctx.burn(self.schedule.tx_base + self.schedule.calldata_cost(calldata))
            if value:
                self._move_balance(sender, contract.address, value)
            ret = fn(*args)
        except (ContractError, OutOfGasError) as exc:
            status, error = False, str(exc)
            ctx.revert_writes()
            self._balances = balance_snapshot
        finally:
            contract._ctx = None

        return self._record(
            sender,
            contract.address,
            method,
            ctx.gas_used,
            status,
            ctx.events if status else [],
            ret,
            error,
        )

    def call_view(self, contract: Contract, method: str, *args):
        """Free read-only call."""
        fn = getattr(contract, method, None)
        if fn is None or not getattr(fn, "_is_view", False):
            raise ChainError("method %r is not a view" % method)
        return fn(*args)

    def _record(self, sender, to, method, gas, status, events, ret, error=None):
        tx_hash = hashlib.sha256(
            b"%s:%s:%s:%d" % (sender.encode(), to.encode(), method.encode(), len(self.receipts))
        ).hexdigest()
        receipt = TransactionReceipt(
            tx_hash, sender, to, method, gas, status, list(events), ret, error
        )
        self.receipts.append(receipt)
        for event in receipt.events:
            self._event_index.add(event)
        self._pending.append(tx_hash)
        return receipt

    # ----- blocks -----------------------------------------------------------------

    def seal_block(self) -> Block:
        """Group pending transactions into a new block."""
        block = Block(len(self.blocks), self.blocks[-1].hash, tuple(self._pending))
        for r in self.receipts:
            if r.tx_hash in self._pending and r.block_number is None:
                r.block_number = block.number
        self._pending = []
        self.blocks.append(block)
        return block

    def verify_chain(self) -> bool:
        """Check block hash linkage (the tamper-resistance assumption)."""
        for prev, cur in zip(self.blocks, self.blocks[1:]):
            if cur.parent_hash != prev.hash:
                return False
        return True

    # ----- queries ------------------------------------------------------------------

    def events(self, name: str | None = None, address: str | None = None) -> list[Event]:
        """All events across successful transactions, optionally filtered."""
        return self.query_events(name=name, address=address)

    def query_events(
        self,
        name: str | None = None,
        address: str | None = None,
        where=None,
        **fields,
    ) -> list[Event]:
        """Filter the event log without hand-rolled receipt scans.

        Combines (AND semantics) any of: event ``name``, emitting contract
        ``address`` (a hex string or a deployed :class:`Contract`), exact
        ``field=value`` matches on event fields, and an arbitrary
        ``where(event) -> bool`` predicate for anything richer::

            chain.query_events("Transfer", token_id=3)
            chain.query_events("Locked", address=arbiter, where=lambda e: e.get("amount") > 10**6)

        Events are returned in emission order across all successful
        transactions (reverted transactions log nothing).  Under a fault
        plan the ``chain.events`` site models event-delivery lag: a
        ``delay`` fault raises :class:`repro.errors.EventDelayError`
        (transient — re-query after backoff).
        """
        faults.check("chain.events")
        if address is not None and not isinstance(address, str):
            address = address.address  # a deployed Contract instance
        # Name/address narrowing is an O(1) posting-list hit in the
        # emission-order index; only the already-narrowed candidates pay
        # the per-event field/predicate checks.
        out = []
        for event in self._event_index.select(name=name, address=address):
            if fields and any(event.get(k) != v for k, v in fields.items()):
                continue
            if where is not None and not where(event):
                continue
            out.append(event)
        return out

    def query_events_linear(
        self,
        name: str | None = None,
        address: str | None = None,
        where=None,
        **fields,
    ) -> list[Event]:
        """Reference receipt-scan implementation of :meth:`query_events`.

        Retained as the oracle the index is tested against (same
        filters, same emission order, no index) — not for production
        use.  Deliberately does *not* consult the fault plane: oracle
        reads must be deterministic.
        """
        if address is not None and not isinstance(address, str):
            address = address.address
        out = []
        for receipt in self.receipts:
            for event in receipt.events:
                if name is not None and event.name != name:
                    continue
                if address is not None and event.address != address:
                    continue
                if fields and any(event.get(k) != v for k, v in fields.items()):
                    continue
                if where is not None and not where(event):
                    continue
                out.append(event)
        return out
