"""Ethereum-style gas schedule.

Costs follow the mainnet schedule (post-Berlin, without refunds): this is
what makes the Table II reproduction principled — we meter the same
operations (storage writes, cold/warm reads, logs, calldata, code deposit,
precompiles) at the same prices, rather than hard-coding the paper's
totals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas prices."""

    tx_base: int = 21000
    contract_creation: int = 32000
    code_deposit_per_byte: int = 200
    calldata_zero_byte: int = 4
    calldata_nonzero_byte: int = 16
    sstore_set: int = 20000  # zero -> nonzero
    sstore_reset: int = 2900  # nonzero -> nonzero (cold, post-Berlin: 5000-2100)
    sstore_clear: int = 2900  # nonzero -> zero (refunds ignored)
    sstore_warm: int = 100  # rewrite of an already-written slot this tx
    sload_cold: int = 2100
    sload_warm: int = 100
    log_base: int = 375
    log_topic: int = 375
    log_data_per_byte: int = 8
    ecadd: int = 150
    ecmul: int = 6000
    pairing_base: int = 45000
    pairing_per_pair: int = 34000
    sha_base: int = 60
    sha_per_word: int = 12
    value_transfer_stipend: int = 9000

    def calldata_cost(self, data: bytes) -> int:
        """Intrinsic cost of a transaction's input data."""
        zeros = data.count(0)
        return zeros * self.calldata_zero_byte + (len(data) - zeros) * self.calldata_nonzero_byte

    def deployment_cost(self, code_size: int) -> int:
        """Cost of deploying ``code_size`` bytes of contract code."""
        return self.tx_base + self.contract_creation + code_size * self.code_deposit_per_byte

    def pairing_cost(self, num_pairs: int) -> int:
        """Cost of the BN254 pairing-check precompile."""
        return self.pairing_base + num_pairs * self.pairing_per_pair


DEFAULT_SCHEDULE = GasSchedule()
