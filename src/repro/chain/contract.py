"""Contract runtime: metered storage, events, and call contexts.

Contracts are Python classes deriving from :class:`Contract`.  State lives
in a per-contract key/value store accessed through ``self._sload`` /
``self._sstore``, which meter gas exactly like EVM storage opcodes (cold
and warm access, set vs. reset) and journal writes so a revert restores
the pre-transaction state.  ``@external`` methods mutate state and must be
invoked through :meth:`repro.chain.blockchain.Blockchain.transact`;
``@view`` methods are free reads.
"""

from __future__ import annotations

import functools

from repro import faults
from repro.errors import ContractError, OutOfGasError, TxRevertedError
from repro.chain.events import Event
from repro.chain.gas import GasSchedule

#: Gas charged for an internal contract-to-contract call (cold account).
INTERNAL_CALL_GAS = 2600


class ExecutionContext:
    """Per-transaction execution state: gas, journal, events, sender."""

    def __init__(self, chain, sender: str, value: int, gas_limit: int):
        self.chain = chain
        self.sender = sender
        self.value = value
        self.gas_limit = gas_limit
        self.gas_used = 0
        self.events: list[Event] = []
        self.journal: list[tuple] = []  # (storage_dict, key, old_value, existed)
        self.accessed: set = set()
        self.written: set = set()

    def burn(self, amount: int) -> None:
        """Charge gas, aborting the transaction when the limit is exceeded."""
        self.gas_used += amount
        if self.gas_used > self.gas_limit:
            raise OutOfGasError(
                "gas limit %d exceeded (used %d)" % (self.gas_limit, self.gas_used)
            )

    def revert_writes(self) -> None:
        """Undo every journaled storage write (LIFO)."""
        for storage, key, old, existed in reversed(self.journal):
            if existed:
                storage[key] = old
            else:
                storage.pop(key, None)
        self.journal.clear()


def external(method):
    """Mark a state-changing contract entry point."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if self._ctx is None:
            raise ContractError(
                "external method %s must be invoked via Blockchain.transact"
                % method.__name__
            )
        return method(self, *args, **kwargs)

    wrapper._is_external = True
    return wrapper


def view(method):
    """Mark a read-only method (free, callable without a transaction)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        return method(self, *args, **kwargs)

    wrapper._is_view = True
    return wrapper


class Contract:
    """Base class for all on-chain contracts."""

    #: Extra constant data embedded in the deployed code (e.g. a hardcoded
    #: verification key), counted toward the code-deposit gas.
    extra_code_bytes = 0

    def __init__(self):
        self.address: str | None = None
        self._chain = None
        self._storage: dict = {}
        self._ctx: ExecutionContext | None = None

    # ----- runtime plumbing -----------------------------------------------------

    def _bind(self, chain, address: str) -> None:
        self._chain = chain
        self.address = address

    @property
    def msg_sender(self) -> str:
        """Sender of the current transaction."""
        if self._ctx is None:
            raise ContractError("no active transaction")
        return self._ctx.sender

    @property
    def msg_value(self) -> int:
        """Value attached to the current transaction."""
        if self._ctx is None:
            raise ContractError("no active transaction")
        return self._ctx.value

    @property
    def schedule(self) -> GasSchedule:
        return self._chain.schedule

    # ----- metered storage --------------------------------------------------------

    def _sload(self, key):
        """Read a storage slot (charges cold/warm SLOAD gas)."""
        ctx = self._ctx
        if ctx is not None:
            slot = (self.address, key)
            if slot in ctx.accessed or slot in ctx.written:
                ctx.burn(self.schedule.sload_warm)
            else:
                ctx.burn(self.schedule.sload_cold)
                ctx.accessed.add(slot)
        return self._storage.get(key)

    def _sstore(self, key, value) -> None:
        """Write a storage slot (charges SSTORE gas, journals the write)."""
        ctx = self._ctx
        if ctx is None:
            raise ContractError("storage writes require an active transaction")
        slot = (self.address, key)
        existed = key in self._storage
        old = self._storage.get(key)
        if slot in ctx.written:
            ctx.burn(self.schedule.sstore_warm)
        elif value is None:
            # Clearing: a real delete if the slot held data, else a no-op
            # write (EVM charges only the warm access for zero -> zero).
            ctx.burn(
                self.schedule.sstore_clear
                if existed and old is not None
                else self.schedule.sstore_warm
            )
        elif not existed or old is None:
            ctx.burn(self.schedule.sstore_set)
        else:
            ctx.burn(self.schedule.sstore_reset)
        ctx.written.add(slot)
        ctx.journal.append((self._storage, key, old, existed))
        self._storage[key] = value

    # ----- events and funds -------------------------------------------------------

    def emit(self, name: str, **fields) -> None:
        """Emit an event (charges LOG gas)."""
        ctx = self._ctx
        if ctx is None:
            raise ContractError("events require an active transaction")
        data_len = sum(len(repr(v).encode()) for v in fields.values())
        ctx.burn(
            self.schedule.log_base
            + self.schedule.log_topic * (1 + len(fields))
            + self.schedule.log_data_per_byte * data_len
        )
        ctx.events.append(Event(self.address, name, tuple(fields.items())))

    def transfer_out(self, to: str, amount: int) -> None:
        """Send funds held by this contract to ``to``."""
        ctx = self._ctx
        if ctx is None:
            raise ContractError("transfers require an active transaction")
        ctx.burn(self.schedule.value_transfer_stipend)
        self._chain._move_balance(self.address, to, amount)

    def call_contract(self, other: "Contract", method: str, *args):
        """Internal call into another contract, sharing this transaction.

        The ``chain.call`` fault site models a transient failure inside
        the callee (out-of-gas spike, unreachable precompile): a
        ``revert`` fault aborts the *whole* transaction atomically via
        the normal :class:`ContractError` revert machinery, so callers
        observe a failed receipt with every journaled write undone.
        """
        ctx = self._ctx
        if ctx is None:
            raise ContractError("internal calls require an active transaction")
        try:
            faults.check("chain.call")
        except TxRevertedError as exc:
            raise ContractError(str(exc)) from exc
        ctx.burn(INTERNAL_CALL_GAS)
        fn = getattr(other, method)
        # msg.sender follows EVM CALL semantics: the immediate caller.
        prev_sender = ctx.sender
        ctx.sender = self.address
        other._ctx = ctx
        try:
            return fn(*args)
        finally:
            other._ctx = None
            ctx.sender = prev_sender

    def require(self, condition: bool, message: str) -> None:
        """Solidity-style require: revert the transaction when False."""
        if not condition:
            raise ContractError(message)

    # ----- code-size model ----------------------------------------------------------

    def code_size(self) -> int:
        """Approximate deployed byte-code size.

        Sums the CPython bytecode of every method — a stable, structural
        proxy for compiled contract size (CPython and EVM bytecode have
        comparable densities for this kind of bookkeeping code) — plus
        any embedded constants declared via ``extra_code_bytes`` (e.g. a
        hardcoded verification key and pairing library).
        """
        cls = type(self)
        total = 0
        for name in dir(cls):
            attr = getattr(cls, name)
            fn = getattr(attr, "__wrapped__", attr)
            code = getattr(fn, "__code__", None)
            if code is not None:
                total += len(code.co_code)
        return total + self.extra_code_bytes
