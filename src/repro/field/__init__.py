"""Finite-field arithmetic for the BN254 scalar field.

The submodules expose two styles of API:

- :class:`repro.field.fr.Fr` — an ergonomic wrapper type used at protocol
  boundaries (commitments, keys, dataset entries);
- raw ``int`` values modulo :data:`repro.field.fr.MODULUS` — used by the
  polynomial / NTT / prover hot loops, where object overhead matters in
  CPython.
"""

from repro.field.fr import (
    Fr,
    MODULUS,
    batch_inverse,
    inv,
    rand_fr,
    random_scalar,
    root_of_unity,
)
from repro.field.ntt import Domain
from repro.field import poly

__all__ = [
    "Fr",
    "MODULUS",
    "Domain",
    "batch_inverse",
    "inv",
    "poly",
    "rand_fr",
    "random_scalar",
    "root_of_unity",
]
