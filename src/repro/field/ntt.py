"""Radix-2 number-theoretic transforms over the BN254 scalar field.

The Plonk prover evaluates and interpolates polynomials over multiplicative
subgroups H = <omega> of size 2^k, and over cosets g*H when the vanishing
polynomial of H must be non-zero (quotient computation).  :class:`Domain`
bundles a subgroup with its precomputed twiddle factors.
"""

from __future__ import annotations

from repro import substrate
from repro import telemetry as _tel
from repro.errors import FieldError
from repro.field.fr import MODULUS, batch_inverse, inv, root_of_unity
from repro.field.frvec import as_scalar_list

_R = MODULUS

#: Multiplicative shift used for coset evaluation domains.  Any element
#: outside every 2-adic subgroup works; 7 is the conventional choice.
COSET_SHIFT = 7


def _bit_reverse_permute(values: list[int]) -> None:
    """Permute ``values`` in place into bit-reversed index order."""
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def _ntt_in_place_ref(values: list[int], twiddles: list[int]) -> None:
    """Reference Cooley-Tukey butterflies: one ``%`` per add and sub.

    Retained as the bit-identity oracle for the lazy-reduction kernel
    below (``tests/test_differential.py`` asserts equality on random
    vectors) and as the butterfly the *reference* substrate mode runs.
    """
    n = len(values)
    _bit_reverse_permute(values)
    length = 2
    while length <= n:
        half = length >> 1
        step = n // length
        for start in range(0, n, length):
            idx = 0
            for k in range(start, start + half):
                w = twiddles[idx]
                u = values[k]
                t = values[k + half] * w % _R
                values[k] = (u + t) % _R
                values[k + half] = (u - t) % _R
                idx += step
        length <<= 1


def _ntt_in_place_fast(values: list[int], twiddles: list[int]) -> None:
    """Lazy-reduction butterflies over the contiguous value vector.

    Inputs must be canonical (in ``[0, r)``); every butterfly keeps both
    outputs canonical with a compare-and-correct instead of a full
    bigint ``%`` — on 254-bit operands a subtraction is several times
    cheaper than a reduction, and the add/sub reductions are half of the
    butterfly's modular work.  The first level (``length == 2``) always
    multiplies by ``w == 1``, so its n/2 twiddle multiplications are
    skipped outright.  Outputs are bit-identical to
    :func:`_ntt_in_place_ref` by construction.
    """
    n = len(values)
    _bit_reverse_permute(values)
    if n >= 2:
        # length == 2: w is always twiddles[0] == 1.
        for k in range(0, n, 2):
            u = values[k]
            t = values[k + 1]
            v0 = u + t
            if v0 >= _R:
                v0 -= _R
            v1 = u - t
            if v1 < 0:
                v1 += _R
            values[k] = v0
            values[k + 1] = v1
    length = 4
    while length <= n:
        half = length >> 1
        step = n // length
        for start in range(0, n, length):
            idx = 0
            for k in range(start, start + half):
                u = values[k]
                if idx:
                    t = values[k + half] * twiddles[idx] % _R
                else:
                    t = values[k + half]
                v0 = u + t
                if v0 >= _R:
                    v0 -= _R
                v1 = u - t
                if v1 < 0:
                    v1 += _R
                values[k] = v0
                values[k + half] = v1
                idx += step
        length <<= 1


def _ntt_in_place(values: list[int], twiddles: list[int]) -> None:
    """Dispatch to the substrate's active butterfly kernel."""
    if substrate.fast_enabled():
        _ntt_in_place_fast(values, twiddles)
    else:
        _ntt_in_place_ref(values, twiddles)


class Domain:
    """A radix-2 evaluation domain H of size ``n`` with FFT support.

    Attributes:
        n: domain size (power of two).
        omega: generator of H (primitive n-th root of unity).
        elements: the points ``[1, omega, omega**2, ...]``.
    """

    _cache: dict[int, "Domain"] = {}

    def __init__(self, n: int):
        if n <= 0 or n & (n - 1):
            raise FieldError("domain size must be a power of two, got %r" % n)
        self.n = n
        self.omega = root_of_unity(n) if n > 1 else 1
        self.omega_inv = inv(self.omega)
        self.n_inv = inv(n)
        half = max(n >> 1, 1)
        self._twiddles = [1] * half
        self._inv_twiddles = [1] * half
        w = wi = 1
        for i in range(1, half):
            w = w * self.omega % _R
            wi = wi * self.omega_inv % _R
            self._twiddles[i] = w
            self._inv_twiddles[i] = wi
        self._elements: list[int] | None = None

    @classmethod
    def from_tables(
        cls,
        n: int,
        omega: int,
        omega_inv: int,
        n_inv: int,
        twiddles: list[int],
        inv_twiddles: list[int],
    ) -> "Domain":
        """Reconstruct a domain from precomputed tables, skipping the O(n) build.

        The shared-memory NTT dispatch packs a domain's twiddle tables
        into a segment once in the parent; forked workers rebuild the
        domain from the attached cells instead of re-running the
        ``__init__`` twiddle loop per process.  Tables are trusted —
        bit-identity with a locally built domain is guarded by
        ``tests/test_differential.py``.
        """
        if n <= 0 or n & (n - 1):
            raise FieldError("domain size must be a power of two, got %r" % n)
        half = max(n >> 1, 1)
        if len(twiddles) != half or len(inv_twiddles) != half:
            raise FieldError(
                "expected %d twiddles for domain of size %d, got %d/%d"
                % (half, n, len(twiddles), len(inv_twiddles))
            )
        dom = cls.__new__(cls)
        dom.n = n
        dom.omega = omega
        dom.omega_inv = omega_inv
        dom.n_inv = n_inv
        dom._twiddles = list(twiddles)
        dom._inv_twiddles = list(inv_twiddles)
        dom._elements = None
        return dom

    @classmethod
    def seed_cache(cls, dom: "Domain") -> None:
        """Install a reconstructed domain into the process-wide cache.

        A no-op when a domain of that size is already cached — a locally
        built table is never displaced by an attached one.
        """
        cls._cache.setdefault(dom.n, dom)

    def tables(self) -> tuple[list[int], list[int]]:
        """The forward and inverse twiddle tables (read-only views)."""
        return self._twiddles, self._inv_twiddles

    @classmethod
    def get(cls, n: int) -> "Domain":
        """Return a cached domain of size ``n`` (domains are immutable)."""
        dom = cls._cache.get(n)
        if _tel.metrics_enabled():
            _tel.counter(
                "engine.cache.hits" if dom is not None else "engine.cache.misses",
                cache="ntt_plan",
            ).inc()
        if dom is None:
            dom = cls(n)
            cls._cache[n] = dom
        return dom

    @property
    def elements(self) -> list[int]:
        """All domain points in order ``omega**0 .. omega**(n-1)``.

        Computed once and cached; callers must treat the list as
        read-only.
        """
        if self._elements is None:
            out = [1] * self.n
            acc = 1
            for i in range(1, self.n):
                acc = acc * self.omega % _R
                out[i] = acc
            self._elements = out
        return self._elements

    def fft(self, coeffs: list[int]) -> list[int]:
        """Evaluate the polynomial with ``coeffs`` over H.

        ``coeffs`` is a list or a contiguous
        :class:`~repro.field.frvec.ScalarVector` (converted once at this
        boundary).  Input shorter than ``n`` is zero-padded; longer input
        is an error (it would alias).
        """
        if not isinstance(coeffs, list):
            coeffs = as_scalar_list(coeffs)
        if len(coeffs) > self.n:
            raise FieldError("polynomial degree too large for domain")
        values = [c % _R for c in coeffs] + [0] * (self.n - len(coeffs))
        _ntt_in_place(values, self._twiddles)
        return values

    def ifft(self, evals: list[int]) -> list[int]:
        """Interpolate a polynomial (coefficients) from evaluations over H."""
        if not isinstance(evals, list):
            evals = as_scalar_list(evals)
        if len(evals) != self.n:
            raise FieldError("expected %d evaluations, got %d" % (self.n, len(evals)))
        values = [v % _R for v in evals]
        _ntt_in_place(values, self._inv_twiddles)
        ninv = self.n_inv
        return [v * ninv % _R for v in values]

    def coset_fft(self, coeffs: list[int], shift: int = COSET_SHIFT) -> list[int]:
        """Evaluate over the coset ``shift * H``."""
        if not isinstance(coeffs, list):
            coeffs = as_scalar_list(coeffs)
        if len(coeffs) > self.n:
            raise FieldError("polynomial degree too large for domain")
        scaled = []
        acc = 1
        for c in coeffs:
            scaled.append(c * acc % _R)
            acc = acc * shift % _R
        return self.fft(scaled)

    def coset_ifft(self, evals: list[int], shift: int = COSET_SHIFT) -> list[int]:
        """Interpolate from evaluations over the coset ``shift * H``."""
        coeffs = self.ifft(evals)
        shift_inv = inv(shift)
        acc = 1
        out = []
        for c in coeffs:
            out.append(c * acc % _R)
            acc = acc * shift_inv % _R
        return out

    def vanishing_eval(self, x: int) -> int:
        """Evaluate the vanishing polynomial Z_H(X) = X^n - 1 at ``x``."""
        return (pow(x, self.n, _R) - 1) % _R

    def vanishing_on_coset(self, coset_size: int, shift: int = COSET_SHIFT) -> list[int]:
        """Evaluations of Z_H over a coset of a larger domain.

        Returns ``Z_H(shift * W**i)`` for the size-``coset_size`` domain
        generated by ``W``.  Because Z_H(X) = X^n - 1 only depends on X^n,
        the result is periodic and cheap to compute.
        """
        if coset_size % self.n:
            raise FieldError("coset domain must be a multiple of the base domain")
        big = Domain.get(coset_size)
        w_n = pow(big.omega, self.n, _R)
        shift_n = pow(shift, self.n, _R)
        period = coset_size // self.n
        base = []
        acc = shift_n
        for _ in range(period):
            base.append((acc - 1) % _R)
            acc = acc * w_n % _R
        return [base[i % period] for i in range(coset_size)]

    def lagrange_basis_eval(self, index: int, x: int) -> int:
        """Evaluate the Lagrange basis polynomial L_index(X) of H at ``x``.

        Uses L_i(x) = omega^i * (x^n - 1) / (n * (x - omega^i)).
        """
        point = pow(self.omega, index, _R)
        denom = (x - point) % _R
        if denom == 0:
            return 1 if x == point else 0
        zh = self.vanishing_eval(x)
        return point * zh % _R * self.n_inv % _R * inv(denom) % _R

    def lagrange_basis_evals(self, count: int, x: int) -> list[int]:
        """Evaluate ``L_0 .. L_{count-1}`` at ``x`` with one batched inverse."""
        if count == 0:
            return []
        zh = self.vanishing_eval(x)
        points = [1] * count
        for i in range(1, count):
            points[i] = points[i - 1] * self.omega % _R
        denoms = [(x - p) % _R for p in points]
        if any(d == 0 for d in denoms):
            return [self.lagrange_basis_eval(i, x) for i in range(count)]
        inv_denoms = batch_inverse(denoms)
        return [points[i] * zh % _R * self.n_inv % _R * inv_denoms[i] % _R for i in range(count)]
