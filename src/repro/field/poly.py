"""Dense polynomial arithmetic over the BN254 scalar field.

Polynomials are plain lists of int coefficients, lowest degree first.  All
functions are pure and never mutate their inputs.  Multiplication switches
to NTT-based convolution above a size threshold.
"""

from __future__ import annotations

from repro.errors import FieldError
from repro.field.fr import MODULUS, inv
from repro.field.ntt import Domain

_R = MODULUS

#: Below this operand size, schoolbook multiplication beats the NTT.
_NTT_THRESHOLD = 64


def trim(p: list[int]) -> list[int]:
    """Strip trailing zero coefficients (canonical form)."""
    end = len(p)
    while end > 0 and p[end - 1] % _R == 0:
        end -= 1
    return [c % _R for c in p[:end]]


def degree(p: list[int]) -> int:
    """Degree of ``p`` with the convention deg(0) = -1."""
    return len(trim(p)) - 1


def add(p: list[int], q: list[int]) -> list[int]:
    """Return ``p + q``."""
    if len(p) < len(q):
        p, q = q, p
    out = list(p)
    for i, c in enumerate(q):
        out[i] = (out[i] + c) % _R
    return out


def sub(p: list[int], q: list[int]) -> list[int]:
    """Return ``p - q``."""
    out = list(p) + [0] * max(0, len(q) - len(p))
    for i, c in enumerate(q):
        out[i] = (out[i] - c) % _R
    return out


def scale(p: list[int], k: int) -> list[int]:
    """Return ``k * p``."""
    k %= _R
    return [c * k % _R for c in p]


def mul(p: list[int], q: list[int]) -> list[int]:
    """Return the product ``p * q``."""
    p, q = trim(p), trim(q)
    if not p or not q:
        return []
    if len(p) + len(q) <= _NTT_THRESHOLD:
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                out[i + j] = (out[i + j] + a * b) % _R
        return out
    size = 1
    while size < len(p) + len(q) - 1:
        size <<= 1
    dom = Domain.get(size)
    ep = dom.fft(p)
    eq = dom.fft(q)
    return trim(dom.ifft([a * b % _R for a, b in zip(ep, eq)]))


def evaluate(p: list[int], x: int) -> int:
    """Evaluate ``p`` at ``x`` by Horner's rule."""
    acc = 0
    for c in reversed(p):
        acc = (acc * x + c) % _R
    return acc


def shift_degree(p: list[int], k: int) -> list[int]:
    """Return ``X**k * p`` (multiply by a monomial)."""
    if k < 0:
        raise FieldError("negative degree shift")
    return [0] * k + list(p)


def divide_by_linear(p: list[int], z: int) -> list[int]:
    """Return ``p / (X - z)``, requiring the division to be exact.

    Synthetic (Ruffini) division; raises :class:`FieldError` when
    ``p(z) != 0`` since KZG openings demand an exact quotient.
    """
    p = trim(p)
    if not p:
        return []
    out = [0] * (len(p) - 1)
    acc = 0
    for i in range(len(p) - 1, 0, -1):
        acc = (acc * z + p[i]) % _R
        out[i - 1] = acc
    remainder = (acc * z + p[0]) % _R
    if remainder != 0:
        raise FieldError("polynomial does not vanish at the division point")
    return out


def divide_by_vanishing(p: list[int], n: int) -> list[int]:
    """Return ``p / (X**n - 1)``, requiring the division to be exact.

    Exact division by the vanishing polynomial of a size-``n`` domain is a
    simple linear-time recurrence: if p = q * (X^n - 1) then
    ``q[i] = p[i + n] + q[i + n]``.
    """
    p = trim(p)
    if not p:
        return []
    if len(p) <= n:
        raise FieldError("degree too small for exact division by X^%d - 1" % n)
    qlen = len(p) - n
    q = [0] * qlen
    for i in range(qlen - 1, -1, -1):
        carry = q[i + n] if i + n < qlen else 0
        q[i] = (p[i + n] + carry) % _R
    # Remainder check: p - q*(X^n - 1) must be zero; the low n coefficients
    # of the reconstruction are -q[0..n) + p[0..n).
    for i in range(min(n, len(p))):
        qi = q[i] if i < qlen else 0
        if (p[i] + qi) % _R != 0:
            raise FieldError("polynomial is not divisible by X^%d - 1" % n)
    return trim(q)


def divmod_general(p: list[int], d: list[int]) -> tuple[list[int], list[int]]:
    """Return ``(quotient, remainder)`` of general polynomial division."""
    p, d = trim(p), trim(d)
    if not d:
        raise FieldError("division by the zero polynomial")
    if len(p) < len(d):
        return [], p
    lead_inv = inv(d[-1])
    rem = list(p)
    q = [0] * (len(p) - len(d) + 1)
    for i in range(len(q) - 1, -1, -1):
        coeff = rem[i + len(d) - 1] * lead_inv % _R
        q[i] = coeff
        if coeff:
            for j, dc in enumerate(d):
                rem[i + j] = (rem[i + j] - coeff * dc) % _R
    return trim(q), trim(rem[: len(d) - 1])


def interpolate(points: list[tuple[int, int]]) -> list[int]:
    """Lagrange interpolation through arbitrary ``(x, y)`` points.

    O(n^2); used only for small fixtures and tests.  Prover code always
    interpolates over FFT domains instead.
    """
    xs = [x % _R for x, _ in points]
    if len(set(xs)) != len(xs):
        raise FieldError("interpolation points must have distinct x values")
    result: list[int] = []
    for i, (xi, yi) in enumerate(points):
        basis = [1]
        denom = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            basis = mul(basis, [(-xj) % _R, 1])
            denom = denom * (xi - xj) % _R
    # Recompute accumulating (kept simple and correct over clever):
        result = add(result, scale(basis, yi * inv(denom) % _R))
    return trim(result)
