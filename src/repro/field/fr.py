"""The BN254 (alt_bn128) scalar field F_r.

This is the field over which all arithmetic circuits, polynomials and
witnesses are defined.  BN254 is the curve used by the paper's prototype
(Circom/Snarkjs call it *bn128*); its scalar field has 2-adicity 28, i.e.
``2**28`` divides ``r - 1``, which provides the radix-2 evaluation domains
needed by the Plonk prover.

Hot loops throughout the library use plain Python ints reduced modulo
:data:`MODULUS`; the :class:`Fr` wrapper offers operator overloading for
protocol-level code and tests.
"""

from __future__ import annotations

import secrets

from repro.errors import FieldError

#: Order of the BN254 G1/G2 groups and modulus of the scalar field.
MODULUS = 21888242871839275222246405745257275088548364400416034343698204186575808495617

#: Largest k such that 2**k divides MODULUS - 1.
TWO_ADICITY = 28

#: Number of bytes in the canonical little-endian serialisation.
NUM_BYTES = 32

_R = MODULUS


def _find_two_adic_root() -> int:
    """Return a primitive 2**TWO_ADICITY-th root of unity.

    We do not need a full multiplicative generator of F_r*: any element g
    with exact order 2**28 suffices for the FFT domains.  Candidates are
    raised to (r-1)/2**28 and checked for exact order.
    """
    exponent = (_R - 1) >> TWO_ADICITY
    for candidate in (5, 7, 3, 2, 6, 10, 11, 13):
        g = pow(candidate, exponent, _R)
        if pow(g, 1 << (TWO_ADICITY - 1), _R) != 1 and pow(g, 1 << TWO_ADICITY, _R) == 1:
            return g
    raise FieldError("no 2-adic root of unity found (modulus misconfigured)")


#: A fixed primitive 2**28-th root of unity.
TWO_ADIC_ROOT = _find_two_adic_root()


def inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo the field order."""
    a %= _R
    if a == 0:
        raise FieldError("inverse of zero")
    return pow(a, _R - 2, _R)


def batch_inverse(values: list[int]) -> list[int]:
    """Invert many field elements with a single modular inversion.

    Uses Montgomery's trick: one inversion plus ``3(n-1)`` multiplications.
    Raises :class:`FieldError` if any input is zero.
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(values):
        v %= _R
        if v == 0:
            raise FieldError("batch inverse of zero at index %d" % i)
        prefix[i] = acc
        acc = acc * v % _R
    acc_inv = inv(acc)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = acc_inv * prefix[i] % _R
        acc_inv = acc_inv * values[i] % _R
    return out


def root_of_unity(order: int) -> int:
    """Return a primitive ``order``-th root of unity (order a power of two)."""
    if order <= 0 or order & (order - 1):
        raise FieldError("order must be a positive power of two, got %r" % order)
    log = order.bit_length() - 1
    if log > TWO_ADICITY:
        raise FieldError("order 2**%d exceeds the field 2-adicity %d" % (log, TWO_ADICITY))
    return pow(TWO_ADIC_ROOT, 1 << (TWO_ADICITY - log), _R)


def random_scalar(nonzero: bool = False) -> int:
    """Sample a random scalar field element (as a raw int).

    Randomness contract: this is the *only* sanctioned entropy source on
    the proving path (DET-001 allowlists exactly this module), and it
    draws from :func:`secrets.randbelow` — the OS CSPRNG — never from
    :mod:`random`.  A biased or predictable sampler here breaks zero
    knowledge outright: Plonk's blinding factors, KZG batch weights and
    Groth16's ``r, s`` all assume uniform scalars.

    With ``nonzero=True`` the sample is drawn from ``F_r^*`` by rejection
    (expected iterations: ``1 + 1/r``, i.e. the loop essentially never
    repeats).  Blinding call sites use this: a zero blinder degrades a
    hiding commitment to a binding-only one, a zero batch weight drops an
    equation from a folded check, and a zero ``k_v`` in the exchange
    protocol would publish the data key directly.
    """
    while True:
        value = secrets.randbelow(_R)
        if value != 0 or not nonzero:
            return value


def rand_fr() -> int:
    """Sample a uniformly random field element (alias of :func:`random_scalar`)."""
    return random_scalar()


class Fr:
    """An element of the BN254 scalar field with operator overloading.

    Instances are immutable and normalised to ``[0, r)``.  Arithmetic mixes
    freely with plain ints.  Use :attr:`value` to extract the raw integer
    for hot-loop code.
    """

    __slots__ = ("value",)

    def __init__(self, value: int | "Fr" = 0):
        if isinstance(value, Fr):
            object.__setattr__(self, "value", value.value)
        else:
            object.__setattr__(self, "value", int(value) % _R)

    def __setattr__(self, name, val):  # pragma: no cover - immutability guard
        raise AttributeError("Fr is immutable")

    @staticmethod
    def random() -> "Fr":
        """Sample a uniformly random element."""
        return Fr(rand_fr())

    @staticmethod
    def from_bytes(data: bytes) -> "Fr":
        """Deserialise from canonical 32-byte little-endian form."""
        if len(data) != NUM_BYTES:
            raise FieldError("expected %d bytes, got %d" % (NUM_BYTES, len(data)))
        return Fr(int.from_bytes(data, "little"))

    def to_bytes(self) -> bytes:
        """Serialise to canonical 32-byte little-endian form."""
        return self.value.to_bytes(NUM_BYTES, "little")

    def inverse(self) -> "Fr":
        """Return the multiplicative inverse."""
        return Fr(inv(self.value))

    def _coerce(self, other) -> int | None:
        if isinstance(other, Fr):
            return other.value
        if isinstance(other, int):
            return other % _R
        return None

    def __add__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(self.value + v)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(self.value - v)

    def __rsub__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(v - self.value)

    def __mul__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(self.value * v)

    __rmul__ = __mul__

    def __truediv__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(self.value * inv(v))

    def __rtruediv__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else Fr(v * inv(self.value))

    def __pow__(self, exponent: int):
        return Fr(pow(self.value, int(exponent), _R))

    def __neg__(self):
        return Fr(-self.value)

    def __eq__(self, other):
        v = self._coerce(other)
        return NotImplemented if v is None else self.value == v

    def __hash__(self):
        return hash(("Fr", self.value))

    def __bool__(self):
        return self.value != 0

    def __int__(self):
        return self.value

    def __repr__(self):
        return "Fr(%d)" % self.value
