"""Contiguous scalar vectors: packed 32-byte little-endian F_r elements.

Python lists of 254-bit ints are the wrong shape for two of the
prover's bottlenecks: shipping MSM/NTT inputs across the
``multiprocessing`` process boundary (pickling each bigint separately)
and caching large per-key scalar tables.  :class:`ScalarVector` stores
``n`` field elements as one flat ``bytearray`` of ``32 * n`` bytes
(canonical little-endian, the same encoding as :meth:`repro.field.fr.Fr.
to_bytes`), so a vector can be

- copied into / out of a ``multiprocessing.shared_memory`` segment with
  one ``memoryview`` slice assignment (zero pickling, zero per-element
  work),
- handed to workers as a ``(segment, offset, count)`` triple,
- converted to and from plain int lists only at the explicit
  :meth:`from_list` / :meth:`to_list` boundaries.

The conversion boundaries are the contract: *inside* a kernel, scalars
are plain ints (CPython bigint arithmetic needs ints anyway); *between*
kernels and across processes they travel packed.  See
``docs/data_plane.md`` for the ownership and lifetime rules.

Protocol modules (``plonk/``, ``groth16/``, ``kzg/``, ``core/``) must
not import this module directly — the compute engine owns the
representation (enforced by zklint ENG-001).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import FieldError
from repro.field.fr import MODULUS, NUM_BYTES

_R = MODULUS


def pack_scalars(values: Sequence[int]) -> bytearray:
    """Pack reduced scalars into contiguous 32-byte little-endian cells."""
    out = bytearray(NUM_BYTES * len(values))
    pos = 0
    for v in values:
        out[pos : pos + NUM_BYTES] = (v % _R).to_bytes(NUM_BYTES, "little")
        pos += NUM_BYTES
    return out


def unpack_scalars(buf, start: int = 0, count: int | None = None) -> list[int]:
    """Unpack ``count`` scalars from a packed buffer starting at cell ``start``.

    ``buf`` is anything supporting the buffer protocol (bytes, bytearray,
    memoryview over a shared-memory segment).  Reads are zero-copy until
    the final per-element ``int.from_bytes``.
    """
    view = memoryview(buf)
    if count is None:
        count = (len(view) - start * NUM_BYTES) // NUM_BYTES
    out = [0] * count
    pos = start * NUM_BYTES
    for i in range(count):
        out[i] = int.from_bytes(view[pos : pos + NUM_BYTES], "little")
        pos += NUM_BYTES
    return out


class ScalarVector:
    """A contiguous, mutable vector of F_r elements.

    The backing store is a single ``bytearray`` (or any writable buffer
    passed to :meth:`from_buffer`); elements are canonical little-endian
    32-byte cells.  Random access decodes one cell; bulk moves use
    :attr:`data` directly.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, n: int = 0):
        self._n = int(n)
        if self._n < 0:
            raise FieldError("vector length must be non-negative")
        self._buf = memoryview(bytearray(NUM_BYTES * self._n))

    # ------------------------------------------------------------ boundaries

    @classmethod
    def from_list(cls, values: Sequence[int]) -> "ScalarVector":
        """The explicit list -> contiguous boundary (reduces mod r)."""
        vec = cls.__new__(cls)
        vec._n = len(values)
        vec._buf = memoryview(pack_scalars(values))
        return vec

    def to_list(self) -> list[int]:
        """The explicit contiguous -> list boundary."""
        return unpack_scalars(self._buf, 0, self._n)

    @classmethod
    def from_buffer(cls, buf, count: int | None = None) -> "ScalarVector":
        """Zero-copy view over an existing packed buffer.

        The caller keeps ownership of ``buf`` (for shared-memory
        segments: the segment must outlive this vector; see
        ``docs/data_plane.md``).
        """
        view = memoryview(buf)
        if count is None:
            if len(view) % NUM_BYTES:
                raise FieldError("packed buffer length is not a multiple of %d" % NUM_BYTES)
            count = len(view) // NUM_BYTES
        elif count * NUM_BYTES > len(view):
            raise FieldError("packed buffer too short for %d scalars" % count)
        vec = cls.__new__(cls)
        vec._n = count
        vec._buf = view[: count * NUM_BYTES]
        return vec

    def tobytes(self) -> bytes:
        """An immutable copy of the packed representation."""
        return self._buf.tobytes()

    @property
    def data(self) -> memoryview:
        """The backing buffer (packed cells); treat as owned by the vector."""
        return self._buf

    @property
    def nbytes(self) -> int:
        return self._n * NUM_BYTES

    # ------------------------------------------------------------- sequence

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> int:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._n)
            if step != 1:
                raise FieldError("ScalarVector slices must be contiguous")
            return ScalarVector.from_buffer(
                self._buf[start * NUM_BYTES : stop * NUM_BYTES]
            )
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("scalar index out of range")
        pos = index * NUM_BYTES
        return int.from_bytes(self._buf[pos : pos + NUM_BYTES], "little")

    def __setitem__(self, index: int, value: int) -> None:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("scalar index out of range")
        pos = index * NUM_BYTES
        self._buf[pos : pos + NUM_BYTES] = (value % _R).to_bytes(NUM_BYTES, "little")

    def __iter__(self) -> Iterator[int]:
        buf = self._buf
        pos = 0
        for _ in range(self._n):
            yield int.from_bytes(buf[pos : pos + NUM_BYTES], "little")
            pos += NUM_BYTES

    def __eq__(self, other) -> bool:
        if isinstance(other, ScalarVector):
            return self._buf == other._buf
        if isinstance(other, (list, tuple)):
            return len(other) == self._n and self.to_list() == [v % _R for v in other]
        return NotImplemented

    def __repr__(self) -> str:
        return "ScalarVector(n=%d)" % self._n


def as_scalar_list(values) -> list[int]:
    """Coerce a list or :class:`ScalarVector` to a plain int list.

    The single conversion point kernels use to accept either
    representation at their boundary.
    """
    if isinstance(values, ScalarVector):
        return values.to_list()
    return list(values)
