"""Shared SNARK context: one universal SRS, cached circuit keys.

The whole point of ZKDET's Plonk choice is that a *single* universal setup
serves every circuit (Section VI-B1).  :class:`SnarkContext` owns that SRS
and memoises ``setup`` results per circuit shape, mirroring how a deployed
system would reuse preprocessed keys across proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SRSError
from repro.backend import get_engine
from repro.kzg.srs import SRS
from repro.plonk.circuit import CircuitBuilder, Layout
from repro.plonk.keys import DEGREE_MARGIN, ProvingKey, VerifyingKey, setup


@dataclass
class CircuitKeys:
    layout: Layout
    pk: ProvingKey
    vk: VerifyingKey


class SnarkContext:
    """An SRS plus a cache of per-circuit proving/verifying keys."""

    def __init__(self, srs: SRS, engine=None):
        self.srs = srs
        self.engine = engine or get_engine()
        self._cache: dict = {}

    @staticmethod
    def with_fresh_srs(
        max_degree: int, tau: int | None = None, engine=None
    ) -> "SnarkContext":
        """Convenience constructor running a single-party setup."""
        engine = engine or get_engine()
        return SnarkContext(SRS.generate(max_degree, tau=tau, engine=engine), engine)

    def keys_for(self, layout: Layout) -> CircuitKeys:
        """Return (cached) keys for a compiled circuit layout."""
        digest = layout.digest()
        keys = self._cache.get(digest)
        if keys is None:
            if layout.n + DEGREE_MARGIN > self.srs.max_degree:
                raise SRSError(
                    "circuit of size %d exceeds this context's SRS (degree %d); "
                    "run a larger ceremony" % (layout.n, self.srs.max_degree)
                )
            pk, vk = setup(self.srs, layout, engine=self.engine)
            keys = CircuitKeys(layout, pk, vk)
            self._cache[digest] = keys
        return keys

    def compile_and_keys(self, build_fn) -> tuple[CircuitKeys, list[int]]:
        """Build a circuit with ``build_fn(builder)``, compile, fetch keys.

        Returns the keys plus the assignment's public inputs; the caller
        keeps the assignment via closure if it needs to prove.
        """
        builder = CircuitBuilder()
        build_fn(builder)
        layout, assignment = builder.compile()
        keys = self.keys_for(layout)
        return keys, assignment  # type: ignore[return-value]

    @property
    def cached_circuits(self) -> int:
        return len(self._cache)
