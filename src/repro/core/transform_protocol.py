"""The generic data transformation protocol (Section IV-B).

The paper's central efficiency idea: decouple proofs of encryption from
proofs of transformation so each is computed once and reused.

- pi_e  proves  "the published ciphertext encrypts the committed dataset
  under the committed key":
      ct_i = pt_i + E_k(nonce+i) AND Open(D, c_d, o_d) = 1
     AND Open(k, c_k, o_k) = 1
  (we fold the key opening into pi_e so the exchange protocol's pi_p is
  literally pi_e plus a predicate, realising the CP-NIZK reuse of IV-F);

- pi_t  proves  "the committed derived datasets are f of the committed
  source datasets":
      Open(S_i, c_si, o_si) = 1 AND Open(D_j, c_dj, o_dj) = 1
     AND (D_j) = f(S_i)

Chains of pi_t over shared commitments give continuous validation from
the data source (Figure 3); :func:`verify_proof_chain` walks such chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.gadgets.mimc import assert_ctr_encryption
from repro.gadgets.poseidon import assert_commitment_opens
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.proof import Proof
from repro.plonk.prover import prove
from repro.plonk.verifier import verify
from repro.core.snark import SnarkContext
from repro.core.tokens import DataAsset, PublicAssetView
from repro.core.transformations import Transformation


@dataclass(frozen=True)
class EncryptionProof:
    """pi_e plus the public statement it refers to."""

    proof: Proof
    ciphertext_blocks: tuple
    nonce: int
    data_commitment: int
    key_commitment: int

    @property
    def public_inputs(self) -> list[int]:
        return list(self.ciphertext_blocks) + [
            self.nonce,
            self.data_commitment,
            self.key_commitment,
        ]


@dataclass(frozen=True)
class TransformProof:
    """pi_t plus the commitments it links."""

    proof: Proof
    transformation_name: str
    source_sizes: tuple
    derived_sizes: tuple
    source_commitments: tuple
    derived_commitments: tuple

    @property
    def public_inputs(self) -> list[int]:
        return list(self.source_commitments) + list(self.derived_commitments)


# ----- circuit builders ------------------------------------------------------------


def build_encryption_circuit(
    builder: CircuitBuilder,
    ct_blocks: list[int],
    nonce: int,
    c_d: int,
    c_k: int,
    plaintext: list[int],
    key: int,
    o_d: int,
    o_k: int,
    predicate=None,
) -> None:
    """The pi_e relation; ``predicate(builder, plaintext_wires)`` optionally
    appends the phi(D) clauses (turning pi_e into the exchange's pi_p)."""
    ct_wires = [builder.public_input(b) for b in ct_blocks]
    nonce_wire = builder.public_input(nonce)
    c_d_wire = builder.public_input(c_d)
    c_k_wire = builder.public_input(c_k)
    pt_wires = [builder.var(p) for p in plaintext]
    key_wire = builder.var(key)
    o_d_wire = builder.var(o_d)
    o_k_wire = builder.var(o_k)
    assert_ctr_encryption(builder, key_wire, pt_wires, nonce_wire, ct_wires)
    assert_commitment_opens(builder, pt_wires, c_d_wire, o_d_wire)
    assert_commitment_opens(builder, [key_wire], c_k_wire, o_k_wire)
    if predicate is not None:
        predicate(builder, pt_wires)


def build_transformation_circuit(
    builder: CircuitBuilder,
    transformation: Transformation,
    sources: list[tuple],  # (values, commitment, blinder) per source
    derived: list[tuple],  # (values, commitment, blinder) per derived
) -> None:
    """The pi_t relation over committed datasets."""
    src_c_wires = [builder.public_input(c) for _vals, c, _o in sources]
    dst_c_wires = [builder.public_input(c) for _vals, c, _o in derived]
    src_wires = []
    for (vals, _c, o), c_wire in zip(sources, src_c_wires):
        wires = [builder.var(v) for v in vals]
        assert_commitment_opens(builder, wires, c_wire, builder.var(o))
        src_wires.append(wires)
    dst_wires = []
    for (vals, _c, o), c_wire in zip(derived, dst_c_wires):
        wires = [builder.var(v) for v in vals]
        assert_commitment_opens(builder, wires, c_wire, builder.var(o))
        dst_wires.append(wires)
    transformation.constrain(builder, src_wires, dst_wires)


# ----- prover side -------------------------------------------------------------------


def prove_encryption(ctx: SnarkContext, asset: DataAsset, predicate=None) -> EncryptionProof:
    """Generate pi_e for an asset (step 1/3 of the protocol)."""
    builder = CircuitBuilder()
    build_encryption_circuit(
        builder,
        list(asset.ciphertext.blocks),
        asset.ciphertext.nonce,
        asset.data_commitment.value,
        asset.key_commitment.value,
        asset.plaintext,
        asset.key,
        asset.data_blinder,
        asset.key_blinder,
        predicate=predicate,
    )
    layout, assignment = builder.compile()
    keys = ctx.keys_for(layout)
    proof = prove(keys.pk, assignment)
    return EncryptionProof(
        proof=proof,
        ciphertext_blocks=asset.ciphertext.blocks,
        nonce=asset.ciphertext.nonce,
        data_commitment=asset.data_commitment.value,
        key_commitment=asset.key_commitment.value,
    )


def prove_transformation(
    ctx: SnarkContext,
    sources: list[DataAsset],
    transformation: Transformation,
) -> tuple[list[DataAsset], TransformProof]:
    """Apply f to the source assets and prove it (step 2 of the protocol).

    Derived assets get fresh keys and nonces ("she randomly chooses
    k_d <- K"); their encryption proofs are produced separately with
    :func:`prove_encryption` — that separation is the decoupling that
    halves repeated work across chained transformations.
    """
    if not sources:
        raise ProtocolError("transformation needs at least one source")
    derived_values = transformation.apply([s.plaintext for s in sources])
    expected = transformation.output_sizes([len(s.plaintext) for s in sources])
    if [len(d) for d in derived_values] != list(expected):
        raise ProtocolError("transformation output sizes are inconsistent")
    derived_assets = [DataAsset.create(vals) for vals in derived_values]

    builder = CircuitBuilder()
    build_transformation_circuit(
        builder,
        transformation,
        [(s.plaintext, s.data_commitment.value, s.data_blinder) for s in sources],
        [(d.plaintext, d.data_commitment.value, d.data_blinder) for d in derived_assets],
    )
    layout, assignment = builder.compile()
    keys = ctx.keys_for(layout)
    proof = prove(keys.pk, assignment)
    t_proof = TransformProof(
        proof=proof,
        transformation_name=transformation.name,
        source_sizes=tuple(len(s.plaintext) for s in sources),
        derived_sizes=tuple(len(d.plaintext) for d in derived_assets),
        source_commitments=tuple(s.data_commitment.value for s in sources),
        derived_commitments=tuple(d.data_commitment.value for d in derived_assets),
    )
    return derived_assets, t_proof


# ----- verifier side ------------------------------------------------------------------


def _encryption_layout(ctx: SnarkContext, num_entries: int, predicate=None):
    """Rebuild the pi_e circuit structure from public shape information."""
    builder = CircuitBuilder()
    build_encryption_circuit(
        builder,
        [0] * num_entries,
        0,
        0,
        0,
        [0] * num_entries,
        0,
        0,
        0,
        predicate=predicate,
    )
    layout, _ = builder.compile(check=False)
    return ctx.keys_for(layout)


def verify_encryption(
    ctx: SnarkContext, view: PublicAssetView, enc_proof: EncryptionProof, predicate=None
) -> bool:
    """Check pi_e against an asset's public view."""
    if enc_proof.ciphertext_blocks != view.ciphertext.blocks:
        return False
    if enc_proof.nonce != view.ciphertext.nonce:
        return False
    if enc_proof.data_commitment != view.data_commitment:
        return False
    if enc_proof.key_commitment != view.key_commitment:
        return False
    keys = _encryption_layout(ctx, len(view.ciphertext.blocks), predicate=predicate)
    return verify(keys.vk, enc_proof.public_inputs, enc_proof.proof)


def verify_transformation(
    ctx: SnarkContext, transformation: Transformation, t_proof: TransformProof
) -> bool:
    """Check pi_t given only public commitments and the declared shape."""
    if transformation.name != t_proof.transformation_name:
        return False
    try:
        expected = transformation.output_sizes(list(t_proof.source_sizes))
    except ProtocolError:
        return False
    if list(expected) != list(t_proof.derived_sizes):
        return False
    builder = CircuitBuilder()
    build_transformation_circuit(
        builder,
        transformation,
        [([0] * n, 0, 0) for n in t_proof.source_sizes],
        [([0] * n, 0, 0) for n in t_proof.derived_sizes],
    )
    layout, _ = builder.compile(check=False)
    keys = ctx.keys_for(layout)
    return verify(keys.vk, t_proof.public_inputs, t_proof.proof)


def verify_proof_chain(
    ctx: SnarkContext,
    chain: list[tuple[Transformation, TransformProof]],
    root_commitment: int,
    final_commitment: int,
) -> bool:
    """Walk a pi_t chain from a source commitment to a final one.

    Each step's first source commitment must equal the previous step's
    first derived commitment (Figure 3's chained validation); every pi_t
    must verify.
    """
    if not chain:
        return root_commitment == final_commitment
    current = root_commitment
    for transformation, t_proof in chain:
        if current not in t_proof.source_commitments:
            return False
        if not verify_transformation(ctx, transformation, t_proof):
            return False
        current = t_proof.derived_commitments[0]
    return current == final_commitment
