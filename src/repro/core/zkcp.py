"""The classic ZKCP protocol (Section III-C) — the baseline ZKDET fixes.

Built, as in the literature the paper cites, on Groth16: the seller proves

    phi(D) = 1 AND D_hat = Enc(k, D) AND h = H(k)

then reveals k to the arbiter contract in the *Open* phase.  The protocol
is fair, but once the hash lock opens, **k is public chain data**: since
D_hat sits in public storage, any third party decrypts D.  ZKDET's
key-secure protocol exists precisely to remove this step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, telemetry
from repro.errors import DeadlineExceededError, ExchangeAbortedError, RetryExhaustedError
from repro.faults.retry import ABORT_POLICY, RetryPolicy
from repro.gadgets.mimc import assert_ctr_encryption
from repro.gadgets.poseidon import poseidon_hash_gadget
from repro.groth16 import groth16_prove, groth16_setup, groth16_verify
from repro.primitives.hashing import field_hash
from repro.primitives.mimc import mimc_decrypt_ctr
from repro.r1cs import R1CSBuilder
from repro.core.tokens import DataAsset


def build_zkcp_circuit(
    builder: R1CSBuilder,
    ct_blocks: list[int],
    nonce: int,
    key_hash: int,
    plaintext: list[int],
    key: int,
    predicate=None,
) -> None:
    """The ZKCP pi_p relation as an R1CS (for Groth16).

    Reuses the same gadget library as the Plonk circuits — the builders
    share an interface — which keeps the two systems' relations identical
    for the Figure 7 comparison.
    """
    ct_wires = [builder.public_input(b) for b in ct_blocks]
    nonce_wire = builder.public_input(nonce)
    h_wire = builder.public_input(key_hash)
    pt_wires = [builder.var(p) for p in plaintext]
    key_wire = builder.var(key)
    assert_ctr_encryption(builder, key_wire, pt_wires, nonce_wire, ct_wires)
    computed_h = poseidon_hash_gadget(builder, [key_wire])
    builder.assert_equal(computed_h, h_wire)
    if predicate is not None:
        predicate(builder, pt_wires)


@dataclass
class ZKCPResult:
    success: bool
    plaintext: list | None
    reason: str
    gas_used: int
    leaked_key: int | None = None  # what a third party can read afterwards
    aborted: bool = False


class ZKCPExchange:
    """Orchestrates the four ZKCP steps against the hash-lock arbiter.

    Like :class:`repro.core.exchange.KeySecureExchange`, every message
    channel and transaction runs under a :class:`repro.faults.RetryPolicy`
    and a persistent failure aborts into a safe state (escrow refunded,
    key unrevealed).
    """

    def __init__(self, chain, arbiter, retry: RetryPolicy | None = None):
        self.chain = chain
        self.arbiter = arbiter
        self.retry = retry if retry is not None else RetryPolicy()
        self._key_cache: dict = {}

    def _keys_for(self, num_entries: int, predicate):
        cache_key = (num_entries, getattr(predicate, "__name__", None))
        if cache_key not in self._key_cache:
            builder = R1CSBuilder()
            build_zkcp_circuit(
                builder, [0] * num_entries, 0, 0, [0] * num_entries, 0, predicate=predicate
            )
            system, _ = builder.compile(check=False)
            self._key_cache[cache_key] = groth16_setup(system)
        return self._key_cache[cache_key]

    def run(
        self,
        seller_address: str,
        buyer_address: str,
        asset: DataAsset,
        price: int,
        predicate=None,
        tamper_key: bool = False,
    ) -> ZKCPResult:
        with telemetry.span("zkcp.run", price=price) as root:
            result = self._run_steps(
                seller_address, buyer_address, asset, price, predicate, tamper_key
            )
            root.set_attrs(
                success=result.success, reason=result.reason, gas_total=result.gas_used
            )
            return result

    def _run_steps(
        self, seller_address, buyer_address, asset, price, predicate, tamper_key
    ) -> ZKCPResult:
        gas = 0
        view = asset.public_view()
        key_hash = field_hash(asset.key)

        # ----- Deliver: seller proves and sends (h, pi_p) ----------------
        with telemetry.span("zkcp.prove", step="deliver"):
            builder = R1CSBuilder()
            build_zkcp_circuit(
                builder,
                list(asset.ciphertext.blocks),
                asset.ciphertext.nonce,
                key_hash,
                asset.plaintext,
                asset.key,
                predicate=predicate,
            )
            system, witness = builder.compile()
            pk, vk = self._keys_for(len(asset.plaintext), predicate)
            proof = groth16_prove(pk, witness)

        # ----- Verify: buyer checks pi_p, locks payment against h --------
        try:
            self.retry.run(
                lambda: faults.check("exchange.msg.deliver"), site="exchange.msg.deliver"
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted(gas, "deliver message undeliverable: %s" % exc)
        publics = list(asset.ciphertext.blocks) + [asset.ciphertext.nonce, key_hash]
        with telemetry.span("zkcp.verify", step="verify") as sp:
            ok = groth16_verify(vk, publics, proof)
            sp.set_attr("ok", ok)
        if not ok:
            return ZKCPResult(False, None, "pi_p rejected by buyer", gas)
        with telemetry.span("zkcp.commit", step="lock") as sp:
            try:
                receipt = self.retry.run(
                    lambda: self.chain.transact(
                        buyer_address, self.arbiter, "lock", seller_address,
                        key_hash, value=price,
                    ),
                    site="chain.lock",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                sp.set_attr("aborted", True)
                return self._aborted(gas, "payment lock undeliverable: %s" % exc)
            sp.set_attrs(receipt.span_attrs())
        gas += receipt.gas_used
        deal_id = receipt.return_value

        # ----- Open: seller discloses k ON CHAIN --------------------------
        key = (asset.key + 1) if tamper_key else asset.key
        with telemetry.span("zkcp.reveal", step="open") as sp:
            try:
                receipt = self.retry.run(
                    lambda: self.chain.transact(
                        seller_address, self.arbiter, "open", deal_id, key
                    ),
                    site="chain.open",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                sp.set_attr("aborted", True)
                return self._abort_and_refund(
                    buyer_address, deal_id, gas, "open undeliverable: %s" % exc
                )
            sp.set_attrs(receipt.span_attrs())
        gas += receipt.gas_used
        if not receipt.status:
            return self._abort_and_refund(
                buyer_address, deal_id, gas, "open rejected: %s" % receipt.error
            )

        # ----- Finalize: buyer decrypts — but so can anyone ---------------
        with telemetry.span("zkcp.settle", step="finalize"):
            revealed = self.chain.call_view(self.arbiter, "revealed_key", deal_id)
            plaintext = mimc_decrypt_ctr(revealed, view.ciphertext)
        return ZKCPResult(True, plaintext, "ok", gas, leaked_key=revealed)

    # ----- abort machinery ----------------------------------------------

    def _aborted(self, gas: int, reason: str) -> ZKCPResult:
        if telemetry.metrics_enabled():
            telemetry.counter("exchange.aborted", protocol="zkcp").inc()
        return ZKCPResult(False, None, reason, gas, aborted=True)

    def _abort_and_refund(
        self, buyer_address: str, deal_id: int, gas: int, reason: str
    ) -> ZKCPResult:
        try:
            refund = ABORT_POLICY.run(
                lambda: self.chain.transact(buyer_address, self.arbiter, "refund", deal_id),
                site="chain.refund",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            raise ExchangeAbortedError(
                "buyer refund for deal %s could not be submitted: %s" % (deal_id, exc)
            ) from exc
        gas += refund.gas_used
        if not refund.status:
            raise ExchangeAbortedError(
                "buyer refund for deal %s reverted: %s" % (deal_id, refund.error)
            )
        return self._aborted(gas, reason)
