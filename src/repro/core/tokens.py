"""Data assets: plaintext datasets bound to ciphertexts, commitments and
storage URIs.

A :class:`DataAsset` is the owner-side view of one dataset: the plaintext
(field elements), the MiMC key and nonce, the published ciphertext, the
Poseidon commitments to the data and to the key, and the storage URI.
Only the public half (:class:`PublicAssetView`) ever leaves the owner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.field.fr import MODULUS as R, rand_fr
from repro.primitives.commitment import Commitment, commit
from repro.primitives.encoding import bytes_to_elements
from repro.primitives.mimc import CtrCiphertext, mimc_encrypt_ctr


@dataclass(frozen=True)
class PublicAssetView:
    """Everything a non-owner can see about an asset."""

    uri: str
    ciphertext: CtrCiphertext
    data_commitment: int
    key_commitment: int
    num_entries: int


@dataclass
class DataAsset:
    """The owner-side record of one dataset."""

    plaintext: list[int]
    key: int
    nonce: int
    ciphertext: CtrCiphertext
    data_commitment: Commitment
    data_blinder: int
    key_commitment: Commitment
    key_blinder: int
    uri: str | None = None

    @staticmethod
    def create(plaintext: list[int], key: int | None = None, nonce: int | None = None) -> "DataAsset":
        """Encrypt and commit a plaintext dataset of field elements."""
        if not plaintext:
            raise ProtocolError("a data asset needs at least one entry")
        plaintext = [int(p) % R for p in plaintext]
        key = rand_fr() if key is None else key % R
        nonce = rand_fr() if nonce is None else nonce % R
        ciphertext = mimc_encrypt_ctr(key, plaintext, nonce)
        c_d, o_d = commit(plaintext)
        c_k, o_k = commit(key)
        return DataAsset(
            plaintext=plaintext,
            key=key,
            nonce=nonce,
            ciphertext=ciphertext,
            data_commitment=c_d,
            data_blinder=o_d,
            key_commitment=c_k,
            key_blinder=o_k,
        )

    @staticmethod
    def from_bytes(data: bytes, **kwargs) -> "DataAsset":
        """Create an asset from raw bytes (packed into field elements)."""
        return DataAsset.create(bytes_to_elements(data), **kwargs)

    def serialized_ciphertext(self) -> bytes:
        """Canonical bytes of the ciphertext, as published to storage."""
        out = bytearray(self.ciphertext.nonce.to_bytes(32, "little"))
        for block in self.ciphertext.blocks:
            out += block.to_bytes(32, "little")
        return bytes(out)

    def publish(self, store, owner: str = "anonymous") -> str:
        """Upload the ciphertext to content-addressed storage; sets uri."""
        self.uri = store.put(self.serialized_ciphertext(), owner=owner)
        return self.uri

    def public_view(self) -> PublicAssetView:
        """The information visible to buyers and verifiers."""
        return PublicAssetView(
            uri=self.uri or "",
            ciphertext=self.ciphertext,
            data_commitment=self.data_commitment.value,
            key_commitment=self.key_commitment.value,
            num_entries=len(self.plaintext),
        )

    @property
    def size_bytes(self) -> int:
        """Approximate payload size (31 usable bytes per element)."""
        return len(self.plaintext) * 31
