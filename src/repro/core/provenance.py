"""Traceability queries over the on-chain transformation DAG.

Everything here is computed purely from public chain state: the
``prevIds[]`` metadata recorded by the DataTokenContract.  This realises
the paper's Figure 2 — "data assets undergo multiple transformations,
which can be traced through prevIds[] up to their sources".
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ProtocolError


class ProvenanceGraph:
    """The transformation DAG of every token minted on a contract."""

    def __init__(self, graph: "nx.DiGraph"):
        self._g = graph

    @staticmethod
    def from_token_contract(chain, token) -> "ProvenanceGraph":
        """Build the DAG from chain state (edges parent -> child)."""
        g = nx.DiGraph()
        total = chain.call_view(token, "total_minted")
        for token_id in range(1, total + 1):
            g.add_node(
                token_id,
                kind=chain.call_view(token, "kind_of", token_id),
                uri=chain.call_view(token, "token_uri", token_id),
                commitment=chain.call_view(token, "commitment_of", token_id),
                owner=chain.call_view(token, "owner_of", token_id),
                burned=chain.call_view(token, "is_burned", token_id),
                proof_hash=chain.call_view(token, "proof_hash_of", token_id),
            )
            for parent in chain.call_view(token, "prev_ids", token_id):
                g.add_edge(parent, token_id)
        return ProvenanceGraph(g)

    def to_networkx(self) -> "nx.DiGraph":
        return self._g

    def _require(self, token_id: int) -> None:
        if token_id not in self._g:
            raise ProtocolError("token %d is not in the provenance graph" % token_id)

    def ancestors(self, token_id: int) -> set:
        """Every token this one (transitively) derives from."""
        self._require(token_id)
        return set(nx.ancestors(self._g, token_id))

    def descendants(self, token_id: int) -> set:
        """Every token (transitively) derived from this one."""
        self._require(token_id)
        return set(nx.descendants(self._g, token_id))

    def sources_of(self, token_id: int) -> set:
        """The original (in-degree zero) datasets this token descends from."""
        self._require(token_id)
        lineage = self.ancestors(token_id) | {token_id}
        return {t for t in lineage if self._g.in_degree(t) == 0}

    def lineage_paths(self, source: int, target: int) -> list[list[int]]:
        """All transformation paths from one token to another."""
        self._require(source)
        self._require(target)
        return [list(p) for p in nx.all_simple_paths(self._g, source, target)]

    def transformation_history(self, token_id: int) -> list[tuple]:
        """(token, kind) pairs along the lineage, topologically ordered."""
        self._require(token_id)
        lineage = self.ancestors(token_id) | {token_id}
        sub = self._g.subgraph(lineage)
        return [(t, self._g.nodes[t]["kind"]) for t in nx.topological_sort(sub)]

    def is_acyclic(self) -> bool:
        """A healthy provenance graph is a DAG (tokens cannot predate
        their parents by construction of prevIds)."""
        return nx.is_directed_acyclic_graph(self._g)

    def commitment_chain(self, source: int, target: int) -> list[int]:
        """Commitments along the shortest lineage path, for proof-chain
        verification against pi_t links."""
        paths = self.lineage_paths(source, target)
        if not paths:
            raise ProtocolError("no lineage between %d and %d" % (source, target))
        path = min(paths, key=len)
        return [self._g.nodes[t]["commitment"] for t in path]

    @property
    def num_tokens(self) -> int:
        return self._g.number_of_nodes()
