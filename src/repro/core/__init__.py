"""ZKDET core: the paper's contribution.

- :mod:`repro.core.tokens` — data assets and their on-chain binding;
- :mod:`repro.core.snark` — shared SNARK context (SRS + circuit key cache);
- :mod:`repro.core.transformations` — the four transformation predicates;
- :mod:`repro.core.transform_protocol` — the generic data transformation
  protocol with decoupled pi_e / pi_t proofs and proof chains (Section IV-B);
- :mod:`repro.core.exchange` — the key-secure two-phase exchange protocol
  (Section IV-F);
- :mod:`repro.core.zkcp` — the classic ZKCP baseline (Section III-C);
- :mod:`repro.core.provenance` — traceability over the prevIds DAG;
- :mod:`repro.core.marketplace` — the full-system facade.
"""

from repro.core.tokens import DataAsset
from repro.core.snark import SnarkContext
from repro.core.transformations import (
    Aggregation,
    Duplication,
    Partition,
    Processing,
)
from repro.core.transform_protocol import (
    EncryptionProof,
    TransformProof,
    prove_encryption,
    prove_transformation,
    verify_encryption,
    verify_transformation,
)
from repro.core.exchange import Buyer, KeySecureExchange, Seller
from repro.core.zkcp import ZKCPExchange
from repro.core.fairswap import FairSwapExchange, FairSwapListing
from repro.core import predicates
from repro.core.provenance import ProvenanceGraph
from repro.core.marketplace import ZKDETMarketplace

__all__ = [
    "Aggregation",
    "Buyer",
    "DataAsset",
    "Duplication",
    "EncryptionProof",
    "FairSwapExchange",
    "FairSwapListing",
    "KeySecureExchange",
    "Partition",
    "Processing",
    "ProvenanceGraph",
    "Seller",
    "SnarkContext",
    "TransformProof",
    "ZKCPExchange",
    "ZKDETMarketplace",
    "predicates",
    "prove_encryption",
    "prove_transformation",
    "verify_encryption",
    "verify_transformation",
]
