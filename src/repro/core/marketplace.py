"""The ZKDET marketplace facade: chain + storage + contracts + protocols.

One object wires the full system of Figure 1: a blockchain with the
ERC-721 data-token, auction, verifier and arbiter contracts deployed, a
content-addressed storage network, a shared SNARK context, and high-level
operations for the whole data lifecycle — publish, transform, trade,
trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro import telemetry
from repro.errors import ProtocolError
from repro.faults.retry import RetryPolicy
from repro.chain import Blockchain
from repro.contracts import (
    ClockAuctionContract,
    DataTokenContract,
    KeySecureArbiterContract,
    PlonkVerifierContract,
)
from repro.storage import ContentStore
from repro.core.exchange import (
    Buyer,
    ExchangeResult,
    KeySecureExchange,
    Seller,
    key_negotiation_keys,
)
from repro.core.provenance import ProvenanceGraph
from repro.core.snark import SnarkContext
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import (
    EncryptionProof,
    TransformProof,
    prove_encryption,
    prove_transformation,
    verify_encryption,
    verify_transformation,
)
from repro.core.transformations import Transformation


def _proof_hash(proof) -> str:
    return hashlib.sha256(proof.to_bytes()).hexdigest()


@dataclass
class PublishedAsset:
    """An asset together with its on-chain token and pi_e."""

    asset: DataAsset
    token_id: int
    encryption_proof: EncryptionProof


@dataclass
class AuditReport:
    """Outcome of a public provenance audit of one token."""

    token_id: int
    ok: bool
    checks: list  # of (description, passed) pairs

    def failed_checks(self) -> list:
        return [desc for desc, passed in self.checks if not passed]


class ZKDETMarketplace:
    """Full-system facade; see examples/quickstart.py for a tour."""

    def __init__(
        self,
        snark: SnarkContext,
        initial_funds: int = 10**12,
        retry: RetryPolicy | None = None,
    ):
        self.snark = snark
        self.chain = Blockchain()
        self.storage = ContentStore()
        self.initial_funds = initial_funds
        #: Policy for the marketplace's own substrate round-trips: storage
        #: uploads during publish/transform, URI resolution during
        #: fetch/audit, and the facade's own transactions (mint, derived
        #: mints, token transfer).
        self.retry = retry if retry is not None else RetryPolicy()

        operator = self.chain.create_account(funded=initial_funds)
        self.operator = operator
        self.token = DataTokenContract()
        self.chain.deploy(self.token, operator)
        self.auction = ClockAuctionContract(self.token)
        self.chain.deploy(self.auction, operator)
        # The pi_k verifier key is circuit-shape fixed, so the verifier
        # contract is deployed once for the whole marketplace.
        pik_keys = key_negotiation_keys(snark)
        self.pik_verifier = PlonkVerifierContract(pik_keys.vk)
        self.chain.deploy(self.pik_verifier, operator)
        self.arbiter = KeySecureArbiterContract(self.pik_verifier)
        self.chain.deploy(self.arbiter, operator)
        # Public proof registries: full pi_e / pi_t objects keyed by token.
        # On-chain tokens store only proof hashes; the proofs themselves
        # live in public storage (here: in-process registries standing in
        # for IPFS-hosted proof blobs).
        self._pi_e_registry: dict = {}
        self._pi_t_registry: dict = {}

    # ----- participants ---------------------------------------------------------

    def register_participant(self) -> str:
        """Create and fund an account."""
        return self.chain.create_account(funded=self.initial_funds)

    def _tx(self, sender: str, method: str, *args, site: str):
        """A facade transaction against the token contract, under retry.

        Injected drops and reverts fire before the method body executes,
        so resubmission is idempotent; genuine contract failures surface
        as failed receipts and are never retried.
        """
        return self.retry.run(
            lambda: self.chain.transact(sender, self.token, method, *args),
            site=site,
        )

    # ----- data lifecycle ----------------------------------------------------------

    def publish_dataset(self, owner: str, plaintext: list[int]) -> PublishedAsset:
        """Encrypt, store, prove (pi_e) and mint a dataset.

        The paper's Section III-A flow: encrypt D, upload D_hat, treat the
        URI as the ciphertext commitment, and mint the NFT credential.
        """
        with telemetry.span("marketplace.publish", entries=len(plaintext)) as root:
            asset = DataAsset.create(plaintext)
            self.retry.run(
                lambda: asset.publish(self.storage, owner=owner), site="storage.put"
            )
            with telemetry.span("publish.prove", proof="pi_e"):
                pi_e = prove_encryption(self.snark, asset)
            with telemetry.span("publish.verify", proof="pi_e"):
                if not verify_encryption(self.snark, asset.public_view(), pi_e):
                    raise ProtocolError("freshly generated pi_e failed verification")
            with telemetry.span("publish.mint") as sp:
                receipt = self._tx(
                    owner,
                    "mint",
                    asset.uri,
                    asset.data_commitment.value,
                    _proof_hash(pi_e.proof),
                    site="chain.mint",
                )
                sp.set_attrs(receipt.span_attrs())
            if not receipt.status:
                raise ProtocolError("mint failed: %s" % receipt.error)
            token_id = receipt.return_value
            root.set_attr("token_id", token_id)
            self._pi_e_registry[token_id] = pi_e
            return PublishedAsset(asset, token_id, pi_e)

    def transform(
        self,
        owner: str,
        sources: list[PublishedAsset],
        transformation: Transformation,
    ) -> tuple[list[PublishedAsset], TransformProof]:
        """Apply a transformation: prove pi_t, publish the derived assets,
        prove their pi_e, and mint derived tokens with prevIds lineage."""
        if not sources:
            raise ProtocolError("transformation needs source assets")
        with telemetry.span(
            "marketplace.transform", kind=transformation.name, sources=len(sources)
        ) as root:
            return self._transform_steps(owner, sources, transformation, root)

    def _transform_steps(self, owner, sources, transformation, root):
        with telemetry.span("transform.prove", proof="pi_t"):
            derived_assets, pi_t = prove_transformation(
                self.snark, [p.asset for p in sources], transformation
            )
        with telemetry.span("transform.verify", proof="pi_t"):
            if not verify_transformation(self.snark, transformation, pi_t):
                raise ProtocolError("freshly generated pi_t failed verification")
        proof_hash = _proof_hash(pi_t.proof)
        source_ids = tuple(p.token_id for p in sources)

        published = []
        pending = []
        with telemetry.span("transform.publish_derived", count=len(derived_assets)):
            for d in derived_assets:
                self.retry.run(
                    lambda d=d: d.publish(self.storage, owner=owner), site="storage.put"
                )
                pi_e = prove_encryption(self.snark, d)
                pending.append((d, pi_e))

        name = transformation.name
        if name == "aggregation":
            d, pi_e = pending[0]
            receipt = self._tx(
                owner, "aggregate", source_ids, d.uri,
                d.data_commitment.value, proof_hash, site="chain.mint",
            )
            token_ids = [receipt.return_value] if receipt.status else []
        elif name == "partition":
            parts = tuple((d.uri, d.data_commitment.value) for d, _ in pending)
            receipt = self._tx(
                owner, "partition", source_ids[0], parts, proof_hash,
                site="chain.mint",
            )
            token_ids = list(receipt.return_value) if receipt.status else []
        elif name == "duplication":
            d, pi_e = pending[0]
            receipt = self._tx(
                owner, "duplicate", source_ids[0], d.uri,
                d.data_commitment.value, proof_hash, site="chain.mint",
            )
            token_ids = [receipt.return_value] if receipt.status else []
        else:  # processing
            d, pi_e = pending[0]
            receipt = self._tx(
                owner, "process", source_ids, d.uri,
                d.data_commitment.value, proof_hash, site="chain.mint",
            )
            token_ids = [receipt.return_value] if receipt.status else []
        root.set_attrs(receipt.span_attrs("mint"))
        if not receipt.status:
            raise ProtocolError("on-chain transformation failed: %s" % receipt.error)
        root.set_attr("token_ids", token_ids)

        for (d, pi_e), tid in zip(pending, token_ids):
            self._pi_e_registry[tid] = pi_e
            self._pi_t_registry[tid] = (transformation, pi_t, source_ids)
            published.append(PublishedAsset(d, tid, pi_e))
        return published, pi_t

    # ----- trading --------------------------------------------------------------------

    def sell(
        self,
        seller_address: str,
        listing: PublishedAsset,
        buyer_address: str,
        price: int,
        predicate=None,
        **tamper,
    ) -> ExchangeResult:
        """Run the key-secure exchange for a published asset, then move the
        token to the buyer on success."""
        with telemetry.span(
            "marketplace.sell", token_id=listing.token_id, price=price
        ) as root:
            seller = Seller(self.snark, listing.asset, seller_address)
            buyer = Buyer(self.snark, listing.asset.public_view(), buyer_address)
            protocol = KeySecureExchange(self.snark, self.chain, self.arbiter)
            result = protocol.run(seller, buyer, price, predicate=predicate, **tamper)
            root.set_attrs(
                success=result.success,
                aborted=result.aborted,
                gas_total=result.gas_used,
            )
            if result.success:
                with telemetry.span("sell.transfer_token") as sp:
                    receipt = self._tx(
                        seller_address, "transfer_from",
                        seller_address, buyer_address, listing.token_id,
                        site="chain.transfer",
                    )
                    sp.set_attrs(receipt.span_attrs())
                if not receipt.status:
                    raise ProtocolError("token transfer failed: %s" % receipt.error)
            return result

    # ----- traceability -----------------------------------------------------------------

    def provenance(self) -> ProvenanceGraph:
        """The current transformation DAG from chain state."""
        return ProvenanceGraph.from_token_contract(self.chain, self.token)

    def fetch_ciphertext(self, token_id: int) -> bytes:
        """Resolve a token's URI through the storage network."""
        uri = self.chain.call_view(self.token, "token_uri", token_id)
        if uri is None:
            raise ProtocolError("token %d does not exist" % token_id)
        return self.retry.run(lambda: self.storage.get(uri), site="storage.get")

    def audit(self, token_id: int) -> AuditReport:
        """Full public audit of a token: storage integrity, pi_e, and the
        pi_t lineage back to every root — the buyer-side due-diligence
        procedure the paper's traceability story enables.

        Uses only public information: chain state, the storage network,
        and the published proof registries.
        """
        with telemetry.span("marketplace.audit", token_id=token_id) as root:
            report = self._audit_steps(token_id)
            root.set_attrs(ok=report.ok, checks=len(report.checks))
            return report

    def _audit_steps(self, token_id: int) -> AuditReport:
        checks = []
        commitment = self.chain.call_view(self.token, "commitment_of", token_id)
        checks.append(("token exists on chain", commitment is not None))
        if commitment is None:
            return AuditReport(token_id, False, checks)

        # 1. Storage integrity: the URI must resolve and self-verify.
        try:
            self.fetch_ciphertext(token_id)
            checks.append(("ciphertext resolves and matches its URI", True))
        except Exception:
            checks.append(("ciphertext resolves and matches its URI", False))

        # 2. pi_e: the ciphertext encrypts the committed dataset.
        pi_e = self._pi_e_registry.get(token_id)
        if pi_e is None:
            checks.append(("pi_e published", False))
        else:
            checks.append(("pi_e published", True))
            # Rebuild the public view from pi_e's own statement.
            from repro.core.tokens import PublicAssetView
            from repro.primitives.mimc import CtrCiphertext

            view = PublicAssetView(
                uri=self.chain.call_view(self.token, "token_uri", token_id) or "",
                ciphertext=CtrCiphertext(pi_e.nonce, pi_e.ciphertext_blocks),
                data_commitment=pi_e.data_commitment,
                key_commitment=pi_e.key_commitment,
                num_entries=len(pi_e.ciphertext_blocks),
            )
            ok = pi_e.data_commitment == commitment and verify_encryption(
                self.snark, view, pi_e
            )
            checks.append(("pi_e verifies against the on-chain commitment", ok))

        # 3. pi_t lineage: every transformation edge back to the roots.
        frontier = [token_id]
        seen = set()
        while frontier:
            tid = frontier.pop()
            if tid in seen:
                continue
            seen.add(tid)
            parents = self.chain.call_view(self.token, "prev_ids", tid)
            if not parents:
                continue
            record = self._pi_t_registry.get(tid)
            if record is None:
                checks.append(("pi_t published for token %d" % tid, False))
                continue
            transformation, pi_t, source_ids = record
            link_ok = verify_transformation(self.snark, transformation, pi_t)
            # The proof's commitments must match the on-chain metadata.
            parent_commits = tuple(
                self.chain.call_view(self.token, "commitment_of", p) for p in source_ids
            )
            link_ok = link_ok and parent_commits == pi_t.source_commitments
            my_commit = self.chain.call_view(self.token, "commitment_of", tid)
            link_ok = link_ok and my_commit in pi_t.derived_commitments
            checks.append(
                ("pi_t (%s) verifies for token %d" % (transformation.name, tid), link_ok)
            )
            frontier.extend(parents)

        return AuditReport(token_id, all(ok for _, ok in checks), checks)
