"""Concrete phi(D) predicates for the exchange protocols.

The ZKCP/key-secure exchanges prove "phi(D) = 1" so buyers can assess a
dataset's value before paying (Section I: demanders must be able to
"verify the correctness of the data and evaluate its value").  These are
ready-made predicates over the plaintext wires, built from the gadget
library; each is a callable ``predicate(builder, plaintext_wires)``
suitable for the ``predicate=`` hook of ``prove_encryption`` /
``Seller.data_validation_message`` / ``ZKCPExchange.run``.

Predicates carry a ``__name__`` so circuit-key caches can distinguish
them; compose with :func:`all_of`.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.gadgets.boolean import num_to_bits
from repro.gadgets.comparison import less_than
from repro.gadgets.merkle import MerkleProof, assert_merkle_membership
from repro.plonk.circuit import CircuitBuilder, Wire


def _named(name: str):
    def wrap(fn):
        fn.__name__ = name
        return fn

    return wrap


def entries_in_range(max_bits: int):
    """phi: every entry is a non-negative integer below 2**max_bits.

    The workhorse predicate: bounded sensor readings, prices, counts.
    """

    @_named("entries_in_range_%d" % max_bits)
    def predicate(builder: CircuitBuilder, plaintext: list[Wire]) -> None:
        for wire in plaintext:
            num_to_bits(builder, wire, max_bits)

    return predicate


def sum_in_range(lo: int, hi: int, entry_bits: int = 32):
    """phi: lo <= sum(D) <= hi (entries range-checked to entry_bits).

    Lets a buyer verify an aggregate statistic — e.g. total volume —
    without learning any individual entry.
    """
    if lo > hi:
        raise ProtocolError("empty range")

    @_named("sum_in_range_%d_%d_%d" % (lo, hi, entry_bits))
    def predicate(builder: CircuitBuilder, plaintext: list[Wire]) -> None:
        for wire in plaintext:
            num_to_bits(builder, wire, entry_bits)
        total = builder.linear_combination([(1, w) for w in plaintext])
        total_bits = entry_bits + max(1, len(plaintext)).bit_length()
        lo_wire = builder.constant(lo)
        hi_plus = builder.constant(hi + 1)
        ge_lo = less_than(builder, lo_wire, builder.add_const(total, 1), total_bits + 1)
        lt_hi = less_than(builder, total, hi_plus, total_bits + 1)
        builder.assert_constant(ge_lo, 1)
        builder.assert_constant(lt_hi, 1)

    return predicate


def mean_in_range(lo_scaled: int, hi_scaled: int, entry_bits: int = 32):
    """phi: lo <= mean(D) <= hi, with bounds pre-scaled by len(D).

    Callers pass ``lo_scaled = lo * n`` and ``hi_scaled = hi * n`` so the
    circuit avoids division; the helper below does it for you."""
    return sum_in_range(lo_scaled, hi_scaled, entry_bits)


def mean_bounds(lo: float, hi: float, num_entries: int, entry_bits: int = 32):
    """Convenience wrapper: phi for lo <= mean <= hi over n entries."""
    return mean_in_range(
        int(lo * num_entries), int(hi * num_entries), entry_bits
    )


def entry_at_index_equals(index: int, value: int):
    """phi: D[index] == value (a disclosed sample row — 'previews')."""

    @_named("entry_at_%d_equals" % index)
    def predicate(builder: CircuitBuilder, plaintext: list[Wire]) -> None:
        if index >= len(plaintext):
            raise ProtocolError("sample index out of range")
        builder.assert_constant(plaintext[index], value)

    return predicate


def contains_committed_row(root: int, proof: MerkleProof, index: int):
    """phi: D[index] is a leaf of the Merkle tree with the given root —
    e.g. the root published by an oracle-attested registry."""

    @_named("contains_row_%d_%d" % (root % 10**9, index))
    def predicate(builder: CircuitBuilder, plaintext: list[Wire]) -> None:
        if index >= len(plaintext):
            raise ProtocolError("row index out of range")
        root_wire = builder.constant(root)
        assert_merkle_membership(builder, root_wire, plaintext[index], proof)

    return predicate


def all_of(*predicates):
    """Conjunction of predicates (phi_1 AND phi_2 AND ...)."""

    @_named("all_of_" + "_".join(p.__name__ for p in predicates))
    def predicate(builder: CircuitBuilder, plaintext: list[Wire]) -> None:
        for p in predicates:
            p(builder, plaintext)

    return predicate
