"""The four data-transformation predicates (Sections III-B and IV-D).

Every transformation f provides both a native ``apply`` (how the owner
actually computes D = f(S)) and a ``constrain`` method emitting the
in-circuit relation for the proof of transformation pi_t.  The circuits
follow the paper's predicates:

- *Duplication*:  n == m  and  d_i == s_i for all i;
- *Aggregation*:  m == sum(n_k)  and ordered concatenation equality;
- *Partition*:    every part non-empty, parts exhaustively and disjointly
  cover S (realised as the ordered inverse of aggregation);
- *Processing*:   an arbitrary predicate assembled from the gadget library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProtocolError
from repro.plonk.circuit import CircuitBuilder, Wire


class Transformation:
    """Base interface for transformation predicates."""

    #: short tag recorded in NFT metadata and used for key caching
    name: str = "abstract"

    def output_sizes(self, input_sizes: list[int]) -> list[int]:
        """Sizes of the derived datasets given the source sizes."""
        raise NotImplementedError

    def apply(self, sources: list[list[int]]) -> list[list[int]]:
        """Compute the derived datasets natively."""
        raise NotImplementedError

    def constrain(
        self,
        builder: CircuitBuilder,
        sources: list[list[Wire]],
        derived: list[list[Wire]],
    ) -> None:
        """Emit the circuit relation derived == f(sources)."""
        raise NotImplementedError

    def shape_key(self, input_sizes: list[int]) -> tuple:
        """Cache key: same transformation + same sizes => same circuit."""
        return (self.name, tuple(input_sizes))


@dataclass(frozen=True)
class Duplication(Transformation):
    """Replicate a dataset: d_i == s_i, n == m."""

    name: str = "duplication"

    def output_sizes(self, input_sizes):
        if len(input_sizes) != 1:
            raise ProtocolError("duplication takes exactly one source")
        return [input_sizes[0]]

    def apply(self, sources):
        (src,) = sources
        return [list(src)]

    def constrain(self, builder, sources, derived):
        (src,), (dst,) = sources, derived
        if len(src) != len(dst):
            raise ProtocolError("duplication requires equal sizes (n == m)")
        for s, d in zip(src, dst):
            builder.assert_equal(d, s)


@dataclass(frozen=True)
class Aggregation(Transformation):
    """Ordered concatenation of x sources into one derived dataset."""

    name: str = "aggregation"

    def output_sizes(self, input_sizes):
        if len(input_sizes) < 2:
            raise ProtocolError("aggregation needs at least two sources")
        return [sum(input_sizes)]

    def apply(self, sources):
        merged: list[int] = []
        for src in sources:
            merged.extend(src)
        return [merged]

    def constrain(self, builder, sources, derived):
        (dst,) = derived
        if len(dst) != sum(len(s) for s in sources):
            raise ProtocolError("aggregation size mismatch (m != sum n_k)")
        offset = 0
        for src in sources:
            for j, s in enumerate(src):
                builder.assert_equal(s, dst[offset + j])
            offset += len(src)


@dataclass(frozen=True)
class Partition(Transformation):
    """Ordered split of one source into parts of declared sizes.

    The split is exhaustive (sizes sum to n) and mutually exclusive (each
    source position feeds exactly one part) by construction of the ordered
    correspondence; every part must be non-empty, matching the paper's
    ``n_k != 0`` clause.
    """

    sizes: tuple = ()
    name: str = "partition"

    def __post_init__(self):
        if len(self.sizes) < 2:
            raise ProtocolError("partition needs at least two parts")
        if any(s <= 0 for s in self.sizes):
            raise ProtocolError("partition parts must be non-empty (n_k != 0)")

    def output_sizes(self, input_sizes):
        if len(input_sizes) != 1:
            raise ProtocolError("partition takes exactly one source")
        if sum(self.sizes) != input_sizes[0]:
            raise ProtocolError("partition is not exhaustive (sizes must sum to n)")
        return list(self.sizes)

    def apply(self, sources):
        (src,) = sources
        if sum(self.sizes) != len(src):
            raise ProtocolError("partition is not exhaustive (sizes must sum to n)")
        parts = []
        offset = 0
        for size in self.sizes:
            parts.append(list(src[offset : offset + size]))
            offset += size
        return parts

    def constrain(self, builder, sources, derived):
        (src,) = sources
        if sum(len(d) for d in derived) != len(src):
            raise ProtocolError("partition constraint size mismatch")
        offset = 0
        for part in derived:
            for j, d in enumerate(part):
                builder.assert_equal(d, src[offset + j])
            offset += len(part)

    def shape_key(self, input_sizes):
        return (self.name, tuple(input_sizes), tuple(self.sizes))


@dataclass(frozen=True)
class Processing(Transformation):
    """An arbitrary computation with a caller-supplied predicate circuit.

    ``apply_fn(sources) -> derived_datasets`` computes the result
    natively; ``constrain_fn(builder, sources, derived)`` emits the
    predicate from the gadget library.  ``tag`` distinguishes circuits for
    key caching (e.g. "logistic-regression", "transformer-block").
    """

    apply_fn: Callable = None
    constrain_fn: Callable = None
    out_sizes_fn: Callable = None
    tag: str = "generic"
    name: str = "processing"

    def __post_init__(self):
        if self.apply_fn is None or self.constrain_fn is None or self.out_sizes_fn is None:
            raise ProtocolError("processing needs apply, constrain and size functions")

    def output_sizes(self, input_sizes):
        return self.out_sizes_fn(input_sizes)

    def apply(self, sources):
        return self.apply_fn(sources)

    def constrain(self, builder, sources, derived):
        self.constrain_fn(builder, sources, derived)

    def shape_key(self, input_sizes):
        return (self.name, self.tag, tuple(input_sizes))
