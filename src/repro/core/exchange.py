"""The key-secure two-phase data exchange protocol (Section IV-F).

Phase 1 (data validation): the seller sends (c_d, pi_p) where pi_p proves
phi(D) = 1, D_hat = Enc(k, D) and the commitment openings; the buyer
verifies, picks a fresh k_v, sends it to the seller off-chain, and locks
payment on the arbiter together with h_v = H(k_v).

Phase 2 (key negotiation): the seller forms the masked key k_c = k + k_v
and proves, in pi_k, that Open(k, c, o) = 1, h_v = H(k_v) and
k_c = k + k_v.  The arbiter releases payment iff pi_k verifies; the buyer
recovers k = k_c - k_v and decrypts.  The chain never sees k — the
property ZKCP lacks (Challenge 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, telemetry
from repro.telemetry import ledger as _ledger
from repro.errors import (
    DeadlineExceededError,
    ExchangeAbortedError,
    ProtocolError,
    RetryExhaustedError,
)
from repro.faults.retry import ABORT_POLICY, RetryPolicy
from repro.field.fr import MODULUS as R, random_scalar
from repro.gadgets.poseidon import assert_commitment_opens, poseidon_hash_gadget
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.primitives.hashing import field_hash
from repro.primitives.mimc import mimc_decrypt_ctr
from repro.core.snark import SnarkContext
from repro.core.tokens import DataAsset, PublicAssetView
from repro.core.transform_protocol import (
    EncryptionProof,
    prove_encryption,
    verify_encryption,
)


def build_key_negotiation_circuit(
    builder: CircuitBuilder,
    k_c: int,
    c_k: int,
    h_v: int,
    key: int,
    o_k: int,
    k_v: int,
) -> None:
    """The pi_k relation: Open(k,c,o) /\\ h_v = H(k_v) /\\ k_c = k + k_v."""
    k_c_wire = builder.public_input(k_c)
    c_k_wire = builder.public_input(c_k)
    h_v_wire = builder.public_input(h_v)
    key_wire = builder.var(key)
    o_k_wire = builder.var(o_k)
    k_v_wire = builder.var(k_v)
    assert_commitment_opens(builder, [key_wire], c_k_wire, o_k_wire)
    h_wire = poseidon_hash_gadget(builder, [k_v_wire])
    builder.assert_equal(h_wire, h_v_wire)
    masked = builder.add(key_wire, k_v_wire)
    builder.assert_equal(masked, k_c_wire)


def key_negotiation_keys(ctx: SnarkContext):
    """(Cached) circuit keys for pi_k — shape-independent of the data."""
    builder = CircuitBuilder()
    build_key_negotiation_circuit(builder, 0, 0, 0, 0, 0, 0)
    layout, _ = builder.compile(check=False)
    return ctx.keys_for(layout)


class Seller:
    """The seller S, initialised by (D, k, D_hat, phi)."""

    def __init__(self, ctx: SnarkContext, asset: DataAsset, address: str):
        if asset.uri is None:
            raise ProtocolError("publish the asset to storage before selling")
        self.ctx = ctx
        self.asset = asset
        self.address = address

    def data_validation_message(self, predicate=None) -> tuple[int, EncryptionProof]:
        """Phase 1: produce (c_d, pi_p)."""
        pi_p = prove_encryption(self.ctx, self.asset, predicate=predicate)
        return self.asset.data_commitment.value, pi_p

    def key_negotiation_message(self, k_v: int, h_v_on_chain: int):
        """Phase 2: check the buyer's h_v, then produce (k_c, pi_k).

        Per the seller-fairness proof, S aborts when the locked h_v does
        not match the k_v she received off-chain.
        """
        if field_hash(k_v) != h_v_on_chain:
            raise ProtocolError("buyer's h_v does not match the received k_v; aborting")
        k_c = (self.asset.key + k_v) % R
        builder = CircuitBuilder()
        build_key_negotiation_circuit(
            builder,
            k_c,
            self.asset.key_commitment.value,
            h_v_on_chain,
            self.asset.key,
            self.asset.key_blinder,
            k_v,
        )
        layout, assignment = builder.compile()
        keys = self.ctx.keys_for(layout)
        pi_k = prove(keys.pk, assignment)
        return k_c, pi_k


class Buyer:
    """The buyer B, initialised by (D_hat, phi)."""

    def __init__(self, ctx: SnarkContext, view: PublicAssetView, address: str):
        self.ctx = ctx
        self.view = view
        self.address = address
        self.k_v: int | None = None

    def verify_data(self, c_d: int, pi_p: EncryptionProof, predicate=None) -> bool:
        """Phase 1 verification of (c_d, pi_p)."""
        if c_d != self.view.data_commitment:
            return False
        return verify_encryption(self.ctx, self.view, pi_p, predicate=predicate)

    def choose_verification_key(self) -> tuple[int, int]:
        """Pick k_v at random; returns (k_v, h_v)."""
        # k_v = 0 would make the published k_c equal the data key itself.
        self.k_v = random_scalar(nonzero=True)
        return self.k_v, field_hash(self.k_v)

    def recover_plaintext(self, k_c: int) -> list[int]:
        """Derive k = k_c - k_v and decrypt the public ciphertext."""
        if self.k_v is None:
            raise ProtocolError("no k_v chosen yet")
        key = (k_c - self.k_v) % R
        return mimc_decrypt_ctr(key, self.view.ciphertext)


@dataclass
class ExchangeResult:
    success: bool
    plaintext: list | None
    reason: str
    gas_used: int
    exchange_id: int | None = None
    #: True when the run terminated through the abort path: no key
    #: material reached the chain and, if payment was ever locked, the
    #: buyer was refunded.  ``success`` and ``aborted`` are mutually
    #: exclusive; a run that ends with neither is a plain protocol
    #: rejection before any funds moved.
    aborted: bool = False


class KeySecureExchange:
    """Orchestrates one exchange between a Seller and a Buyer on chain.

    Every fallible step — the two off-chain message channels and every
    transaction — runs under ``retry`` (bounded exponential backoff with
    deterministic jitter, see :class:`repro.faults.RetryPolicy`).  When a
    step stays down past the policy's budget the run *aborts into a safe
    state*: the seller never reveals key material, any locked payment is
    refunded to the buyer, and token ownership is untouched.  The chaos
    suite (``tests/test_faults.py``) asserts these invariants under
    arbitrary seeded fault plans.
    """

    def __init__(self, ctx: SnarkContext, chain, arbiter, retry: RetryPolicy | None = None):
        self.ctx = ctx
        self.chain = chain
        self.arbiter = arbiter
        self.retry = retry if retry is not None else RetryPolicy()

    def run(
        self,
        seller: Seller,
        buyer: Buyer,
        price: int,
        predicate=None,
        tamper_k_c: bool = False,
        tamper_k_v: bool = False,
    ) -> ExchangeResult:
        """Execute both phases; the tamper flags inject malicious behaviour
        (used by the fairness tests and the security benchmarks).

        Under ``REPRO_TELEMETRY=trace`` the run emits an ``exchange.run``
        span with one child per protocol step — prove/verify (phase 1),
        commit (payment lock), prove/reveal (phase 2 key submission) and
        settle — each chain step carrying its transaction's gas and
        emitted event names as attributes.  With ``REPRO_LEDGER=<path>``
        set, each run additionally appends one record to the run ledger:
        the span tree, the run's metric deltas, cache hit rates and any
        injected faults (see :mod:`repro.telemetry.ledger`).
        """
        recorder = _ledger.begin("exchange.keysecure")
        with telemetry.span("exchange.run", price=price) as root:
            result = self._run_steps(
                seller, buyer, price, predicate, tamper_k_c, tamper_k_v
            )
            root.set_attrs(
                success=result.success,
                reason=result.reason,
                gas_total=result.gas_used,
                aborted=result.aborted,
            )
        recorder.finish(
            span=root,
            success=result.success,
            reason=result.reason,
            gas_used=result.gas_used,
            aborted=result.aborted,
            price=price,
        )
        return result

    def _run_steps(
        self, seller, buyer, price, predicate, tamper_k_c, tamper_k_v
    ) -> ExchangeResult:
        gas = 0
        policy = self.retry
        # ----- Phase 1: data validation ---------------------------------
        with telemetry.span("exchange.prove", phase=1, proof="pi_p"):
            c_d, pi_p = seller.data_validation_message(predicate=predicate)
        try:
            # The (c_d, pi_p) message channel; a lost message is re-sent
            # (the proof is computed once, above).
            policy.run(
                lambda: faults.check("exchange.msg.validation"),
                site="exchange.msg.validation",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted(gas, None, "phase-1 message undeliverable: %s" % exc)
        with telemetry.span("exchange.verify", phase=1, proof="pi_p") as sp:
            ok = buyer.verify_data(c_d, pi_p, predicate=predicate)
            sp.set_attr("ok", ok)
        if not ok:
            return ExchangeResult(False, None, "pi_p rejected by buyer", gas)
        k_v, h_v = buyer.choose_verification_key()
        if tamper_k_v:
            k_v = (k_v + 1) % R  # buyer lies to the seller off-chain
        try:
            # The off-chain k_v channel, buyer -> seller.
            policy.run(lambda: faults.check("exchange.msg.key"), site="exchange.msg.key")
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted(gas, None, "k_v undeliverable: %s" % exc)
        with telemetry.span("exchange.commit", phase=1) as sp:
            try:
                receipt = policy.run(
                    lambda: self.chain.transact(
                        buyer.address,
                        self.arbiter,
                        "lock_payment",
                        seller.address,
                        seller.asset.key_commitment.value,
                        h_v,
                        value=price,
                    ),
                    site="chain.lock_payment",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                sp.set_attr("aborted", True)
                return self._aborted(gas, None, "payment lock undeliverable: %s" % exc)
            sp.set_attrs(receipt.span_attrs())
        gas += receipt.gas_used
        if not receipt.status:
            return ExchangeResult(False, None, "payment lock failed", gas)
        exchange_id = receipt.return_value

        # ----- Phase 2: key negotiation ---------------------------------
        info = self.chain.call_view(self.arbiter, "exchange_info", exchange_id)
        h_v_on_chain = info[3]
        try:
            with telemetry.span("exchange.prove", phase=2, proof="pi_k"):
                k_c, pi_k = seller.key_negotiation_message(k_v, h_v_on_chain)
        except ProtocolError as exc:
            return self._abort_and_refund(buyer, exchange_id, gas, str(exc))
        if tamper_k_c:
            k_c = (k_c + 1) % R
        try:
            # The (k_c, pi_k) message channel, seller -> chain.
            policy.run(
                lambda: faults.check("exchange.msg.negotiation"),
                site="exchange.msg.negotiation",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._abort_and_refund(
                buyer, exchange_id, gas, "phase-2 message undeliverable: %s" % exc
            )
        with telemetry.span("exchange.reveal", phase=2) as sp:
            try:
                receipt = policy.run(
                    lambda: self.chain.transact(
                        seller.address,
                        self.arbiter,
                        "submit_key",
                        exchange_id,
                        k_c,
                        pi_k.to_bytes(),
                    ),
                    site="chain.submit_key",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                sp.set_attr("aborted", True)
                return self._abort_and_refund(
                    buyer, exchange_id, gas, "key submission undeliverable: %s" % exc
                )
            sp.set_attrs(receipt.span_attrs())
        gas += receipt.gas_used
        if not receipt.status:
            return self._abort_and_refund(
                buyer, exchange_id, gas, "pi_k rejected on chain: %s" % receipt.error
            )

        with telemetry.span("exchange.settle", phase=2):
            masked = self.chain.call_view(self.arbiter, "masked_key", exchange_id)
            plaintext = buyer.recover_plaintext(masked)
        return ExchangeResult(True, plaintext, "ok", gas, exchange_id)

    # ----- abort machinery ----------------------------------------------

    def _aborted(self, gas: int, exchange_id, reason: str) -> ExchangeResult:
        """Terminal abort *before* any payment was locked: nothing to
        unwind, the seller still holds the key, the buyer her funds."""
        if telemetry.metrics_enabled():
            telemetry.counter("exchange.aborted", protocol="keysecure").inc()
        return ExchangeResult(False, None, reason, gas, exchange_id, aborted=True)

    def _abort_and_refund(self, buyer, exchange_id, gas: int, reason: str) -> ExchangeResult:
        """Terminal abort *after* the payment lock: drive the buyer's
        refund through, retrying persistently.

        The refund is the safety-critical leg — until it lands the
        buyer's escrow is stranded — so it runs under the patient
        :data:`repro.faults.ABORT_POLICY` rather than the per-step
        policy.  A refund that still cannot be confirmed raises
        :class:`ExchangeAbortedError`; chaos plans with bounded fault
        budgets never reach it.
        """
        with telemetry.span("exchange.abort", exchange_id=exchange_id) as sp:
            try:
                refund = ABORT_POLICY.run(
                    lambda: self.chain.transact(
                        buyer.address, self.arbiter, "refund", exchange_id
                    ),
                    site="chain.refund",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                raise ExchangeAbortedError(
                    "buyer refund for exchange %s could not be submitted: %s"
                    % (exchange_id, exc)
                ) from exc
            gas += refund.gas_used
            sp.set_attrs(refund.span_attrs("refund"))
            if not refund.status:
                raise ExchangeAbortedError(
                    "buyer refund for exchange %s reverted: %s"
                    % (exchange_id, refund.error)
                )
        return self._aborted(gas, exchange_id, reason)
