"""The FairSwap protocol driver (seller/buyer sides, off-chain logic).

Complements :class:`repro.contracts.fairswap.FairSwapContract` with the
off-chain machinery: block encryption, Merkle tree construction over the
plaintext and ciphertext, local re-verification after key reveal, and
complaint assembly when the seller cheated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    DeadlineExceededError,
    ExchangeAbortedError,
    ProtocolError,
    RetryExhaustedError,
)
from repro.faults.retry import ABORT_POLICY, RetryPolicy
from repro import telemetry
from repro.field.fr import MODULUS as R, rand_fr
from repro.gadgets.merkle import MerkleTree
from repro.primitives.hashing import field_hash
from repro.primitives.mimc import MiMC


@dataclass
class FairSwapListing:
    """Seller-side state of one FairSwap sale."""

    blocks: list[int]
    key: int
    nonce: int
    cipher_blocks: list[int]
    plain_tree: MerkleTree
    cipher_tree: MerkleTree

    @staticmethod
    def create(blocks: list[int], key: int | None = None, nonce: int | None = None) -> "FairSwapListing":
        if not blocks:
            raise ProtocolError("a FairSwap listing needs at least one block")
        blocks = [b % R for b in blocks]
        key = rand_fr() if key is None else key % R
        nonce = rand_fr() if nonce is None else nonce % R
        cipher = MiMC()
        cipher_blocks = [
            (b + cipher.encrypt_block(key, (nonce + i) % R)) % R
            for i, b in enumerate(blocks)
        ]
        return FairSwapListing(
            blocks=blocks,
            key=key,
            nonce=nonce,
            cipher_blocks=cipher_blocks,
            plain_tree=MerkleTree(blocks),
            cipher_tree=MerkleTree(cipher_blocks),
        )

    def tamper_block(self, index: int) -> None:
        """Adversarial hook: corrupt one ciphertext block after committing
        the plaintext tree (the misbehaviour FairSwap disputes catch)."""
        self.cipher_blocks[index] = (self.cipher_blocks[index] + 1) % R
        self.cipher_tree = MerkleTree(self.cipher_blocks)


@dataclass
class FairSwapResult:
    success: bool
    plaintext: list | None
    reason: str
    gas_used: int
    dispute_gas: int = 0
    aborted: bool = False


class FairSwapExchange:
    """Orchestrates one FairSwap sale against the arbiter contract.

    Transactions run under ``retry``; if the seller's ``reveal_key``
    stays undeliverable past the policy budget, the driver waits out the
    reveal window and recovers the buyer's escrow through the contract's
    ``abort`` entry point.
    """

    def __init__(self, chain, contract, retry: RetryPolicy | None = None):
        self.chain = chain
        self.contract = contract
        self.retry = retry if retry is not None else RetryPolicy()

    def _tx(self, sender: str, method: str, *args, site: str, value: int = 0):
        return self.retry.run(
            lambda: self.chain.transact(
                sender, self.contract, method, *args, value=value
            ),
            site=site,
        )

    def run(
        self,
        seller: str,
        buyer: str,
        listing: FairSwapListing,
        price: int,
        cheat_block: int | None = None,
    ) -> FairSwapResult:
        """Execute offer -> accept -> reveal -> (complain | finalize).

        ``cheat_block`` makes the seller corrupt that ciphertext block
        before listing; the buyer then wins a dispute.
        """
        gas = 0
        if cheat_block is not None:
            listing.tamper_block(cheat_block)

        try:
            receipt = self._tx(
                seller, "offer",
                listing.cipher_tree.root, listing.plain_tree.root,
                field_hash(listing.key), listing.nonce,
                len(listing.blocks), price,
                site="chain.offer",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted(gas, "offer undeliverable: %s" % exc)
        gas += receipt.gas_used
        sale_id = receipt.return_value

        try:
            receipt = self._tx(buyer, "accept", sale_id, site="chain.accept", value=price)
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted(gas, "accept undeliverable: %s" % exc)
        gas += receipt.gas_used
        if not receipt.status:
            return FairSwapResult(False, None, "accept failed", gas)

        try:
            receipt = self._tx(
                seller, "reveal_key", sale_id, listing.key, site="chain.reveal"
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._abort_after_accept(
                buyer, sale_id, gas, "reveal undeliverable: %s" % exc
            )
        gas += receipt.gas_used
        if not receipt.status:
            return self._abort_after_accept(
                buyer, sale_id, gas, "reveal rejected: %s" % receipt.error
            )

        # Buyer decrypts locally and checks every block against the
        # advertised plaintext root.
        key = self.chain.call_view(self.contract, "revealed_key", sale_id)
        cipher = MiMC()
        decrypted = [
            (c - cipher.encrypt_block(key, (listing.nonce + i) % R)) % R
            for i, c in enumerate(listing.cipher_blocks)
        ]
        bad_index = None
        for i, block in enumerate(decrypted):
            if not MerkleTree.verify(
                listing.plain_tree.root, block, listing.plain_tree.prove(i)
            ):
                bad_index = i
                break

        if bad_index is None:
            self.chain.seal_block()
            for _ in range(6):
                self.chain.seal_block()
            try:
                receipt = ABORT_POLICY.run(
                    lambda: self.chain.transact(seller, self.contract, "finalize", sale_id),
                    site="chain.finalize",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                raise ExchangeAbortedError(
                    "finalize for sale %s could not be submitted: %s" % (sale_id, exc)
                ) from exc
            gas += receipt.gas_used
            return FairSwapResult(True, decrypted, "ok", gas)

        # Dispute: assemble the proof of misbehaviour.  A lost complaint
        # strands the buyer's escrow, so submission runs under the more
        # persistent abort policy.
        c_proof = listing.cipher_tree.prove(bad_index)
        p_proof = listing.plain_tree.prove(bad_index)
        try:
            receipt = ABORT_POLICY.run(
                lambda: self.chain.transact(
                    buyer, self.contract, "complain", sale_id, bad_index,
                    listing.cipher_blocks[bad_index],
                    tuple(c_proof.siblings), tuple(c_proof.path_bits),
                    listing.blocks[bad_index],
                    tuple(p_proof.siblings), tuple(p_proof.path_bits),
                ),
                site="chain.complain",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            raise ExchangeAbortedError(
                "complaint for sale %s could not be submitted: %s" % (sale_id, exc)
            ) from exc
        gas += receipt.gas_used
        if not receipt.status:
            return FairSwapResult(False, None, "complaint rejected: %s" % receipt.error, gas)
        return FairSwapResult(
            False, None, "seller cheated; buyer refunded", gas, dispute_gas=receipt.gas_used
        )

    # ----- abort machinery ----------------------------------------------

    def _aborted(self, gas: int, reason: str) -> FairSwapResult:
        if telemetry.metrics_enabled():
            telemetry.counter("exchange.aborted", protocol="fairswap").inc()
        return FairSwapResult(False, None, reason, gas, aborted=True)

    def _abort_after_accept(
        self, buyer: str, sale_id: int, gas: int, reason: str
    ) -> FairSwapResult:
        """Recover the buyer's escrow when the seller never reveals.

        Waits out the reveal window (the offers placed by this driver use
        the contract's default ``dispute_window`` of 5 blocks), then pulls
        the escrow back through the contract's ``abort`` entry point.
        """
        with telemetry.span("fairswap.abort", sale_id=sale_id):
            for _ in range(6):
                self.chain.seal_block()
            try:
                refund = ABORT_POLICY.run(
                    lambda: self.chain.transact(buyer, self.contract, "abort", sale_id),
                    site="chain.abort",
                )
            except (RetryExhaustedError, DeadlineExceededError) as exc:
                raise ExchangeAbortedError(
                    "buyer abort for sale %s could not be submitted: %s" % (sale_id, exc)
                ) from exc
            gas += refund.gas_used
            if not refund.status:
                raise ExchangeAbortedError(
                    "buyer abort for sale %s reverted: %s" % (sale_id, refund.error)
                )
        return self._aborted(gas, reason)
