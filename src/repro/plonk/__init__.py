"""A complete Plonk proving system (GWC19) over BN254 + KZG.

This is the NIZK scheme Pi = (KeyGen, Prove, Verify) of the paper
(Definition 2.4), instantiated exactly as the prototype: the Plonk
construction with a universal updatable SRS, giving constant-size proofs
(9 G1 + 6 F elements) and constant-time verification (2 pairings).

Typical usage::

    builder = CircuitBuilder()
    x = builder.public_input(3)
    y = builder.mul(x, x)
    builder.assert_constant(y, 9)
    layout, assignment = builder.compile()

    srs = SRS.generate(layout.n + 8)
    pk, vk = setup(srs, layout)
    proof = prove(pk, assignment)
    assert verify(vk, assignment.public_inputs, proof)
"""

from repro.plonk.circuit import CircuitBuilder, Layout, Assignment
from repro.plonk.keys import ProvingKey, VerifyingKey, setup
from repro.plonk.proof import Proof
from repro.plonk.prover import prove
from repro.plonk.verifier import verify
from repro.plonk.batch import batch_verify
from repro.plonk.transcript import Transcript

__all__ = [
    "Assignment",
    "CircuitBuilder",
    "Layout",
    "Proof",
    "ProvingKey",
    "Transcript",
    "VerifyingKey",
    "batch_verify",
    "prove",
    "setup",
    "verify",
]
