"""The Plonk prover (rounds 1-5 of GWC19).

Produces a zero-knowledge proof that the prover knows wire assignments
satisfying the circuit for the given public inputs.  All wire, permutation
and quotient polynomials are blinded with multiples of Z_H so that the
proof leaks nothing about the witness beyond the statement.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import ProofError
from repro.backend import get_engine
from repro.field import poly
from repro.field.fr import MODULUS as R, random_scalar
from repro.plonk.circuit import Assignment, K1, K2
from repro.plonk.keys import ProvingKey
from repro.plonk.proof import Proof
from repro.plonk.transcript import Transcript

from repro.kzg.commit import commit


def _blind(coeffs: list[int], blinders: list[int], n: int) -> list[int]:
    """Add blinder(X) * Z_H(X) to ``coeffs`` (hiding against evaluations)."""
    zh = [(-1) % R] + [0] * (n - 1) + [1]
    return poly.add(coeffs, poly.mul(blinders, zh))


def prove(
    pk: ProvingKey, assignment: Assignment, blinding: bool = True, engine=None
) -> Proof:
    """Generate a Plonk proof for ``assignment`` under ``pk``.

    Raises :class:`ProofError` (via the layout check) when the witness does
    not satisfy the circuit; a correct prover never signs false statements.

    All kernel work (NTTs, MSMs, batched inversion) routes through the
    compute ``engine``.  The engine memoises the coset evaluations of the
    selector and permutation polynomials — fixed per proving key — so the
    second proof onward for a circuit skips 9 of the 15 size-8n FFTs of
    round 3, plus the SRS Jacobian conversion behind every commitment.

    Under ``REPRO_TELEMETRY=trace`` the proof emits a ``plonk.prove``
    span with one child per round (blinding, permutation, quotient,
    evaluation, opening); at ``metrics`` level the engine's kernel
    counters record every NTT/MSM/inversion with sizes and cache
    outcomes.
    """
    engine = engine or get_engine()
    layout = pk.layout
    layout.check(assignment)  # raises UnsatisfiedConstraintError early
    n = layout.n
    domain = engine.domain(n)
    omega = domain.omega
    srs = pk.srs
    # Blinders come from F_r^*: a zero blinder would leave a wire
    # polynomial's evaluations unmasked at the opened points.
    rand = (lambda: random_scalar(nonzero=True)) if blinding else (lambda: 0)

    with telemetry.span(
        "plonk.prove", n=n, public_inputs=len(assignment.public_inputs), backend=engine.name
    ):
        return _prove_rounds(pk, assignment, engine, domain, omega, srs, rand, n)


def _prove_rounds(pk, assignment, engine, domain, omega, srs, rand, n) -> Proof:
    """Rounds 1-5, each wrapped in a child span of ``root``."""
    transcript = Transcript(b"plonk")
    transcript.append_bytes(b"vk", pk.vk.digest())
    public_inputs = assignment.public_inputs
    for w in public_inputs:
        transcript.append_scalar(b"pub", w)

    # ----- Round 1: wire polynomials -------------------------------------
    with telemetry.span("blinding", round=1):
        wire_polys = engine.ntt_batch(
            [
                ("ifft", n, list(assignment.a), 0),
                ("ifft", n, list(assignment.b), 0),
                ("ifft", n, list(assignment.c), 0),
            ]
        )
        a_poly = _blind(wire_polys[0], [rand(), rand()], n)
        b_poly = _blind(wire_polys[1], [rand(), rand()], n)
        c_poly = _blind(wire_polys[2], [rand(), rand()], n)
        c_a = commit(srs, a_poly, engine=engine)
        c_b = commit(srs, b_poly, engine=engine)
        c_c = commit(srs, c_poly, engine=engine)
        transcript.append_point(b"a", c_a)
        transcript.append_point(b"b", c_b)
        transcript.append_point(b"c", c_c)

    # ----- Round 2: permutation accumulator z ----------------------------
    with telemetry.span("permutation", round=2):
        beta = transcript.challenge(b"beta")
        # Sound despite no absorb in between: challenge() folds its own
        # output back into the sponge, so gamma is bound to beta and to
        # every commitment beta was bound to (GWC19 draws both from the
        # same round-2 state).
        gamma = transcript.challenge(b"gamma")  # zklint: disable=FS-001
        points = domain.elements
        s1, s2, s3 = pk.sigma_star
        denominators = []
        numerators = []
        for i in range(n):
            wa, wb, wc = assignment.a[i], assignment.b[i], assignment.c[i]
            x = points[i]
            numerators.append(
                (wa + beta * x + gamma)
                * (wb + beta * K1 * x % R + gamma)
                % R
                * (wc + beta * K2 * x % R + gamma)
                % R
            )
            denominators.append(
                (wa + beta * s1[i] + gamma)
                * (wb + beta * s2[i] + gamma)
                % R
                * (wc + beta * s3[i] + gamma)
                % R
            )
        inv_denoms = engine.batch_inverse(denominators)
        z_vals = [1] * n
        for i in range(n - 1):
            z_vals[i + 1] = z_vals[i] * numerators[i] % R * inv_denoms[i] % R
        z_poly = _blind(engine.intt(z_vals), [rand(), rand(), rand()], n)
        c_z = commit(srs, z_poly, engine=engine)
        transcript.append_point(b"z", c_z)

    # ----- Round 3: quotient polynomial t --------------------------------
    with telemetry.span("quotient", round=3):
        alpha = transcript.challenge(b"alpha")
        pi_vals = [0] * n
        for i, w in enumerate(public_inputs):
            pi_vals[i] = (-w) % R
        pi_poly = engine.intt(pi_vals)
        l1_poly = engine.intt([1] + [0] * (n - 1))
        # z(omega * X): scale coefficient i by omega^i.
        zw_poly = []
        acc = 1
        for coef in z_poly:
            zw_poly.append(coef * acc % R)
            acc = acc * omega % R

        from repro.field.ntt import COSET_SHIFT

        big_n = 8 * n  # numerator degree can reach 4n+5 < 8n
        xs = engine.coset_points(big_n)
        # Selector / permutation / L1 polynomials are fixed per proving key:
        # their coset evaluations come from the engine's memo (computed on the
        # first proof, reused afterwards).
        ev = {
            name: engine.coset_ntt_cached(pk, name, coeffs, big_n)
            for name, coeffs in (
                ("qm", pk.q_polys["qm"]),
                ("ql", pk.q_polys["ql"]),
                ("qr", pk.q_polys["qr"]),
                ("qo", pk.q_polys["qo"]),
                ("qc", pk.q_polys["qc"]),
                ("s1", list(pk.s_polys[0])),
                ("s2", list(pk.s_polys[1])),
                ("s3", list(pk.s_polys[2])),
                ("l1", l1_poly),
            )
        }
        # The witness-dependent polynomials are transformed fresh each proof,
        # as one batch so parallel backends can fan them out.
        live = ("a", a_poly), ("b", b_poly), ("c", c_poly), ("z", z_poly), ("zw", zw_poly), ("pi", pi_poly)
        live_evals = engine.ntt_batch(
            [("coset_fft", big_n, coeffs, COSET_SHIFT) for _, coeffs in live]
        )
        for (name, _), evals in zip(live, live_evals):
            ev[name] = evals
        alpha2 = alpha * alpha % R
        num_evals = []
        for i in range(big_n):
            av, bv, cv = ev["a"][i], ev["b"][i], ev["c"][i]
            zv, zwv = ev["z"][i], ev["zw"][i]
            x = xs[i]
            gate = (
                av * bv % R * ev["qm"][i]
                + av * ev["ql"][i]
                + bv * ev["qr"][i]
                + cv * ev["qo"][i]
                + ev["pi"][i]
                + ev["qc"][i]
            ) % R
            perm_a = (
                (av + beta * x + gamma)
                * (bv + beta * K1 * x % R + gamma)
                % R
                * (cv + beta * K2 * x % R + gamma)
                % R
                * zv
                % R
            )
            perm_b = (
                (av + beta * ev["s1"][i] + gamma)
                * (bv + beta * ev["s2"][i] + gamma)
                % R
                * (cv + beta * ev["s3"][i] + gamma)
                % R
                * zwv
                % R
            )
            boundary = (zv - 1) * ev["l1"][i] % R
            num_evals.append((gate + alpha * (perm_a - perm_b) + alpha2 * boundary) % R)
        numerator = engine.coset_intt(num_evals)
        try:
            t_poly = poly.divide_by_vanishing(numerator, n)
        except Exception as exc:  # exact division fails iff constraints broken
            raise ProofError("quotient is not divisible by Z_H: %s" % exc) from exc

        t_lo = t_poly[:n]
        t_mid = t_poly[n : 2 * n]
        t_hi = t_poly[2 * n :]
        b10, b11 = rand(), rand()
        t_lo = t_lo + [0] * (n - len(t_lo)) + [b10]
        t_mid = t_mid + [0] * (n - len(t_mid)) + [b11]
        t_mid[0] = (t_mid[0] - b10) % R
        t_hi = list(t_hi)
        if not t_hi:
            t_hi = [0]
        t_hi[0] = (t_hi[0] - b11) % R
        c_t_lo, c_t_mid, c_t_hi = (
            commit(srs, t_lo, engine=engine),
            commit(srs, t_mid, engine=engine),
            commit(srs, t_hi, engine=engine),
        )
        transcript.append_point(b"t_lo", c_t_lo)
        transcript.append_point(b"t_mid", c_t_mid)
        transcript.append_point(b"t_hi", c_t_hi)

    # ----- Round 4: evaluations at zeta -----------------------------------
    with telemetry.span("evaluation", round=4):
        zeta = transcript.challenge(b"zeta")
        a_bar = poly.evaluate(a_poly, zeta)
        b_bar = poly.evaluate(b_poly, zeta)
        c_bar = poly.evaluate(c_poly, zeta)
        s1_bar = poly.evaluate(list(pk.s_polys[0]), zeta)
        s2_bar = poly.evaluate(list(pk.s_polys[1]), zeta)
        z_omega_bar = poly.evaluate(z_poly, zeta * omega % R)
        for label, value in (
            (b"a_bar", a_bar),
            (b"b_bar", b_bar),
            (b"c_bar", c_bar),
            (b"s1_bar", s1_bar),
            (b"s2_bar", s2_bar),
            (b"z_omega_bar", z_omega_bar),
        ):
            transcript.append_scalar(label, value)

    # ----- Round 5: linearization + opening proofs ------------------------
    with telemetry.span("opening", round=5):
        v = transcript.challenge(b"v")
        zh_zeta = domain.vanishing_eval(zeta)
        l1_zeta = domain.lagrange_basis_eval(0, zeta)
        pi_zeta = poly.evaluate(pi_poly, zeta)

        pa = (
            (a_bar + beta * zeta + gamma)
            * (b_bar + beta * K1 * zeta % R + gamma)
            % R
            * (c_bar + beta * K2 * zeta % R + gamma)
            % R
        )
        pb = (a_bar + beta * s1_bar + gamma) * (b_bar + beta * s2_bar + gamma) % R

        d_poly: list[int] = []
        d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qm"], a_bar * b_bar % R))
        d_poly = poly.add(d_poly, poly.scale(pk.q_polys["ql"], a_bar))
        d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qr"], b_bar))
        d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qo"], c_bar))
        d_poly = poly.add(d_poly, pk.q_polys["qc"])
        z_scalar = (alpha * pa + alpha2 * l1_zeta) % R
        d_poly = poly.add(d_poly, poly.scale(z_poly, z_scalar))
        s3_scalar = (-(alpha * pb % R) * beta % R) * z_omega_bar % R
        d_poly = poly.add(d_poly, poly.scale(list(pk.s_polys[2]), s3_scalar))
        t_combined = poly.add(
            poly.add(t_lo, poly.scale(t_mid, pow(zeta, n, R))),
            poly.scale(t_hi, pow(zeta, 2 * n, R)),
        )
        d_poly = poly.sub(d_poly, poly.scale(t_combined, zh_zeta))

        r0 = (
            pi_zeta
            - l1_zeta * alpha2
            - alpha * pb % R * ((c_bar + gamma) % R) % R * z_omega_bar
        ) % R
        if (poly.evaluate(d_poly, zeta) + r0) % R != 0:
            raise ProofError("internal linearization check failed")

        numerator = poly.add(d_poly, [r0])
        vk_pow = v
        for opened, value in (
            (a_poly, a_bar),
            (b_poly, b_bar),
            (c_poly, c_bar),
            (list(pk.s_polys[0]), s1_bar),
            (list(pk.s_polys[1]), s2_bar),
        ):
            numerator = poly.add(numerator, poly.scale(poly.sub(opened, [value]), vk_pow))
            vk_pow = vk_pow * v % R
        w_zeta_poly = poly.divide_by_linear(numerator, zeta)
        w_zeta_omega_poly = poly.divide_by_linear(
            poly.sub(z_poly, [z_omega_bar]), zeta * omega % R
        )
        w_zeta = commit(srs, w_zeta_poly, engine=engine)
        w_zeta_omega = commit(srs, w_zeta_omega_poly, engine=engine)
        transcript.append_point(b"w_zeta", w_zeta)
        transcript.append_point(b"w_zeta_omega", w_zeta_omega)
        transcript.challenge(b"u")  # keeps prover/verifier transcripts aligned

    return Proof(
        c_a=c_a,
        c_b=c_b,
        c_c=c_c,
        c_z=c_z,
        c_t_lo=c_t_lo,
        c_t_mid=c_t_mid,
        c_t_hi=c_t_hi,
        w_zeta=w_zeta,
        w_zeta_omega=w_zeta_omega,
        a_bar=a_bar,
        b_bar=b_bar,
        c_bar=c_bar,
        s1_bar=s1_bar,
        s2_bar=s2_bar,
        z_omega_bar=z_omega_bar,
    )
