"""The Plonk prover (rounds 1-5 of GWC19).

Produces a zero-knowledge proof that the prover knows wire assignments
satisfying the circuit for the given public inputs.  All wire, permutation
and quotient polynomials are blinded with multiples of Z_H so that the
proof leaks nothing about the witness beyond the statement.
"""

from __future__ import annotations

from repro.errors import ProofError
from repro.field import poly
from repro.field.fr import MODULUS as R, batch_inverse, rand_fr
from repro.field.ntt import Domain
from repro.kzg.commit import commit
from repro.plonk.circuit import Assignment, K1, K2
from repro.plonk.keys import ProvingKey
from repro.plonk.proof import Proof
from repro.plonk.transcript import Transcript


def _blind(coeffs: list[int], blinders: list[int], n: int) -> list[int]:
    """Add blinder(X) * Z_H(X) to ``coeffs`` (hiding against evaluations)."""
    zh = [(-1) % R] + [0] * (n - 1) + [1]
    return poly.add(coeffs, poly.mul(blinders, zh))


def prove(pk: ProvingKey, assignment: Assignment, blinding: bool = True) -> Proof:
    """Generate a Plonk proof for ``assignment`` under ``pk``.

    Raises :class:`ProofError` (via the layout check) when the witness does
    not satisfy the circuit; a correct prover never signs false statements.
    """
    layout = pk.layout
    layout.check(assignment)  # raises UnsatisfiedConstraintError early
    n = layout.n
    domain = Domain.get(n)
    omega = domain.omega
    srs = pk.srs
    rand = rand_fr if blinding else (lambda: 0)

    transcript = Transcript(b"plonk")
    transcript.append_bytes(b"vk", pk.vk.digest())
    public_inputs = assignment.public_inputs
    for w in public_inputs:
        transcript.append_scalar(b"pub", w)

    # ----- Round 1: wire polynomials -------------------------------------
    a_poly = _blind(domain.ifft(assignment.a), [rand(), rand()], n)
    b_poly = _blind(domain.ifft(assignment.b), [rand(), rand()], n)
    c_poly = _blind(domain.ifft(assignment.c), [rand(), rand()], n)
    c_a, c_b, c_c = commit(srs, a_poly), commit(srs, b_poly), commit(srs, c_poly)
    transcript.append_point(b"a", c_a)
    transcript.append_point(b"b", c_b)
    transcript.append_point(b"c", c_c)

    # ----- Round 2: permutation accumulator z ----------------------------
    beta = transcript.challenge(b"beta")
    gamma = transcript.challenge(b"gamma")
    points = domain.elements
    s1, s2, s3 = pk.sigma_star
    denominators = []
    numerators = []
    for i in range(n):
        wa, wb, wc = assignment.a[i], assignment.b[i], assignment.c[i]
        x = points[i]
        numerators.append(
            (wa + beta * x + gamma)
            * (wb + beta * K1 * x % R + gamma)
            % R
            * (wc + beta * K2 * x % R + gamma)
            % R
        )
        denominators.append(
            (wa + beta * s1[i] + gamma)
            * (wb + beta * s2[i] + gamma)
            % R
            * (wc + beta * s3[i] + gamma)
            % R
        )
    inv_denoms = batch_inverse(denominators)
    z_vals = [1] * n
    for i in range(n - 1):
        z_vals[i + 1] = z_vals[i] * numerators[i] % R * inv_denoms[i] % R
    z_poly = _blind(domain.ifft(z_vals), [rand(), rand(), rand()], n)
    c_z = commit(srs, z_poly)
    transcript.append_point(b"z", c_z)

    # ----- Round 3: quotient polynomial t --------------------------------
    alpha = transcript.challenge(b"alpha")
    pi_vals = [0] * n
    for i, w in enumerate(public_inputs):
        pi_vals[i] = (-w) % R
    pi_poly = domain.ifft(pi_vals)
    l1_poly = domain.ifft([1] + [0] * (n - 1))
    # z(omega * X): scale coefficient i by omega^i.
    zw_poly = []
    acc = 1
    for coef in z_poly:
        zw_poly.append(coef * acc % R)
        acc = acc * omega % R

    big = Domain.get(8 * n)  # numerator degree can reach 4n+5 < 8n
    shift_points = []
    acc = 1
    for _ in range(big.n):
        shift_points.append(acc)
        acc = acc * big.omega % R
    from repro.field.ntt import COSET_SHIFT

    xs = [COSET_SHIFT * p % R for p in shift_points]
    ev = {
        "a": big.coset_fft(a_poly),
        "b": big.coset_fft(b_poly),
        "c": big.coset_fft(c_poly),
        "z": big.coset_fft(z_poly),
        "zw": big.coset_fft(zw_poly),
        "qm": big.coset_fft(pk.q_polys["qm"]),
        "ql": big.coset_fft(pk.q_polys["ql"]),
        "qr": big.coset_fft(pk.q_polys["qr"]),
        "qo": big.coset_fft(pk.q_polys["qo"]),
        "qc": big.coset_fft(pk.q_polys["qc"]),
        "s1": big.coset_fft(list(pk.s_polys[0])),
        "s2": big.coset_fft(list(pk.s_polys[1])),
        "s3": big.coset_fft(list(pk.s_polys[2])),
        "pi": big.coset_fft(pi_poly),
        "l1": big.coset_fft(l1_poly),
    }
    alpha2 = alpha * alpha % R
    num_evals = []
    for i in range(big.n):
        av, bv, cv = ev["a"][i], ev["b"][i], ev["c"][i]
        zv, zwv = ev["z"][i], ev["zw"][i]
        x = xs[i]
        gate = (
            av * bv % R * ev["qm"][i]
            + av * ev["ql"][i]
            + bv * ev["qr"][i]
            + cv * ev["qo"][i]
            + ev["pi"][i]
            + ev["qc"][i]
        ) % R
        perm_a = (
            (av + beta * x + gamma)
            * (bv + beta * K1 * x % R + gamma)
            % R
            * (cv + beta * K2 * x % R + gamma)
            % R
            * zv
            % R
        )
        perm_b = (
            (av + beta * ev["s1"][i] + gamma)
            * (bv + beta * ev["s2"][i] + gamma)
            % R
            * (cv + beta * ev["s3"][i] + gamma)
            % R
            * zwv
            % R
        )
        boundary = (zv - 1) * ev["l1"][i] % R
        num_evals.append((gate + alpha * (perm_a - perm_b) + alpha2 * boundary) % R)
    numerator = big.coset_ifft(num_evals)
    try:
        t_poly = poly.divide_by_vanishing(numerator, n)
    except Exception as exc:  # exact division fails iff constraints broken
        raise ProofError("quotient is not divisible by Z_H: %s" % exc) from exc

    t_lo = t_poly[:n]
    t_mid = t_poly[n : 2 * n]
    t_hi = t_poly[2 * n :]
    b10, b11 = rand(), rand()
    t_lo = t_lo + [0] * (n - len(t_lo)) + [b10]
    t_mid = t_mid + [0] * (n - len(t_mid)) + [b11]
    t_mid[0] = (t_mid[0] - b10) % R
    t_hi = list(t_hi)
    if not t_hi:
        t_hi = [0]
    t_hi[0] = (t_hi[0] - b11) % R
    c_t_lo, c_t_mid, c_t_hi = (
        commit(srs, t_lo),
        commit(srs, t_mid),
        commit(srs, t_hi),
    )
    transcript.append_point(b"t_lo", c_t_lo)
    transcript.append_point(b"t_mid", c_t_mid)
    transcript.append_point(b"t_hi", c_t_hi)

    # ----- Round 4: evaluations at zeta -----------------------------------
    zeta = transcript.challenge(b"zeta")
    a_bar = poly.evaluate(a_poly, zeta)
    b_bar = poly.evaluate(b_poly, zeta)
    c_bar = poly.evaluate(c_poly, zeta)
    s1_bar = poly.evaluate(list(pk.s_polys[0]), zeta)
    s2_bar = poly.evaluate(list(pk.s_polys[1]), zeta)
    z_omega_bar = poly.evaluate(z_poly, zeta * omega % R)
    for label, value in (
        (b"a_bar", a_bar),
        (b"b_bar", b_bar),
        (b"c_bar", c_bar),
        (b"s1_bar", s1_bar),
        (b"s2_bar", s2_bar),
        (b"z_omega_bar", z_omega_bar),
    ):
        transcript.append_scalar(label, value)

    # ----- Round 5: linearization + opening proofs ------------------------
    v = transcript.challenge(b"v")
    zh_zeta = domain.vanishing_eval(zeta)
    l1_zeta = domain.lagrange_basis_eval(0, zeta)
    pi_zeta = poly.evaluate(pi_poly, zeta)

    pa = (
        (a_bar + beta * zeta + gamma)
        * (b_bar + beta * K1 * zeta % R + gamma)
        % R
        * (c_bar + beta * K2 * zeta % R + gamma)
        % R
    )
    pb = (a_bar + beta * s1_bar + gamma) * (b_bar + beta * s2_bar + gamma) % R

    d_poly: list[int] = []
    d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qm"], a_bar * b_bar % R))
    d_poly = poly.add(d_poly, poly.scale(pk.q_polys["ql"], a_bar))
    d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qr"], b_bar))
    d_poly = poly.add(d_poly, poly.scale(pk.q_polys["qo"], c_bar))
    d_poly = poly.add(d_poly, pk.q_polys["qc"])
    z_scalar = (alpha * pa + alpha2 * l1_zeta) % R
    d_poly = poly.add(d_poly, poly.scale(z_poly, z_scalar))
    s3_scalar = (-(alpha * pb % R) * beta % R) * z_omega_bar % R
    d_poly = poly.add(d_poly, poly.scale(list(pk.s_polys[2]), s3_scalar))
    t_combined = poly.add(
        poly.add(t_lo, poly.scale(t_mid, pow(zeta, n, R))),
        poly.scale(t_hi, pow(zeta, 2 * n, R)),
    )
    d_poly = poly.sub(d_poly, poly.scale(t_combined, zh_zeta))

    r0 = (
        pi_zeta
        - l1_zeta * alpha2
        - alpha * pb % R * ((c_bar + gamma) % R) % R * z_omega_bar
    ) % R
    if (poly.evaluate(d_poly, zeta) + r0) % R != 0:
        raise ProofError("internal linearization check failed")

    numerator = poly.add(d_poly, [r0])
    vk_pow = v
    for opened, value in (
        (a_poly, a_bar),
        (b_poly, b_bar),
        (c_poly, c_bar),
        (list(pk.s_polys[0]), s1_bar),
        (list(pk.s_polys[1]), s2_bar),
    ):
        numerator = poly.add(numerator, poly.scale(poly.sub(opened, [value]), vk_pow))
        vk_pow = vk_pow * v % R
    w_zeta_poly = poly.divide_by_linear(numerator, zeta)
    w_zeta_omega_poly = poly.divide_by_linear(
        poly.sub(z_poly, [z_omega_bar]), zeta * omega % R
    )
    w_zeta = commit(srs, w_zeta_poly)
    w_zeta_omega = commit(srs, w_zeta_omega_poly)
    transcript.append_point(b"w_zeta", w_zeta)
    transcript.append_point(b"w_zeta_omega", w_zeta_omega)
    transcript.challenge(b"u")  # keeps prover/verifier transcripts aligned

    return Proof(
        c_a=c_a,
        c_b=c_b,
        c_c=c_c,
        c_z=c_z,
        c_t_lo=c_t_lo,
        c_t_mid=c_t_mid,
        c_t_hi=c_t_hi,
        w_zeta=w_zeta,
        w_zeta_omega=w_zeta_omega,
        a_bar=a_bar,
        b_bar=b_bar,
        c_bar=c_bar,
        s1_bar=s1_bar,
        s2_bar=s2_bar,
        z_omega_bar=z_omega_bar,
    )
