"""The Plonk verifier.

Succinct: independent of circuit size, the verifier performs one MSM over
~18 G1 points and a single 2-pairing product check — the costs the paper
reports in Section VI-B3 and Figure 7.
"""

from __future__ import annotations

from repro import telemetry
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import K1, K2
from repro.plonk.keys import VerifyingKey
from repro.plonk.proof import Proof
from repro.plonk.transcript import Transcript


def verify(vk: VerifyingKey, public_inputs: list[int], proof: Proof, engine=None) -> bool:
    """Check ``proof`` against ``vk`` and the public inputs."""
    engine = engine or get_engine()
    with telemetry.span("plonk.verify", n=vk.n, public_inputs=len(public_inputs)) as sp:
        prepared = prepare_pairing_inputs(vk, public_inputs, proof, engine=engine)
        if prepared is None:
            sp.set_attr("ok", False)
            return False
        lhs_g1, rhs_g1 = prepared
        with telemetry.span("pairing"):
            ok = engine.pairing_check([(lhs_g1, vk.g2_tau), (-rhs_g1, vk.g2)])
        sp.set_attr("ok", ok)
        return ok


def prepare_pairing_inputs(
    vk: VerifyingKey, public_inputs: list[int], proof: Proof, engine=None
) -> tuple | None:
    """Reduce a proof to its final pairing equation.

    Returns (L, R) such that the proof is valid iff
    e(L, [tau]_2) == e(R, [1]_2); None means an early structural reject.
    Exposing this split lets :mod:`repro.plonk.batch` fold many proofs
    into a single two-pairing check.
    """
    engine = engine or get_engine()
    if len(public_inputs) != vk.ell:
        return None
    n = vk.n
    domain = engine.domain(n)
    omega = domain.omega

    # Recompute all Fiat-Shamir challenges from the same transcript.
    transcript = Transcript(b"plonk")
    transcript.append_bytes(b"vk", vk.digest())
    for w in public_inputs:
        transcript.append_scalar(b"pub", w)
    transcript.append_point(b"a", proof.c_a)
    transcript.append_point(b"b", proof.c_b)
    transcript.append_point(b"c", proof.c_c)
    beta = transcript.challenge(b"beta")
    # Mirrors the prover's round-2 schedule: challenge() folds its output
    # back into the sponge, so gamma stays bound to beta's preimage.
    gamma = transcript.challenge(b"gamma")  # zklint: disable=FS-001
    transcript.append_point(b"z", proof.c_z)
    alpha = transcript.challenge(b"alpha")
    transcript.append_point(b"t_lo", proof.c_t_lo)
    transcript.append_point(b"t_mid", proof.c_t_mid)
    transcript.append_point(b"t_hi", proof.c_t_hi)
    zeta = transcript.challenge(b"zeta")
    for label, value in (
        (b"a_bar", proof.a_bar),
        (b"b_bar", proof.b_bar),
        (b"c_bar", proof.c_bar),
        (b"s1_bar", proof.s1_bar),
        (b"s2_bar", proof.s2_bar),
        (b"z_omega_bar", proof.z_omega_bar),
    ):
        transcript.append_scalar(label, value)
    v = transcript.challenge(b"v")
    transcript.append_point(b"w_zeta", proof.w_zeta)
    transcript.append_point(b"w_zeta_omega", proof.w_zeta_omega)
    u = transcript.challenge(b"u")

    # Evaluations the verifier computes itself.
    zh_zeta = domain.vanishing_eval(zeta)
    if zh_zeta == 0:
        return None  # zeta landed in H (probability ~ n/r); treat as invalid
    l1_zeta = domain.lagrange_basis_eval(0, zeta)
    lagranges = domain.lagrange_basis_evals(vk.ell, zeta)
    pi_zeta = 0
    for w, li in zip(public_inputs, lagranges):
        pi_zeta = (pi_zeta - w * li) % R

    alpha2 = alpha * alpha % R
    pa = (
        (proof.a_bar + beta * zeta + gamma)
        * (proof.b_bar + beta * K1 * zeta % R + gamma)
        % R
        * (proof.c_bar + beta * K2 * zeta % R + gamma)
        % R
    )
    pb = (
        (proof.a_bar + beta * proof.s1_bar + gamma)
        * (proof.b_bar + beta * proof.s2_bar + gamma)
        % R
    )
    r0 = (
        pi_zeta
        - l1_zeta * alpha2
        - alpha * pb % R * ((proof.c_bar + gamma) % R) % R * proof.z_omega_bar
    ) % R

    # [F] = [D] + v[a] + v^2[b] + v^3[c] + v^4[S1] + v^5[S2]  (one MSM).
    zeta_n = pow(zeta, n, R)
    points = [
        vk.c_qm,
        vk.c_ql,
        vk.c_qr,
        vk.c_qo,
        vk.c_qc,
        proof.c_z,
        vk.c_s3,
        proof.c_t_lo,
        proof.c_t_mid,
        proof.c_t_hi,
        proof.c_a,
        proof.c_b,
        proof.c_c,
        vk.c_s1,
        vk.c_s2,
    ]
    scalars = [
        proof.a_bar * proof.b_bar % R,
        proof.a_bar,
        proof.b_bar,
        proof.c_bar,
        1,
        (alpha * pa + alpha2 * l1_zeta + u) % R,
        (-(alpha * pb % R) * beta % R) * proof.z_omega_bar % R,
        -zh_zeta % R,
        -zh_zeta * zeta_n % R,
        -zh_zeta * zeta_n % R * zeta_n % R,
        v,
        v * v % R,
        pow(v, 3, R),
        pow(v, 4, R),
        pow(v, 5, R),
    ]
    f_commit = engine.msm_g1(points, scalars)

    e_scalar = (
        -r0
        + v * proof.a_bar
        + pow(v, 2, R) * proof.b_bar
        + pow(v, 3, R) * proof.c_bar
        + pow(v, 4, R) * proof.s1_bar
        + pow(v, 5, R) * proof.s2_bar
        + u * proof.z_omega_bar
    ) % R

    # Final equation:
    #   e(W_z + u*W_zw, [tau]_2) == e(zeta*W_z + u*zeta*omega*W_zw + F - E, [1]_2)
    lhs_g1 = proof.w_zeta + proof.w_zeta_omega * u
    rhs_g1 = (
        proof.w_zeta * zeta
        + proof.w_zeta_omega * (u * zeta % R * omega % R)
        + f_commit
        - G1.generator() * e_scalar
    )
    return lhs_g1, rhs_g1


def verification_group_operations(vk: VerifyingKey) -> dict:
    """Operation counts for the verifier (used by the Fig. 7 benchmark).

    Returns the paper-reported costs: 2 pairings and ~18 G1 scalar
    multiplications regardless of circuit size, plus one G1 exponentiation
    per public input (inside PI evaluation the work is field-only; the
    public inputs enter through scalars, not points).
    """
    return {
        "pairings": 2,
        "miller_loops": 2,
        "final_exponentiations": 1,
        "g1_scalar_mults": 18,
        "field_ops_per_public_input": 3,
        "proof_size_bytes": 9 * 64 + 6 * 32,
    }
