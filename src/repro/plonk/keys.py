"""Plonk key generation (the KeyGen of the NIZK triple).

``setup(srs, layout)`` preprocesses a compiled circuit into a proving key
(polynomials + SRS) and a verification key (eight commitments + domain
metadata).  The SRS is universal: the same string serves every circuit
whose size fits, so — as the paper stresses — circuits can change without
re-running the ceremony.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import SRSError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.kzg.commit import commit
from repro.kzg.srs import SRS
from repro.plonk.circuit import K1, K2, Layout

#: Extra degree headroom required beyond n (blinding of wires, z and t).
DEGREE_MARGIN = 8


@dataclass(frozen=True)
class VerifyingKey:
    """Succinct verification key: 8 G1 commitments + domain metadata."""

    n: int
    ell: int
    c_qm: G1
    c_ql: G1
    c_qr: G1
    c_qo: G1
    c_qc: G1
    c_s1: G1
    c_s2: G1
    c_s3: G1
    g2: G2
    g2_tau: G2

    def digest(self) -> bytes:
        """Hash binding the transcript to this circuit and SRS."""
        h = hashlib.sha256()
        h.update(b"plonk-vk:%d:%d:%d:%d;" % (self.n, self.ell, K1, K2))
        for c in (
            self.c_qm,
            self.c_ql,
            self.c_qr,
            self.c_qo,
            self.c_qc,
            self.c_s1,
            self.c_s2,
            self.c_s3,
        ):
            h.update(c.to_bytes())
        h.update(self.g2_tau.to_bytes())
        return h.digest()


@dataclass(frozen=True)
class ProvingKey:
    """Everything the prover needs: coefficient polynomials + the SRS."""

    layout: Layout
    srs: SRS
    q_polys: dict  # name -> coefficient list
    s_polys: tuple  # (s1, s2, s3) coefficient lists
    sigma_star: tuple  # (col1, col2, col3) permutation value columns
    vk: VerifyingKey


def setup(srs: SRS, layout: Layout, engine=None) -> tuple[ProvingKey, VerifyingKey]:
    """Preprocess ``layout`` under ``srs`` into proving/verifying keys.

    All eight interpolations run as one engine batch (parallel backends
    fan them out) and the commitments share the engine's cached Jacobian
    view of the SRS.
    """
    engine = engine or get_engine()
    n = layout.n
    if srs.max_degree < n + DEGREE_MARGIN:
        raise SRSError(
            "SRS supports degree %d but circuit of size %d needs %d"
            % (srs.max_degree, n, n + DEGREE_MARGIN)
        )
    sigma_star = layout.sigma_star()
    columns = [
        list(layout.qm),
        list(layout.ql),
        list(layout.qr),
        list(layout.qo),
        list(layout.qc),
    ] + [list(col) for col in sigma_star]
    interpolated = engine.ntt_batch([("ifft", n, col, 0) for col in columns])
    q_polys = {
        "qm": interpolated[0],
        "ql": interpolated[1],
        "qr": interpolated[2],
        "qo": interpolated[3],
        "qc": interpolated[4],
    }
    s_polys = tuple(interpolated[5:8])
    vk = VerifyingKey(
        n=n,
        ell=layout.ell,
        c_qm=commit(srs, q_polys["qm"], engine=engine),
        c_ql=commit(srs, q_polys["ql"], engine=engine),
        c_qr=commit(srs, q_polys["qr"], engine=engine),
        c_qo=commit(srs, q_polys["qo"], engine=engine),
        c_qc=commit(srs, q_polys["qc"], engine=engine),
        c_s1=commit(srs, s_polys[0], engine=engine),
        c_s2=commit(srs, s_polys[1], engine=engine),
        c_s3=commit(srs, s_polys[2], engine=engine),
        g2=srs.g2,
        g2_tau=srs.g2_tau,
    )
    pk = ProvingKey(layout, srs, q_polys, s_polys, sigma_star, vk)
    return pk, vk
