"""Plonk constraint-system builder.

A circuit is a list of gates over three wires (a, b, c), each enforcing

    qL*a + qR*b + qO*c + qM*a*b + qC (+ PI) = 0,

plus copy constraints ("the same variable appears in these slots"), which
Plonk encodes as a permutation over the 3n wire slots.

:class:`CircuitBuilder` is used in *synthesis* style: every operation both
records the gate structure and computes the concrete witness value, so
``compile()`` yields the layout (structure only — reusable across
witnesses) and the assignment (this witness) in one pass.  Building the
same circuit code path with different inputs yields byte-identical layouts,
so verification keys are reusable, exactly as with Circom templates.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib

from repro.errors import CircuitError, UnsatisfiedConstraintError
from repro.field.fr import MODULUS as R, root_of_unity

#: Coset representatives separating the three wire columns inside the
#: permutation argument.  Checked at import time to lie outside every
#: 2-adic subgroup (and in distinct cosets of each other).
def _find_cosets() -> tuple[int, int]:
    full = 1 << 28
    candidates = [2, 3, 5, 7, 11, 13, 17]
    picked: list[int] = []
    for k in candidates:
        if pow(k, full, R) == 1:
            continue
        if any(pow(k * pow(other, R - 2, R) % R, full, R) == 1 for other in picked):
            continue
        picked.append(k)
        if len(picked) == 2:
            return picked[0], picked[1]
    raise CircuitError("could not find permutation coset representatives")


K1, K2 = _find_cosets()

Wire = int  # a variable handle


@dataclass
class _Gate:
    ql: int
    qr: int
    qo: int
    qm: int
    qc: int
    a: Wire
    b: Wire
    c: Wire


@dataclass(frozen=True)
class Layout:
    """Compiled circuit structure (independent of any witness).

    Attributes:
        n: number of gates, a power of two.
        ell: number of public inputs (occupying the first ``ell`` gates).
        selectors: dict of the five selector columns, each length ``n``.
        sigma: the copy-constraint permutation over the ``3n`` wire slots.
    """

    n: int
    ell: int
    ql: tuple
    qr: tuple
    qo: tuple
    qm: tuple
    qc: tuple
    sigma: tuple

    @property
    def num_constraints(self) -> int:
        return self.n

    def digest(self) -> bytes:
        """Stable hash of the structure (used for transcript binding)."""
        h = hashlib.sha256()
        h.update(b"layout:%d:%d;" % (self.n, self.ell))
        for col in (self.ql, self.qr, self.qo, self.qm, self.qc, self.sigma):
            for v in col:
                h.update(v.to_bytes(32, "little"))
        return h.digest()

    def sigma_star(self) -> tuple[list[int], list[int], list[int]]:
        """Encode the permutation as field elements (the S_sigma columns).

        Slot j in column k of row i maps through sigma to another slot,
        whose field encoding is coset_rep[column] * omega^row.
        """
        omega = root_of_unity(self.n) if self.n > 1 else 1
        reps = (1, K1, K2)
        points = [1] * self.n
        for i in range(1, self.n):
            points[i] = points[i - 1] * omega % R
        columns: tuple[list[int], ...] = ([], [], [])
        for col in range(3):
            for row in range(self.n):
                target = self.sigma[col * self.n + row]
                t_col, t_row = divmod(target, self.n)
                columns[col].append(reps[t_col] * points[t_row] % R)
        return columns

    def check(self, assignment: "Assignment") -> None:
        """Verify the assignment satisfies every gate (fast, no crypto).

        Raises :class:`UnsatisfiedConstraintError` on the first failure.
        Used pervasively by the gadget tests: it validates circuits at
        field-arithmetic speed without running the prover.
        """
        a, b, c = assignment.a, assignment.b, assignment.c
        if not (len(a) == len(b) == len(c) == self.n):
            raise CircuitError("assignment length does not match layout")
        for i in range(self.n):
            pi = -assignment.a[i] % R if i < self.ell else 0
            lhs = (
                self.ql[i] * a[i]
                + self.qr[i] * b[i]
                + self.qo[i] * c[i]
                + self.qm[i] * a[i] * b[i]
                + self.qc[i]
                + pi
            ) % R
            if lhs != 0:
                raise UnsatisfiedConstraintError("gate %d not satisfied" % i)


@dataclass
class Assignment:
    """A concrete witness: the three wire-value columns."""

    a: list[int]
    b: list[int]
    c: list[int]
    ell: int

    @property
    def public_inputs(self) -> list[int]:
        """The public-input values (first ``ell`` a-wires)."""
        return list(self.a[: self.ell])


class CircuitBuilder:
    """Builds a Plonk circuit and its witness simultaneously."""

    def __init__(self):
        self._values: list[int] = []
        self._gates: list[_Gate] = []
        self._public: list[Wire] = []
        self._constants: dict[int, Wire] = {}
        self._compiled = False

    # ----- variable allocation -------------------------------------------------

    def var(self, value: int) -> Wire:
        """Allocate a private witness variable with the given value."""
        self._values.append(int(value) % R)
        return len(self._values) - 1

    def public_input(self, value: int) -> Wire:
        """Allocate a public-input variable (exposed in the statement)."""
        w = self.var(value)
        self._public.append(w)
        return w

    def constant(self, value: int) -> Wire:
        """Allocate (or reuse) a variable constrained to a constant."""
        value = int(value) % R
        if value in self._constants:
            return self._constants[value]
        w = self.var(value)
        self.gate(a=w, ql=1, qc=-value)
        self._constants[value] = w
        return w

    def value(self, wire: Wire) -> int:
        """Read back the witness value of a wire."""
        return self._values[wire]

    # ----- raw gates -----------------------------------------------------------

    def gate(
        self,
        a: Wire | None = None,
        b: Wire | None = None,
        c: Wire | None = None,
        ql: int = 0,
        qr: int = 0,
        qo: int = 0,
        qm: int = 0,
        qc: int = 0,
    ) -> None:
        """Append a raw gate; unused wire positions get dummy variables."""
        if self._compiled:
            raise CircuitError("builder already compiled")
        a = self.var(0) if a is None else a
        b = self.var(0) if b is None else b
        c = self.var(0) if c is None else c
        self._gates.append(
            _Gate(ql % R, qr % R, qo % R, qm % R, qc % R, a, b, c)
        )

    # ----- arithmetic operations (compute value + constrain) --------------------

    def add(self, x: Wire, y: Wire) -> Wire:
        """Return a wire constrained to x + y."""
        out = self.var(self._values[x] + self._values[y])
        self.gate(a=x, b=y, c=out, ql=1, qr=1, qo=-1)
        return out

    def sub(self, x: Wire, y: Wire) -> Wire:
        """Return a wire constrained to x - y."""
        out = self.var(self._values[x] - self._values[y])
        self.gate(a=x, b=y, c=out, ql=1, qr=-1, qo=-1)
        return out

    def mul(self, x: Wire, y: Wire) -> Wire:
        """Return a wire constrained to x * y."""
        out = self.var(self._values[x] * self._values[y])
        self.gate(a=x, b=y, c=out, qm=1, qo=-1)
        return out

    def mul_add(self, x: Wire, y: Wire, z: Wire) -> Wire:
        """Return a wire constrained to x*y + z (two gates)."""
        return self.add(self.mul(x, y), z)

    def mul_add_const(self, x: Wire, y: Wire, k: int) -> Wire:
        """Return a wire constrained to x*y + k (one gate)."""
        k %= R
        out = self.var(self._values[x] * self._values[y] + k)
        self.gate(a=x, b=y, c=out, qm=1, qo=-1, qc=k)
        return out

    def scale(self, x: Wire, k: int) -> Wire:
        """Return a wire constrained to k * x."""
        k %= R
        out = self.var(self._values[x] * k)
        self.gate(a=x, c=out, ql=k, qo=-1)
        return out

    def add_const(self, x: Wire, k: int) -> Wire:
        """Return a wire constrained to x + k."""
        k %= R
        out = self.var(self._values[x] + k)
        self.gate(a=x, c=out, ql=1, qo=-1, qc=k)
        return out

    def linear_combination(self, terms: list[tuple[int, Wire]], constant: int = 0) -> Wire:
        """Return a wire constrained to sum(k_i * w_i) + constant.

        Folds two terms per gate; costs ``max(1, len(terms) - 1)`` gates.
        """
        constant %= R
        if not terms:
            return self.constant(constant)
        if len(terms) == 1:
            k, w = terms[0]
            k %= R
            out = self.var(self._values[w] * k + constant)
            self.gate(a=w, c=out, ql=k, qo=-1, qc=constant)
            return out
        (k1, w1), (k2, w2) = terms[0], terms[1]
        acc_val = (self._values[w1] * k1 + self._values[w2] * k2 + constant) % R
        acc = self.var(acc_val)
        self.gate(a=w1, b=w2, c=acc, ql=k1, qr=k2, qo=-1, qc=constant)
        for k, w in terms[2:]:
            k %= R
            new_val = (self._values[acc] + self._values[w] * k) % R
            new = self.var(new_val)
            self.gate(a=acc, b=w, c=new, ql=1, qr=k, qo=-1)
            acc = new
        return acc

    # ----- assertions ------------------------------------------------------------

    def assert_equal(self, x: Wire, y: Wire) -> None:
        """Constrain x == y."""
        self.gate(a=x, b=y, ql=1, qr=-1)

    def assert_constant(self, x: Wire, k: int) -> None:
        """Constrain x == k."""
        self.gate(a=x, ql=1, qc=-(k % R))

    def assert_zero(self, x: Wire) -> None:
        """Constrain x == 0."""
        self.gate(a=x, ql=1)

    def assert_bool(self, x: Wire) -> None:
        """Constrain x in {0, 1} via x^2 - x = 0."""
        self.gate(a=x, b=x, qm=1, ql=-1)

    def assert_mul(self, x: Wire, y: Wire, z: Wire) -> None:
        """Constrain x * y == z."""
        self.gate(a=x, b=y, c=z, qm=1, qo=-1)

    def assert_not_zero(self, x: Wire) -> None:
        """Constrain x != 0 by exhibiting its inverse."""
        val = self._values[x]
        inv_val = pow(val, R - 2, R) if val else 0
        inv = self.var(inv_val)
        one = self.var(val * inv_val)
        self.gate(a=x, b=inv, c=one, qm=1, qo=-1)
        self.assert_constant(one, 1)

    # ----- compilation -----------------------------------------------------------

    @property
    def num_gates(self) -> int:
        """Gates emitted so far (excluding public-input and padding gates)."""
        return len(self._gates)

    def compile(self, min_size: int = 4, check: bool = True) -> tuple[Layout, Assignment]:
        """Finalize into a (layout, assignment) pair, padded to a power of 2.

        ``check=False`` skips witness validation: verifiers use it to
        rebuild a circuit's *structure* (selectors, permutation) from dummy
        values, since the layout is witness-independent.
        """
        self._compiled = True
        gates: list[_Gate] = []
        # Public-input gates come first: a = w_i with qL = 1; the PI
        # polynomial contributes -w_i so the row sums to zero.
        for w in self._public:
            gates.append(_Gate(1, 0, 0, 0, 0, w, self.var(0), self.var(0)))
        gates.extend(self._gates)
        n = max(min_size, 1)
        while n < len(gates):
            n <<= 1
        while len(gates) < n:
            gates.append(_Gate(0, 0, 0, 0, 0, self.var(0), self.var(0), self.var(0)))

        ql = tuple(g.ql for g in gates)
        qr = tuple(g.qr for g in gates)
        qo = tuple(g.qo for g in gates)
        qm = tuple(g.qm for g in gates)
        qc = tuple(g.qc for g in gates)

        # Copy constraints: slots holding the same variable form one cycle.
        slots_of: dict[Wire, list[int]] = {}
        for row, g in enumerate(gates):
            slots_of.setdefault(g.a, []).append(row)
            slots_of.setdefault(g.b, []).append(n + row)
            slots_of.setdefault(g.c, []).append(2 * n + row)
        sigma = list(range(3 * n))
        for slots in slots_of.values():
            for i, s in enumerate(slots):
                sigma[s] = slots[(i + 1) % len(slots)]

        layout = Layout(n, len(self._public), ql, qr, qo, qm, qc, tuple(sigma))
        vals = self._values
        assignment = Assignment(
            a=[vals[g.a] for g in gates],
            b=[vals[g.b] for g in gates],
            c=[vals[g.c] for g in gates],
            ell=len(self._public),
        )
        if check:
            layout.check(assignment)
        return layout, assignment
