"""The Plonk proof object.

As the paper reports (Section VI-B3), every proof consists of exactly
9 G1 elements and 6 field elements, independent of the relation proved —
768 bytes in our uncompressed encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import SerializationError
from repro.curve.g1 import G1
from repro.field.fr import MODULUS as R

_POINT_FIELDS = ("c_a", "c_b", "c_c", "c_z", "c_t_lo", "c_t_mid", "c_t_hi", "w_zeta", "w_zeta_omega")
_SCALAR_FIELDS = ("a_bar", "b_bar", "c_bar", "s1_bar", "s2_bar", "z_omega_bar")


@dataclass(frozen=True)
class Proof:
    """A Plonk proof: 9 G1 commitments and 6 evaluations at zeta."""

    c_a: G1
    c_b: G1
    c_c: G1
    c_z: G1
    c_t_lo: G1
    c_t_mid: G1
    c_t_hi: G1
    w_zeta: G1
    w_zeta_omega: G1
    a_bar: int
    b_bar: int
    c_bar: int
    s1_bar: int
    s2_bar: int
    z_omega_bar: int

    @property
    def num_g1_elements(self) -> int:
        return len(_POINT_FIELDS)

    @property
    def num_field_elements(self) -> int:
        return len(_SCALAR_FIELDS)

    def to_bytes(self) -> bytes:
        """Serialise: 9 uncompressed G1 points then 6 scalars."""
        out = bytearray()
        for name in _POINT_FIELDS:
            out += getattr(self, name).to_bytes()
        for name in _SCALAR_FIELDS:
            out += (getattr(self, name) % R).to_bytes(32, "little")
        return bytes(out)

    @staticmethod
    def from_bytes(data: bytes) -> "Proof":
        expected = 64 * len(_POINT_FIELDS) + 32 * len(_SCALAR_FIELDS)
        if len(data) != expected:
            raise SerializationError(
                "proof must be %d bytes, got %d" % (expected, len(data))
            )
        kwargs = {}
        offset = 0
        for name in _POINT_FIELDS:
            kwargs[name] = G1.from_bytes(data[offset : offset + 64])
            offset += 64
        for name in _SCALAR_FIELDS:
            value = int.from_bytes(data[offset : offset + 32], "little")
            if value >= R:
                raise SerializationError("scalar %s out of range" % name)
            kwargs[name] = value
            offset += 32
        return Proof(**kwargs)

    @property
    def size_bytes(self) -> int:
        """Length of the canonical serialisation."""
        return 64 * len(_POINT_FIELDS) + 32 * len(_SCALAR_FIELDS)

    def replace(self, **changes) -> "Proof":
        """Return a copy with some fields changed (used by tamper tests)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return Proof(**current)
