"""Fiat-Shamir transcript for non-interactive proofs.

Both prover and verifier feed the same protocol messages into a running
SHA-256 state; challenges are derived from the state so that neither party
can grind them independently of the messages.  Labels provide domain
separation between rounds.
"""

from __future__ import annotations

import hashlib

from repro.curve.g1 import G1
from repro.field.fr import MODULUS as R


class Transcript:
    """An append-only Fiat-Shamir transcript."""

    def __init__(self, domain_tag: bytes) -> None:
        self._state: bytes = hashlib.sha256(
            b"repro.transcript.v1:" + domain_tag
        ).digest()

    def _absorb(self, label: bytes, data: bytes) -> None:
        self._state = hashlib.sha256(
            self._state + len(label).to_bytes(2, "little") + label + data
        ).digest()

    def append_bytes(self, label: bytes, data: bytes) -> None:
        """Absorb raw bytes under a label."""
        self._absorb(label, data)

    def append_scalar(self, label: bytes, value: int) -> None:
        """Absorb a field element."""
        self._absorb(label, (value % R).to_bytes(32, "little"))

    def append_point(self, label: bytes, point: G1) -> None:
        """Absorb a G1 point (64-byte uncompressed form)."""
        self._absorb(label, point.to_bytes())

    def challenge(self, label: bytes) -> int:
        """Derive a field-element challenge and fold it back into the state.

        Two independent SHA-256 outputs are combined so the result is
        statistically close to uniform mod r (a single 256-bit digest has
        noticeable bias for a 254-bit modulus).
        """
        h1 = hashlib.sha256(self._state + b"chal:0:" + label).digest()
        h2 = hashlib.sha256(self._state + b"chal:1:" + label).digest()
        value = int.from_bytes(h1 + h2, "little") % R
        self._absorb(b"challenge:" + label, value.to_bytes(32, "little"))
        return value
