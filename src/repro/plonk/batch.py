"""Batch verification: many Plonk proofs, one two-pairing check.

Each proof reduces (see :func:`repro.plonk.verifier.prepare_pairing_inputs`)
to an equation e(L_i, [tau]_2) = e(R_i, [1]_2).  Folding with independent
random weights rho_i gives

    e(sum rho_i L_i, [tau]_2) == e(sum rho_i R_i, [1]_2),

which holds for random rho iff every individual equation holds (standard
small-exponent batching).  Verification of k proofs therefore costs one
pairing check plus O(k) group work — this is what keeps the marketplace's
throughput high when many exchanges and transformations settle at once
(the paper's abstract: "maintaining high throughput despite large data
volumes").
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.field.fr import random_scalar
from repro.plonk.keys import VerifyingKey
from repro.plonk.proof import Proof
from repro.plonk.verifier import prepare_pairing_inputs


def batch_verify(
    items: list[tuple[VerifyingKey, list[int], Proof]],
    engine=None,
) -> bool:
    """Verify many (vk, public_inputs, proof) triples at once.

    All verification keys must come from the same SRS (same [tau]_2) —
    which they do under ZKDET's universal setup.  Returns False if any
    proof is structurally malformed or the batched equation fails.
    """
    if not items:
        return True
    engine = engine or get_engine()
    g2_tau = items[0][0].g2_tau
    g2 = items[0][0].g2
    for vk, _, _ in items:
        if vk.g2_tau != g2_tau:
            raise VerificationError("batch members use different SRS tau points")

    lhs_points: list[G1] = []
    rhs_points: list[G1] = []
    weights: list[int] = []
    for vk, publics, proof in items:
        prepared = prepare_pairing_inputs(vk, publics, proof, engine=engine)
        if prepared is None:
            return False
        lhs, rhs = prepared
        lhs_points.append(lhs)
        rhs_points.append(rhs)
        # A zero weight would drop this proof from the folded check.
        weights.append(random_scalar(nonzero=True))

    combined_lhs = engine.msm_g1(lhs_points, weights)
    combined_rhs = engine.msm_g1(rhs_points, weights)
    return engine.pairing_check([(combined_lhs, g2_tau), (-combined_rhs, g2)])
