"""Groth16 zkSNARK (the baseline the ZKCP protocol uses).

Unlike Plonk, Groth16 requires a per-circuit trusted setup, and its
verifier performs an MSM over the public inputs — 3 pairings plus ell
G1 exponentiations, versus Plonk's flat 2 pairings + 18 exponentiations.
That asymmetry is exactly what Figure 7 of the paper compares.
"""

from repro.groth16.qap import QAP
from repro.groth16.batch import verify_batch
from repro.groth16.protocol import (
    Groth16Proof,
    Groth16ProvingKey,
    Groth16VerifyingKey,
    groth16_prove,
    groth16_setup,
    groth16_verify,
    verification_group_operations,
)

__all__ = [
    "Groth16Proof",
    "Groth16ProvingKey",
    "Groth16VerifyingKey",
    "QAP",
    "groth16_prove",
    "groth16_setup",
    "groth16_verify",
    "verification_group_operations",
    "verify_batch",
]
