"""Batched Groth16 verification: k proofs, one shared final exponentiation.

Mirrors the random-linear-combination fold of :mod:`repro.plonk.batch`.
A single Groth16 proof checks

    e(A, B) * e(-vk_x, gamma) * e(-C, delta) * e(-alpha, beta) == 1.

Raising the i-th equation to an independent random weight r_i and
multiplying gives

    prod_i e(r_i A_i, B_i)
      * e(-sum r_i vk_x_i, gamma)
      * e(-sum r_i C_i, delta)
      * e(-(sum r_i) alpha, beta)  == 1,

which holds for random r iff every member equation holds (standard
small-exponent batching).  The gamma/delta/alpha-beta legs fold into
*three* pairs regardless of k because their G2 sides are fixed by the
verifying key; only the A_i/B_i legs stay per-proof, since each proof
carries its own G2 element B_i.  Batch cost is therefore k + 3 Miller
loops and one shared final exponentiation, against 3k Miller loops and
k final exponentiations for one-by-one verification — the amortisation
that keeps ZKCP-style settlement comparable with ZKDET's Plonk batching
when many exchanges settle at once.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.backend import get_engine
from repro.field.fr import MODULUS as R, random_scalar
from repro.groth16.protocol import Groth16Proof, Groth16VerifyingKey


def _same_key(a: Groth16VerifyingKey, b: Groth16VerifyingKey) -> bool:
    return a is b or (
        a.alpha_g1 == b.alpha_g1
        and a.beta_g2 == b.beta_g2
        and a.gamma_g2 == b.gamma_g2
        and a.delta_g2 == b.delta_g2
        and a.ic == b.ic
    )


def verify_batch(
    items: list[tuple[Groth16VerifyingKey, list[int], Groth16Proof]],
    engine=None,
) -> bool:
    """Verify many (vk, public_inputs, proof) triples in one pairing check.

    All members must share one verifying key — the fold collapses the
    gamma/delta/alpha-beta legs onto that key's fixed G2 points, so
    mixing circuits would silently verify against the wrong key (a
    :class:`VerificationError`, mirroring the same-SRS rule of
    :func:`repro.plonk.batch.batch_verify`).  Returns False when any
    member is structurally malformed or the folded equation fails.
    """
    if not items:
        return True
    engine = engine or get_engine()
    vk = items[0][0]
    for other, _, _ in items[1:]:
        if not _same_key(vk, other):
            raise VerificationError("batch members use different verifying keys")

    weighted_a = []
    vk_x_points = []
    c_points = []
    weights = []
    for _, publics, proof in items:
        if len(publics) != len(vk.ic) - 1:
            return False
        # A zero weight would drop this proof from the folded check.
        r_i = random_scalar(nonzero=True)
        weights.append(r_i)
        weighted_a.append((proof.a * r_i, proof.b))
        vk_x_points.append(
            vk.ic[0] + engine.msm_g1(list(vk.ic[1:]), [w % R for w in publics])
        )
        c_points.append(proof.c)

    combined_vk_x = engine.msm_g1(vk_x_points, weights)
    combined_c = engine.msm_g1(c_points, weights)
    weight_sum = sum(weights) % R
    pairs = weighted_a + [
        (-combined_vk_x, vk.gamma_g2),
        (-combined_c, vk.delta_g2),
        (-(vk.alpha_g1 * weight_sum), vk.beta_g2),
    ]
    return engine.pairing_check(pairs)
