"""Groth16 setup / prove / verify.

A faithful implementation of the three algorithms.  Note the contrast the
paper draws (Section VII-B): the setup here is *circuit-specific* and
trusted — change the relation and the ceremony must be redone — whereas
Plonk's SRS is universal.  ZKCP inherits this weakness from Groth16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.errors import ProofError
from repro.backend import get_engine
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R, inv, random_scalar
from repro.groth16.qap import QAP
from repro.r1cs.system import R1CSSystem, R1CSWitness


@dataclass(frozen=True)
class Groth16VerifyingKey:
    alpha_g1: G1
    beta_g2: G2
    gamma_g2: G2
    delta_g2: G2
    ic: tuple  # G1 points, one per public input + the constant ONE
    #: e(alpha, beta) precomputed at setup: the verifier compares the
    #: 3-Miller-loop product against this GT constant instead of paying a
    #: fourth loop for the fixed alpha/beta pair.  ``None`` (e.g. a key
    #: built before this field existed) falls back to computing it lazily.
    alpha_beta_gt: tuple | None = None

    def pairing_target(self) -> tuple:
        """The GT constant e(alpha, beta) the product check compares to."""
        return self.alpha_beta_gt or get_engine().pairing(self.alpha_g1, self.beta_g2)


@dataclass(frozen=True)
class Groth16ProvingKey:
    qap: QAP
    alpha_g1: G1
    beta_g1: G1
    beta_g2: G2
    delta_g1: G1
    delta_g2: G2
    a_query: tuple  # [U_j(tau)]_1
    b_g1_query: tuple  # [V_j(tau)]_1
    b_g2_query: tuple  # [V_j(tau)]_2
    l_query: tuple  # [(beta U_j + alpha V_j + W_j)/delta]_1, private j only
    h_query: tuple  # [tau^i Z(tau)/delta]_1
    vk: Groth16VerifyingKey


@dataclass(frozen=True)
class Groth16Proof:
    """2 G1 + 1 G2 elements (320 bytes uncompressed)."""

    a: G1
    b: G2
    c: G1

    @property
    def size_bytes(self) -> int:
        return 64 * 2 + 128


def _g1_fixed_base_batch(engine, scalars: list[int]) -> list[G1]:
    """Many multiples of the G1 generator via the engine's window table."""
    gen = G1.generator()
    return G1.batch_from_jacobian([engine.fixed_base_mul_jac(gen, s) for s in scalars])


def _g2_fixed_base_batch(engine, scalars: list[int]) -> list[G2]:
    """Many multiples of the G2 generator via the engine's window table."""
    gen = G2.generator()
    return G2.batch_from_jacobian([engine.fixed_base_mul_jac(gen, s) for s in scalars])


def groth16_setup(
    system: R1CSSystem, engine=None
) -> tuple[Groth16ProvingKey, Groth16VerifyingKey]:
    """Circuit-specific trusted setup (toxic waste sampled and discarded).

    Every query is a multiple of a *fixed* generator, so the whole setup
    runs off the engine's windowed G1/G2 tables with batched affine
    conversion instead of per-point double-and-add.
    """
    engine = engine or get_engine()
    with telemetry.span("groth16.setup", constraints=system.num_constraints):
        with telemetry.span("qap"):
            qap = QAP.from_r1cs(system)
            # gamma/delta are inverted and alpha/beta blind the proof
            # elements, so all five trapdoor scalars come from F_r^*.
            tau, alpha, beta, gamma, delta = (
                random_scalar(nonzero=True) for _ in range(5)
            )
            while pow(tau, qap.m, R) == 1:
                tau = random_scalar(nonzero=True)
            gamma_inv, delta_inv = inv(gamma), inv(delta)

            u_at, v_at, w_at = qap.evaluations_at(tau, engine=engine)

            ell = qap.num_public
            ic_coeffs = [
                (beta * u_at[j] + alpha * v_at[j] + w_at[j]) % R * gamma_inv % R
                for j in range(ell + 1)
            ]
            l_coeffs = [
                (beta * u_at[j] + alpha * v_at[j] + w_at[j]) % R * delta_inv % R
                for j in range(ell + 1, qap.num_variables)
            ]
            z_tau = (pow(tau, qap.m, R) - 1) % R
            h_coeffs = []
            acc = z_tau * delta_inv % R
            for _ in range(qap.m - 1):
                h_coeffs.append(acc)
                acc = acc * tau % R

        with telemetry.span("g1_queries"):
            g1_points = _g1_fixed_base_batch(
                engine,
                [alpha, beta, delta] + ic_coeffs + l_coeffs + h_coeffs + u_at + v_at,
            )
            alpha_g1, beta_g1, delta_g1 = g1_points[0], g1_points[1], g1_points[2]
            pos = 3
            ic = g1_points[pos : pos + len(ic_coeffs)]
            pos += len(ic_coeffs)
            l_query = g1_points[pos : pos + len(l_coeffs)]
            pos += len(l_coeffs)
            h_query = g1_points[pos : pos + len(h_coeffs)]
            pos += len(h_coeffs)
            a_query = g1_points[pos : pos + len(u_at)]
            pos += len(u_at)
            b_g1_query = g1_points[pos:]

        with telemetry.span("g2_queries"):
            g2_points = _g2_fixed_base_batch(engine, [beta, gamma, delta] + v_at)
            beta_g2, gamma_g2, delta_g2 = g2_points[0], g2_points[1], g2_points[2]
            b_g2_query = g2_points[3:]

    vk = Groth16VerifyingKey(
        alpha_g1=alpha_g1,
        beta_g2=beta_g2,
        gamma_g2=gamma_g2,
        delta_g2=delta_g2,
        ic=tuple(ic),
        alpha_beta_gt=engine.pairing(alpha_g1, beta_g2),
    )
    pk = Groth16ProvingKey(
        qap=qap,
        alpha_g1=alpha_g1,
        beta_g1=beta_g1,
        beta_g2=beta_g2,
        delta_g1=delta_g1,
        delta_g2=delta_g2,
        a_query=tuple(a_query),
        b_g1_query=tuple(b_g1_query),
        b_g2_query=tuple(b_g2_query),
        l_query=tuple(l_query),
        h_query=tuple(h_query),
        vk=vk,
    )
    return pk, vk


def groth16_prove(
    pk: Groth16ProvingKey, witness: R1CSWitness, engine=None
) -> Groth16Proof:
    """Produce a Groth16 proof (randomised over r, s for zero-knowledge)."""
    engine = engine or get_engine()
    values = [v % R for v in witness.values]
    if len(values) != pk.qap.num_variables:
        raise ProofError("witness does not match the proving key's QAP")
    with telemetry.span(
        "groth16.prove", variables=pk.qap.num_variables, backend=engine.name
    ):
        with telemetry.span("quotient"):
            h = pk.qap.quotient(values, engine=engine)  # raises when unsatisfied
        # Zero r or s would leave A or B unblinded; sample from F_r^*.
        r, s = random_scalar(nonzero=True), random_scalar(nonzero=True)
        ell = pk.qap.num_public

        with telemetry.span("msm"):
            # The query tables are fixed per proving key: msm_g1_fixed
            # caches their Jacobian view (and, on shm backends, a pinned
            # packed segment) by table identity, so warm proofs ship only
            # scalars to the workers.  Prefix semantics replace the old
            # per-call list slices.
            a_acc = engine.msm_g1_fixed(pk.a_query, values)
            proof_a = pk.alpha_g1 + a_acc + pk.delta_g1 * r

            b_g2_acc = engine.msm_g2(list(pk.b_g2_query), values)
            proof_b = pk.beta_g2 + b_g2_acc + pk.delta_g2 * s

            b_g1_acc = engine.msm_g1_fixed(pk.b_g1_query, values)
            b_g1_full = pk.beta_g1 + b_g1_acc + pk.delta_g1 * s

            c_acc = engine.msm_g1_fixed(pk.l_query, values[ell + 1 :])
            if h:
                c_acc = c_acc + engine.msm_g1_fixed(pk.h_query, h)
            proof_c = (
                c_acc + proof_a * s + b_g1_full * r - pk.delta_g1 * (r * s % R)
            )
        return Groth16Proof(proof_a, proof_b, proof_c)


def groth16_verify(
    vk: Groth16VerifyingKey,
    public_inputs: list[int],
    proof: Groth16Proof,
    engine=None,
) -> bool:
    """Check e(A, B) == e(alpha, beta) e(vk_x, gamma) e(C, delta).

    e(alpha, beta) is a setup-time constant (``vk.alpha_beta_gt``), so
    the check runs only 3 Miller loops — A/B, vk_x/gamma, C/delta — plus
    one shared final exponentiation, compared against the stored GT
    target.  The vk_x MSM over the public inputs is the
    ell-scalar-multiplication cost the paper contrasts against Plonk's
    input-independent verifier.
    """
    engine = engine or get_engine()
    with telemetry.span("groth16.verify", public_inputs=len(public_inputs)) as sp:
        if len(public_inputs) != len(vk.ic) - 1:
            sp.set_attr("ok", False)
            return False
        vk_x = vk.ic[0] + engine.msm_g1(list(vk.ic[1:]), [w % R for w in public_inputs])
        with telemetry.span("pairing"):
            ok = engine.pairing_check(
                [
                    (proof.a, proof.b),
                    (-vk_x, vk.gamma_g2),
                    (-proof.c, vk.delta_g2),
                ],
                target=vk.pairing_target(),
            )
        sp.set_attr("ok", ok)
        return ok


def verification_group_operations(num_public_inputs: int) -> dict:
    """Verifier op counts (used by the Fig. 7 benchmark's ZKCP side)."""
    return {
        "pairings": 3,  # 3 Miller loops; e(alpha, beta) precomputed at setup
        "miller_loops": 3,
        "final_exponentiations": 1,
        "g1_scalar_mults": num_public_inputs,
        "proof_size_bytes": 2 * 64 + 128,
    }
