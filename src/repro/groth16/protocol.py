"""Groth16 setup / prove / verify.

A faithful implementation of the three algorithms.  Note the contrast the
paper draws (Section VII-B): the setup here is *circuit-specific* and
trusted — change the relation and the ceremony must be redone — whereas
Plonk's SRS is universal.  ZKCP inherits this weakness from Groth16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError, ProofError
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.curve.msm import msm_g1
from repro.curve.pairing import pairing_check
from repro.field.fr import MODULUS as R, inv, rand_fr
from repro.groth16.qap import QAP
from repro.r1cs.system import R1CSSystem, R1CSWitness


@dataclass(frozen=True)
class Groth16VerifyingKey:
    alpha_g1: G1
    beta_g2: G2
    gamma_g2: G2
    delta_g2: G2
    ic: tuple  # G1 points, one per public input + the constant ONE


@dataclass(frozen=True)
class Groth16ProvingKey:
    qap: QAP
    alpha_g1: G1
    beta_g1: G1
    beta_g2: G2
    delta_g1: G1
    delta_g2: G2
    a_query: tuple  # [U_j(tau)]_1
    b_g1_query: tuple  # [V_j(tau)]_1
    b_g2_query: tuple  # [V_j(tau)]_2
    l_query: tuple  # [(beta U_j + alpha V_j + W_j)/delta]_1, private j only
    h_query: tuple  # [tau^i Z(tau)/delta]_1
    vk: Groth16VerifyingKey


@dataclass(frozen=True)
class Groth16Proof:
    """2 G1 + 1 G2 elements (320 bytes uncompressed)."""

    a: G1
    b: G2
    c: G1

    @property
    def size_bytes(self) -> int:
        return 64 * 2 + 128


def groth16_setup(system: R1CSSystem) -> tuple[Groth16ProvingKey, Groth16VerifyingKey]:
    """Circuit-specific trusted setup (toxic waste sampled and discarded)."""
    qap = QAP.from_r1cs(system)
    tau, alpha, beta, gamma, delta = (rand_fr() for _ in range(5))
    while tau == 0 or pow(tau, qap.m, R) == 1:
        tau = rand_fr()
    g1, g2 = G1.generator(), G2.generator()
    gamma_inv, delta_inv = inv(gamma), inv(delta)

    u_at, v_at, w_at = qap.evaluations_at(tau)

    ell = qap.num_public
    ic = []
    for j in range(ell + 1):
        coeff = (beta * u_at[j] + alpha * v_at[j] + w_at[j]) % R * gamma_inv % R
        ic.append(g1 * coeff)
    l_query = []
    for j in range(ell + 1, qap.num_variables):
        coeff = (beta * u_at[j] + alpha * v_at[j] + w_at[j]) % R * delta_inv % R
        l_query.append(g1 * coeff)
    z_tau = (pow(tau, qap.m, R) - 1) % R
    h_query = []
    acc = z_tau * delta_inv % R
    for _ in range(qap.m - 1):
        h_query.append(g1 * acc)
        acc = acc * tau % R

    vk = Groth16VerifyingKey(
        alpha_g1=g1 * alpha,
        beta_g2=g2 * beta,
        gamma_g2=g2 * gamma,
        delta_g2=g2 * delta,
        ic=tuple(ic),
    )
    pk = Groth16ProvingKey(
        qap=qap,
        alpha_g1=g1 * alpha,
        beta_g1=g1 * beta,
        beta_g2=g2 * beta,
        delta_g1=g1 * delta,
        delta_g2=g2 * delta,
        a_query=tuple(g1 * u for u in u_at),
        b_g1_query=tuple(g1 * v for v in v_at),
        b_g2_query=tuple(g2 * v for v in v_at),
        l_query=tuple(l_query),
        h_query=tuple(h_query),
        vk=vk,
    )
    return pk, vk


def groth16_prove(pk: Groth16ProvingKey, witness: R1CSWitness) -> Groth16Proof:
    """Produce a Groth16 proof (randomised over r, s for zero-knowledge)."""
    values = [v % R for v in witness.values]
    if len(values) != pk.qap.num_variables:
        raise ProofError("witness does not match the proving key's QAP")
    h = pk.qap.quotient(values)  # raises CircuitError when unsatisfied
    r, s = rand_fr(), rand_fr()
    ell = pk.qap.num_public

    a_acc = msm_g1(list(pk.a_query), values)
    proof_a = pk.alpha_g1 + a_acc + pk.delta_g1 * r

    b_g2_acc = G2.identity()
    for v, point in zip(values, pk.b_g2_query):
        if v:
            b_g2_acc = b_g2_acc + point * v
    proof_b = pk.beta_g2 + b_g2_acc + pk.delta_g2 * s

    b_g1_acc = msm_g1(list(pk.b_g1_query), values)
    b_g1_full = pk.beta_g1 + b_g1_acc + pk.delta_g1 * s

    c_acc = msm_g1(list(pk.l_query), values[ell + 1 :])
    if h:
        c_acc = c_acc + msm_g1(list(pk.h_query[: len(h)]), h)
    proof_c = (
        c_acc + proof_a * s + b_g1_full * r - pk.delta_g1 * (r * s % R)
    )
    return Groth16Proof(proof_a, proof_b, proof_c)


def groth16_verify(
    vk: Groth16VerifyingKey, public_inputs: list[int], proof: Groth16Proof
) -> bool:
    """Check e(A, B) == e(alpha, beta) e(vk_x, gamma) e(C, delta).

    The vk_x MSM over the public inputs is the ell-scalar-multiplication
    cost the paper contrasts against Plonk's input-independent verifier.
    """
    if len(public_inputs) != len(vk.ic) - 1:
        return False
    vk_x = vk.ic[0] + msm_g1(list(vk.ic[1:]), [w % R for w in public_inputs])
    return pairing_check(
        [
            (proof.a, proof.b),
            (-vk.alpha_g1, vk.beta_g2),
            (-vk_x, vk.gamma_g2),
            (-proof.c, vk.delta_g2),
        ]
    )


def verification_group_operations(num_public_inputs: int) -> dict:
    """Verifier op counts (used by the Fig. 7 benchmark's ZKCP side)."""
    return {
        "pairings": 3,  # e(alpha, beta) is precomputable
        "g1_scalar_mults": num_public_inputs,
        "proof_size_bytes": 2 * 64 + 128,
    }
