"""Quadratic arithmetic program reduction for R1CS.

Per variable j, the QAP polynomial U_j(X) (resp. V_j, W_j) interpolates
that variable's column of A (resp. B, C) coefficients over an FFT domain.
Satisfiability becomes divisibility:

    U(X) * V(X) - W(X) = H(X) * Z(X),   U = sum_j w_j U_j, etc.

Everything here is computed *sparsely*: the per-variable polynomials are
never materialised.  Setup needs only their evaluations at the trapdoor
tau, obtained through the Lagrange basis L_i(tau) in O(nnz + m); the
prover aggregates per-constraint inner products and interpolates once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError
from repro.backend import get_engine
from repro.field import poly as poly_mod
from repro.field.fr import MODULUS as R, inv
from repro.field.ntt import COSET_SHIFT
from repro.r1cs.system import R1CSSystem


@dataclass(frozen=True)
class QAP:
    """A QAP over a radix-2 domain of size ``m`` (sparse form)."""

    system: R1CSSystem
    m: int

    @property
    def num_variables(self) -> int:
        return self.system.num_variables

    @property
    def num_public(self) -> int:
        return self.system.num_public

    @staticmethod
    def from_r1cs(system: R1CSSystem) -> "QAP":
        if system.num_constraints == 0:
            raise CircuitError("cannot build a QAP from an empty system")
        m = 2
        while m < system.num_constraints:
            m <<= 1
        return QAP(system=system, m=m)

    def evaluations_at(
        self, tau: int, engine=None
    ) -> tuple[list[int], list[int], list[int]]:
        """Per-variable evaluations (U_j(tau), V_j(tau), W_j(tau)).

        Uses L_i(tau) = omega^i * Z(tau) / (m * (tau - omega^i)) and walks
        the sparse constraint entries once.
        """
        engine = engine or get_engine()
        domain = engine.domain(self.m)
        points = domain.elements
        z_tau = domain.vanishing_eval(tau)
        if z_tau == 0:
            raise CircuitError("tau lies in the evaluation domain")
        denoms = engine.batch_inverse([(tau - p) % R for p in points])
        m_inv = inv(self.m)
        lagrange = [
            points[i] * z_tau % R * m_inv % R * denoms[i] % R for i in range(self.m)
        ]
        nvars = self.num_variables
        u_at = [0] * nvars
        v_at = [0] * nvars
        w_at = [0] * nvars
        for i, (a, b, c) in enumerate(self.system.constraints):
            li = lagrange[i]
            for var, coeff in a.items():
                u_at[var] = (u_at[var] + coeff * li) % R
            for var, coeff in b.items():
                v_at[var] = (v_at[var] + coeff * li) % R
            for var, coeff in c.items():
                w_at[var] = (w_at[var] + coeff * li) % R
        return u_at, v_at, w_at

    def combine(
        self, witness: list[int], engine=None
    ) -> tuple[list[int], list[int], list[int]]:
        """Aggregated U, V, W polynomials (coefficients) under a witness.

        Evaluates the per-constraint inner products <A_i, w> etc. (sparse)
        and interpolates each aggregate with one batched size-m iFFT pass.
        """
        engine = engine or get_engine()
        if len(witness) != self.num_variables:
            raise CircuitError("witness length mismatch")
        u_evals = [0] * self.m
        v_evals = [0] * self.m
        w_evals = [0] * self.m
        for i, (a, b, c) in enumerate(self.system.constraints):
            u_evals[i] = self.system.eval_lc(a, witness)
            v_evals[i] = self.system.eval_lc(b, witness)
            w_evals[i] = self.system.eval_lc(c, witness)
        u, v, w = engine.ntt_batch(
            [("ifft", self.m, evals, 0) for evals in (u_evals, v_evals, w_evals)]
        )
        return u, v, w

    def quotient(self, witness: list[int], engine=None) -> list[int]:
        """Compute H(X) = (U V - W)/Z over a coset (exact division)."""
        engine = engine or get_engine()
        u, v, w = self.combine(witness, engine=engine)
        big_n = 2 * self.m
        ue, ve, we = engine.ntt_batch(
            [("coset_fft", big_n, coeffs, COSET_SHIFT) for coeffs in (u, v, w)]
        )
        z_vals = engine.domain(self.m).vanishing_on_coset(big_n)
        z_inv = engine.batch_inverse(z_vals)
        h_evals = [(ue[i] * ve[i] - we[i]) % R * z_inv[i] % R for i in range(big_n)]
        h = poly_mod.trim(engine.coset_intt(h_evals))
        # Degree check: H must have degree <= m - 2 for a satisfied witness.
        if len(h) > self.m - 1:
            raise CircuitError("witness does not satisfy the QAP (H too large)")
        return h
