"""Rank-1 constraint systems (the arithmetisation Groth16 consumes)."""

from repro.r1cs.system import LinearCombination, R1CSBuilder, R1CSSystem, R1CSWitness

__all__ = ["LinearCombination", "R1CSBuilder", "R1CSSystem", "R1CSWitness"]
