"""Rank-1 constraint systems.

Each constraint enforces <A_i, w> * <B_i, w> = <C_i, w> over the witness
vector w, whose layout is the Groth16 convention:

    w = (1, public_1 .. public_ell, private_1 .. private_m)

This substrate exists for the ZKCP baseline: the original protocol builds
on Groth16, whose verification work grows with the number of public
inputs — the asymmetry Figure 7 of the paper measures against Plonk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError, UnsatisfiedConstraintError
from repro.field.fr import MODULUS as R

#: A linear combination is a sparse {variable_index: coefficient} map.
LinearCombination = dict


@dataclass(frozen=True)
class R1CSSystem:
    """An immutable compiled constraint system."""

    num_variables: int
    num_public: int  # count of public inputs (excluding the constant ONE)
    constraints: tuple  # of (A, B, C) LinearCombination triples

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def eval_lc(self, lc: LinearCombination, witness: list[int]) -> int:
        acc = 0
        for var, coeff in lc.items():
            acc += coeff * witness[var]
        return acc % R

    def check(self, witness: "R1CSWitness") -> None:
        """Verify the witness satisfies every constraint."""
        values = witness.values
        if len(values) != self.num_variables:
            raise CircuitError("witness length mismatch")
        if values[0] != 1:
            raise CircuitError("witness slot 0 must hold the constant 1")
        for i, (a, b, c) in enumerate(self.constraints):
            lhs = self.eval_lc(a, values) * self.eval_lc(b, values) % R
            if lhs != self.eval_lc(c, values):
                raise UnsatisfiedConstraintError("R1CS constraint %d violated" % i)


@dataclass
class R1CSWitness:
    """A full variable assignment for an :class:`R1CSSystem`."""

    values: list[int]
    num_public: int

    @property
    def public_inputs(self) -> list[int]:
        return list(self.values[1 : 1 + self.num_public])


class R1CSBuilder:
    """Synthesis-style builder: records constraints and computes values."""

    ONE = 0

    def __init__(self):
        self._values: list[int] = [1]
        self._num_public = 0
        self._constraints: list[tuple] = []
        self._public_done = False
        self._constants: dict[int, int] = {}

    def public_input(self, value: int) -> int:
        """Allocate a public input (must precede all private variables)."""
        if self._public_done:
            raise CircuitError("public inputs must be allocated first")
        self._values.append(int(value) % R)
        self._num_public += 1
        return len(self._values) - 1

    def var(self, value: int) -> int:
        """Allocate a private witness variable."""
        self._public_done = True
        self._values.append(int(value) % R)
        return len(self._values) - 1

    def value(self, index: int) -> int:
        return self._values[index]

    def enforce(
        self, a: LinearCombination, b: LinearCombination, c: LinearCombination
    ) -> None:
        """Add the constraint <a, w> * <b, w> = <c, w>."""
        norm = lambda lc: {k: v % R for k, v in lc.items() if v % R}
        self._constraints.append((norm(a), norm(b), norm(c)))

    # ----- helpers -------------------------------------------------------------
    #
    # The signatures below mirror repro.plonk.circuit.CircuitBuilder, so
    # the gadget library (MiMC, Poseidon, ...) runs unchanged on both
    # arithmetisations; the ZKCP baseline's Groth16 circuits reuse it.

    def constant(self, value: int) -> int:
        value = int(value) % R
        if value in self._constants:
            return self._constants[value]
        out = self.var(value)
        self.assert_constant(out, value)
        self._constants[value] = out
        return out

    def add_const(self, x: int, k: int) -> int:
        out = self.var(self._values[x] + k)
        self.enforce({x: 1, self.ONE: k % R}, {self.ONE: 1}, {out: 1})
        return out

    def scale(self, x: int, k: int) -> int:
        out = self.var(self._values[x] * k)
        self.enforce({x: k % R}, {self.ONE: 1}, {out: 1})
        return out

    def mul(self, x: int, y: int) -> int:
        out = self.var(self._values[x] * self._values[y])
        self.enforce({x: 1}, {y: 1}, {out: 1})
        return out

    def add(self, x: int, y: int) -> int:
        out = self.var(self._values[x] + self._values[y])
        self.enforce({x: 1, y: 1}, {self.ONE: 1}, {out: 1})
        return out

    def assert_equal(self, x: int, y: int) -> None:
        self.enforce({x: 1, y: -1}, {self.ONE: 1}, {})

    def assert_constant(self, x: int, k: int) -> None:
        self.enforce({x: 1}, {self.ONE: 1}, {self.ONE: k % R})

    def linear_combination(self, terms: list[tuple[int, int]], constant: int = 0) -> int:
        """Allocate a variable equal to sum(coeff * var) + constant."""
        value = constant
        lc: LinearCombination = {self.ONE: constant % R}
        for coeff, var in terms:
            value += coeff * self._values[var]
            lc[var] = (lc.get(var, 0) + coeff) % R
        out = self.var(value)
        self.enforce(lc, {self.ONE: 1}, {out: 1})
        return out

    def compile(self, check: bool = True) -> tuple[R1CSSystem, R1CSWitness]:
        """Finalize into an immutable system plus the computed witness.

        ``check=False`` skips witness validation (used when rebuilding a
        circuit's structure from dummy values, e.g. for key generation).
        """
        system = R1CSSystem(
            num_variables=len(self._values),
            num_public=self._num_public,
            constraints=tuple(self._constraints),
        )
        witness = R1CSWitness(list(self._values), self._num_public)
        if check:
            system.check(witness)
        return system, witness
