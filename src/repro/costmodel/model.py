"""Constraint-count formulas and calibrated timing models.

The gate-count formulas are exact for the library's gadgets (tests verify
them against circuits built for real); the timing side fits measured
(circuit size, seconds) points and extrapolates, under Plonk's known
complexity (prover ~ O(n log n), dominated in practice by the linear MSM
term; verification O(1)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.primitives.mimc import ROUNDS as MIMC_ROUNDS
from repro.primitives.poseidon import FULL_ROUNDS, PARTIAL_ROUNDS

# ----- exact gate counts for the gadget library ---------------------------------


def mimc_block_gates(rounds: int = MIMC_ROUNDS) -> int:
    """One MiMC permutation: per round one linear fold + x^7 in 4 muls,
    plus the final key addition."""
    return rounds * 5 + 1


def mimc_ctr_element_gates(rounds: int = MIMC_ROUNDS) -> int:
    """One CTR element: counter offset + block + keystream addition."""
    return mimc_block_gates(rounds) + 2


def poseidon_permutation_gates(width: int = 3) -> int:
    """One Poseidon permutation of the given width.

    Full round: width add-consts + width x^5 S-boxes (3 muls each) +
    width mixing rows (width-term linear combinations, width-1 gates).
    Partial round: the same with a single S-box.
    """
    mix = width * (width - 1)
    full = width + 3 * width + mix
    partial = width + 3 + mix
    return FULL_ROUNDS * full + PARTIAL_ROUNDS * partial


def poseidon_hash_gates(num_inputs: int, width: int = 3) -> int:
    """Sponge hash: one absorb-add per input + one permutation per chunk.

    Constants (the length tag and initial zeros) are deduplicated by the
    builder, costing at most 2 extra gates across a circuit; they are
    counted once here.
    """
    rate = width - 1
    chunks = max(1, -(-max(num_inputs, 1) // rate))
    return chunks * poseidon_permutation_gates(width) + num_inputs


def commitment_open_gates(message_len: int) -> int:
    """Open(m, c, o): hash of (blinder || m) plus one equality gate."""
    return poseidon_hash_gates(message_len + 1) + 1


def encryption_circuit_gates(num_entries: int) -> int:
    """The pi_e circuit: CTR encryption + data opening + key opening."""
    return (
        num_entries * (mimc_ctr_element_gates() + 1)  # +1 equality per block
        + commitment_open_gates(num_entries)
        + commitment_open_gates(1)
        + 2  # cached constants
    )


def transformation_circuit_gates(source_sizes: list[int], derived_sizes: list[int]) -> int:
    """A pi_t circuit for the structural transformations (dup/agg/part):
    openings for every dataset plus one equality per derived element."""
    gates = sum(commitment_open_gates(n) for n in source_sizes)
    gates += sum(commitment_open_gates(n) for n in derived_sizes)
    gates += sum(derived_sizes)  # element equalities
    return gates + 2


def key_negotiation_gates() -> int:
    """The pi_k circuit: key opening + H(k_v) + the masking equation."""
    return commitment_open_gates(1) + poseidon_hash_gates(1) + 4


def logistic_circuit_gates(num_points: int, num_features: int, fp_mul_gates: int = 95) -> int:
    """Approximate pi_t size for the LR convergence predicate.

    Two loss evaluations + one gradient step; each sample costs about
    (features + 16) fixed-point multiplications (sigmoid deg-5 + two
    deg-5 logs + products).  ``fp_mul_gates`` is the per-multiplication
    cost of the default format (dominated by the range decompositions).
    """
    per_sample_muls = 2 * (num_features + 12) + (num_features + 2)
    return num_points * per_sample_muls * fp_mul_gates + commitment_open_gates(
        num_points * (num_features + 1)
    ) + commitment_open_gates(num_features + 1)


def transformer_circuit_gates(seq_len: int, d_model: int, d_ff: int, fp_mul_gates: int = 95) -> int:
    """Approximate pi_t size for one transformer block inference proof."""
    qkv = 3 * seq_len * d_model * d_model
    scores = seq_len * seq_len * (d_model + 1)
    softmax = seq_len * seq_len * 6 + seq_len * 8
    weighted = seq_len * seq_len * d_model
    ffn = seq_len * (d_model * d_ff * 2 + d_ff)
    muls = qkv + scores + softmax + weighted + ffn
    params = 3 * d_model**2 + 2 * d_model * d_ff + d_ff + d_model
    return muls * fp_mul_gates + commitment_open_gates(seq_len * d_model) * 2 + commitment_open_gates(params)


def padded_circuit_size(gates: int) -> int:
    """Plonk pads to the next power of two (minimum 4)."""
    n = 4
    while n < gates:
        n <<= 1
    return n


# ----- measured pairing cost ------------------------------------------------------


def measure_pairing_seconds(pairs: int = 2, repeats: int = 3, engine=None) -> float:
    """Wall-clock seconds of one ``pairs``-way pairing product check.

    Runs the engine's real ``pairing_check`` kernel on small generator
    multiples and returns the fastest of ``repeats`` runs.  This is the
    *measured* counterpart to the counted op numbers in the
    ``verification_group_operations`` tables: a verifier doing k Miller
    loops costs roughly ``measure_pairing_seconds(k)``, with the G2-side
    preparation amortised by the engine's prepared-G2 cache exactly as it
    is in real verification.
    """
    import time

    from repro.backend import get_engine
    from repro.curve.g1 import G1
    from repro.curve.g2 import G2

    if pairs < 1:
        raise ReproError("a pairing check needs at least one pair")
    engine = engine or get_engine()
    g1, g2 = G1.generator(), G2.generator()
    # Non-degenerate product that still equals one, so the check follows
    # the verifier's real success path: prod e(k*G1, G2) * e(-sum*G1, G2).
    scalars = list(range(2, pairs + 1))
    inputs = [(g1 * k, g2) for k in scalars]
    inputs.append((-(g1 * (sum(scalars) or 1)), g2))
    if not scalars:  # pairs == 1: a single deliberately-failing pair
        inputs = [(g1, g2)]
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        engine.pairing_check(inputs)
        best = min(best, time.perf_counter() - start)
    return best


# ----- timing models --------------------------------------------------------------


@dataclass
class TimingModel:
    """A per-operation time model fit from measured (size, seconds) points.

    Fits t(n) = a * n * log2(n) + b — the Plonk prover/setup shape — by
    least squares on the transformed feature; ``constant=True`` fits a
    flat model (verification)."""

    a: float = 0.0
    b: float = 0.0
    constant: bool = False

    @staticmethod
    def fit(points: list[tuple[int, float]], constant: bool = False) -> "TimingModel":
        if not points:
            raise ReproError("cannot fit a timing model without measurements")
        if constant or len(points) == 1:
            mean = sum(t for _, t in points) / len(points)
            return TimingModel(a=0.0, b=mean, constant=True)
        import math

        xs = [n * math.log2(max(n, 2)) for n, _ in points]
        ys = [t for _, t in points]
        n = len(points)
        sx = sum(xs)
        sy = sum(ys)
        sxx = sum(x * x for x in xs)
        sxy = sum(x * y for x, y in zip(xs, ys))
        denom = n * sxx - sx * sx
        if denom == 0:
            return TimingModel(a=0.0, b=sy / n, constant=True)
        a = (n * sxy - sx * sy) / denom
        b = (sy - a * sx) / n
        return TimingModel(a=a, b=b)

    def predict(self, n: int) -> float:
        if self.constant:
            return self.b
        import math

        return max(0.0, self.a * n * math.log2(max(n, 2)) + self.b)


@dataclass
class CostModel:
    """Bundled timing models for setup, proving and verification."""

    setup: TimingModel
    prove: TimingModel
    verify: TimingModel

    @staticmethod
    def from_measurements(
        setup_points: list[tuple[int, float]],
        prove_points: list[tuple[int, float]],
        verify_points: list[tuple[int, float]],
    ) -> "CostModel":
        return CostModel(
            setup=TimingModel.fit(setup_points),
            prove=TimingModel.fit(prove_points),
            verify=TimingModel.fit(verify_points, constant=True),
        )

    def report_row(self, gates: int) -> dict:
        """Predicted costs for a circuit with ``gates`` raw constraints."""
        n = padded_circuit_size(gates)
        return {
            "gates": gates,
            "padded_n": n,
            "setup_seconds": self.setup.predict(n),
            "prove_seconds": self.prove.predict(n),
            "verify_seconds": self.verify.predict(n),
            "proof_size_bytes": 9 * 64 + 6 * 32,
        }
