"""Analytic cost model: constraints -> time, gas and proof size.

Bridges the scale gap between a pure-Python prover and the paper's
testbed: closed-form constraint counts (validated against the real
circuit builder in tests) plus timing models calibrated from measured
small-scale runs let the benchmark harness reproduce the paper-scale rows
of Figures 5-6 and Table I alongside the genuinely measured points.
"""

from repro.costmodel.model import (
    CostModel,
    TimingModel,
    encryption_circuit_gates,
    key_negotiation_gates,
    logistic_circuit_gates,
    measure_pairing_seconds,
    mimc_block_gates,
    mimc_ctr_element_gates,
    padded_circuit_size,
    poseidon_hash_gates,
    poseidon_permutation_gates,
    commitment_open_gates,
    transformation_circuit_gates,
    transformer_circuit_gates,
)

__all__ = [
    "CostModel",
    "TimingModel",
    "commitment_open_gates",
    "encryption_circuit_gates",
    "key_negotiation_gates",
    "logistic_circuit_gates",
    "measure_pairing_seconds",
    "mimc_block_gates",
    "mimc_ctr_element_gates",
    "padded_circuit_size",
    "poseidon_hash_gates",
    "poseidon_permutation_gates",
    "transformation_circuit_gates",
    "transformer_circuit_gates",
]
