"""Pippenger (bucket-method) multi-scalar multiplication over G1.

The Plonk and Groth16 provers spend most of their group time in MSMs of the
form sum_i k_i * P_i with n up to a few thousand; the bucket method brings
that from O(n * 256) point additions down to roughly O(n + 2^c * 256/c).
"""

from __future__ import annotations

from repro.errors import CurveError
from repro.curve.g1 import G1, JAC_INF, jac_add, jac_double, jac_mul
from repro.field.fr import MODULUS as R

_SCALAR_BITS = 254


def _window_size(n: int) -> int:
    """Empirical window width for the bucket method."""
    if n < 4:
        return 1
    if n < 32:
        return 3
    if n < 256:
        return 5
    if n < 1024:
        return 7
    if n < 8192:
        return 9
    return 11


def msm_jacobian(points: list[tuple], scalars: list[int]) -> tuple:
    """MSM over Jacobian point tuples; returns a Jacobian tuple."""
    if len(points) != len(scalars):
        raise CurveError("msm: %d points but %d scalars" % (len(points), len(scalars)))
    pairs = [(p, s % R) for p, s in zip(points, scalars) if s % R and p[2] != 0]
    if not pairs:
        return JAC_INF
    if len(pairs) == 1:
        return jac_mul(pairs[0][0], pairs[0][1])
    c = _window_size(len(pairs))
    num_windows = (_SCALAR_BITS + c - 1) // c
    mask = (1 << c) - 1
    result = JAC_INF
    for w in range(num_windows - 1, -1, -1):
        if result[2] != 0:
            for _ in range(c):
                result = jac_double(result)
        shift = w * c
        buckets: list[tuple | None] = [None] * mask
        for p, s in pairs:
            digit = (s >> shift) & mask
            if digit:
                cur = buckets[digit - 1]
                buckets[digit - 1] = p if cur is None else jac_add(cur, p)
        running = JAC_INF
        acc = JAC_INF
        for b in range(mask - 1, -1, -1):
            if buckets[b] is not None:
                running = jac_add(running, buckets[b])
            acc = jac_add(acc, running)
        result = jac_add(result, acc)
    return result


def msm_g1(points: list[G1], scalars: list[int]) -> G1:
    """MSM over affine :class:`G1` points; returns an affine point."""
    jac = msm_jacobian([p.to_jacobian() for p in points], [int(s) for s in scalars])
    return G1.from_jacobian(jac)
