"""Pippenger (bucket-method) multi-scalar multiplication over G1 and G2.

The Plonk and Groth16 provers spend most of their group time in MSMs of the
form sum_i k_i * P_i with n up to a few thousand; the bucket method brings
that from O(n * 256) point additions down to roughly O(n + 2^c * 256/c).

Scalars are recoded into *signed* windows (digits in
[-2^(c-1)+1, 2^(c-1)]), which halves the bucket count per window relative
to the unsigned method: negating a normalised point is a single field
negation, and the smaller bucket array nearly halves the running-sum
aggregation work.

Input points are batch-normalised to ``z = 1`` first (one field inversion
for the whole batch).  The G1 path — the prover's hottest loop — goes
further with batch-affine bucket accumulation (:func:`_bucket_msm_g1`):
bucket contents stay affine and are reduced with batched-inverse affine
additions.  G2 MSMs are comparatively rare and small, so they use the
generic signed bucket loop with mixed Jacobian additions.
"""

from __future__ import annotations

from repro import substrate
from repro.errors import CurveError
from repro.curve import glv
from repro.curve.fq import Q, fq2_is_zero, fq2_neg, fq_batch_inverse
from repro.curve.g1 import (
    G1,
    JAC_INF,
    jac_add,
    jac_batch_normalize,
    jac_double,
    jac_mul,
    reduce_scalar,
)
from repro.curve.g2 import (
    G2,
    JAC_INF as JAC2_INF,
    jac2_add,
    jac2_batch_normalize,
    jac2_double,
    jac2_mul,
)

_SCALAR_BITS = 254


def _window_size(n: int) -> int:
    """Empirical window width for the signed bucket method."""
    if n < 4:
        return 2
    if n < 32:
        return 4
    if n < 128:
        return 5
    if n < 2048:
        return 7
    if n < 4096:
        return 8
    return 10


def _signed_digits(s: int, c: int, num_windows: int) -> list[int]:
    """Recode a scalar into base-2^c digits in [-2^(c-1)+1, 2^(c-1)].

    A trailing carry may emit one extra digit, so the returned list has
    ``num_windows`` or ``num_windows + 1`` entries.
    """
    half = 1 << (c - 1)
    full = 1 << c
    mask = full - 1
    digits = []
    carry = 0
    for w in range(num_windows):
        d = ((s >> (w * c)) & mask) + carry
        if d > half:
            d -= full
            carry = 1
        else:
            carry = 0
        digits.append(d)
    if carry:
        digits.append(1)
    return digits


def _jac_is_inf(p: tuple) -> bool:
    return p[2] == 0


def _jac2_is_inf(p: tuple) -> bool:
    return fq2_is_zero(p[2])


def _collect_pairs(points: list, scalars: list, is_inf, label: str) -> list:
    """Pair up non-trivial (point, scalar) terms with reduced scalars."""
    if len(points) != len(scalars):
        raise CurveError("%s: %d points but %d scalars" % (label, len(points), len(scalars)))
    pairs = []
    for p, s in zip(points, scalars):
        s = reduce_scalar(int(s))
        if s and not is_inf(p):
            pairs.append((p, s))
    return pairs


def _bucket_msm(pairs: list, inf: tuple, add, double, neg, is_inf) -> tuple:
    """Generic signed-window Pippenger loop; ``pairs`` must hold ``z = 1``
    points.

    The window/bucket structure is identical for G1 and G2 — only the
    group law differs, so it is injected as ``add`` / ``double`` / ``neg``
    (``neg`` negates a normalised point, staying normalised).
    """
    c = _window_size(len(pairs))
    half = 1 << (c - 1)
    num_windows = (_SCALAR_BITS + c - 1) // c
    decomposed = [(p, _signed_digits(s, c, num_windows)) for p, s in pairs]
    top = max(len(d) for _, d in decomposed)
    result = inf
    for w in range(top - 1, -1, -1):
        if not is_inf(result):
            for _ in range(c):
                result = double(result)
        buckets: list[tuple | None] = [None] * half
        for p, digits in decomposed:
            if w >= len(digits):
                continue
            d = digits[w]
            if d == 0:
                continue
            if d > 0:
                q, idx = p, d - 1
            else:
                q, idx = neg(p), -d - 1
            cur = buckets[idx]
            # ``q`` is normalised, so this is always a mixed addition.
            buckets[idx] = q if cur is None else add(cur, q)
        running = inf
        acc = inf
        for b in range(half - 1, -1, -1):
            if buckets[b] is not None:
                running = add(running, buckets[b])
            acc = add(acc, running)
        result = add(result, acc)
    return result


def _g2_neg_norm(p: tuple) -> tuple:
    return (p[0], fq2_neg(p[1]), p[2])


def _batch_affine_reduce(buckets: list) -> None:
    """Reduce every bucket list to at most one affine point, in place.

    Each round halves every pending bucket by pairwise affine additions;
    all slope denominators across all buckets share a single batched
    inversion per round.
    """
    pending = [i for i, b in enumerate(buckets) if len(b) > 1]
    while pending:
        ops = []  # (bucket_index, x1, y1, x2, y2, is_doubling)
        denoms = []
        for bi in pending:
            lst = buckets[bi]
            for j in range(0, len(lst) - 1, 2):
                x1, y1 = lst[j]
                x2, y2 = lst[j + 1]
                if x1 == x2:
                    if (y1 + y2) % Q == 0:
                        continue  # P + (-P): the pair cancels to infinity
                    denoms.append(2 * y1 % Q)
                    ops.append((bi, x1, y1, x2, y2, True))
                else:
                    denoms.append((x2 - x1) % Q)
                    ops.append((bi, x1, y1, x2, y2, False))
            buckets[bi] = [lst[-1]] if len(lst) % 2 else []
        if denoms:
            invs = fq_batch_inverse(denoms)
            for (bi, x1, y1, x2, y2, dbl), dinv in zip(ops, invs):
                if dbl:
                    lam = 3 * x1 * x1 * dinv % Q
                else:
                    lam = (y2 - y1) * dinv % Q
                x3 = (lam * lam - x1 - x2) % Q
                buckets[bi].append((x3, (lam * (x1 - x3) - y1) % Q))
        pending = [bi for bi in pending if len(buckets[bi]) > 1]


def _bucket_msm_g1(pairs: list, bits: int = _SCALAR_BITS) -> tuple:
    """Signed-window G1 MSM with batch-affine bucket accumulation.

    ``pairs`` must hold normalised ``z = 1`` points.  Bucket contents are
    kept *affine* throughout: every bucket is reduced by pairwise affine
    additions whose slope denominators are inverted together (one
    :func:`fq_batch_inverse` per round across all windows), so each
    addition costs ~6 field multiplications instead of the ~11 of a mixed
    Jacobian addition.  The final running-sum aggregation then adds affine
    buckets into Jacobian accumulators via the mixed-addition fast path.

    G1 has prime order, so no finite point has ``y == 0`` and the affine
    doubling denominator ``2y`` is always invertible.

    ``bits`` bounds the scalar widths: the GLV front-end passes
    half-width pairs with ``bits ~ 129``, halving the window count (and
    with it the doubling chain in phase 3).
    """
    c = _window_size(len(pairs))
    half = 1 << (c - 1)
    num_windows = (bits + c - 1) // c

    # Phase 1: scatter affine points into per-window bucket lists (the
    # signed recoding's trailing carry can spill into one extra window).
    buckets: list[list] = [[] for _ in range((num_windows + 1) * half)]
    top = 0
    for (x, y, _), s in pairs:
        digits = _signed_digits(s, c, num_windows)
        for w, d in enumerate(digits):
            if d == 0:
                continue
            if d > 0:
                buckets[w * half + d - 1].append((x, y))
            else:
                buckets[w * half - d - 1].append((x, Q - y))
            if w >= top:
                top = w + 1

    # Phase 2: reduce every bucket to at most one affine point.
    _batch_affine_reduce(buckets)

    # Phase 3: running-sum aggregation per window, then fold windows.
    result = JAC_INF
    for w in range(top - 1, -1, -1):
        if result[2] != 0:
            for _ in range(c):
                result = jac_double(result)
        base = w * half
        running = None
        acc = None
        for b in range(half - 1, -1, -1):
            lst = buckets[base + b]
            if lst:
                x, y = lst[0]
                if running is None:
                    running = (x, y, 1)
                else:
                    running = jac_add(running, (x, y, 1))
            if running is not None:
                acc = running if acc is None else jac_add(acc, running)
        if acc is not None:
            result = jac_add(result, acc)
    return result


def msm_jacobian(points: list[tuple], scalars: list[int]) -> tuple:
    """MSM over G1 Jacobian point tuples; returns a Jacobian tuple.

    Under the fast substrate each (point, scalar) pair is GLV-split
    into two half-width pairs before bucketing: twice the bucket
    insertions, but half the windows — and the per-window doubling
    chain in the aggregation phase is the serial bottleneck.
    """
    pairs = _collect_pairs(points, scalars, _jac_is_inf, "msm")
    if not pairs:
        return JAC_INF
    if len(pairs) == 1:
        if substrate.fast_enabled():
            return glv.glv_jac_mul(pairs[0][0], pairs[0][1])
        return jac_mul(pairs[0][0], pairs[0][1])
    normalized = jac_batch_normalize([p for p, _ in pairs])
    pairs = [(p, s) for p, (_, s) in zip(normalized, pairs)]
    if substrate.fast_enabled():
        pairs = glv.split_pairs(pairs)
        if not pairs:
            return JAC_INF
        return _bucket_msm_g1(pairs, bits=glv.HALF_BITS)
    return _bucket_msm_g1(pairs)


# --------------------------------------------------------- fixed-base MSM

#: Bounds for the precomputed-table path: below the floor the single
#: window is mostly empty slots (the plain GLV path wins); above the cap
#: the tables' memory footprint stops being worth pinning.
FIXED_WINDOW_MIN = 32
FIXED_WINDOW_MAX = 2048


def fixed_window_c(n: int) -> int:
    """Window width for :func:`msm_fixed_window` (empirical, like
    :func:`_window_size` — but wider: with precomputed window shifts the
    per-window aggregation cost is gone, so only scatter density and the
    single running sum push back)."""
    return 10 if n >= 128 else 8


def window_table_depth(c: int) -> int:
    """Rows per point: one per half-width window plus the carry spill."""
    return (glv.HALF_BITS + c - 1) // c + 1


def build_window_tables(jac_points: list[tuple], c: int) -> list[list[tuple]]:
    """Precompute ``2^(w*c) * P`` for every point and window ``w``.

    The tables turn a fixed-base MSM into a *single-window* bucket pass
    (:func:`msm_fixed_window`): every digit of every scalar lands in one
    shared bucket array, so the per-window doubling chain and running-sum
    aggregation of the generic method collapse into one final sweep.
    Rows are normalised to ``z = 1``; identity points get all-infinity
    rows (they contribute nothing and are skipped at scatter time).
    """
    depth = window_table_depth(c)
    flat = []
    finite = []
    for i, p in enumerate(jac_points):
        if p[2] == 0:
            continue
        finite.append(i)
        t = p
        for _ in range(depth):
            flat.append(t)
            for _ in range(c):
                t = jac_double(t)
    norm = jac_batch_normalize(flat)
    tables: list[list[tuple]] = [[JAC_INF] * depth for _ in jac_points]
    for row, i in enumerate(finite):
        tables[i] = norm[row * depth : (row + 1) * depth]
    return tables


def msm_fixed_window(tables: list[list[tuple]], c: int, scalars: list[int]) -> tuple:
    """GLV MSM against precomputed window tables (fast substrate only).

    Each scalar is GLV-decomposed into two half-width signed parts; the
    ``k2`` part maps through the endomorphism on the fly (``psi`` commutes
    with scalar multiplication, so ``psi(2^(wc) P) = 2^(wc) psi(P)`` costs
    one field multiplication per scattered point instead of a second
    table).  All windows scatter into one bucket array.
    """
    half = 1 << (c - 1)
    depth = window_table_depth(c)
    buckets: list[list] = [[] for _ in range(half)]
    beta = glv.BETA
    for i, k in enumerate(scalars):
        tab = tables[i]
        k1, k2 = glv.decompose(k)
        for kk, endo in ((k1, False), (k2, True)):
            if kk == 0:
                continue
            neg = kk < 0
            digits = _signed_digits(-kk if neg else kk, c, depth - 1)
            for w, d in enumerate(digits):
                if d == 0:
                    continue
                x, y, z = tab[w]
                if z == 0:
                    continue
                if endo:
                    x = x * beta % Q
                if (d < 0) != neg:
                    y = Q - y
                buckets[(d if d > 0 else -d) - 1].append((x, y))
    _batch_affine_reduce(buckets)
    running = None
    acc = None
    for b in range(half - 1, -1, -1):
        lst = buckets[b]
        if lst:
            x, y = lst[0]
            running = (x, y, 1) if running is None else jac_add(running, (x, y, 1))
        if running is not None:
            acc = running if acc is None else jac_add(acc, running)
    return acc if acc is not None else JAC_INF


def msm_g2_jacobian(points: list[tuple], scalars: list[int]) -> tuple:
    """MSM over G2 Jacobian point tuples; returns a Jacobian tuple."""
    pairs = _collect_pairs(points, scalars, _jac2_is_inf, "msm_g2")
    if not pairs:
        return JAC2_INF
    if len(pairs) == 1:
        return jac2_mul(pairs[0][0], pairs[0][1])
    normalized = jac2_batch_normalize([p for p, _ in pairs])
    pairs = [(p, s) for p, (_, s) in zip(normalized, pairs)]
    return _bucket_msm(
        pairs, JAC2_INF, jac2_add, jac2_double, _g2_neg_norm, _jac2_is_inf
    )


def msm_g1(points: list[G1], scalars: list[int]) -> G1:
    """MSM over affine :class:`G1` points; returns an affine point."""
    jac = msm_jacobian([p.to_jacobian() for p in points], [int(s) for s in scalars])
    return G1.from_jacobian(jac)


def msm_g2(points: list[G2], scalars: list[int]) -> G2:
    """MSM over affine :class:`G2` points; returns an affine point."""
    jac = msm_g2_jacobian([p.to_jacobian() for p in points], [int(s) for s in scalars])
    return G2.from_jacobian(jac)
