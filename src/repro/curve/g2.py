"""The group G2 of BN254: points on the sextic twist over F_q2.

Twist curve: y^2 = x^3 + b2 with b2 = 3 / (9 + u).  Same Jacobian formulas
as G1 but with F_q2 coordinate arithmetic.
"""

from __future__ import annotations

from repro.errors import CurveError
from repro.curve.fq import (
    Q as _Q,
    FQ2_ONE,
    FQ2_ZERO,
    fq2_add,
    fq2_batch_inverse,
    fq2_eq,
    fq2_inv,
    fq2_is_zero,
    fq2_mul,
    fq2_neg,
    fq2_scalar,
    fq2_square,
    fq2_sub,
)
from repro.field.fr import MODULUS as R

#: Twist coefficient b2 = 3 / (9 + u).
B2 = fq2_mul((3, 0), fq2_inv((9, 1)))

#: Standard affine generator of G2.
GEN_X = (
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
GEN_Y = (
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)

JAC_INF = (FQ2_ONE, FQ2_ONE, FQ2_ZERO)


def jac2_double(p: tuple) -> tuple:
    x, y, z = p
    if fq2_is_zero(z) or fq2_is_zero(y):
        return JAC_INF
    a = fq2_square(x)
    b = fq2_square(y)
    c = fq2_square(b)
    t = fq2_square(fq2_add(x, b))
    d = fq2_scalar(fq2_sub(fq2_sub(t, a), c), 2)
    e = fq2_scalar(a, 3)
    f = fq2_square(e)
    x3 = fq2_sub(f, fq2_scalar(d, 2))
    y3 = fq2_sub(fq2_mul(e, fq2_sub(d, x3)), fq2_scalar(c, 8))
    z3 = fq2_scalar(fq2_mul(y, z), 2)
    return (x3, y3, z3)


def jac2_add(p: tuple, q: tuple) -> tuple:
    if fq2_is_zero(p[2]):
        return q
    if fq2_is_zero(q[2]):
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = fq2_square(z1)
    if z2 == FQ2_ONE:
        # Mixed addition (q affine), mirroring the G1 fast path; the G2
        # MSM batch-normalises its inputs so bucket insertion lands here.
        u1, s1 = x1, y1
        u2 = fq2_mul(x2, z1z1)
        s2 = fq2_mul(fq2_mul(y2, z1), z1z1)
        if fq2_eq(u1, u2):
            if not fq2_eq(s1, s2):
                return JAC_INF
            return jac2_double(p)
        h = fq2_sub(u2, u1)
        i = fq2_scalar(fq2_square(h), 4)
        j = fq2_mul(h, i)
        rr = fq2_scalar(fq2_sub(s2, s1), 2)
        v = fq2_mul(u1, i)
        x3 = fq2_sub(fq2_sub(fq2_square(rr), j), fq2_scalar(v, 2))
        y3 = fq2_sub(fq2_mul(rr, fq2_sub(v, x3)), fq2_scalar(fq2_mul(s1, j), 2))
        z3 = fq2_scalar(fq2_mul(z1, h), 2)
        return (x3, y3, z3)
    z2z2 = fq2_square(z2)
    u1 = fq2_mul(x1, z2z2)
    u2 = fq2_mul(x2, z1z1)
    s1 = fq2_mul(fq2_mul(y1, z2), z2z2)
    s2 = fq2_mul(fq2_mul(y2, z1), z1z1)
    if fq2_eq(u1, u2):
        if not fq2_eq(s1, s2):
            return JAC_INF
        return jac2_double(p)
    h = fq2_sub(u2, u1)
    i = fq2_scalar(fq2_square(h), 4)
    j = fq2_mul(h, i)
    rr = fq2_scalar(fq2_sub(s2, s1), 2)
    v = fq2_mul(u1, i)
    x3 = fq2_sub(fq2_sub(fq2_square(rr), j), fq2_scalar(v, 2))
    y3 = fq2_sub(fq2_mul(rr, fq2_sub(v, x3)), fq2_scalar(fq2_mul(s1, j), 2))
    zsum = fq2_square(fq2_add(z1, z2))
    z3 = fq2_mul(fq2_sub(fq2_sub(zsum, z1z1), z2z2), h)
    return (x3, y3, z3)


def jac2_mul(p: tuple, k: int) -> tuple:
    k %= R
    if k == 0 or fq2_is_zero(p[2]):
        return JAC_INF
    result = JAC_INF
    for bit in bin(k)[2:]:
        result = jac2_double(result)
        if bit == "1":
            result = jac2_add(result, p)
    return result


def jac2_to_affine(p: tuple) -> tuple | None:
    if fq2_is_zero(p[2]):
        return None
    zinv = fq2_inv(p[2])
    zinv2 = fq2_square(zinv)
    return (fq2_mul(p[0], zinv2), fq2_mul(fq2_mul(p[1], zinv2), zinv))


def jac2_batch_normalize(points: list[tuple]) -> list[tuple]:
    """Normalise finite G2 Jacobian points to ``z = 1`` with one inversion.

    The G2 analogue of :func:`repro.curve.g1.jac_batch_normalize`: makes
    every point eligible for the mixed-addition fast path in
    :func:`jac2_add`.  Points at infinity are not accepted.
    """
    if all(p[2] == FQ2_ONE for p in points):
        return list(points)
    zinvs = fq2_batch_inverse([p[2] for p in points])
    out = []
    for (x, y, _), zi in zip(points, zinvs):
        zi2 = fq2_square(zi)
        out.append((fq2_mul(x, zi2), fq2_mul(fq2_mul(y, zi2), zi), FQ2_ONE))
    return out


class G2:
    """An affine point of G2 (immutable); coordinates are F_q2 tuples."""

    __slots__ = ("x", "y", "inf")

    def __init__(self, x: tuple = FQ2_ZERO, y: tuple = FQ2_ZERO, inf: bool = False):
        if inf:
            object.__setattr__(self, "x", FQ2_ZERO)
            object.__setattr__(self, "y", FQ2_ZERO)
            object.__setattr__(self, "inf", True)
            return
        x = (x[0] % _Q, x[1] % _Q)
        y = (y[0] % _Q, y[1] % _Q)
        lhs = fq2_square(y)
        rhs = fq2_add(fq2_mul(fq2_square(x), x), B2)
        if not fq2_eq(lhs, rhs):
            raise CurveError("point is not on the G2 twist curve")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "inf", False)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("G2 is immutable")

    @staticmethod
    def generator() -> "G2":
        return G2(GEN_X, GEN_Y)

    @staticmethod
    def identity() -> "G2":
        return G2(inf=True)

    @staticmethod
    def from_jacobian(p: tuple) -> "G2":
        aff = jac2_to_affine(p)
        if aff is None:
            return G2.identity()
        return G2(aff[0], aff[1])

    @staticmethod
    def batch_from_jacobian(points: list[tuple]) -> list["G2"]:
        """Convert many Jacobian tuples to affine points with one inversion.

        The G2 analogue of :meth:`G1.batch_from_jacobian`, used by the
        Groth16 setup's per-variable [V_j(tau)]_2 query.
        """
        finite = [(i, p) for i, p in enumerate(points) if not fq2_is_zero(p[2])]
        normalized = jac2_batch_normalize([p for _, p in finite])
        out: list[G2] = [G2.identity()] * len(points)
        for (i, _), q in zip(finite, normalized):
            out[i] = G2(q[0], q[1])
        return out

    def to_jacobian(self) -> tuple:
        if self.inf:
            return JAC_INF
        return (self.x, self.y, FQ2_ONE)

    def __add__(self, other: "G2") -> "G2":
        if not isinstance(other, G2):
            return NotImplemented
        return G2.from_jacobian(jac2_add(self.to_jacobian(), other.to_jacobian()))

    def __sub__(self, other: "G2") -> "G2":
        if not isinstance(other, G2):
            return NotImplemented
        return self + (-other)

    def __neg__(self) -> "G2":
        if self.inf:
            return self
        return G2(self.x, fq2_neg(self.y))

    def __mul__(self, k) -> "G2":
        if not isinstance(k, int):
            k = int(k)
        return G2.from_jacobian(jac2_mul(self.to_jacobian(), k))

    __rmul__ = __mul__

    def __eq__(self, other):
        if not isinstance(other, G2):
            return NotImplemented
        if self.inf or other.inf:
            return self.inf == other.inf
        return fq2_eq(self.x, other.x) and fq2_eq(self.y, other.y)

    def __hash__(self):
        return hash(("G2", self.inf, self.x, self.y))

    def in_subgroup(self) -> bool:
        """Check that the point has order r (required of SRS elements)."""
        if self.inf:
            return True
        return fq2_is_zero(jac2_mul(self.to_jacobian(), R)[2])

    def to_bytes(self) -> bytes:
        """Serialise as 128 bytes (x0 x1 y0 y1 little-endian)."""
        if self.inf:
            return b"\x00" * 128
        parts = (self.x[0], self.x[1], self.y[0], self.y[1])
        return b"".join(v.to_bytes(32, "little") for v in parts)

    @staticmethod
    def from_bytes(data: bytes) -> "G2":
        if len(data) != 128:
            raise CurveError("G2 serialisation must be 128 bytes")
        if data == b"\x00" * 128:
            return G2.identity()
        vals = [int.from_bytes(data[i : i + 32], "little") for i in range(0, 128, 32)]
        return G2((vals[0], vals[1]), (vals[2], vals[3]))

    def __repr__(self):
        if self.inf:
            return "G2(infinity)"
        return "G2(x=%r, y=%r)" % (self.x, self.y)

