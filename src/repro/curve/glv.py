"""GLV endomorphism scalar multiplication for G1.

BN254's G1 lies on ``y^2 = x^3 + 3`` over F_q with ``q ≡ 1 (mod 3)``,
so F_q contains a primitive cube root of unity beta and the map
``psi(x, y) = (beta * x, y)`` is a curve endomorphism.  On the prime-
order group G1 it acts as multiplication by a scalar lambda with
``lambda^2 + lambda + 1 ≡ 0 (mod r)``.  Gallant–Lambert–Vanstone (GLV)
exploits this: any scalar ``k`` splits as ``k = k1 + k2 * lambda (mod
r)`` with ``|k1|, |k2| ~ sqrt(r)`` (half-width), so

    k * P  ==  k1 * P  +  k2 * psi(P)

can be computed with a *single* ~128-iteration Shamir double-and-add
ladder instead of a 254-iteration one — the doublings, which dominate,
are halved.

The constants beta and lambda are **derived, not hard-coded**: beta is
found as a nontrivial cube root of unity via the (q-1)/3 power of small
non-residues, and lambda as the root of ``x^2 + x + 1 (mod r)`` that
satisfies ``lambda * G == psi(G)`` on the actual generator.  The
derivation doubles as an import-time self-check of the endomorphism.

The short lattice basis for the decomposition comes from the classic
extended-Euclid half-GCD on ``(r, lambda)``, stopping at the first
remainder below ``sqrt(r)`` (Algorithm 3.74, Guide to Elliptic Curve
Cryptography).

:func:`glv_jac_mul` is gated behind the substrate mode switch by its
caller (:meth:`repro.curve.g1.G1.__mul__` and the MSM front-end);
``tests/test_differential.py`` holds it bit-identical — at the affine
level — to the retained double-and-add oracle :func:`repro.curve.g1.
jac_mul`.
"""

from __future__ import annotations

import math

from repro.curve.fq import Q
from repro.curve.g1 import (
    GEN_X,
    GEN_Y,
    JAC_INF,
    jac_add,
    jac_double,
    jac_mul,
    jac_neg,
    reduce_scalar,
)
from repro.errors import CurveError
from repro.field.fr import MODULUS as R


def _find_beta() -> int:
    """A nontrivial cube root of unity in F_q (q ≡ 1 mod 3)."""
    exp = (Q - 1) // 3
    for base in range(2, 64):
        beta = pow(base, exp, Q)
        if beta != 1:
            return beta
    raise CurveError("no cube root of unity found in F_q")


def _find_lambda(beta: int) -> int:
    """The eigenvalue of psi on G1: the root of x^2 + x + 1 mod r with
    lambda * G == (beta * Gx, Gy)."""
    exp = (R - 1) // 3
    gen = (GEN_X, GEN_Y, 1)
    target = (beta * GEN_X % Q, GEN_Y, 1)
    for base in range(2, 64):
        lam = pow(base, exp, R)
        if lam == 1:
            continue
        for candidate in (lam, lam * lam % R):
            p = jac_mul(gen, candidate)
            # Compare at the affine level; jac_mul of the affine
            # generator keeps z a product of doubling factors, so
            # cross-multiply rather than invert.
            zz = p[2] * p[2] % Q
            if p[0] == target[0] * zz % Q and p[1] == target[1] * zz * p[2] % Q:
                return candidate
    raise CurveError("endomorphism eigenvalue not found")


BETA = _find_beta()
LAMBDA = _find_lambda(BETA)


def _lattice_basis(lam: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """Two short vectors (a, b) with a + b*lam ≡ 0 (mod r).

    Extended Euclid on (r, lam) tracking r_i = s_i*r + t_i*lam; the
    first remainder below sqrt(r) and its successor give the
    half-width basis vectors (r_i, -t_i).
    """
    sqrt_r = math.isqrt(R)
    rem0, rem1 = R, lam
    t0, t1 = 0, 1
    while rem1 >= sqrt_r:
        quo = rem0 // rem1
        rem0, rem1 = rem1, rem0 - quo * rem1
        t0, t1 = t1, t0 - quo * t1
    # rem1 < sqrt(r) <= rem0; both (rem0, -t0) and (rem1, -t1) satisfy
    # a + b*lam ≡ 0 (mod r).  Pick the shorter companion for v2.
    quo = rem0 // rem1
    rem2, t2 = rem0 - quo * rem1, t0 - quo * t1
    v1 = (rem1, -t1)
    if rem0 * rem0 + t0 * t0 <= rem2 * rem2 + t2 * t2:
        v2 = (rem0, -t0)
    else:
        v2 = (rem2, -t2)
    return v1, v2


_V1, _V2 = _lattice_basis(LAMBDA)

#: det(v1, v2); equals ±r by the Euclid invariant.  The Babai rounding
#: below must divide by the *signed* determinant or the round-off lands
#: far from the closest lattice vector and the split is full-width.
_DET = _V1[0] * _V2[1] - _V2[0] * _V1[1]


def _round_div(num: int, den: int) -> int:
    """round(num / den) for signed ``num`` and positive ``den``."""
    return (2 * num + den) // (2 * den)


def decompose(k: int) -> tuple[int, int]:
    """Split ``k`` (mod r) into half-width ``(k1, k2)`` with
    ``k1 + k2 * lambda ≡ k (mod r)``.

    Babai round-off: with basis v1 = (a1, b1), v2 = (a2, b2),
    c1 = round(b2 * k / det), c2 = round(-b1 * k / det), then
    (k1, k2) = (k, 0) - c1*v1 - c2*v2.  The congruence holds for *any*
    integers c1, c2 (each basis vector is 0 mod r in the embedding);
    the rounding only controls the size bound: |k1|, |k2| are bounded
    by the basis norms (~sqrt(r), so ≤ ~129 bits).
    """
    k = reduce_scalar(k)
    a1, b1 = _V1
    a2, b2 = _V2
    num1, num2, den = b2 * k, -b1 * k, _DET
    if den < 0:
        num1, num2, den = -num1, -num2, -den
    c1 = _round_div(num1, den)
    c2 = _round_div(num2, den)
    k1 = k - c1 * a1 - c2 * a2
    k2 = -c1 * b1 - c2 * b2
    return k1, k2


def endo(p: tuple) -> tuple:
    """Apply psi(x, y, z) = (beta * x, y, z) — multiplication by lambda."""
    if p[2] == 0:
        return JAC_INF
    return (p[0] * BETA % Q, p[1], p[2])


def glv_jac_mul(p: tuple, k: int) -> tuple:
    """GLV scalar multiplication: ``k * P`` via a half-width Shamir ladder.

    Equivalent to :func:`repro.curve.g1.jac_mul` at the affine level
    (Jacobian z-coordinates differ; the differential suite compares
    normalised points).
    """
    k = reduce_scalar(k)
    if k == 0 or p[2] == 0:
        return JAC_INF
    k1, k2 = decompose(k)
    p1 = p
    if k1 < 0:
        k1, p1 = -k1, jac_neg(p1)
    p2 = endo(p)
    if k2 < 0:
        k2, p2 = -k2, jac_neg(p2)
    if k1 == 0:
        return jac_mul(p2, k2)
    if k2 == 0:
        return jac_mul(p1, k1)
    both = jac_add(p1, p2)
    result = JAC_INF
    for bit in range(max(k1.bit_length(), k2.bit_length()) - 1, -1, -1):
        result = jac_double(result)
        b1 = (k1 >> bit) & 1
        b2 = (k2 >> bit) & 1
        if b1 and b2:
            result = jac_add(result, both)
        elif b1:
            result = jac_add(result, p1)
        elif b2:
            result = jac_add(result, p2)
    return result


def split_pairs(pairs: list) -> list:
    """Expand normalised ``(point, scalar)`` MSM pairs via GLV.

    Each pair becomes up to two pairs with ~half-width non-negative
    scalars: ``(P, |k1|)`` and ``(psi(P), |k2|)`` with sign folded into
    point negation.  Input points must be normalised (``z == 1``) so
    the outputs stay normalised for the bucket method's mixed
    additions.  Returns the new pair list and is lossless:
    sum k_i P_i is preserved exactly.
    """
    out = []
    for p, s in pairs:
        k1, k2 = decompose(s)
        if k1:
            out.append((jac_neg(p) if k1 < 0 else p, abs(k1)))
        if k2:
            q = endo(p)
            out.append((jac_neg(q) if k2 < 0 else q, abs(k2)))
    return out


#: Scalar bit-width bound after GLV decomposition: basis-norm bound plus
#: slack for the Babai round-off error (|k_i| <= max-norm * (1 + eps)).
HALF_BITS = max(
    abs(_V1[0]), abs(_V1[1]), abs(_V2[0]), abs(_V2[1])
).bit_length() + 2
