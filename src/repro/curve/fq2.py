"""F_q2 operations the tower pairing needs beyond plain arithmetic.

``repro.curve.fq`` owns the tuple-based F_q2 representation (``(a0, a1)``
meaning ``a0 + a1*u`` with ``u^2 = -1``); this module re-exports it and
adds the structure the F_q2/F_q6/F_q12 tower is built on:

- the sextic non-residue ``xi = 9 + u`` (the twist divisor, the F_q6
  cubic non-residue and the F_q12 sextic non-residue all at once);
- Frobenius (which on F_q2 is plain conjugation, ``u -> -u``);
- cheap multiplication by ``xi`` (4 additions + 2 scalar muls instead of
  a general F_q2 product).

The pairing's Miller loop and final exponentiation run entirely on these
primitives; see ``docs/pairing.md`` for how they assemble.
"""

from __future__ import annotations

from repro.curve.fq import (
    FQ2_ONE,
    FQ2_ZERO,
    Fq2,
    Q,
    fq2_add,
    fq2_batch_inverse,
    fq2_eq,
    fq2_inv,
    fq2_is_zero,
    fq2_mul,
    fq2_neg,
    fq2_pow,
    fq2_scalar,
    fq2_square,
    fq2_sub,
)

#: The sextic non-residue xi = 9 + u: F_q6 = F_q2[v]/(v^3 - xi) and
#: F_q12 = F_q6[w]/(w^2 - v), equivalently w^6 = xi.
XI: Fq2 = (9, 1)


def fq2_conjugate(a: Fq2) -> Fq2:
    """The non-trivial F_q-automorphism ``a0 + a1*u -> a0 - a1*u``."""
    return (a[0], -a[1] % Q)


def fq2_frobenius(a: Fq2, power: int = 1) -> Fq2:
    """``a^(q^power)``: conjugation for odd powers, identity for even."""
    if power % 2:
        return (a[0], -a[1] % Q)
    return (a[0] % Q, a[1] % Q)


def fq2_mul_by_nonresidue(a: Fq2) -> Fq2:
    """``a * xi`` for ``xi = 9 + u``, expanded to avoid a full product:

    ``(a0 + a1 u)(9 + u) = (9 a0 - a1) + (a0 + 9 a1) u``.
    """
    a0, a1 = a
    return ((9 * a0 - a1) % Q, (a0 + 9 * a1) % Q)


__all__ = [
    "FQ2_ONE",
    "FQ2_ZERO",
    "Fq2",
    "Q",
    "XI",
    "fq2_add",
    "fq2_batch_inverse",
    "fq2_conjugate",
    "fq2_eq",
    "fq2_frobenius",
    "fq2_inv",
    "fq2_is_zero",
    "fq2_mul",
    "fq2_mul_by_nonresidue",
    "fq2_neg",
    "fq2_pow",
    "fq2_scalar",
    "fq2_square",
    "fq2_sub",
]
