"""Reference optimal-ate pairing for BN254 (the frozen seed implementation).

This is the affine, dense-F_q12 pairing the repository grew up with, kept
verbatim as the *oracle* for the fast tower pipeline in
:mod:`repro.curve.pairing`: G2 points are untwisted into the curve over
F_q12, the Miller loop runs with one field inversion per line slope, the
Frobenius is computed as a full ``fq12_pow(x, Q)``, and the final
exponentiation is one ~3000-bit ``fq12_pow``.  Slow — a 2-pairing check
costs ~0.4 s in CPython — but independently simple, which is exactly what
``tests/test_pairing_fast.py`` and ``benchmarks/bench_pairing.py`` need
for equivalence and speedup assertions.

It keeps a private copy of the seed's extended-Euclid F_q12 inversion so
the oracle's behaviour (and its cost baseline) cannot drift when the live
field kernels are optimised.
"""

from __future__ import annotations

from repro.errors import CurveError
from repro.curve.fq import Q
from repro.curve.fq12 import (
    DEGREE,
    FQ12_ONE,
    fq12,
    fq12_eq,
    fq12_mul,
    fq12_neg,
    fq12_scalar,
    fq12_sub,
)
from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.field.fr import MODULUS as R

#: BN parameter-derived Miller loop count (6u + 2 for u = 4965661367192848881).
ATE_LOOP_COUNT = 29793968203157093288
_LOG_ATE = 63

#: Final exponentiation power.
FINAL_EXP = (Q**12 - 1) // R

_MOD_COEFF_6 = 18
_MOD_COEFF_0 = -82

# An F_q12 affine point is a (x, y) pair of 12-tuples; None is infinity.


def _poly_degree(p: list[int]) -> int:
    d = len(p) - 1
    while d >= 0 and p[d] % Q == 0:
        d -= 1
    return d


def _poly_rounded_div(a: list[int], b: list[int]) -> list[int]:
    """Quotient of polynomial division over F_q (py_ecc style)."""
    dega = _poly_degree(a)
    degb = _poly_degree(b)
    temp = [x % Q for x in a]
    out = [0] * len(a)
    lead_inv = pow(b[degb], Q - 2, Q)
    for i in range(dega - degb, -1, -1):
        out[i] = (out[i] + temp[degb + i] * lead_inv) % Q
        for c in range(degb + 1):
            temp[c + i] = (temp[c + i] - out[i] * b[c]) % Q
    return out[: _poly_degree(out) + 1] or [0]


def fq12_inv_euclid(a: tuple) -> tuple:
    """The seed's F_q12 inverse: extended Euclid on polynomials."""
    lm: list[int] = [1] + [0] * DEGREE
    hm: list[int] = [0] * (DEGREE + 1)
    low: list[int] = [c % Q for c in a] + [0]
    # Modulus polynomial m(w) = w^12 - 18 w^6 + 82 (note: the *negatives* of
    # the reduction rule w^12 = 18 w^6 - 82).
    high: list[int] = (
        [(-_MOD_COEFF_0) % Q] + [0] * 5 + [(-_MOD_COEFF_6) % Q] + [0] * 5 + [1]
    )
    while _poly_degree(low) > 0:
        r = _poly_rounded_div(high, low)
        r += [0] * (DEGREE + 1 - len(r))
        nm = list(hm)
        new = list(high)
        for i in range(DEGREE + 1):
            li = lm[i]
            lo = low[i]
            if li == 0 and lo == 0:
                continue
            for j in range(DEGREE + 1 - i):
                rj = r[j]
                if rj:
                    nm[i + j] = (nm[i + j] - li * rj) % Q
                    new[i + j] = (new[i + j] - lo * rj) % Q
        lm, low, hm, high = nm, new, lm, low
    c0_inv = pow(low[0], Q - 2, Q)
    return tuple(lm[i] * c0_inv % Q for i in range(DEGREE))


def _fq12_pow_dense(a: tuple, e: int) -> tuple:
    """Square-and-multiply entirely on dense schoolbook products."""
    result = FQ12_ONE
    base = a
    while e:
        if e & 1:
            result = fq12_mul(result, base)
        base = fq12_mul(base, base)
        e >>= 1
    return result


def _twist(pt: G2) -> tuple | None:
    """Untwist a G2 point into the curve over F_q12."""
    if pt.inf:
        return None
    x0, x1 = pt.x
    y0, y1 = pt.y
    # Map (a0 + a1*u) to the Fq12 polynomial basis: coefficients at w^0 and
    # w^6 (since w^6 = 9 + u), then shift by w^2 / w^3.
    xc = fq12([(x0 - 9 * x1) % Q] + [0] * 5 + [x1 % Q])
    yc = fq12([(y0 - 9 * y1) % Q] + [0] * 5 + [y1 % Q])
    w2 = fq12([0, 0, 1])
    w3 = fq12([0, 0, 0, 1])
    return (fq12_mul(xc, w2), fq12_mul(yc, w3))


def _cast_g1(pt: G1) -> tuple | None:
    if pt.inf:
        return None
    return (fq12([pt.x]), fq12([pt.y]))


def _pt_double(p: tuple) -> tuple | None:
    x, y = p
    if all(c == 0 for c in y):
        return None
    m = fq12_mul(fq12_scalar(fq12_mul(x, x), 3), fq12_inv_euclid(fq12_scalar(y, 2)))
    x3 = fq12_sub(fq12_mul(m, m), fq12_scalar(x, 2))
    y3 = fq12_sub(fq12_mul(m, fq12_sub(x, x3)), y)
    return (x3, y3)


def _pt_add(p: tuple | None, q: tuple | None) -> tuple | None:
    if p is None:
        return q
    if q is None:
        return p
    x1, y1 = p
    x2, y2 = q
    if fq12_eq(x1, x2):
        if fq12_eq(y1, y2):
            return _pt_double(p)
        return None
    m = fq12_mul(fq12_sub(y2, y1), fq12_inv_euclid(fq12_sub(x2, x1)))
    x3 = fq12_sub(fq12_sub(fq12_mul(m, m), x1), x2)
    y3 = fq12_sub(fq12_mul(m, fq12_sub(x1, x3)), y1)
    return (x3, y3)


def _linefunc(p1: tuple, p2: tuple, t: tuple) -> tuple:
    """Evaluate the line through p1, p2 at point t (all over F_q12)."""
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if not fq12_eq(x1, x2):
        m = fq12_mul(fq12_sub(y2, y1), fq12_inv_euclid(fq12_sub(x2, x1)))
        return fq12_sub(fq12_mul(m, fq12_sub(xt, x1)), fq12_sub(yt, y1))
    if fq12_eq(y1, y2):
        m = fq12_mul(
            fq12_scalar(fq12_mul(x1, x1), 3), fq12_inv_euclid(fq12_scalar(y1, 2))
        )
        return fq12_sub(fq12_mul(m, fq12_sub(xt, x1)), fq12_sub(yt, y1))
    return fq12_sub(xt, x1)


def _frobenius_pt(p: tuple) -> tuple:
    """Apply the q-power Frobenius to an F_q12 point (componentwise x^q)."""
    return (_fq12_pow_dense(p[0], Q), _fq12_pow_dense(p[1], Q))


def miller_loop(q_pt: G2, p_pt: G1) -> tuple:
    """Run the Miller loop WITHOUT the final exponentiation."""
    tq = _twist(q_pt)
    tp = _cast_g1(p_pt)
    if tq is None or tp is None:
        return FQ12_ONE
    r_pt: tuple | None = tq
    f = FQ12_ONE
    for i in range(_LOG_ATE, -1, -1):
        f = fq12_mul(fq12_mul(f, f), _linefunc(r_pt, r_pt, tp))
        r_pt = _pt_double(r_pt)
        if ATE_LOOP_COUNT & (1 << i):
            f = fq12_mul(f, _linefunc(r_pt, tq, tp))
            r_pt = _pt_add(r_pt, tq)
    q1 = _frobenius_pt(tq)
    nq2 = _frobenius_pt(q1)
    nq2 = (nq2[0], fq12_neg(nq2[1]))
    f = fq12_mul(f, _linefunc(r_pt, q1, tp))
    r_pt = _pt_add(r_pt, q1)
    f = fq12_mul(f, _linefunc(r_pt, nq2, tp))
    return f


def final_exponentiation(f: tuple) -> tuple:
    """Raise a Miller-loop output to (q^12 - 1)/r."""
    return _fq12_pow_dense(f, FINAL_EXP)


def pairing(p_pt: G1, q_pt: G2) -> tuple:
    """Compute the full pairing e(P, Q) as an F_q12 element."""
    if not isinstance(p_pt, G1) or not isinstance(q_pt, G2):
        raise CurveError("pairing expects (G1, G2)")
    return final_exponentiation(miller_loop(q_pt, p_pt))


def pairing_check(pairs: list[tuple[G1, G2]]) -> bool:
    """Return True iff the product of pairings over ``pairs`` equals one.

    Computes prod_i e(P_i, Q_i) == 1 with a single final exponentiation,
    the standard trick that makes multi-pairing verification ~k times
    cheaper than k separate pairings.
    """
    acc = FQ12_ONE
    for p_pt, q_pt in pairs:
        acc = fq12_mul(acc, miller_loop(q_pt, p_pt))
    return fq12_eq(final_exponentiation(acc), FQ12_ONE)
