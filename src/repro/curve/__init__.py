"""BN254 (alt_bn128) elliptic-curve substrate.

Implements, from scratch, everything the SNARK layers need:

- the base field F_q and its quadratic extension F_q2 (`repro.curve.fq`);
- the degree-12 extension F_q12 used by the pairing (`repro.curve.fq12`);
- the groups G1 (over F_q) and G2 (over F_q2) with Jacobian arithmetic
  (`repro.curve.g1`, `repro.curve.g2`);
- the optimal-ate pairing e: G1 x G2 -> F_q12 (`repro.curve.pairing`);
- Pippenger multi-scalar multiplication (`repro.curve.msm`).

This is the curve the paper's Circom/Snarkjs prototype uses ("BN-128").
"""

from repro.curve.g1 import G1
from repro.curve.g2 import G2
from repro.curve.pairing import PreparedG2, pairing, pairing_check, prepare_g2
from repro.curve.msm import msm_g1, msm_g2

__all__ = [
    "G1",
    "G2",
    "PreparedG2",
    "pairing",
    "pairing_check",
    "prepare_g2",
    "msm_g1",
    "msm_g2",
]
