"""The degree-12 extension field F_q12 used by the BN254 pairing.

Elements are 12-tuples of ints: the coefficients of a polynomial in ``w``
reduced modulo ``w^12 - 18*w^6 + 82`` (the flat representation, equivalent
to the F_q2/F_q6/F_q12 tower with ``w^6 = xi = 9 + u``).  The flat form
keeps generic products in one tight CPython loop; the *tower structure* is
recovered on demand (:func:`fq12_to_tower` / :func:`fq12_from_tower`) for
the kernels where it wins outright:

- :func:`fq12_mul_sparse_013` — multiply by a Miller-loop line, which is
  non-zero only at tower positions ``w^0, w^1, w^3`` (72 base mults
  instead of 144);
- :func:`fq12_square` — Karatsuba on the ``w^6`` split (63 mults);
- :func:`fq12_frobenius` — precomputed ``gamma`` coefficient tables, no
  big exponentiation;
- :func:`fq12_cyclotomic_square` / :func:`fq12_cyclotomic_exp` — the
  Granger-Scott squaring valid in the cyclotomic subgroup, driving the
  final exponentiation's hard part;
- :func:`fq12_inv` — the tower norm chain (one F_q inversion) instead of
  an extended-Euclid polynomial GCD.

Tower coordinate convention: an element is ``sum_j c_j * w^j`` with
``c_j`` in F_q2 and ``u = w^6 - 9``, so flat index ``j`` holds
``c_j[0] - 9*c_j[1]`` and flat index ``j + 6`` holds ``c_j[1]``.
"""

from __future__ import annotations

from repro.errors import FieldError
from repro.curve.fq import Q
from repro.curve.fq2 import (
    XI,
    fq2_add,
    fq2_inv,
    fq2_mul,
    fq2_mul_by_nonresidue,
    fq2_neg,
    fq2_pow,
    fq2_scalar,
    fq2_square,
    fq2_sub,
)

DEGREE = 12

#: w^12 = 18*w^6 - 82, i.e. modulus polynomial coefficients for degrees 0..11.
_MOD_COEFF_6 = 18
_MOD_COEFF_0 = -82

FQ12_ZERO = (0,) * 12
FQ12_ONE = (1,) + (0,) * 11


def fq12(coeffs) -> tuple:
    """Build an F_q12 element from up to 12 coefficients (low degree first)."""
    coeffs = [c % Q for c in coeffs]
    if len(coeffs) > DEGREE:
        raise FieldError("too many coefficients for Fq12")
    return tuple(coeffs + [0] * (DEGREE - len(coeffs)))


def fq12_add(a: tuple, b: tuple) -> tuple:
    return tuple((x + y) % Q for x, y in zip(a, b))


def fq12_sub(a: tuple, b: tuple) -> tuple:
    return tuple((x - y) % Q for x, y in zip(a, b))


def fq12_neg(a: tuple) -> tuple:
    return tuple(-x % Q for x in a)


def fq12_scalar(a: tuple, k: int) -> tuple:
    k %= Q
    return tuple(x * k % Q for x in a)


def _reduce(prod: list) -> tuple:
    """Fold degrees 22..12 down using w^d = 18 w^(d-6) - 82 w^(d-12)."""
    for d in range(22, 11, -1):
        c = prod[d]
        if c:
            prod[d - 6] += _MOD_COEFF_6 * c
            prod[d - 12] += _MOD_COEFF_0 * c
    return tuple(c % Q for c in prod[:12])


def fq12_mul(a: tuple, b: tuple) -> tuple:
    """Schoolbook 12x12 product followed by reduction by w^12 - 18w^6 + 82."""
    prod = [0] * 23
    for i in range(12):
        ai = a[i]
        if ai == 0:
            continue
        for j in range(12):
            bj = b[j]
            if bj:
                prod[i + j] += ai * bj
    return _reduce(prod)


def _square_half(p: tuple) -> list:
    """Square a degree-5 coefficient slice (21 mults, no reduction)."""
    out = [0] * 11
    for i in range(6):
        pi = p[i]
        if pi == 0:
            continue
        out[2 * i] += pi * pi
        for j in range(i + 1, 6):
            pj = p[j]
            if pj:
                out[i + j] += 2 * pi * pj
    return out


def fq12_square(a: tuple) -> tuple:
    """Karatsuba squaring on the ``a = a0 + a1*w^6`` split (63 mults).

    ``a^2 = a0^2 + ((a0+a1)^2 - a0^2 - a1^2) w^6 + a1^2 w^12`` costs three
    degree-5 symmetric squarings instead of the 144-mult dense product.
    """
    a0 = a[:6]
    a1 = a[6:]
    s0 = _square_half(a0)
    s1 = _square_half(a1)
    s01 = _square_half(tuple(x + y for x, y in zip(a0, a1)))
    prod = [0] * 23
    for i in range(11):
        si0 = s0[i]
        si1 = s1[i]
        prod[i] += si0
        prod[i + 6] += s01[i] - si0 - si1
        prod[i + 12] += si1
    return _reduce(prod)


def fq12_mul_sparse_013(a: tuple, e0: tuple, e1: tuple, e3: tuple) -> tuple:
    """Multiply ``a`` by the sparse element ``e0 + e1*w + e3*w^3``.

    ``e0, e1, e3`` are F_q2 tower coefficients — exactly the shape of a
    Miller-loop line evaluation (see :mod:`repro.curve.pairing`).  The
    sparse operand has six non-zero flat coefficients, so the product
    costs 72 base-field mults instead of the dense 144.
    """
    prod = [0] * 23
    for j, (c0, c1) in ((0, e0), (1, e1), (3, e3)):
        lo = (c0 - 9 * c1) % Q
        if lo:
            for i in range(12):
                ai = a[i]
                if ai:
                    prod[i + j] += ai * lo
        hi = c1 % Q
        if hi:
            jh = j + 6
            for i in range(12):
                ai = a[i]
                if ai:
                    prod[i + jh] += ai * hi
    return _reduce(prod)


def fq12_pow(a: tuple, e: int) -> tuple:
    if e < 0:
        a = fq12_inv(a)
        e = -e
    result = FQ12_ONE
    base = a
    while e:
        if e & 1:
            result = fq12_mul(result, base)
        base = fq12_square(base)
        e >>= 1
    return result


# ----- tower views ---------------------------------------------------------


def fq12_to_tower(a: tuple) -> list:
    """The six F_q2 tower coefficients ``c_j`` of ``sum_j c_j w^j``."""
    return [((a[j] + 9 * a[j + 6]) % Q, a[j + 6]) for j in range(6)]


def fq12_from_tower(coeffs: list) -> tuple:
    """Inverse of :func:`fq12_to_tower`."""
    out = [0] * 12
    for j, (c0, c1) in enumerate(coeffs):
        out[j] = (c0 - 9 * c1) % Q
        out[j + 6] = c1 % Q
    return tuple(out)


def fq12_conjugate(a: tuple) -> tuple:
    """``a^(q^6)``: negate the odd-degree coefficients.

    In the cyclotomic subgroup (any Miller output after the easy part of
    the final exponentiation) this *is* the inverse, which is why the
    hard part never needs a real inversion.
    """
    return tuple(a[i] % Q if i % 2 == 0 else -a[i] % Q for i in range(12))


# Frobenius gamma tables: (w^j)^(q^i) = conj^i(w^j) * xi^(j*(q^i-1)/6) * w^j,
# so pi^i acts coefficientwise as c_j -> conj^i(c_j) * _FROB_GAMMA[i-1][j].
# Computed once at import (three fq2_pow calls per table).
_FROB_GAMMA = tuple(
    tuple(fq2_pow(XI, j * ((Q**i - 1) // 6)) for j in range(6)) for i in (1, 2, 3)
)


def fq12_frobenius(a: tuple, power: int = 1) -> tuple:
    """``a^(q^power)`` for ``power`` in {1, 2, 3} via the gamma tables."""
    if power not in (1, 2, 3):
        raise FieldError("fq12_frobenius supports powers 1..3, got %r" % (power,))
    gammas = _FROB_GAMMA[power - 1]
    odd = power % 2
    coeffs = fq12_to_tower(a)
    out = []
    for j, c in enumerate(coeffs):
        if odd:
            c = (c[0], -c[1] % Q)
        out.append(fq2_mul(c, gammas[j]))
    return fq12_from_tower(out)


# ----- cyclotomic subgroup kernels ----------------------------------------


def _fp4_square(a: tuple, b: tuple) -> tuple:
    """Squaring in F_q4 = F_q2[y]/(y^2 - xi), used by Granger-Scott."""
    t0 = fq2_square(a)
    t1 = fq2_square(b)
    c0 = fq2_add(fq2_mul_by_nonresidue(t1), t0)
    c1 = fq2_sub(fq2_sub(fq2_square(fq2_add(a, b)), t0), t1)
    return c0, c1


def fq12_cyclotomic_square(a: tuple) -> tuple:
    """Granger-Scott squaring, valid when ``a^(q^6+1) = 1``.

    Three F_q4 squarings (18 F_q2 mult-equivalents) instead of a generic
    F_q12 squaring; only correct inside the cyclotomic subgroup, which is
    where the final exponentiation's hard part lives.
    """
    # Granger-Scott variable naming over the tower coefficients c_j at
    # w^j: the three F_q4 pairs are (z0, z1) = (c_0, c_3),
    # (z2, z3) = (c_1, c_4) and (z4, z5) = (c_2, c_5).
    c = fq12_to_tower(a)
    z0, z2, z4 = c[0], c[1], c[2]
    z1, z3, z5 = c[3], c[4], c[5]
    t0, t1 = _fp4_square(z0, z1)
    z0 = fq2_add(fq2_scalar(fq2_sub(t0, z0), 2), t0)
    z1 = fq2_add(fq2_scalar(fq2_add(t1, z1), 2), t1)
    t0, t1 = _fp4_square(z2, z3)
    t2, t3 = _fp4_square(z4, z5)
    z4 = fq2_add(fq2_scalar(fq2_sub(t0, z4), 2), t0)
    z5 = fq2_add(fq2_scalar(fq2_add(t1, z5), 2), t1)
    t0 = fq2_mul_by_nonresidue(t3)
    z2 = fq2_add(fq2_scalar(fq2_add(t0, z2), 2), t0)
    z3 = fq2_add(fq2_scalar(fq2_sub(t2, z3), 2), t2)
    return fq12_from_tower([z0, z2, z4, z1, z3, z5])


def fq12_cyclotomic_exp(a: tuple, e: int) -> tuple:
    """``a^e`` with cyclotomic squarings (``a`` must be cyclotomic).

    Negative exponents use conjugation as inversion, which is exact in
    the cyclotomic subgroup.
    """
    if e == 0:
        return FQ12_ONE
    if e < 0:
        a = fq12_conjugate(a)
        e = -e
    result = a
    for bit in bin(e)[3:]:
        result = fq12_cyclotomic_square(result)
        if bit == "1":
            result = fq12_mul(result, a)
    return result


# ----- F_q6 helpers for the tower inversion --------------------------------


def _fq6_mul(a: tuple, b: tuple) -> tuple:
    """Toom-style F_q6 product on (c0, c1, c2) triples over F_q2."""
    a0, a1, a2 = a
    b0, b1, b2 = b
    v0 = fq2_mul(a0, b0)
    v1 = fq2_mul(a1, b1)
    v2 = fq2_mul(a2, b2)
    c0 = fq2_add(
        v0,
        fq2_mul_by_nonresidue(
            fq2_sub(fq2_sub(fq2_mul(fq2_add(a1, a2), fq2_add(b1, b2)), v1), v2)
        ),
    )
    c1 = fq2_add(
        fq2_sub(fq2_sub(fq2_mul(fq2_add(a0, a1), fq2_add(b0, b1)), v0), v1),
        fq2_mul_by_nonresidue(v2),
    )
    c2 = fq2_add(
        fq2_sub(fq2_sub(fq2_mul(fq2_add(a0, a2), fq2_add(b0, b2)), v0), v2), v1
    )
    return (c0, c1, c2)


def _fq6_inv(a: tuple) -> tuple:
    """F_q6 inversion by the norm-like chain (one F_q2 inversion)."""
    a0, a1, a2 = a
    c0 = fq2_sub(fq2_square(a0), fq2_mul_by_nonresidue(fq2_mul(a1, a2)))
    c1 = fq2_sub(fq2_mul_by_nonresidue(fq2_square(a2)), fq2_mul(a0, a1))
    c2 = fq2_sub(fq2_square(a1), fq2_mul(a0, a2))
    t = fq2_add(
        fq2_mul(a0, c0),
        fq2_mul_by_nonresidue(fq2_add(fq2_mul(a2, c1), fq2_mul(a1, c2))),
    )
    tinv = fq2_inv(t)
    return (fq2_mul(c0, tinv), fq2_mul(c1, tinv), fq2_mul(c2, tinv))


def _fq6_mul_by_v(a: tuple) -> tuple:
    """Multiply an F_q6 element by ``v`` (``v^3 = xi``)."""
    return (fq2_mul_by_nonresidue(a[2]), a[0], a[1])


def fq12_inv(a: tuple) -> tuple:
    """Inversion via the tower norm chain.

    Writing ``a = c0 + c1*w`` over F_q6 (``w^2 = v``), the inverse is
    ``(c0 - c1*w) / (c0^2 - v*c1^2)`` — two F_q6 products, one F_q6
    inversion and ultimately a single F_q inversion, replacing the
    seed's extended-Euclid polynomial GCD (kept for the reference oracle
    in :mod:`repro.curve.pairing_ref`).
    """
    if all(c % Q == 0 for c in a):
        raise FieldError("inverse of zero in Fq12")
    t = fq12_to_tower(a)
    c0 = (t[0], t[2], t[4])
    c1 = (t[1], t[3], t[5])
    c0sq = _fq6_mul(c0, c0)
    c1sq = _fq6_mul(c1, c1)
    norm = tuple(fq2_sub(x, y) for x, y in zip(c0sq, _fq6_mul_by_v(c1sq)))
    ninv = _fq6_inv(norm)
    r0 = _fq6_mul(c0, ninv)
    r1 = _fq6_mul(c1, ninv)
    return fq12_from_tower(
        [r0[0], fq2_neg(r1[0]), r0[1], fq2_neg(r1[1]), r0[2], fq2_neg(r1[2])]
    )


def fq12_eq(a: tuple, b: tuple) -> bool:
    return all(x % Q == y % Q for x, y in zip(a, b))
