"""The degree-12 extension field F_q12 used by the BN254 pairing.

Elements are 12-tuples of ints: the coefficients of a polynomial in ``w``
reduced modulo ``w^12 - 18*w^6 + 82`` (the standard flat representation,
equivalent to the Fq2/Fq6/Fq12 tower with w^6 = 9 + u).  Keeping flat
int-tuples instead of nested objects makes multiplication roughly an order
of magnitude faster in CPython, which dominates pairing time.
"""

from __future__ import annotations

from repro.errors import FieldError
from repro.curve.fq import Q

DEGREE = 12

#: w^12 = 18*w^6 - 82, i.e. modulus polynomial coefficients for degrees 0..11.
_MOD_COEFF_6 = 18
_MOD_COEFF_0 = -82

FQ12_ZERO = (0,) * 12
FQ12_ONE = (1,) + (0,) * 11


def fq12(coeffs) -> tuple:
    """Build an F_q12 element from up to 12 coefficients (low degree first)."""
    coeffs = [c % Q for c in coeffs]
    if len(coeffs) > DEGREE:
        raise FieldError("too many coefficients for Fq12")
    return tuple(coeffs + [0] * (DEGREE - len(coeffs)))


def fq12_add(a: tuple, b: tuple) -> tuple:
    return tuple((x + y) % Q for x, y in zip(a, b))


def fq12_sub(a: tuple, b: tuple) -> tuple:
    return tuple((x - y) % Q for x, y in zip(a, b))


def fq12_neg(a: tuple) -> tuple:
    return tuple(-x % Q for x in a)


def fq12_scalar(a: tuple, k: int) -> tuple:
    k %= Q
    return tuple(x * k % Q for x in a)


def fq12_mul(a: tuple, b: tuple) -> tuple:
    """Schoolbook 12x12 product followed by reduction by w^12 - 18w^6 + 82."""
    prod = [0] * 23
    for i in range(12):
        ai = a[i]
        if ai == 0:
            continue
        for j in range(12):
            bj = b[j]
            if bj:
                prod[i + j] += ai * bj
    # Reduce degrees 22..12 using w^d = 18 w^(d-6) - 82 w^(d-12).
    for d in range(22, 11, -1):
        c = prod[d]
        if c:
            prod[d - 6] += _MOD_COEFF_6 * c
            prod[d - 12] += _MOD_COEFF_0 * c
            prod[d] = 0
    return tuple(c % Q for c in prod[:12])


def fq12_square(a: tuple) -> tuple:
    return fq12_mul(a, a)


def fq12_pow(a: tuple, e: int) -> tuple:
    if e < 0:
        a = fq12_inv(a)
        e = -e
    result = FQ12_ONE
    base = a
    while e:
        if e & 1:
            result = fq12_mul(result, base)
        base = fq12_mul(base, base)
        e >>= 1
    return result


def _poly_degree(p: list[int]) -> int:
    d = len(p) - 1
    while d >= 0 and p[d] % Q == 0:
        d -= 1
    return d


def _poly_rounded_div(a: list[int], b: list[int]) -> list[int]:
    """Quotient of polynomial division over F_q (py_ecc style)."""
    dega = _poly_degree(a)
    degb = _poly_degree(b)
    temp = [x % Q for x in a]
    out = [0] * len(a)
    lead_inv = pow(b[degb], Q - 2, Q)
    for i in range(dega - degb, -1, -1):
        out[i] = (out[i] + temp[degb + i] * lead_inv) % Q
        for c in range(degb + 1):
            temp[c + i] = (temp[c + i] - out[i] * b[c]) % Q
    return out[: _poly_degree(out) + 1] or [0]


def fq12_inv(a: tuple) -> tuple:
    """Inverse via the extended Euclidean algorithm on polynomials."""
    if all(c % Q == 0 for c in a):
        raise FieldError("inverse of zero in Fq12")
    lm: list[int] = [1] + [0] * DEGREE
    hm: list[int] = [0] * (DEGREE + 1)
    low: list[int] = [c % Q for c in a] + [0]
    # Modulus polynomial m(w) = w^12 - 18 w^6 + 82 (note: the *negatives* of
    # the reduction rule w^12 = 18 w^6 - 82).
    high: list[int] = [(-_MOD_COEFF_0) % Q] + [0] * 5 + [(-_MOD_COEFF_6) % Q] + [0] * 5 + [1]
    while _poly_degree(low) > 0:
        r = _poly_rounded_div(high, low)
        r += [0] * (DEGREE + 1 - len(r))
        nm = list(hm)
        new = list(high)
        for i in range(DEGREE + 1):
            li = lm[i]
            lo = low[i]
            if li == 0 and lo == 0:
                continue
            for j in range(DEGREE + 1 - i):
                rj = r[j]
                if rj:
                    nm[i + j] = (nm[i + j] - li * rj) % Q
                    new[i + j] = (new[i + j] - lo * rj) % Q
        lm, low, hm, high = nm, new, lm, low
    c0_inv = pow(low[0], Q - 2, Q)
    return tuple(lm[i] * c0_inv % Q for i in range(DEGREE))


def fq12_eq(a: tuple, b: tuple) -> bool:
    return all(x % Q == y % Q for x, y in zip(a, b))
