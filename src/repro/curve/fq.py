"""The BN254 base field F_q and its quadratic extension F_q2.

F_q2 = F_q[u] / (u^2 + 1) is represented as a plain ``(a0, a1)`` tuple of
ints meaning ``a0 + a1*u``.  Module-level functions (rather than classes)
keep CPython overhead out of the pairing hot path.
"""

from __future__ import annotations

from repro.errors import FieldError

#: The BN254 base-field modulus q.
Q = 21888242871839275222246405745257275088696311157297823662689037894645226208583

#: The curve coefficient: E/F_q : y^2 = x^3 + 3.
B = 3

Fq2 = tuple  # alias for readability in signatures: (a0, a1)

FQ2_ZERO: Fq2 = (0, 0)
FQ2_ONE: Fq2 = (1, 0)


def fq_inv(a: int) -> int:
    """Inverse in F_q."""
    a %= Q
    if a == 0:
        raise FieldError("inverse of zero in Fq")
    return pow(a, Q - 2, Q)


def fq_batch_inverse(values: list[int]) -> list[int]:
    """Invert many F_q elements with a single modular inversion.

    Montgomery's trick, mirroring :func:`repro.field.fr.batch_inverse` but
    over the base field.  Used to normalise whole batches of Jacobian
    points to affine form with one inversion instead of one per point.
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(values):
        v %= Q
        if v == 0:
            raise FieldError("batch inverse of zero in Fq at index %d" % i)
        prefix[i] = acc
        acc = acc * v % Q
    acc_inv = fq_inv(acc)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = acc_inv * prefix[i] % Q
        acc_inv = acc_inv * values[i] % Q
    return out


def fq2_add(a: Fq2, b: Fq2) -> Fq2:
    return ((a[0] + b[0]) % Q, (a[1] + b[1]) % Q)


def fq2_sub(a: Fq2, b: Fq2) -> Fq2:
    return ((a[0] - b[0]) % Q, (a[1] - b[1]) % Q)


def fq2_neg(a: Fq2) -> Fq2:
    return (-a[0] % Q, -a[1] % Q)


def fq2_mul(a: Fq2, b: Fq2) -> Fq2:
    a0, a1 = a
    b0, b1 = b
    return ((a0 * b0 - a1 * b1) % Q, (a0 * b1 + a1 * b0) % Q)


def fq2_square(a: Fq2) -> Fq2:
    a0, a1 = a
    return ((a0 + a1) * (a0 - a1) % Q, 2 * a0 * a1 % Q)


def fq2_scalar(a: Fq2, k: int) -> Fq2:
    return (a[0] * k % Q, a[1] * k % Q)


def fq2_inv(a: Fq2) -> Fq2:
    a0, a1 = a
    norm = (a0 * a0 + a1 * a1) % Q
    if norm == 0:
        raise FieldError("inverse of zero in Fq2")
    ninv = fq_inv(norm)
    return (a0 * ninv % Q, -a1 * ninv % Q)


def fq2_batch_inverse(values: list[Fq2]) -> list[Fq2]:
    """Invert many F_q2 elements with a single F_q inversion.

    Montgomery's trick over the extension field; the one true inversion
    happens inside :func:`fq2_inv` of the running product.
    """
    n = len(values)
    if n == 0:
        return []
    prefix: list[Fq2] = [FQ2_ONE] * n
    acc = FQ2_ONE
    for i, v in enumerate(values):
        if fq2_is_zero(v):
            raise FieldError("batch inverse of zero in Fq2 at index %d" % i)
        prefix[i] = acc
        acc = fq2_mul(acc, v)
    acc_inv = fq2_inv(acc)
    out: list[Fq2] = [FQ2_ONE] * n
    for i in range(n - 1, -1, -1):
        out[i] = fq2_mul(acc_inv, prefix[i])
        acc_inv = fq2_mul(acc_inv, values[i])
    return out


def fq2_pow(a: Fq2, e: int) -> Fq2:
    result = FQ2_ONE
    base = a
    while e:
        if e & 1:
            result = fq2_mul(result, base)
        base = fq2_square(base)
        e >>= 1
    return result


def fq2_eq(a: Fq2, b: Fq2) -> bool:
    return a[0] % Q == b[0] % Q and a[1] % Q == b[1] % Q


def fq2_is_zero(a: Fq2) -> bool:
    return a[0] % Q == 0 and a[1] % Q == 0
