"""Fast optimal-ate pairing e: G1 x G2 -> F_q12 for BN254.

The standard fast pipeline, replacing the affine dense-F_q12 loop kept in
:mod:`repro.curve.pairing_ref`:

- **Projective Miller loop over F_q2.**  The G2 point walks the ate loop
  in homogeneous projective coordinates on the *twist* with explicit
  doubling/addition line formulas — zero field inversions in the loop.
- **Sparse line accumulation.**  A line evaluated at P in G1 is
  ``l = c0*yP + c1*xP*w + c2*w^3`` — non-zero only at tower positions
  (0, 1, 3) — and is folded into the accumulator with
  :func:`repro.curve.fq12.fq12_mul_sparse_013` (72 base mults) while the
  accumulator squaring uses the 63-mult Karatsuba split.
- **Frobenius via gamma tables.**  The two loop-closing additions use
  the twisted q-power endomorphism computed with two precomputed F_q2
  constants, not a 254-bit ``fq12_pow``.
- **Cyclotomic final exponentiation.**  The exponent (q^12-1)/r splits
  into the easy part (q^6-1)(q^2+1) — conjugate, one inversion, one
  Frobenius — and the hard part (q^4-q^2+1)/r evaluated by the
  Devegili-Scott-Dahab addition chain driven by the BN parameter ``u``
  with Granger-Scott cyclotomic squarings.
- **Prepared G2.**  :func:`prepare_g2` caches the line-coefficient
  sequence of a fixed G2 point (SRS ``[1]_2``/``[tau]_2``, Groth16
  ``beta/gamma/delta``), so repeated verifications pay only the G1-side
  evaluation.  The backend engine keeps a ``prepared_g2`` cache and
  exposes the whole product check as its ``pairing_check`` kernel.

The raw Miller output differs from the reference oracle's by an F_q2
scaling factor per line (projective vs affine normalisation), which the
final exponentiation annihilates — full pairings agree bit-for-bit, and
``tests/test_pairing_fast.py`` asserts it.

:func:`pairing_check` verifies products of pairings with a *single* final
exponentiation, which is what the Plonk and Groth16 verifiers use.
"""

from __future__ import annotations

from repro.errors import CurveError
from repro.curve.fq import Q
from repro.curve.fq2 import (
    FQ2_ONE,
    XI,
    fq2_add,
    fq2_conjugate,
    fq2_mul,
    fq2_neg,
    fq2_pow,
    fq2_scalar,
    fq2_square,
    fq2_sub,
)
from repro.curve.fq12 import (
    FQ12_ONE,
    fq12_conjugate,
    fq12_cyclotomic_exp,
    fq12_cyclotomic_square,
    fq12_eq,
    fq12_frobenius,
    fq12_inv,
    fq12_mul,
    fq12_mul_sparse_013,
    fq12_square,
)
from repro.curve.g1 import G1
from repro.curve.g2 import B2, G2
from repro.field.fr import MODULUS as R

#: The BN curve parameter u: q and r are quartics in u, the ate loop runs
#: over 6u + 2 and the final exponentiation's hard part is a chain in u.
BN_U = 4965661367192848881

#: BN parameter-derived Miller loop count (6u + 2).
ATE_LOOP_COUNT = 29793968203157093288
_LOG_ATE = 63

#: Final exponentiation power (what the fast decomposition evaluates).
FINAL_EXP = (Q**12 - 1) // R

_TWO_INV = (Q + 1) // 2

#: Twisted q-power endomorphism constants: for Q' = (x, y) on the twist,
#: pi(Q') = (conj(x) * xi^((q-1)/3), conj(y) * xi^((q-1)/2)).
_TWIST_FROB_X = fq2_pow(XI, (Q - 1) // 3)
_TWIST_FROB_Y = fq2_pow(XI, (Q - 1) // 2)

#: 3 * b' for the twist curve, used by the projective doubling step.
_B2_3 = fq2_scalar(B2, 3)


class PreparedG2:
    """The full line-coefficient sequence of one G2 point's Miller loop.

    Each entry ``(c0, c1, c2)`` is a triple of F_q2 coefficients; the
    line evaluated at P = (xP, yP) in G1 is the 013-sparse element
    ``c0*yP + c1*xP*w + c2*w^3``.  Preparing costs the whole G2-side
    loop (projective doublings/additions in F_q2); evaluating is two
    F_q2-by-F_q scalings per line.
    """

    __slots__ = ("coeffs", "inf")

    def __init__(self, coeffs: tuple, inf: bool):
        self.coeffs = coeffs
        self.inf = inf

    def __repr__(self) -> str:  # pragma: no cover
        return "PreparedG2(inf)" if self.inf else "PreparedG2(%d lines)" % len(self.coeffs)


def _double_step(x, y, z):
    """Projective doubling with tangent-line extraction (Costello et al.).

    Returns the doubled point and the line triple ``(-h, 3*x^2, e - b)``.
    """
    a = fq2_scalar(fq2_mul(x, y), _TWO_INV)
    b = fq2_square(y)
    c = fq2_square(z)
    e = fq2_mul(_B2_3, c)
    f = fq2_scalar(e, 3)
    g = fq2_scalar(fq2_add(b, f), _TWO_INV)
    h = fq2_sub(fq2_square(fq2_add(y, z)), fq2_add(b, c))
    i = fq2_sub(e, b)
    j = fq2_square(x)
    e2 = fq2_square(e)
    x3 = fq2_mul(a, fq2_sub(b, f))
    y3 = fq2_sub(fq2_square(g), fq2_scalar(e2, 3))
    z3 = fq2_mul(b, h)
    return x3, y3, z3, (fq2_neg(h), fq2_scalar(j, 3), i)


def _add_step(x, y, z, qx, qy):
    """Mixed projective addition R += Q with chord-line extraction."""
    theta = fq2_sub(y, fq2_mul(qy, z))
    lam = fq2_sub(x, fq2_mul(qx, z))
    c = fq2_square(theta)
    d = fq2_square(lam)
    e = fq2_mul(lam, d)
    f = fq2_mul(z, c)
    g = fq2_mul(x, d)
    h = fq2_add(e, fq2_sub(f, fq2_scalar(g, 2)))
    x3 = fq2_mul(lam, h)
    y3 = fq2_sub(fq2_mul(theta, fq2_sub(g, h)), fq2_mul(e, y))
    z3 = fq2_mul(z, e)
    j = fq2_sub(fq2_mul(theta, qx), fq2_mul(lam, qy))
    return x3, y3, z3, (lam, fq2_neg(theta), j)


def _mul_by_char(qx, qy):
    """The q-power Frobenius endomorphism in twist coordinates."""
    return (
        fq2_mul(fq2_conjugate(qx), _TWIST_FROB_X),
        fq2_mul(fq2_conjugate(qy), _TWIST_FROB_Y),
    )


def prepare_g2(q_pt: G2) -> PreparedG2:
    """Precompute the Miller-loop line coefficients for a G2 point.

    Runs the whole G2-side ate loop once: 64 doubling steps, one addition
    per set bit of 6u+2, plus the two Frobenius-twisted closing
    additions.  The result depends only on Q, so fixed verification-key
    points amortise it across every subsequent pairing (the backend
    engine's ``prepared_g2`` cache does exactly that).
    """
    if not isinstance(q_pt, G2):
        raise CurveError("prepare_g2 expects a G2 point")
    if q_pt.inf:
        return PreparedG2((), True)
    qx, qy = q_pt.x, q_pt.y
    coeffs = []
    x, y, z = qx, qy, FQ2_ONE
    # 6u+2 has 65 bits; the top bit is absorbed by starting at R = Q, the
    # remaining 64 drive one doubling (and maybe one addition) each.
    for i in range(_LOG_ATE, -1, -1):
        x, y, z, line = _double_step(x, y, z)
        coeffs.append(line)
        if ATE_LOOP_COUNT & (1 << i):
            x, y, z, line = _add_step(x, y, z, qx, qy)
            coeffs.append(line)
    q1 = _mul_by_char(qx, qy)
    q2x, q2y = _mul_by_char(*q1)
    q2 = (q2x, fq2_neg(q2y))
    x, y, z, line = _add_step(x, y, z, *q1)
    coeffs.append(line)
    _, _, _, line = _add_step(x, y, z, *q2)
    coeffs.append(line)
    return PreparedG2(tuple(coeffs), False)


def miller_loop_prepared(prep: PreparedG2, p_pt: G1) -> tuple:
    """Evaluate a prepared Miller loop at a G1 point (no final exp).

    Only the G1-side work remains: per line two F_q2-by-F_q scalings and
    one sparse accumulator product, plus one Karatsuba squaring per loop
    iteration.
    """
    if prep.inf or p_pt.inf:
        return FQ12_ONE
    px, py = p_pt.x, p_pt.y
    coeffs = prep.coeffs
    idx = 0
    f = FQ12_ONE
    for i in range(_LOG_ATE, -1, -1):
        f = fq12_square(f)
        c0, c1, c2 = coeffs[idx]
        idx += 1
        f = fq12_mul_sparse_013(f, fq2_scalar(c0, py), fq2_scalar(c1, px), c2)
        if ATE_LOOP_COUNT & (1 << i):
            c0, c1, c2 = coeffs[idx]
            idx += 1
            f = fq12_mul_sparse_013(f, fq2_scalar(c0, py), fq2_scalar(c1, px), c2)
    for c0, c1, c2 in coeffs[idx:]:
        f = fq12_mul_sparse_013(f, fq2_scalar(c0, py), fq2_scalar(c1, px), c2)
    return f


def miller_loop(q_pt: G2, p_pt: G1) -> tuple:
    """Run the Miller loop WITHOUT the final exponentiation."""
    return miller_loop_prepared(prepare_g2(q_pt), p_pt)


def final_exponentiation(f: tuple) -> tuple:
    """Raise a Miller-loop output to (q^12 - 1)/r, decomposed.

    Easy part ``(q^6-1)(q^2+1)``: one conjugation, one (tower) inversion
    and one Frobenius.  Hard part ``(q^4-q^2+1)/r``: the
    Devegili-Scott-Dahab chain — three cyclotomic exponentiations by the
    BN parameter u, a handful of Frobenius maps and multiplications, and
    conjugation standing in for inversion.  Evaluates the *exact* same
    exponent as ``fq12_pow(f, FINAL_EXP)``.
    """
    # Easy part: f <- f^((q^6 - 1)(q^2 + 1)).
    f = fq12_mul(fq12_conjugate(f), fq12_inv(f))
    f = fq12_mul(fq12_frobenius(f, 2), f)
    # Hard part (Devegili et al., "Implementing cryptographic pairings
    # over Barreto-Naehrig curves"): everything below lives in the
    # cyclotomic subgroup, so conjugation is inversion and squarings are
    # Granger-Scott.
    fu = fq12_cyclotomic_exp(f, BN_U)
    fu2 = fq12_cyclotomic_exp(fu, BN_U)
    fu3 = fq12_cyclotomic_exp(fu2, BN_U)
    y0 = fq12_mul(
        fq12_mul(fq12_frobenius(f, 1), fq12_frobenius(f, 2)), fq12_frobenius(f, 3)
    )
    y1 = fq12_conjugate(f)
    y2 = fq12_frobenius(fu2, 2)
    y3 = fq12_conjugate(fq12_frobenius(fu, 1))
    y4 = fq12_conjugate(fq12_mul(fu, fq12_frobenius(fu2, 1)))
    y5 = fq12_conjugate(fu2)
    y6 = fq12_conjugate(fq12_mul(fu3, fq12_frobenius(fu3, 1)))
    t0 = fq12_mul(fq12_mul(fq12_cyclotomic_square(y6), y4), y5)
    t1 = fq12_mul(fq12_mul(y3, y5), t0)
    t0 = fq12_mul(t0, y2)
    t1 = fq12_cyclotomic_square(fq12_mul(fq12_cyclotomic_square(t1), t0))
    t0 = fq12_mul(t1, y1)
    t1 = fq12_mul(t1, y0)
    t0 = fq12_cyclotomic_square(t0)
    return fq12_mul(t1, t0)


def pairing(p_pt: G1, q_pt: G2) -> tuple:
    """Compute the full pairing e(P, Q) as an F_q12 element."""
    if not isinstance(p_pt, G1) or not isinstance(q_pt, G2):
        raise CurveError("pairing expects (G1, G2)")
    return final_exponentiation(miller_loop(q_pt, p_pt))


def multi_miller_loop(pairs: list) -> tuple:
    """Product of Miller loops over ``(G1, PreparedG2 | G2)`` pairs."""
    acc = FQ12_ONE
    for p_pt, q_pt in pairs:
        prep = q_pt if isinstance(q_pt, PreparedG2) else prepare_g2(q_pt)
        ml = miller_loop_prepared(prep, p_pt)
        if ml is not FQ12_ONE:
            acc = fq12_mul(acc, ml) if acc is not FQ12_ONE else ml
    return acc


def pairing_check(pairs: list, target: tuple = FQ12_ONE) -> bool:
    """Return True iff the product of pairings over ``pairs`` equals target.

    Computes prod_i e(P_i, Q_i) == target with a single final
    exponentiation, the standard trick that makes multi-pairing
    verification ~k times cheaper than k separate pairings.  Each Q_i may
    be a :class:`PreparedG2` to skip the G2-side loop; ``target`` lets
    callers fold precomputed GT constants (e.g. Groth16's e(alpha, beta))
    out of the product.
    """
    return fq12_eq(final_exponentiation(multi_miller_loop(pairs)), target)
