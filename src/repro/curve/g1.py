"""The group G1 of BN254: points on y^2 = x^3 + 3 over F_q.

Hot-path arithmetic (MSM, scalar multiplication) runs on Jacobian
coordinate triples of plain ints; the :class:`G1` class wraps affine points
for protocol-level code and (de)serialisation.
"""

from __future__ import annotations

from repro import substrate
from repro.errors import CurveError
from repro.curve.fq import B, Q, fq_batch_inverse, fq_inv
from repro.field.fr import MODULUS as R

#: Jacobian point-at-infinity sentinel.
JAC_INF = (1, 1, 0)

#: Affine generator of G1.
GEN_X = 1
GEN_Y = 2


def jac_is_inf(p: tuple) -> bool:
    return p[2] == 0


def jac_double(p: tuple) -> tuple:
    x, y, z = p
    if z == 0 or y == 0:
        return JAC_INF
    a = x * x % Q
    b = y * y % Q
    c = b * b % Q
    d = 2 * ((x + b) * (x + b) - a - c) % Q
    e = 3 * a % Q
    f = e * e % Q
    x3 = (f - 2 * d) % Q
    y3 = (e * (d - x3) - 8 * c) % Q
    z3 = 2 * y * z % Q
    return (x3, y3, z3)


def jac_add(p: tuple, q: tuple) -> tuple:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % Q
    if z2 == 1:
        # Mixed addition (q affine): saves five multiplications.  MSM
        # bucket insertion — the prover's hottest loop — always adds an
        # affine SRS point, so this path dominates.
        u1, s1 = x1, y1
        u2 = x2 * z1z1 % Q
        s2 = y2 * z1 * z1z1 % Q
        if u1 == u2:
            if s1 != s2:
                return JAC_INF
            return jac_double(p)
        h = (u2 - u1) % Q
        i = 4 * h * h % Q
        j = h * i % Q
        rr = 2 * (s2 - s1) % Q
        v = u1 * i % Q
        x3 = (rr * rr - j - 2 * v) % Q
        y3 = (rr * (v - x3) - 2 * s1 * j) % Q
        z3 = 2 * z1 * h % Q
        return (x3, y3, z3)
    z2z2 = z2 * z2 % Q
    u1 = x1 * z2z2 % Q
    u2 = x2 * z1z1 % Q
    s1 = y1 * z2 * z2z2 % Q
    s2 = y2 * z1 * z1z1 % Q
    if u1 == u2:
        if s1 != s2:
            return JAC_INF
        return jac_double(p)
    h = (u2 - u1) % Q
    i = 4 * h * h % Q
    j = h * i % Q
    rr = 2 * (s2 - s1) % Q
    v = u1 * i % Q
    x3 = (rr * rr - j - 2 * v) % Q
    y3 = (rr * (v - x3) - 2 * s1 * j) % Q
    z3 = ((z1 + z2) * (z1 + z2) - z1z1 - z2z2) * h % Q
    return (x3, y3, z3)


def jac_neg(p: tuple) -> tuple:
    return (p[0], -p[1] % Q, p[2])


def reduce_scalar(k: int) -> int:
    """Canonical scalar reduction modulo the group order r.

    Shared by :func:`jac_mul` and the MSM so every kernel agrees on how
    out-of-range scalars fold into the group.
    """
    return k % R


def jac_mul(p: tuple, k: int) -> tuple:
    """Scalar multiplication by double-and-add (scalar reduced mod r)."""
    k = reduce_scalar(k)
    if k == 0 or p[2] == 0:
        return JAC_INF
    result = JAC_INF
    for bit in bin(k)[2:]:
        result = jac_double(result)
        if bit == "1":
            result = jac_add(result, p)
    return result


def jac_to_affine(p: tuple) -> tuple | None:
    """Convert to an affine ``(x, y)`` pair, or None for infinity."""
    if p[2] == 0:
        return None
    zinv = fq_inv(p[2])
    zinv2 = zinv * zinv % Q
    return (p[0] * zinv2 % Q, p[1] * zinv2 * zinv % Q)


def jac_batch_normalize(points: list[tuple]) -> list[tuple]:
    """Normalise finite Jacobian points to ``z = 1`` with one inversion.

    Every returned triple has ``z == 1`` so subsequent :func:`jac_add`
    calls with these points as the second operand take the cheap mixed-
    addition path.  Points at infinity are not accepted (callers filter
    them first).
    """
    if all(p[2] == 1 for p in points):
        return list(points)
    zinvs = fq_batch_inverse([p[2] for p in points])
    out = []
    for (x, y, _), zi in zip(points, zinvs):
        zi2 = zi * zi % Q
        out.append((x * zi2 % Q, y * zi2 * zi % Q, 1))
    return out


class G1:
    """An affine point of G1 (immutable)."""

    __slots__ = ("x", "y", "inf")

    def __init__(self, x: int = 0, y: int = 0, inf: bool = False):
        if inf:
            object.__setattr__(self, "x", 0)
            object.__setattr__(self, "y", 0)
            object.__setattr__(self, "inf", True)
            return
        x %= Q
        y %= Q
        if (y * y - (x * x * x + B)) % Q != 0:
            raise CurveError("point (%d, %d) is not on G1" % (x, y))
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "inf", False)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("G1 is immutable")

    @staticmethod
    def generator() -> "G1":
        return G1(GEN_X, GEN_Y)

    @staticmethod
    def identity() -> "G1":
        return G1(inf=True)

    @staticmethod
    def from_jacobian(p: tuple) -> "G1":
        aff = jac_to_affine(p)
        if aff is None:
            return G1.identity()
        return G1(aff[0], aff[1])

    @staticmethod
    def batch_from_jacobian(points: list[tuple]) -> list["G1"]:
        """Convert many Jacobian tuples to affine points with one inversion.

        The SRS generator and Groth16 setup convert thousands of points at
        once; per-point :func:`fq_inv` calls would each cost a full modular
        exponentiation.
        """
        finite = [(i, p) for i, p in enumerate(points) if p[2] != 0]
        normalized = jac_batch_normalize([p for _, p in finite])
        out: list[G1] = [G1.identity()] * len(points)
        for (i, _), q in zip(finite, normalized):
            out[i] = G1(q[0], q[1])
        return out

    def to_jacobian(self) -> tuple:
        if self.inf:
            return JAC_INF
        return (self.x, self.y, 1)

    def __add__(self, other: "G1") -> "G1":
        if not isinstance(other, G1):
            return NotImplemented
        return G1.from_jacobian(jac_add(self.to_jacobian(), other.to_jacobian()))

    def __sub__(self, other: "G1") -> "G1":
        if not isinstance(other, G1):
            return NotImplemented
        return self + (-other)

    def __neg__(self) -> "G1":
        if self.inf:
            return self
        return G1(self.x, -self.y % Q)

    def __mul__(self, k) -> "G1":
        if not isinstance(k, int):
            k = int(k)
        if substrate.fast_enabled():
            # Lazy import: glv derives its constants from this module at
            # its own import time.
            from repro.curve.glv import glv_jac_mul

            return G1.from_jacobian(glv_jac_mul(self.to_jacobian(), k))
        return G1.from_jacobian(jac_mul(self.to_jacobian(), k))

    __rmul__ = __mul__

    def __eq__(self, other):
        if not isinstance(other, G1):
            return NotImplemented
        if self.inf or other.inf:
            return self.inf == other.inf
        return self.x == other.x and self.y == other.y

    def __hash__(self):
        return hash(("G1", self.inf, self.x, self.y))

    def to_bytes(self) -> bytes:
        """Serialise as 64 bytes (x || y little-endian); infinity is zeros."""
        if self.inf:
            return b"\x00" * 64
        return self.x.to_bytes(32, "little") + self.y.to_bytes(32, "little")

    @staticmethod
    def from_bytes(data: bytes) -> "G1":
        if len(data) != 64:
            raise CurveError("G1 serialisation must be 64 bytes")
        if data == b"\x00" * 64:
            return G1.identity()
        return G1(int.from_bytes(data[:32], "little"), int.from_bytes(data[32:], "little"))

    def __repr__(self):
        if self.inf:
            return "G1(infinity)"
        return "G1(%d, %d)" % (self.x, self.y)
