"""Exchange arbiter contracts (the J of the exchange protocols).

Two arbiters are provided:

- :class:`ZKCPArbiterContract` — the classic hash-locked ZKCP arbiter of
  Section III-C.  Its *Open* phase stores the decryption key **in public
  contract storage**, which is exactly the vulnerability ZKDET fixes
  (Challenge 3): anyone can read the key and decrypt the publicly stored
  ciphertext.

- :class:`KeySecureArbiterContract` — ZKDET's key-secure arbiter
  (Section IV-F).  The chain only ever sees the masked key k_c = k + k_v
  plus a proof pi_k that the masking is consistent with the key
  commitment c and the buyer's hash h_v; the key itself never appears.
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.contracts.verifier import PlonkVerifierContract
from repro.primitives.hashing import field_hash


class ZKCPArbiterContract(Contract):
    """Hash-locked payments: pay whoever reveals the preimage of h."""

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def lock(self, seller: str, key_hash: int) -> int:
        """Buyer escrows msg.value against H(k) == key_hash."""
        self.require(self.msg_value > 0, "payment required")
        deal_id = self._next_id()
        self._sstore(("deal", deal_id), (self.msg_sender, seller, key_hash, self.msg_value))
        self.emit("Locked", deal_id=deal_id, buyer=self.msg_sender, amount=self.msg_value)
        return deal_id

    @external
    def open(self, deal_id: int, key: int) -> None:
        """Seller reveals k; contract checks H(k) and pays.

        NOTE: ``key`` becomes permanent public chain data — the flaw the
        key-secure protocol removes.
        """
        deal = self._sload(("deal", deal_id))
        self.require(deal is not None, "no such deal")
        buyer, seller, key_hash, amount = deal
        self.require(self.msg_sender == seller, "only the seller can open")
        self.require(field_hash(key) == key_hash, "key does not match the hash lock")
        self._sstore(("revealed_key", deal_id), key)  # the privacy leak
        self._sstore(("deal", deal_id), None)
        self.transfer_out(seller, amount)
        self.emit("Opened", deal_id=deal_id, key=key)

    @external
    def refund(self, deal_id: int) -> None:
        """Buyer reclaims an unopened escrow."""
        deal = self._sload(("deal", deal_id))
        self.require(deal is not None, "no such deal")
        buyer, _seller, _h, amount = deal
        self.require(self.msg_sender == buyer, "only the buyer can refund")
        self._sstore(("deal", deal_id), None)
        self.transfer_out(buyer, amount)
        self.emit("Refunded", deal_id=deal_id)

    @view
    def revealed_key(self, deal_id: int):
        """Anyone can read the revealed key — demonstrating the leak."""
        return self._storage.get(("revealed_key", deal_id))


class KeySecureArbiterContract(Contract):
    """ZKDET's arbiter: verifies pi_k instead of learning k."""

    def __init__(self, verifier: PlonkVerifierContract):
        super().__init__()
        self._verifier = verifier

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def lock_payment(self, seller: str, key_commitment: int, h_v: int) -> int:
        """Buyer escrows payment against the key commitment c and her h_v."""
        self.require(self.msg_value > 0, "payment required")
        exchange_id = self._next_id()
        self._sstore(
            ("exchange", exchange_id),
            (self.msg_sender, seller, key_commitment, h_v, self.msg_value),
        )
        self.emit(
            "PaymentLocked",
            exchange_id=exchange_id,
            buyer=self.msg_sender,
            h_v=h_v,
            amount=self.msg_value,
        )
        return exchange_id

    @external
    def submit_key(self, exchange_id: int, k_c: int, proof_bytes: bytes) -> None:
        """Seller submits the masked key k_c with pi_k; payment released
        iff Verify(vk, (k_c, c, h_v), pi_k) = 1."""
        record = self._sload(("exchange", exchange_id))
        self.require(record is not None, "no such exchange")
        buyer, seller, key_commitment, h_v, amount = record
        self.require(self.msg_sender == seller, "only the seller can submit")
        ok = self.call_contract(
            self._verifier, "verify", (k_c, key_commitment, h_v), proof_bytes
        )
        self.require(ok, "pi_k verification failed")
        self._sstore(("masked_key", exchange_id), k_c)
        self._sstore(("exchange", exchange_id), None)
        self.transfer_out(seller, amount)
        self.emit("KeyDelivered", exchange_id=exchange_id, k_c=k_c)

    @external
    def submit_key_batch(self, entries: tuple) -> tuple:
        """Settle many exchanges with one batched verification.

        ``entries`` is a tuple of ``(exchange_id, k_c, proof_bytes)``.
        Unlike :meth:`submit_key`, the caller may be anyone — a relay
        (e.g. the marketplace node) that aggregates sellers' submissions:
        payment always goes to the *stored* seller and pi_k binds k_c to
        the stored ``(c, h_v)``, so a relay can neither redirect funds
        nor substitute a key, only spend gas on sellers' behalf.  Entries
        whose exchange no longer exists (already settled or refunded) are
        skipped, and members whose proof fails verify are left open —
        nothing about one entry can revert its batchmates.  Returns the
        exchange ids actually settled.
        """
        pending = []
        for exchange_id, k_c, proof_bytes in entries:
            record = self._sload(("exchange", exchange_id))
            if record is None:
                continue
            _buyer, seller, key_commitment, h_v, amount = record
            pending.append((exchange_id, k_c, proof_bytes, seller, amount, key_commitment, h_v))
        if not pending:
            self.emit("BatchSettled", settled=0, requested=len(entries))
            return ()
        results = self.call_contract(
            self._verifier,
            "verify_batch",
            tuple(((k_c, c, h_v), pb) for _id, k_c, pb, _s, _a, c, h_v in pending),
        )
        settled = []
        for (exchange_id, k_c, _pb, seller, amount, _c, _h), ok in zip(pending, results):
            if not ok:
                continue
            # Duplicate ids inside one batch: the first occurrence settles,
            # later ones see the cleared record and are skipped.
            if self._sload(("exchange", exchange_id)) is None:
                continue
            self._sstore(("masked_key", exchange_id), k_c)
            self._sstore(("exchange", exchange_id), None)
            self.transfer_out(seller, amount)
            self.emit("KeyDelivered", exchange_id=exchange_id, k_c=k_c)
            settled.append(exchange_id)
        self.emit("BatchSettled", settled=len(settled), requested=len(entries))
        return tuple(settled)

    @external
    def refund(self, exchange_id: int) -> None:
        """Buyer reclaims escrow before the seller has delivered."""
        record = self._sload(("exchange", exchange_id))
        self.require(record is not None, "no such exchange")
        buyer, _seller, _c, _h, amount = record
        self.require(self.msg_sender == buyer, "only the buyer can refund")
        self._sstore(("exchange", exchange_id), None)
        self.transfer_out(buyer, amount)
        self.emit("Refunded", exchange_id=exchange_id)

    @view
    def masked_key(self, exchange_id: int):
        """The only key material ever visible on chain: k_c = k + k_v."""
        return self._storage.get(("masked_key", exchange_id))

    @view
    def exchange_info(self, exchange_id: int):
        """Public record of an open exchange:
        (buyer, seller, key_commitment, h_v, amount)."""
        return self._storage.get(("exchange", exchange_id))
