"""Exchange arbiter contracts (the J of the exchange protocols).

Two arbiters are provided:

- :class:`ZKCPArbiterContract` — the classic hash-locked ZKCP arbiter of
  Section III-C.  Its *Open* phase stores the decryption key **in public
  contract storage**, which is exactly the vulnerability ZKDET fixes
  (Challenge 3): anyone can read the key and decrypt the publicly stored
  ciphertext.

- :class:`KeySecureArbiterContract` — ZKDET's key-secure arbiter
  (Section IV-F).  The chain only ever sees the masked key k_c = k + k_v
  plus a proof pi_k that the masking is consistent with the key
  commitment c and the buyer's hash h_v; the key itself never appears.
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.contracts.verifier import PlonkVerifierContract
from repro.primitives.hashing import field_hash


class ZKCPArbiterContract(Contract):
    """Hash-locked payments: pay whoever reveals the preimage of h."""

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def lock(self, seller: str, key_hash: int) -> int:
        """Buyer escrows msg.value against H(k) == key_hash."""
        self.require(self.msg_value > 0, "payment required")
        deal_id = self._next_id()
        self._sstore(("deal", deal_id), (self.msg_sender, seller, key_hash, self.msg_value))
        self.emit("Locked", deal_id=deal_id, buyer=self.msg_sender, amount=self.msg_value)
        return deal_id

    @external
    def open(self, deal_id: int, key: int) -> None:
        """Seller reveals k; contract checks H(k) and pays.

        NOTE: ``key`` becomes permanent public chain data — the flaw the
        key-secure protocol removes.
        """
        deal = self._sload(("deal", deal_id))
        self.require(deal is not None, "no such deal")
        buyer, seller, key_hash, amount = deal
        self.require(self.msg_sender == seller, "only the seller can open")
        self.require(field_hash(key) == key_hash, "key does not match the hash lock")
        self._sstore(("revealed_key", deal_id), key)  # the privacy leak
        self._sstore(("deal", deal_id), None)
        self.transfer_out(seller, amount)
        self.emit("Opened", deal_id=deal_id, key=key)

    @external
    def refund(self, deal_id: int) -> None:
        """Buyer reclaims an unopened escrow."""
        deal = self._sload(("deal", deal_id))
        self.require(deal is not None, "no such deal")
        buyer, _seller, _h, amount = deal
        self.require(self.msg_sender == buyer, "only the buyer can refund")
        self._sstore(("deal", deal_id), None)
        self.transfer_out(buyer, amount)
        self.emit("Refunded", deal_id=deal_id)

    @view
    def revealed_key(self, deal_id: int):
        """Anyone can read the revealed key — demonstrating the leak."""
        return self._storage.get(("revealed_key", deal_id))


class KeySecureArbiterContract(Contract):
    """ZKDET's arbiter: verifies pi_k instead of learning k."""

    def __init__(self, verifier: PlonkVerifierContract):
        super().__init__()
        self._verifier = verifier

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def lock_payment(self, seller: str, key_commitment: int, h_v: int) -> int:
        """Buyer escrows payment against the key commitment c and her h_v."""
        self.require(self.msg_value > 0, "payment required")
        exchange_id = self._next_id()
        self._sstore(
            ("exchange", exchange_id),
            (self.msg_sender, seller, key_commitment, h_v, self.msg_value),
        )
        self.emit(
            "PaymentLocked",
            exchange_id=exchange_id,
            buyer=self.msg_sender,
            h_v=h_v,
            amount=self.msg_value,
        )
        return exchange_id

    @external
    def submit_key(self, exchange_id: int, k_c: int, proof_bytes: bytes) -> None:
        """Seller submits the masked key k_c with pi_k; payment released
        iff Verify(vk, (k_c, c, h_v), pi_k) = 1."""
        record = self._sload(("exchange", exchange_id))
        self.require(record is not None, "no such exchange")
        buyer, seller, key_commitment, h_v, amount = record
        self.require(self.msg_sender == seller, "only the seller can submit")
        ok = self.call_contract(
            self._verifier, "verify", (k_c, key_commitment, h_v), proof_bytes
        )
        self.require(ok, "pi_k verification failed")
        self._sstore(("masked_key", exchange_id), k_c)
        self._sstore(("exchange", exchange_id), None)
        self.transfer_out(seller, amount)
        self.emit("KeyDelivered", exchange_id=exchange_id, k_c=k_c)

    @external
    def refund(self, exchange_id: int) -> None:
        """Buyer reclaims escrow before the seller has delivered."""
        record = self._sload(("exchange", exchange_id))
        self.require(record is not None, "no such exchange")
        buyer, _seller, _c, _h, amount = record
        self.require(self.msg_sender == buyer, "only the buyer can refund")
        self._sstore(("exchange", exchange_id), None)
        self.transfer_out(buyer, amount)
        self.emit("Refunded", exchange_id=exchange_id)

    @view
    def masked_key(self, exchange_id: int):
        """The only key material ever visible on chain: k_c = k + k_v."""
        return self._storage.get(("masked_key", exchange_id))

    @view
    def exchange_info(self, exchange_id: int):
        """Public record of an open exchange:
        (buyer, seller, key_commitment, h_v, amount)."""
        return self._storage.get(("exchange", exchange_id))
