"""On-chain Plonk verifier contract.

As the paper notes (Section VI-C2), proof verification can be delegated to
a contract with the verification key hardcoded into its bytecode — a
one-time deployment cost, then O(1) work per proof.  Our contract runs the
*real* Plonk verifier and meters the gas an EVM would charge for the same
group operations (the BN254 precompiles: ECADD, ECMUL, pairing check).
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.plonk.batch import batch_verify
from repro.plonk.keys import VerifyingKey
from repro.plonk.proof import Proof
from repro.plonk.verifier import verify as plonk_verify


def _vk_code_bytes(vk: VerifyingKey) -> int:
    """Bytes the hardcoded key contributes to the deployed code."""
    return 8 * 64 + 2 * 128 + 64  # 8 G1 commitments, 2 G2 points, domain data


class PlonkVerifierContract(Contract):
    """A verifier for one circuit (one verification key)."""

    def __init__(self, vk: VerifyingKey):
        super().__init__()
        self._vk = vk
        # The key is a deploy-time constant, so it counts as code, not storage.
        self.extra_code_bytes = _vk_code_bytes(vk) + 4096  # + pairing library

    def _charge_verification_gas(self) -> None:
        """Meter the EVM precompile costs of one Plonk verification:
        ~18 ECMULs and ~20 ECADDs for the F/E combination, one 2-pair
        pairing check, and transcript hashing."""
        s = self.schedule
        gas = 18 * s.ecmul + 20 * s.ecadd + s.pairing_cost(2)
        gas += 15 * (s.sha_base + 2 * s.sha_per_word)  # Fiat-Shamir hashing
        self._ctx.burn(gas)

    @external
    def verify(self, public_inputs: tuple, proof_bytes: bytes) -> bool:
        """Verify a proof on chain; reverts on malformed input."""
        try:
            proof = Proof.from_bytes(proof_bytes)
        except Exception as exc:
            self.require(False, "malformed proof: %s" % exc)
        self._charge_verification_gas()
        ok = plonk_verify(self._vk, [int(p) for p in public_inputs], proof)
        self.emit("ProofVerified", ok=ok, num_public_inputs=len(public_inputs))
        return ok

    def _charge_batch_verification_gas(self, k: int) -> None:
        """Meter the precompile costs of a k-proof batched verification.

        Each member still pays its own F/E combination (plus two extra
        group ops to fold it under a random weight) and its Fiat-Shamir
        hashing, but the 2-pair pairing check — the dominant precompile
        cost — is shared across the whole batch.  That shared pairing is
        the amortisation the settlement benchmarks measure.
        """
        s = self.schedule
        per_proof = 20 * s.ecmul + 22 * s.ecadd + 15 * (s.sha_base + 2 * s.sha_per_word)
        self._ctx.burn(k * per_proof + s.pairing_cost(2))

    @external
    def verify_batch(self, items: tuple) -> tuple:
        """Verify many ``(public_inputs, proof_bytes)`` pairs at once.

        The happy path folds every well-formed member through the
        random-linear-combination batch verifier — one pairing check for
        the whole batch.  If the fold fails (at least one member is
        invalid), the batch falls back to individually metered per-proof
        verification so a single poisoned proof cannot poison its
        batchmates: honest members still settle, and the submitter pays
        the re-check gas.  Malformed proof bytes never revert the batch;
        they are reported False in place.
        """
        parsed: list = []
        for public_inputs, proof_bytes in items:
            try:
                proof = Proof.from_bytes(proof_bytes)
            except Exception:
                parsed.append(None)
                continue
            parsed.append(([int(p) for p in public_inputs], proof))
        self._charge_batch_verification_gas(len(parsed))
        results = [False] * len(parsed)
        well_formed = [i for i, item in enumerate(parsed) if item is not None]
        folded = [(self._vk, parsed[i][0], parsed[i][1]) for i in well_formed]
        if folded and batch_verify(folded):
            for i in well_formed:
                results[i] = True
        else:
            for i in well_formed:
                self._charge_verification_gas()
                publics, proof = parsed[i]
                results[i] = plonk_verify(self._vk, publics, proof)
        self.emit(
            "BatchVerified",
            batch_size=len(parsed),
            accepted=sum(1 for ok in results if ok),
        )
        return tuple(results)

    @external
    def require_valid(self, public_inputs: tuple, proof_bytes: bytes) -> None:
        """Verify and revert the whole transaction on failure."""
        ok = self.verify(public_inputs, proof_bytes)
        self.require(ok, "invalid proof")

    @view
    def verify_view(self, public_inputs: tuple, proof_bytes: bytes) -> bool:
        """Free off-chain verification via eth_call — the 'unlimited free
        verifications' of Section VI-C2."""
        proof = Proof.from_bytes(proof_bytes)
        return plonk_verify(self._vk, [int(p) for p in public_inputs], proof)

    @view
    def circuit_size(self) -> int:
        return self._vk.n
