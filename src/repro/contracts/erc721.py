"""The ERC-721 data-token contract with provenance tracking.

Each token is the on-chain credential of one (encrypted, publicly stored)
dataset: it records the storage URI, the Poseidon commitment to the
plaintext, the transformation kind that produced it, the hash of the
zero-knowledge proof justifying that transformation, and — the key
extension over plain ERC-721 — ``prevIds[]``, the parent tokens, which
makes the full transformation DAG walkable on chain (Figure 2).
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view

#: Transformation kinds recorded in token metadata (Section III-B).
KIND_SOURCE = "source"
KIND_AGGREGATION = "aggregation"
KIND_PARTITION = "partition"
KIND_DUPLICATION = "duplication"
KIND_PROCESSING = "processing"

VALID_KINDS = (
    KIND_SOURCE,
    KIND_AGGREGATION,
    KIND_PARTITION,
    KIND_DUPLICATION,
    KIND_PROCESSING,
)


class DataTokenContract(Contract):
    """ERC-721 with data-asset metadata and transformation lineage."""

    # ----- internal helpers ----------------------------------------------------

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    def _mint_record(self, to, uri, commitment, prev_ids, kind, proof_hash) -> int:
        self.require(kind in VALID_KINDS, "unknown transformation kind")
        for parent in prev_ids:
            self.require(self._sload(("owner", parent)) is not None, "unknown parent token")
        token_id = self._next_id()
        self._sstore(("owner", token_id), to)
        self._sstore(("meta", token_id), (uri, commitment, tuple(prev_ids), kind, proof_hash))
        self._sstore(("balance", to), (self._sload(("balance", to)) or 0) + 1)
        return token_id

    def _require_controller(self, token_id: int) -> str:
        owner = self._sload(("owner", token_id))
        self.require(owner is not None, "token does not exist")
        sender = self.msg_sender
        approved = self._sload(("approved", token_id))
        self.require(sender in (owner, approved), "caller is not owner nor approved")
        return owner

    # ----- ERC-721 core ----------------------------------------------------------

    @external
    def mint(self, uri: str, commitment: int, proof_hash: str = "") -> int:
        """Mint a fresh source data token to the caller."""
        token_id = self._mint_record(
            self.msg_sender, uri, commitment, (), KIND_SOURCE, proof_hash
        )
        self.emit("Minted", token_id=token_id, to=self.msg_sender, uri=uri)
        return token_id

    @external
    def transfer_from(self, frm: str, to: str, token_id: int) -> None:
        """Move ownership (the *Transferring* operation)."""
        owner = self._require_controller(token_id)
        self.require(owner == frm, "from address is not the owner")
        self._sstore(("owner", token_id), to)
        self._sstore(("approved", token_id), None)
        self._sstore(("balance", frm), (self._sload(("balance", frm)) or 1) - 1)
        self._sstore(("balance", to), (self._sload(("balance", to)) or 0) + 1)
        self.emit("Transfer", token_id=token_id, frm=frm, to=to)

    @external
    def approve(self, to: str, token_id: int) -> None:
        """Authorise ``to`` to transfer one token."""
        owner = self._sload(("owner", token_id))
        self.require(owner == self.msg_sender, "only the owner can approve")
        self._sstore(("approved", token_id), to)
        self.emit("Approval", token_id=token_id, approved=to)

    @external
    def burn(self, token_id: int) -> None:
        """Destroy a token (the *Burning* operation); lineage stays readable."""
        owner = self._require_controller(token_id)
        self._sstore(("owner", token_id), None)
        self._sstore(("balance", owner), (self._sload(("balance", owner)) or 1) - 1)
        self._sstore(("burned", token_id), True)
        self.emit("Burned", token_id=token_id)

    # ----- transformation operations (Section III-B, items 4-7) -------------------

    @external
    def aggregate(
        self, sources: tuple, uri: str, commitment: int, proof_hash: str
    ) -> int:
        """Merge several owned tokens into a new derived token."""
        self.require(len(sources) >= 2, "aggregation needs at least two sources")
        for src in sources:
            self.require(
                self._sload(("owner", src)) == self.msg_sender,
                "caller must own every source",
            )
        token_id = self._mint_record(
            self.msg_sender, uri, commitment, tuple(sources), KIND_AGGREGATION, proof_hash
        )
        self.emit("Aggregated", token_id=token_id, sources=tuple(sources))
        return token_id

    @external
    def partition(self, source: int, parts: tuple, proof_hash: str) -> tuple:
        """Split one owned token into several derived tokens.

        ``parts`` is a tuple of (uri, commitment) pairs.
        """
        self.require(len(parts) >= 2, "partition needs at least two parts")
        self.require(
            self._sload(("owner", source)) == self.msg_sender,
            "caller must own the source",
        )
        out = []
        for uri, commitment in parts:
            out.append(
                self._mint_record(
                    self.msg_sender, uri, commitment, (source,), KIND_PARTITION, proof_hash
                )
            )
        self.emit("Partitioned", source=source, token_ids=tuple(out))
        return tuple(out)

    @external
    def duplicate(self, source: int, uri: str, commitment: int, proof_hash: str) -> int:
        """Replicate an owned token's content as a new token."""
        self.require(
            self._sload(("owner", source)) == self.msg_sender,
            "caller must own the source",
        )
        token_id = self._mint_record(
            self.msg_sender, uri, commitment, (source,), KIND_DUPLICATION, proof_hash
        )
        self.emit("Duplicated", source=source, token_id=token_id)
        return token_id

    @external
    def process(self, sources: tuple, uri: str, commitment: int, proof_hash: str) -> int:
        """Mint the result of a computation over owned tokens (model
        training, analytics - the *Processing* transformation)."""
        self.require(len(sources) >= 1, "processing needs at least one source")
        for src in sources:
            self.require(
                self._sload(("owner", src)) == self.msg_sender,
                "caller must own every source",
            )
        token_id = self._mint_record(
            self.msg_sender, uri, commitment, tuple(sources), KIND_PROCESSING, proof_hash
        )
        self.emit("Processed", token_id=token_id, sources=tuple(sources))
        return token_id

    # ----- views -------------------------------------------------------------------

    @view
    def owner_of(self, token_id: int):
        return self._storage.get(("owner", token_id))

    @view
    def balance_of(self, address: str) -> int:
        return self._storage.get(("balance", address)) or 0

    @view
    def exists(self, token_id: int) -> bool:
        return self._storage.get(("owner", token_id)) is not None

    @view
    def is_burned(self, token_id: int) -> bool:
        return bool(self._storage.get(("burned", token_id)))

    @view
    def token_uri(self, token_id: int):
        meta = self._storage.get(("meta", token_id))
        return meta[0] if meta else None

    @view
    def commitment_of(self, token_id: int):
        meta = self._storage.get(("meta", token_id))
        return meta[1] if meta else None

    @view
    def prev_ids(self, token_id: int) -> tuple:
        meta = self._storage.get(("meta", token_id))
        return meta[2] if meta else ()

    @view
    def kind_of(self, token_id: int):
        meta = self._storage.get(("meta", token_id))
        return meta[3] if meta else None

    @view
    def proof_hash_of(self, token_id: int):
        meta = self._storage.get(("meta", token_id))
        return meta[4] if meta else None

    @view
    def total_minted(self) -> int:
        return (self._storage.get("next_id") or 1) - 1
