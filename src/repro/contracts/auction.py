"""Clock (descending-price) auction for data tokens.

The seller escrows a token at a start price that decays every block down
to a floor; the first bidder meeting the current price wins.  This is the
auction primitive ZKDET's exchange interactions hang off (Section III-C:
"S launches a clock auction which locks its token for sale").
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.contracts.erc721 import DataTokenContract


class ClockAuctionContract(Contract):
    """Escrowed descending-price auctions over a DataTokenContract."""

    def __init__(self, token_contract: DataTokenContract):
        super().__init__()
        self._token = token_contract

    def _next_id(self) -> int:
        counter = self._sload("next_auction") or 1
        self._sstore("next_auction", counter + 1)
        return counter

    @external
    def create_auction(
        self,
        token_id: int,
        start_price: int,
        floor_price: int,
        decay_per_block: int,
        predicate: str = "",
    ) -> int:
        """List a token; requires prior approval of this contract."""
        self.require(start_price >= floor_price >= 0, "invalid price range")
        seller = self.msg_sender
        self.call_contract(self._token, "transfer_from", seller, self.address, token_id)
        auction_id = self._next_id()
        start_block = len(self._chain.blocks)
        self._sstore(
            ("auction", auction_id),
            (token_id, seller, start_price, floor_price, decay_per_block, start_block, predicate),
        )
        self.emit("AuctionCreated", auction_id=auction_id, token_id=token_id, seller=seller)
        return auction_id

    def _price_at(self, record, block_number: int) -> int:
        _tid, _seller, start, floor, decay, start_block, _pred = record
        elapsed = max(0, block_number - start_block)
        return max(floor, start - decay * elapsed)

    @view
    def current_price(self, auction_id: int):
        record = self._storage.get(("auction", auction_id))
        if record is None:
            return None
        return self._price_at(record, len(self._chain.blocks))

    @view
    def predicate_of(self, auction_id: int):
        record = self._storage.get(("auction", auction_id))
        return record[6] if record else None

    @view
    def token_of(self, auction_id: int):
        record = self._storage.get(("auction", auction_id))
        return record[0] if record else None

    @view
    def seller_of(self, auction_id: int):
        record = self._storage.get(("auction", auction_id))
        return record[1] if record else None

    @external
    def bid(self, auction_id: int) -> int:
        """Buy at the current clock price; excess value is refunded."""
        record = self._sload(("auction", auction_id))
        self.require(record is not None, "no such auction")
        token_id, seller, *_ = record
        price = self._price_at(record, len(self._chain.blocks))
        self.require(self.msg_value >= price, "bid below the clock price")
        buyer = self.msg_sender
        self._sstore(("auction", auction_id), None)
        self.call_contract(self._token, "transfer_from", self.address, buyer, token_id)
        self.transfer_out(seller, price)
        excess = self.msg_value - price
        if excess:
            self.transfer_out(buyer, excess)
        self.emit("AuctionSettled", auction_id=auction_id, buyer=buyer, price=price)
        return price

    @external
    def cancel(self, auction_id: int) -> None:
        """Seller withdraws an unsold token."""
        record = self._sload(("auction", auction_id))
        self.require(record is not None, "no such auction")
        token_id, seller, *_ = record
        self.require(self.msg_sender == seller, "only the seller can cancel")
        self._sstore(("auction", auction_id), None)
        self.call_contract(self._token, "transfer_from", self.address, seller, token_id)
        self.emit("AuctionCancelled", auction_id=auction_id)
