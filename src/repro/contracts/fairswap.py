"""FairSwap: the authenticated-data-structure baseline (Section VII-B).

FairSwap (Dziembowski, Eckey, Faust — CCS'18) trades zero-knowledge for
Merkle proofs: the seller commits to the encrypted blocks' Merkle root
and a hash lock on the key; after the key is revealed, a cheated buyer
submits a *proof of misbehaviour* — a Merkle path to the offending
ciphertext block — and the contract re-derives the block's decryption
and compares it with the advertised plaintext tree.

The paper's criticism, reproduced by this implementation's gas metering:
"in the event of a dispute, the transaction cost for proof verification
increases with data size" — each complaint pays for O(log n) on-chain
hash evaluations plus an on-chain MiMC block decryption, where ZKDET
verifies any dataset with a flat 2-pairing check.
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.gadgets.merkle import MerkleProof, MerkleTree
from repro.primitives.hashing import field_hash
from repro.primitives.mimc import MiMC

#: Metered cost of one on-chain Poseidon compression (per Merkle level).
HASH_GAS = 5000

#: Metered cost of one on-chain MiMC block derivation (91 rounds).
MIMC_GAS = 18000


class FairSwapContract(Contract):
    """Escrowed sale of a Merkle-committed encrypted file with disputes."""

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def offer(
        self,
        ciphertext_root: int,
        plaintext_root: int,
        key_hash: int,
        nonce: int,
        num_blocks: int,
        price: int,
        dispute_window: int = 5,
    ) -> int:
        """Seller lists a file: roots of the encrypted and plain trees,
        the hash lock on the key, and the CTR nonce."""
        self.require(num_blocks > 0 and price > 0, "invalid offer")
        sale_id = self._next_id()
        self._sstore(
            ("offer", sale_id),
            (self.msg_sender, ciphertext_root, plaintext_root, key_hash,
             nonce, num_blocks, price, dispute_window),
        )
        self.emit("Offered", sale_id=sale_id, seller=self.msg_sender, price=price)
        return sale_id

    @external
    def accept(self, sale_id: int) -> None:
        """Buyer escrows the price."""
        offer = self._sload(("offer", sale_id))
        self.require(offer is not None, "no such offer")
        self.require(self.msg_value == offer[6], "wrong payment amount")
        self.require(self._sload(("buyer", sale_id)) is None, "already accepted")
        self._sstore(("buyer", sale_id), self.msg_sender)
        self._sstore(("accepted_at", sale_id), len(self._chain.blocks))
        self.emit("Accepted", sale_id=sale_id, buyer=self.msg_sender)

    @external
    def abort(self, sale_id: int) -> None:
        """Buyer reclaims escrow when the seller never reveals the key.

        The liveness escape hatch the fault plane exercises: with the
        seller (or the network) persistently down after ``accept``, the
        buyer's funds would otherwise be stranded forever.  Only
        available once the reveal window — ``dispute_window`` blocks
        after acceptance — has elapsed with no key on chain, so a live
        seller cannot be griefed out of a sale she is about to complete.
        """
        offer = self._sload(("offer", sale_id))
        self.require(offer is not None, "no such offer")
        buyer = self._sload(("buyer", sale_id))
        self.require(buyer is not None, "not yet accepted")
        self.require(self.msg_sender == buyer, "only the buyer aborts")
        self.require(self._sload(("key", sale_id)) is None, "key already revealed")
        accepted_at = self._sload(("accepted_at", sale_id))
        self.require(
            len(self._chain.blocks) > accepted_at + offer[7],
            "reveal window still open",
        )
        self._sstore(("offer", sale_id), None)
        self._sstore(("resolved", sale_id), "aborted")
        self.transfer_out(buyer, offer[6])
        self.emit("Aborted", sale_id=sale_id)

    @external
    def reveal_key(self, sale_id: int, key: int) -> None:
        """Seller reveals k (hash-checked); the dispute window opens.

        Like ZKCP — and unlike ZKDET — the key becomes public chain data.
        """
        offer = self._sload(("offer", sale_id))
        self.require(offer is not None, "no such offer")
        seller = offer[0]
        self.require(self.msg_sender == seller, "only the seller reveals")
        self.require(self._sload(("buyer", sale_id)) is not None, "not yet accepted")
        self.require(field_hash(key) == offer[3], "key does not match the lock")
        self._sstore(("key", sale_id), key)
        self._sstore(("deadline", sale_id), len(self._chain.blocks) + offer[7])
        self.emit("KeyRevealed", sale_id=sale_id, key=key)

    @external
    def complain(
        self,
        sale_id: int,
        index: int,
        cipher_block: int,
        cipher_siblings: tuple,
        cipher_bits: tuple,
        expected_block: int,
        plain_siblings: tuple,
        plain_bits: tuple,
    ) -> None:
        """Proof of misbehaviour: block ``index`` decrypts to something
        other than the advertised plaintext leaf.  Refunds the buyer.

        On-chain work — and therefore gas — is O(log n) hashes plus one
        MiMC evaluation: the cost that grows with data size.
        """
        offer = self._sload(("offer", sale_id))
        self.require(offer is not None, "no such offer")
        key = self._sload(("key", sale_id))
        self.require(key is not None, "key not revealed yet")
        deadline = self._sload(("deadline", sale_id))
        self.require(len(self._chain.blocks) <= deadline, "dispute window closed")
        buyer = self._sload(("buyer", sale_id))
        self.require(self.msg_sender == buyer, "only the buyer complains")
        _seller, c_root, p_root, _h, nonce, num_blocks, price, _w = offer
        self.require(0 <= index < num_blocks, "block index out of range")

        # 1. The ciphertext block is genuine (path under the committed root).
        self._ctx.burn(HASH_GAS * len(cipher_siblings))
        c_proof = MerkleProof(index, tuple(cipher_siblings), tuple(cipher_bits))
        self.require(
            MerkleTree.verify(c_root, cipher_block, c_proof),
            "ciphertext path invalid",
        )
        # 2. The advertised plaintext leaf at the same index.
        self._ctx.burn(HASH_GAS * len(plain_siblings))
        p_proof = MerkleProof(index, tuple(plain_siblings), tuple(plain_bits))
        self.require(
            MerkleTree.verify(p_root, expected_block, p_proof),
            "plaintext path invalid",
        )
        # 3. Re-derive the decryption on chain and compare.
        self._ctx.burn(MIMC_GAS)
        from repro.field.fr import MODULUS as R

        keystream = MiMC().encrypt_block(key, (nonce + index) % R)
        decrypted = (cipher_block - keystream) % R
        self.require(decrypted != expected_block, "decryption matches; no misbehaviour")

        self._sstore(("offer", sale_id), None)
        self._sstore(("resolved", sale_id), "refunded")
        self.transfer_out(buyer, price)
        self.emit("Refunded", sale_id=sale_id, index=index)

    @external
    def finalize(self, sale_id: int) -> None:
        """Seller collects after an undisputed window."""
        offer = self._sload(("offer", sale_id))
        self.require(offer is not None, "no such offer")
        price = offer[6]
        self.require(self.msg_sender == offer[0], "only the seller finalizes")
        deadline = self._sload(("deadline", sale_id))
        self.require(deadline is not None, "key not revealed yet")
        self.require(len(self._chain.blocks) > deadline, "dispute window still open")
        self._sstore(("offer", sale_id), None)
        self._sstore(("resolved", sale_id), "paid")
        self.transfer_out(offer[0], price)
        self.emit("Finalized", sale_id=sale_id)

    @view
    def revealed_key(self, sale_id: int):
        """The leaked key — FairSwap shares ZKCP's public-storage flaw."""
        return self._storage.get(("key", sale_id))

    @view
    def resolution(self, sale_id: int):
        return self._storage.get(("resolved", sale_id))
