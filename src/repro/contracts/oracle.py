"""Source-attestation oracle committee (the DECO hook of Section IV-F).

For *source* datasets there is no pi_t chain to anchor trust; the paper
points at decentralized oracles (DECO) to attest where data came from.
We model the on-chain half: a committee of registered oracles
countersigns (source URI, data commitment, origin tag) claims; once a
threshold of distinct oracles attests, the claim becomes `attested` and
markets can require it before listing a source token.

Signatures are Schnorr over Baby Jubjub so the attestations are also
provable in-circuit if a predicate ever needs them.
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.primitives.babyjubjub import JubjubPoint, SchnorrSignature, schnorr_verify
from repro.primitives.hashing import field_hash


def attestation_message(commitment: int, origin_tag: int) -> int:
    """The field element an oracle signs for one claim."""
    return field_hash(commitment, origin_tag)


class OracleCommitteeContract(Contract):
    """Threshold attestation registry."""

    def __init__(self, threshold: int = 2):
        super().__init__()
        self._threshold = threshold

    @external
    def register_oracle(self, key_x: int, key_y: int) -> None:
        """An oracle registers its attestation key (one per account)."""
        self.require(
            self._sload(("oracle", self.msg_sender)) is None,
            "oracle already registered",
        )
        try:
            JubjubPoint(key_x, key_y)
        except Exception:
            self.require(False, "key is not a curve point")
        self._sstore(("oracle", self.msg_sender), (key_x, key_y))
        count = (self._sload("oracle_count") or 0) + 1
        self._sstore("oracle_count", count)
        self.emit("OracleRegistered", oracle=self.msg_sender)

    @external
    def attest(self, commitment: int, origin_tag: int, sig_r_x: int, sig_r_y: int, sig_s: int) -> int:
        """Submit one oracle's signature over a claim; returns the new
        attestation count for the claim."""
        key = self._sload(("oracle", self.msg_sender))
        self.require(key is not None, "caller is not a registered oracle")
        claim = (commitment, origin_tag)
        self.require(
            self._sload(("signed", claim, self.msg_sender)) is None,
            "oracle already attested this claim",
        )
        self._ctx.burn(2 * self.schedule.ecmul + 4 * self.schedule.ecadd)
        try:
            pk = JubjubPoint(key[0], key[1])
            r_point = JubjubPoint(sig_r_x, sig_r_y)
        except Exception:
            self.require(False, "malformed signature point")
        ok = schnorr_verify(
            pk,
            attestation_message(commitment, origin_tag),
            SchnorrSignature(r_point, sig_s),
        )
        self.require(ok, "invalid attestation signature")
        self._sstore(("signed", claim, self.msg_sender), True)
        count = (self._sload(("attestations", claim)) or 0) + 1
        self._sstore(("attestations", claim), count)
        self.emit(
            "Attested", commitment=commitment, origin_tag=origin_tag, count=count
        )
        return count

    @view
    def attestation_count(self, commitment: int, origin_tag: int) -> int:
        return self._storage.get(("attestations", (commitment, origin_tag))) or 0

    @view
    def is_attested(self, commitment: int, origin_tag: int) -> bool:
        """True once the threshold of distinct oracles has signed."""
        return self.attestation_count(commitment, origin_tag) >= self._threshold

    @view
    def num_oracles(self) -> int:
        return self._storage.get("oracle_count") or 0
