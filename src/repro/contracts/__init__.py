"""ZKDET's on-chain layer.

Python ports of the Solidity suite the paper deploys on Rinkeby
(Section VI-A, "ZKDET-contract"): the ERC-721 data-token contract with the
``prevIds[]`` provenance extension, the clock-auction market, the exchange
arbiters (classic ZKCP and ZKDET's key-secure variant), and the on-chain
Plonk verifier.
"""

from repro.contracts.erc721 import DataTokenContract
from repro.contracts.verifier import PlonkVerifierContract
from repro.contracts.auction import ClockAuctionContract
from repro.contracts.arbiter import KeySecureArbiterContract, ZKCPArbiterContract
from repro.contracts.channel import PaymentChannelContract
from repro.contracts.fairswap import FairSwapContract
from repro.contracts.oracle import OracleCommitteeContract

__all__ = [
    "ClockAuctionContract",
    "DataTokenContract",
    "FairSwapContract",
    "KeySecureArbiterContract",
    "OracleCommitteeContract",
    "PaymentChannelContract",
    "PlonkVerifierContract",
    "ZKCPArbiterContract",
]
