"""Unidirectional payment channels (the Layer-2 scaling hook).

The paper's introduction points at payment channels and other Layer-2
solutions to "increase throughput and reduce transaction fees, thereby
shrinking the expense for data exchanges".  This contract implements the
classic unidirectional channel: a buyer locks collateral once, streams
off-chain payment *vouchers* (amount + Schnorr signature over Baby
Jubjub) to a data seller across many purchases, and the seller settles
the highest voucher in a single on-chain transaction.

Off-chain voucher format: sign(channel_id, cumulative_amount) under the
buyer's registered Baby Jubjub key — the same signature scheme the
gadget library can verify inside circuits.
"""

from __future__ import annotations

from repro.chain.contract import Contract, external, view
from repro.primitives.babyjubjub import JubjubPoint, SchnorrSignature, schnorr_verify
from repro.primitives.hashing import field_hash


def voucher_message(channel_id: int, cumulative_amount: int) -> int:
    """The field element a voucher signs."""
    return field_hash(channel_id, cumulative_amount)


class PaymentChannelContract(Contract):
    """Open / pay-off-chain / close unidirectional channels."""

    def _next_id(self) -> int:
        counter = self._sload("next_id") or 1
        self._sstore("next_id", counter + 1)
        return counter

    @external
    def open_channel(self, payee: str, payer_key_x: int, payer_key_y: int, timeout_blocks: int = 100) -> int:
        """Payer locks msg.value and registers their voucher key."""
        self.require(self.msg_value > 0, "collateral required")
        channel_id = self._next_id()
        expiry = len(self._chain.blocks) + timeout_blocks
        self._sstore(
            ("channel", channel_id),
            (self.msg_sender, payee, payer_key_x, payer_key_y, self.msg_value, expiry),
        )
        self.emit(
            "ChannelOpened",
            channel_id=channel_id,
            payer=self.msg_sender,
            payee=payee,
            collateral=self.msg_value,
        )
        return channel_id

    @external
    def close(self, channel_id: int, cumulative_amount: int, sig_r_x: int, sig_r_y: int, sig_s: int) -> None:
        """Payee settles with the best voucher; remainder refunds the payer.

        The voucher signature is checked on chain against the key
        registered at open time.
        """
        record = self._sload(("channel", channel_id))
        self.require(record is not None, "no such channel")
        payer, payee, key_x, key_y, collateral, _expiry = record
        self.require(self.msg_sender == payee, "only the payee settles")
        self.require(0 < cumulative_amount <= collateral, "voucher exceeds collateral")
        # Gas model: one EC signature check (2 scalar muls worth of ECMUL).
        self._ctx.burn(2 * self.schedule.ecmul + 4 * self.schedule.ecadd)
        try:
            pk = JubjubPoint(key_x, key_y)
            r_point = JubjubPoint(sig_r_x, sig_r_y)
        except Exception:
            self.require(False, "malformed key or signature point")
        sig = SchnorrSignature(r_point, sig_s)
        ok = schnorr_verify(pk, voucher_message(channel_id, cumulative_amount), sig)
        self.require(ok, "invalid voucher signature")
        self._sstore(("channel", channel_id), None)
        self.transfer_out(payee, cumulative_amount)
        if collateral > cumulative_amount:
            self.transfer_out(payer, collateral - cumulative_amount)
        self.emit("ChannelClosed", channel_id=channel_id, paid=cumulative_amount)

    @external
    def reclaim(self, channel_id: int) -> None:
        """Payer reclaims collateral after the timeout (payee went silent)."""
        record = self._sload(("channel", channel_id))
        self.require(record is not None, "no such channel")
        payer, _payee, _kx, _ky, collateral, expiry = record
        self.require(self.msg_sender == payer, "only the payer reclaims")
        self.require(len(self._chain.blocks) >= expiry, "channel not expired yet")
        self._sstore(("channel", channel_id), None)
        self.transfer_out(payer, collateral)
        self.emit("ChannelReclaimed", channel_id=channel_id)

    @view
    def channel_info(self, channel_id: int):
        return self._storage.get(("channel", channel_id))
