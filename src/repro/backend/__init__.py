"""Pluggable compute backends for the arithmetic hot paths.

Every kernel the provers spend time in — NTTs, multi-scalar
multiplication over G1/G2, batched field inversion, fixed-base scalar
multiplication — is reached through an :class:`Engine`:

- :class:`SerialEngine` — single-process reference implementation;
- :class:`ParallelEngine` — shards MSMs, independent NTTs and inversion
  chains across ``multiprocessing`` workers.

Both produce bit-identical outputs (enforced by property tests); they
differ only in execution strategy.  The process-wide default engine is
selected by the ``REPRO_BACKEND`` environment variable (``serial`` |
``parallel``, default ``serial``) and can be replaced programmatically::

    from repro.backend import ParallelEngine, use_engine

    with use_engine(ParallelEngine(workers=8)):
        proof = prove(pk, assignment)       # all kernels run parallel

or per call site — every protocol entry point accepts ``engine=``.

See ``docs/backend_architecture.md`` for the interface contract, cache
lifetimes and how to add a new backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.backend.engine import Engine
from repro.backend.parallel import ParallelEngine
from repro.backend.serial import SerialEngine
from repro.errors import BackendError

_BACKENDS = {
    "serial": SerialEngine,
    "parallel": ParallelEngine,
}

_default_engine: Engine | None = None


def engine_from_env() -> Engine:
    """Construct an engine from the ``REPRO_BACKEND`` environment variable."""
    kind = os.environ.get("REPRO_BACKEND", "serial").strip().lower() or "serial"
    cls = _BACKENDS.get(kind)
    if cls is None:
        raise BackendError(
            "unknown REPRO_BACKEND %r (available: %s)" % (kind, ", ".join(sorted(_BACKENDS)))
        )
    return cls()


def get_engine() -> Engine:
    """Return the process-wide default engine, creating it on first use.

    The default is shared so its caches (SRS Jacobian views, fixed-base
    tables, coset evaluations) amortise across every proof in the
    process.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = engine_from_env()
    return _default_engine


def set_engine(engine: Engine | None) -> Engine | None:
    """Replace the default engine; returns the previous one.

    Passing ``None`` resets to lazy re-selection from the environment.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


@contextmanager
def use_engine(engine: Engine):
    """Scoped default-engine override (restores the previous default)."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)


__all__ = [
    "Engine",
    "ParallelEngine",
    "SerialEngine",
    "engine_from_env",
    "get_engine",
    "set_engine",
    "use_engine",
]
